#include "exion/metrics/metrics.h"

#include <cmath>
#include <limits>

#include "exion/tensor/ops.h"

namespace exion
{

double
psnr(const Matrix &reference, const Matrix &test)
{
    EXION_ASSERT(reference.rows() == test.rows()
                     && reference.cols() == test.cols(),
                 "psnr shape mismatch");
    const double mse = meanSquaredError(reference, test);
    if (mse == 0.0)
        return std::numeric_limits<double>::infinity();
    const double peak = static_cast<double>(reference.maxAbs());
    if (peak == 0.0)
        return -std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(peak * peak / mse);
}

double
cosineSimilarity(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "cosine shape mismatch");
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (Index i = 0; i < a.size(); ++i) {
        const double av = a.data()[i];
        const double bv = b.data()[i];
        dot += av * bv;
        na += av * av;
        nb += bv * bv;
    }
    if (na == 0.0 || nb == 0.0)
        return na == nb ? 1.0 : 0.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

double
relativeError(const Matrix &reference, const Matrix &test)
{
    const double ref_norm = frobeniusNorm(reference);
    const double diff_norm = frobeniusNorm(sub(reference, test));
    if (ref_norm == 0.0)
        return diff_norm == 0.0 ? 0.0 : 1.0;
    return diff_norm / ref_norm;
}

double
meanSquaredError(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "mse shape mismatch");
    if (a.size() == 0)
        return 0.0;
    double sum = 0.0;
    for (Index i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a.data()[i]) - b.data()[i];
        sum += d * d;
    }
    return sum / static_cast<double>(a.size());
}

} // namespace exion
