/**
 * @file
 * Fréchet-distance proxy between batches of generated outputs.
 *
 * Plays the role of FID/FAD in Table I without real datasets: both
 * batches are projected through a fixed random feature map, then the
 * Fréchet distance between diagonal-Gaussian fits of the feature
 * distributions is computed. Lower is better; 0 means the statistics
 * match exactly.
 */

#ifndef EXION_METRICS_FRECHET_H_
#define EXION_METRICS_FRECHET_H_

#include <vector>

#include "exion/tensor/matrix.h"

namespace exion
{

/**
 * Random-projection Fréchet distance.
 */
class FrechetProxy
{
  public:
    /**
     * @param input_dim    flattened output size per sample
     * @param feature_dim  projected feature size
     * @param seed         seed for the fixed projection
     */
    FrechetProxy(Index input_dim, Index feature_dim, u64 seed = 1234);

    /** Projects one sample (matrix flattened) into feature space. */
    std::vector<double> project(const Matrix &sample) const;

    /**
     * Fréchet distance between two batches of samples.
     *
     * Uses diagonal covariance: d^2 = |mu_a - mu_b|^2 +
     * sum_i (sa_i + sb_i - 2 sqrt(sa_i sb_i)).
     */
    double distance(const std::vector<Matrix> &batch_a,
                    const std::vector<Matrix> &batch_b) const;

  private:
    Index inputDim_;
    Index featureDim_;
    Matrix projection_; //!< featureDim_ x inputDim_
};

} // namespace exion

#endif // EXION_METRICS_FRECHET_H_
