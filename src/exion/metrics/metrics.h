/**
 * @file
 * Output-quality metrics.
 *
 * Table I's cross-model metric is PSNR against the vanilla model's
 * output, which we reproduce natively. Cosine similarity drives the
 * Fig. 7 heatmap. Relative error supports unit tests.
 */

#ifndef EXION_METRICS_METRICS_H_
#define EXION_METRICS_METRICS_H_

#include "exion/tensor/matrix.h"

namespace exion
{

/**
 * Peak signal-to-noise ratio of test against reference, in dB.
 *
 * Peak is the reference's max |value| (the paper compares generated
 * outputs whose dynamic range is model-specific). Returns +inf for
 * identical inputs.
 */
double psnr(const Matrix &reference, const Matrix &test);

/** Cosine similarity of the two matrices viewed as flat vectors. */
double cosineSimilarity(const Matrix &a, const Matrix &b);

/** ||a - b||_F / ||a||_F (0 when both empty). */
double relativeError(const Matrix &reference, const Matrix &test);

/** Mean squared error. */
double meanSquaredError(const Matrix &a, const Matrix &b);

} // namespace exion

#endif // EXION_METRICS_METRICS_H_
