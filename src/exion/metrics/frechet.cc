#include "exion/metrics/frechet.h"

#include <cmath>

#include "exion/common/rng.h"

namespace exion
{

FrechetProxy::FrechetProxy(Index input_dim, Index feature_dim, u64 seed)
    : inputDim_(input_dim), featureDim_(feature_dim),
      projection_(feature_dim, input_dim)
{
    Rng rng(seed);
    const float norm = 1.0f / std::sqrt(static_cast<float>(input_dim));
    projection_.fillNormal(rng, 0.0f, norm);
}

std::vector<double>
FrechetProxy::project(const Matrix &sample) const
{
    EXION_ASSERT(sample.size() == inputDim_,
                 "sample size ", sample.size(), " vs ", inputDim_);
    std::vector<double> out(featureDim_, 0.0);
    for (Index f = 0; f < featureDim_; ++f) {
        const float *prow = projection_.rowPtr(f);
        double acc = 0.0;
        for (Index i = 0; i < inputDim_; ++i)
            acc += static_cast<double>(prow[i]) * sample.data()[i];
        out[f] = acc;
    }
    return out;
}

double
FrechetProxy::distance(const std::vector<Matrix> &batch_a,
                       const std::vector<Matrix> &batch_b) const
{
    EXION_ASSERT(!batch_a.empty() && !batch_b.empty(),
                 "frechet distance of empty batch");

    auto fit = [this](const std::vector<Matrix> &batch,
                      std::vector<double> &mu, std::vector<double> &var) {
        mu.assign(featureDim_, 0.0);
        var.assign(featureDim_, 0.0);
        std::vector<std::vector<double>> feats;
        feats.reserve(batch.size());
        for (const auto &sample : batch)
            feats.push_back(project(sample));
        for (const auto &f : feats)
            for (Index i = 0; i < featureDim_; ++i)
                mu[i] += f[i];
        for (Index i = 0; i < featureDim_; ++i)
            mu[i] /= static_cast<double>(batch.size());
        for (const auto &f : feats) {
            for (Index i = 0; i < featureDim_; ++i) {
                const double d = f[i] - mu[i];
                var[i] += d * d;
            }
        }
        for (Index i = 0; i < featureDim_; ++i)
            var[i] /= static_cast<double>(batch.size());
    };

    std::vector<double> mu_a, var_a, mu_b, var_b;
    fit(batch_a, mu_a, var_a);
    fit(batch_b, mu_b, var_b);

    double dist2 = 0.0;
    for (Index i = 0; i < featureDim_; ++i) {
        const double dm = mu_a[i] - mu_b[i];
        dist2 += dm * dm;
        dist2 += var_a[i] + var_b[i]
            - 2.0 * std::sqrt(var_a[i] * var_b[i]);
    }
    return std::sqrt(std::max(0.0, dist2));
}

} // namespace exion
