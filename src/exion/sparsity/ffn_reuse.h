/**
 * @file
 * FFN-Reuse algorithm (Section III-A, Fig. 6).
 *
 * One dense iteration computes the FFN fully, thresholds the non-linear
 * layer's output |H| into a recompute bitmask (1 = important, compute
 * every iteration), and caches the partial sums contributed by the
 * reused (sparse) elements through the second FFN layer. The following
 * N sparse iterations recompute only masked elements of the first
 * layer's output and accumulate just those contributions onto the
 * cached partial sums.
 *
 * Thresholds are calibrated per block at each dense iteration as the
 * targetSparsity quantile of |H| — the runtime analogue of the paper's
 * empirically determined local thresholds.
 */

#ifndef EXION_SPARSITY_FFN_REUSE_H_
#define EXION_SPARSITY_FFN_REUSE_H_

#include <unordered_map>

#include "exion/model/config.h"
#include "exion/model/executor.h"
#include "exion/model/transformer_block.h"
#include "exion/tensor/bitmask.h"
#include "exion/tensor/quant_matrix.h"
#include "exion/tensor/simd_dispatch.h"

namespace exion
{

/**
 * Per-block inter-iteration reuse state.
 */
struct FfnReuseBlockState
{
    bool initialized = false;
    double theta = 0.0;   //!< calibrated |H| threshold
    Bitmask2D mask;       //!< recompute mask (1 = recompute)
    Matrix hiddenCache;   //!< H from the last dense iteration
    Matrix psumSparse;    //!< (H masked to reuse region) * W2
};

/**
 * Per-request FFN-Reuse state bundle: one entry per transformer block.
 *
 * The engine holds a private bundle by default; a serving layer binds
 * one bundle per in-flight request so inter-iteration reuse state
 * (masks, hidden caches, partial sums) never mixes across concurrent
 * denoising streams.
 */
struct FfnReuseState
{
    std::unordered_map<int, FfnReuseBlockState> blocks;

    /** Drops all cached block state. */
    void reset() { blocks.clear(); }
};

/**
 * FFN-Reuse execution engine, stateful across iterations.
 *
 * Not copyable: it carries a bound per-request state pointer.
 */
class FfnReuse
{
  public:
    /**
     * @param cfg      dense interval N and sparsity target
     * @param quantize run MMULs through INT12 operands
     * @param backend  GEMM backend for the dense MMULs (bit-identical
     *                 across backends)
     * @param simd     SIMD tier for the sparse hot loops (threshold
     *                 scans, masked recompute, masked products);
     *                 Scalar/Exact are bit-identical, Fast
     *                 reassociates the recompute dot products
     * @param tp       tensor-parallel slice context for the tall
     *                 GEMMs and the masked product. Masks and
     *                 thresholds are always computed on whole logical
     *                 outputs; slices only partition output columns,
     *                 so tp=N stays bit-identical to solo.
     */
    FfnReuse(const FfnReuseConfig &cfg, bool quantize,
             GemmBackend backend = defaultGemmBackend(),
             SimdTier simd = defaultSimdTier(), TpContext tp = {});

    FfnReuse(const FfnReuse &) = delete;
    FfnReuse &operator=(const FfnReuse &) = delete;

    /** Binds an external per-request state bundle. */
    void bindState(FfnReuseState &state) { state_ = &state; }

    /** Reverts to the engine-owned single-stream state bundle. */
    void unbindState() { state_ = &ownState_; }

    /** True when the iteration is a dense (full recompute) one. */
    bool isDenseIteration(int iteration) const;

    /**
     * Executes one FFN sub-layer under reuse.
     *
     * @param blk       the transformer block (weights)
     * @param x_norm    normalised sub-layer input
     * @param iteration current denoising iteration
     * @param stats     op/sparsity accounting sink
     * @param observers mask/activation hooks
     */
    Matrix run(const TransformerBlock &blk, const Matrix &x_norm,
               int iteration, ExecStats &stats,
               ExecObservers &observers);

    /** Read access to a block's state (nullptr before first dense). */
    const FfnReuseBlockState *state(int block_id) const;

    /** Drops the bound bundle's state (e.g. between pipeline runs). */
    void reset();

  private:
    /**
     * Per-block transposed first-layer weights: runSparse's masked
     * recompute reads W1 column-wise, so the sparse path dots against
     * the transpose's contiguous rows instead. Weights are immutable
     * for a block id and an engine serves one request at a time, so
     * the transpose (and, under quantize, its INT12 image — the
     * per-tensor scale is order-independent, making
     * quantize(transpose(W)) == transpose(quantize(W))) is built once
     * and reused across iterations.
     */
    struct TransposedFfn1
    {
        Matrix w1t;
        Matrix w1vt;
        QuantMatrix qw1t;
        QuantMatrix qw1vt;
    };

    const TransposedFfn1 &transposedFfn1(const TransformerBlock &blk);

    Matrix runDense(const TransformerBlock &blk, const Matrix &x_norm,
                    ExecStats &stats, ExecObservers &observers,
                    FfnReuseBlockState &st);
    Matrix runSparse(const TransformerBlock &blk, const Matrix &x_norm,
                     ExecStats &stats, ExecObservers &observers,
                     FfnReuseBlockState &st);

    FfnReuseConfig cfg_;
    bool quantize_;
    GemmBackend backend_;
    SimdTier simd_;
    TpContext tp_;
    std::unordered_map<int, TransposedFfn1> w1tCache_;
    FfnReuseState ownState_;
    FfnReuseState *state_ = &ownState_;
};

/** targetSparsity quantile of |values| (the calibrated threshold). */
double sparsityQuantile(std::span<const float> values,
                        double target_sparsity);

} // namespace exion

#endif // EXION_SPARSITY_FFN_REUSE_H_
