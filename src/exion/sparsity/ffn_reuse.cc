#include "exion/sparsity/ffn_reuse.h"

#include <algorithm>
#include <cmath>

#include "exion/tensor/ops.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{

double
sparsityQuantile(std::span<const float> values, double target_sparsity)
{
    EXION_ASSERT(!values.empty(), "quantile of empty data");
    EXION_ASSERT(target_sparsity >= 0.0 && target_sparsity <= 1.0,
                 "sparsity target ", target_sparsity);
    std::vector<float> magnitudes(values.size());
    for (Index i = 0; i < values.size(); ++i)
        magnitudes[i] = std::abs(values[i]);
    const Index rank = std::min<Index>(
        values.size() - 1,
        static_cast<Index>(target_sparsity
                           * static_cast<double>(values.size())));
    std::nth_element(magnitudes.begin(), magnitudes.begin() + rank,
                     magnitudes.end());
    return magnitudes[rank];
}

FfnReuse::FfnReuse(const FfnReuseConfig &cfg, bool quantize,
                   GemmBackend backend, SimdTier simd, TpContext tp)
    : cfg_(cfg), quantize_(quantize), backend_(backend), simd_(simd),
      tp_(tp)
{
    EXION_ASSERT(cfg_.denseInterval >= 0, "dense interval ",
                 cfg_.denseInterval);
}

const FfnReuse::TransposedFfn1 &
FfnReuse::transposedFfn1(const TransformerBlock &blk)
{
    const auto [it, inserted] = w1tCache_.try_emplace(blk.id());
    if (inserted) {
        TransposedFfn1 &tw = it->second;
        if (const auto *at_rest = blk.ffn1AtRest()) {
            // Store-built block: borrow the at-rest transposed images
            // (shallow copies of views into the store). The store
            // snapshots transpose(W1) and its INT12 image with the
            // same deterministic quantisation, so these are
            // bit-identical to the live build below.
            tw.w1t = at_rest->w1t;
            tw.w1vt = at_rest->w1vt;
            if (quantize_) {
                tw.qw1t = at_rest->qw1t;
                tw.qw1vt = at_rest->qw1vt;
            }
        } else {
            tw.w1t = transpose(blk.ffn1().weight());
            if (blk.geglu())
                tw.w1vt = transpose(blk.ffn1Value().weight());
            if (quantize_) {
                tw.qw1t =
                    QuantMatrix::fromFloat(tw.w1t, IntWidth::Int12);
                if (blk.geglu())
                    tw.qw1vt =
                        QuantMatrix::fromFloat(tw.w1vt, IntWidth::Int12);
            }
        }
    }
    return it->second;
}

bool
FfnReuse::isDenseIteration(int iteration) const
{
    return iteration % (cfg_.denseInterval + 1) == 0;
}

const FfnReuseBlockState *
FfnReuse::state(int block_id) const
{
    const auto it = state_->blocks.find(block_id);
    return it == state_->blocks.end() || !it->second.initialized
        ? nullptr : &it->second;
}

void
FfnReuse::reset()
{
    state_->reset();
    // Weight transposes are keyed by block id; a reset may precede a
    // run against a different model, so drop them too.
    w1tCache_.clear();
}

Matrix
FfnReuse::run(const TransformerBlock &blk, const Matrix &x_norm,
              int iteration, ExecStats &stats, ExecObservers &observers)
{
    FfnReuseBlockState &st = state_->blocks[blk.id()];
    if (isDenseIteration(iteration) || !st.initialized)
        return runDense(blk, x_norm, stats, observers, st);
    return runSparse(blk, x_norm, stats, observers, st);
}

namespace
{

/** Computes the non-linear hidden activation densely. */
Matrix
denseHidden(const TransformerBlock &blk, const Matrix &x_norm,
            bool quantize, GemmBackend backend, const TpContext &tp)
{
    Matrix gate = execWeightMatmul(x_norm, blk.ffn1(), quantize,
                                   backend, defaultSimdTier(), tp);
    addRowVector(gate, blk.ffn1().bias());
    Matrix hidden = gelu(gate);
    if (blk.geglu()) {
        Matrix value = execWeightMatmul(x_norm, blk.ffn1Value(),
                                        quantize, backend,
                                        defaultSimdTier(), tp);
        addRowVector(value, blk.ffn1Value().bias());
        for (Index i = 0; i < hidden.size(); ++i)
            hidden.data()[i] *= value.data()[i];
    }
    return hidden;
}

/**
 * psum + h * W2 where h is zero outside the mask's set positions,
 * accumulating only those positions: per output element the masked
 * contributions add in ascending column order from +0.0f — exactly
 * the dense product's accumulation chain with its zero terms elided,
 * which is bit-neutral for finite operands (a zero activation times a
 * finite weight contributes +/-0.0, and a +0.0-started accumulator is
 * never at -0.0 when one arrives) — then psum joins through the same
 * add() as the dense formulation. Bit-identical to
 * add(psum, matmul(h, w2)) on finite data. This is where the FFN
 * sparsity shortcut lives now that the golden matmul computes every
 * term (ops.h accumulation contract): at the paper's ~80-90% reuse
 * sparsity it does ~nnz*d work instead of t*hid*d, matching the
 * ffnOpsExecuted accounting.
 *
 * Under tensor parallelism the output columns are partitioned by the
 * slice plan: each slice runs the same whole-row mask walk but sweeps
 * its axpy only across its own column window of W2, into a private
 * partial buffer, and the partials are pasted back in ascending slice
 * order. Every output element's accumulation chain lives entirely
 * inside one slice, so tp=N is bit-identical to the solo sweep.
 */
Matrix
addMaskedProduct(const Matrix &psum, const Matrix &h,
                 const Bitmask2D &mask, const Matrix &w2,
                 SimdTier simd, const TpContext &tp)
{
    const SimdKernels &kr = simdKernels(simd);
    const Index n = w2.cols();
    const SlicePlan plan = SlicePlan::make(n, tp.nSlices);
    if (!plan.parallel()) {
        Matrix prod(h.rows(), n);
        for (Index r = 0; r < h.rows(); ++r) {
            float *out = prod.rowPtr(r);
            const float *hrow = h.rowPtr(r);
            // Word-at-a-time mask walk; each set column contributes
            // one axpy sweep across the output row — the same
            // ascending-c term order per output element as the dense
            // product.
            mask.forEachSetBitInRow(r, [&](Index c) {
                kr.axpyF32(out, w2.rowPtr(c), hrow[c], n);
            });
        }
        return add(psum, prod);
    }

    std::vector<Matrix> parts(plan.slices());
    runSliced(tp, plan.slices(), [&](int s) {
        const SliceRange &sr = plan.range(s);
        Matrix part(h.rows(), sr.n);
        if (!sr.empty()) {
            for (Index r = 0; r < h.rows(); ++r) {
                float *out = part.rowPtr(r);
                const float *hrow = h.rowPtr(r);
                mask.forEachSetBitInRow(r, [&](Index c) {
                    kr.axpyF32(out, w2.rowPtr(c) + sr.c0, hrow[c],
                               sr.n);
                });
            }
        }
        parts[s] = std::move(part);
    });

    Matrix prod(h.rows(), n);
    for (Index r = 0; r < h.rows(); ++r) {
        float *out = prod.rowPtr(r);
        for (int s = 0; s < plan.slices(); ++s) {
            const SliceRange &sr = plan.range(s);
            if (sr.empty())
                continue;
            std::copy_n(parts[s].rowPtr(r), sr.n, out + sr.c0);
        }
    }
    return add(psum, prod);
}

} // namespace

Matrix
FfnReuse::runDense(const TransformerBlock &blk, const Matrix &x_norm,
                   ExecStats &stats, ExecObservers &observers,
                   FfnReuseBlockState &st)
{
    const Index t = x_norm.rows();
    const Index d = blk.dModel();
    const Index hid = blk.ffnHidden();
    const OpCount ffn1_dense =
        (blk.geglu() ? 2 : 1) * mmulOps(t, d, hid);

    Matrix hidden = denseHidden(blk, x_norm, quantize_, backend_, tp_);
    stats.ffnOpsDense += ffn1_dense;
    stats.ffnOpsExecuted += ffn1_dense;

    if (observers.onFfnHidden)
        observers.onFfnHidden(blk.id(), hidden);

    // Calibrate theta and build the recompute mask with the threshold
    // compare kernel, 64 columns per call. theta is the quantile of
    // float magnitudes — exactly representable as float — so the
    // kernel's float compare decides identically to the promoted
    // double compare |h| > theta.
    st.theta = sparsityQuantile(hidden.data(), cfg_.targetSparsity);
    st.mask = Bitmask2D(t, hid);
    const SimdKernels &kr = simdKernels(simd_);
    const float ftheta = static_cast<float>(st.theta);
    for (Index r = 0; r < t; ++r) {
        const float *hrow = hidden.rowPtr(r);
        for (Index c0 = 0; c0 < hid; c0 += 64) {
            const Index nb = std::min<Index>(64, hid - c0);
            st.mask.writeRowBits(
                r, c0, kr.absGreaterMask64(hrow + c0, ftheta, nb),
                nb);
        }
    }

    if (observers.onFfnMask)
        observers.onFfnMask(blk.id(), st.mask, true);

    // Split H into reuse and recompute regions; cache the reuse
    // region's contribution through the second FFN layer.
    Matrix h_reuse = hidden;
    Matrix h_keep(t, hid);
    st.mask.forEachSetBit([&](Index r, Index c) {
        h_reuse(r, c) = 0.0f;
        h_keep(r, c) = hidden(r, c);
    });
    st.psumSparse = execWeightMatmul(h_reuse, blk.ffn2(), quantize_,
                                     backend_, defaultSimdTier(), tp_);
    st.hiddenCache = std::move(hidden);
    st.initialized = true;

    // The recompute region is sparse (1 - targetSparsity of H); in
    // the float path accumulate only its masked positions.
    Matrix out = quantize_
        ? add(st.psumSparse,
              execWeightMatmul(h_keep, blk.ffn2(), quantize_,
                               backend_, defaultSimdTier(), tp_))
        : addMaskedProduct(st.psumSparse, h_keep, st.mask,
                           blk.ffn2().weight(), simd_, tp_);
    addRowVector(out, blk.ffn2().bias());
    stats.ffnOpsDense += mmulOps(t, hid, d);
    stats.ffnOpsExecuted += mmulOps(t, hid, d);
    return out;
}

Matrix
FfnReuse::runSparse(const TransformerBlock &blk, const Matrix &x_norm,
                    ExecStats &stats, ExecObservers &observers,
                    FfnReuseBlockState &st)
{
    const Index t = x_norm.rows();
    const Index d = blk.dModel();
    const Index hid = blk.ffnHidden();
    EXION_ASSERT(st.mask.rows() == t && st.mask.cols() == hid,
                 "FFN-Reuse state shape mismatch for block ", blk.id());

    const u64 nnz = st.mask.countOnes();
    const double sparsity = st.mask.sparsity();
    stats.ffnSparsitySum += sparsity;
    ++stats.ffnSparsitySamples;
    if (observers.onFfnMask)
        observers.onFfnMask(blk.id(), st.mask, false);

    // Recompute only the masked elements of the hidden activation,
    // dotting each x row against the cached transpose's contiguous
    // weight rows. Exact tier keeps the golden serial float chain
    // (the transpose only removes the stride — same terms, same
    // order); Fast swaps in the reassociated dotF32 kernel. The
    // integer dot is exact in any order, so the quant path uses the
    // vector kernel in every tier.
    Matrix h_keep(t, hid);
    const bool geglu = blk.geglu();
    const SimdKernels &kr = simdKernels(simd_);
    const TransposedFfn1 &tw = transposedFfn1(blk);
    if (quantize_) {
        const QuantMatrix qx =
            QuantMatrix::fromFloat(x_norm, IntWidth::Int12);
        const double s1 = qx.scale() * tw.qw1t.scale();
        const double s1v =
            geglu ? qx.scale() * tw.qw1vt.scale() : 0.0;
        for (Index r = 0; r < t; ++r) {
            const i32 *xrow = qx.rowPtr(r);
            st.mask.forEachSetBitInRow(r, [&](Index c) {
                const i64 acc = kr.dotI32(xrow, tw.qw1t.rowPtr(c), d);
                float h = geluScalar(static_cast<float>(acc * s1)
                                     + blk.ffn1().bias()(0, c));
                if (geglu) {
                    const i64 accv =
                        kr.dotI32(xrow, tw.qw1vt.rowPtr(c), d);
                    h *= static_cast<float>(accv * s1v)
                        + blk.ffn1Value().bias()(0, c);
                }
                h_keep(r, c) = h;
            });
        }
    } else {
        const auto dot = simd_ == SimdTier::Fast ? kr.dotF32
                                                 : simd::dotF32Scalar;
        for (Index r = 0; r < t; ++r) {
            const float *xrow = x_norm.rowPtr(r);
            st.mask.forEachSetBitInRow(r, [&](Index c) {
                float h = geluScalar(dot(xrow, tw.w1t.rowPtr(c), d)
                                     + blk.ffn1().bias()(0, c));
                if (geglu)
                    h *= dot(xrow, tw.w1vt.rowPtr(c), d)
                        + blk.ffn1Value().bias()(0, c);
                h_keep(r, c) = h;
            });
        }
    }

    const OpCount per_element = (geglu ? 2 : 1);
    stats.ffnOpsDense += (geglu ? 2 : 1) * mmulOps(t, d, hid);
    stats.ffnOpsExecuted += 2 * per_element * nnz * d;

    // Second layer: accumulate only the recomputed contributions onto
    // the cached partial sums — via the masked positions in the float
    // path, so the executed work tracks nnz instead of the dense
    // shape.
    Matrix out = quantize_
        ? add(st.psumSparse,
              execWeightMatmul(h_keep, blk.ffn2(), quantize_,
                               backend_, defaultSimdTier(), tp_))
        : addMaskedProduct(st.psumSparse, h_keep, st.mask,
                           blk.ffn2().weight(), simd_, tp_);
    addRowVector(out, blk.ffn2().bias());
    stats.ffnOpsDense += mmulOps(t, hid, d);
    stats.ffnOpsExecuted += 2 * nnz * d;
    return out;
}

} // namespace exion
