#include "exion/sparsity/ffn_reuse.h"

#include <algorithm>
#include <cmath>

#include "exion/tensor/ops.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{

double
sparsityQuantile(const std::vector<float> &values, double target_sparsity)
{
    EXION_ASSERT(!values.empty(), "quantile of empty data");
    EXION_ASSERT(target_sparsity >= 0.0 && target_sparsity <= 1.0,
                 "sparsity target ", target_sparsity);
    std::vector<float> magnitudes(values.size());
    for (Index i = 0; i < values.size(); ++i)
        magnitudes[i] = std::abs(values[i]);
    const Index rank = std::min<Index>(
        values.size() - 1,
        static_cast<Index>(target_sparsity
                           * static_cast<double>(values.size())));
    std::nth_element(magnitudes.begin(), magnitudes.begin() + rank,
                     magnitudes.end());
    return magnitudes[rank];
}

FfnReuse::FfnReuse(const FfnReuseConfig &cfg, bool quantize,
                   GemmBackend backend)
    : cfg_(cfg), quantize_(quantize), backend_(backend)
{
    EXION_ASSERT(cfg_.denseInterval >= 0, "dense interval ",
                 cfg_.denseInterval);
}

bool
FfnReuse::isDenseIteration(int iteration) const
{
    return iteration % (cfg_.denseInterval + 1) == 0;
}

const FfnReuseBlockState *
FfnReuse::state(int block_id) const
{
    const auto it = state_->blocks.find(block_id);
    return it == state_->blocks.end() || !it->second.initialized
        ? nullptr : &it->second;
}

void
FfnReuse::reset()
{
    state_->reset();
}

Matrix
FfnReuse::run(const TransformerBlock &blk, const Matrix &x_norm,
              int iteration, ExecStats &stats, ExecObservers &observers)
{
    FfnReuseBlockState &st = state_->blocks[blk.id()];
    if (isDenseIteration(iteration) || !st.initialized)
        return runDense(blk, x_norm, stats, observers, st);
    return runSparse(blk, x_norm, stats, observers, st);
}

namespace
{

/** Computes the non-linear hidden activation densely. */
Matrix
denseHidden(const TransformerBlock &blk, const Matrix &x_norm,
            bool quantize, GemmBackend backend)
{
    Matrix gate = execMatmul(x_norm, blk.ffn1().weight(), quantize,
                             backend);
    addRowVector(gate, blk.ffn1().bias());
    Matrix hidden = gelu(gate);
    if (blk.geglu()) {
        Matrix value = execMatmul(x_norm, blk.ffn1Value().weight(),
                                  quantize, backend);
        addRowVector(value, blk.ffn1Value().bias());
        for (Index i = 0; i < hidden.size(); ++i)
            hidden.data()[i] *= value.data()[i];
    }
    return hidden;
}

/**
 * psum + h * W2 where h is zero outside the mask's set positions,
 * accumulating only those positions: per output element the masked
 * contributions add in ascending column order from +0.0f — exactly
 * the dense product's accumulation chain with its zero terms elided,
 * which is bit-neutral for finite operands (a zero activation times a
 * finite weight contributes +/-0.0, and a +0.0-started accumulator is
 * never at -0.0 when one arrives) — then psum joins through the same
 * add() as the dense formulation. Bit-identical to
 * add(psum, matmul(h, w2)) on finite data. This is where the FFN
 * sparsity shortcut lives now that the golden matmul computes every
 * term (ops.h accumulation contract): at the paper's ~80-90% reuse
 * sparsity it does ~nnz*d work instead of t*hid*d, matching the
 * ffnOpsExecuted accounting.
 */
Matrix
addMaskedProduct(const Matrix &psum, const Matrix &h,
                 const Bitmask2D &mask, const Matrix &w2)
{
    Matrix prod(h.rows(), w2.cols());
    for (Index r = 0; r < h.rows(); ++r) {
        float *out = prod.rowPtr(r);
        for (Index c = 0; c < h.cols(); ++c) {
            if (!mask.get(r, c))
                continue;
            const float hv = h(r, c);
            const float *wrow = w2.rowPtr(c);
            for (Index j = 0; j < w2.cols(); ++j)
                out[j] += hv * wrow[j];
        }
    }
    return add(psum, prod);
}

} // namespace

Matrix
FfnReuse::runDense(const TransformerBlock &blk, const Matrix &x_norm,
                   ExecStats &stats, ExecObservers &observers,
                   FfnReuseBlockState &st)
{
    const Index t = x_norm.rows();
    const Index d = blk.dModel();
    const Index hid = blk.ffnHidden();
    const OpCount ffn1_dense =
        (blk.geglu() ? 2 : 1) * mmulOps(t, d, hid);

    Matrix hidden = denseHidden(blk, x_norm, quantize_, backend_);
    stats.ffnOpsDense += ffn1_dense;
    stats.ffnOpsExecuted += ffn1_dense;

    if (observers.onFfnHidden)
        observers.onFfnHidden(blk.id(), hidden);

    // Calibrate theta and build the recompute mask.
    st.theta = sparsityQuantile(hidden.data(), cfg_.targetSparsity);
    st.mask = Bitmask2D(t, hid);
    for (Index r = 0; r < t; ++r)
        for (Index c = 0; c < hid; ++c)
            if (std::abs(hidden(r, c)) > st.theta)
                st.mask.set(r, c, true);

    if (observers.onFfnMask)
        observers.onFfnMask(blk.id(), st.mask, true);

    // Split H into reuse and recompute regions; cache the reuse
    // region's contribution through the second FFN layer.
    Matrix h_reuse = hidden;
    Matrix h_keep = hidden;
    for (Index r = 0; r < t; ++r) {
        for (Index c = 0; c < hid; ++c) {
            if (st.mask.get(r, c))
                h_reuse(r, c) = 0.0f;
            else
                h_keep(r, c) = 0.0f;
        }
    }
    st.psumSparse = execMatmul(h_reuse, blk.ffn2().weight(), quantize_,
                               backend_);
    st.hiddenCache = std::move(hidden);
    st.initialized = true;

    // The recompute region is sparse (1 - targetSparsity of H); in
    // the float path accumulate only its masked positions.
    Matrix out = quantize_
        ? add(st.psumSparse,
              execMatmul(h_keep, blk.ffn2().weight(), quantize_,
                         backend_))
        : addMaskedProduct(st.psumSparse, h_keep, st.mask,
                           blk.ffn2().weight());
    addRowVector(out, blk.ffn2().bias());
    stats.ffnOpsDense += mmulOps(t, hid, d);
    stats.ffnOpsExecuted += mmulOps(t, hid, d);
    return out;
}

Matrix
FfnReuse::runSparse(const TransformerBlock &blk, const Matrix &x_norm,
                    ExecStats &stats, ExecObservers &observers,
                    FfnReuseBlockState &st)
{
    const Index t = x_norm.rows();
    const Index d = blk.dModel();
    const Index hid = blk.ffnHidden();
    EXION_ASSERT(st.mask.rows() == t && st.mask.cols() == hid,
                 "FFN-Reuse state shape mismatch for block ", blk.id());

    const u64 nnz = st.mask.countOnes();
    const double sparsity = st.mask.sparsity();
    stats.ffnSparsitySum += sparsity;
    ++stats.ffnSparsitySamples;
    if (observers.onFfnMask)
        observers.onFfnMask(blk.id(), st.mask, false);

    // Recompute only the masked elements of the hidden activation.
    Matrix h_keep(t, hid);
    const bool geglu = blk.geglu();
    if (quantize_) {
        const QuantMatrix qx =
            QuantMatrix::fromFloat(x_norm, IntWidth::Int12);
        const QuantMatrix qw1 =
            QuantMatrix::fromFloat(blk.ffn1().weight(), IntWidth::Int12);
        const QuantMatrix qw1v = geglu
            ? QuantMatrix::fromFloat(blk.ffn1Value().weight(),
                                     IntWidth::Int12)
            : QuantMatrix();
        const double s1 = qx.scale() * qw1.scale();
        const double s1v = geglu ? qx.scale() * qw1v.scale() : 0.0;
        for (Index r = 0; r < t; ++r) {
            for (Index c = 0; c < hid; ++c) {
                if (!st.mask.get(r, c))
                    continue;
                i64 acc = 0;
                for (Index k = 0; k < d; ++k)
                    acc += static_cast<i64>(qx(r, k)) * qw1(k, c);
                float h = geluScalar(static_cast<float>(acc * s1)
                                     + blk.ffn1().bias()(0, c));
                if (geglu) {
                    i64 accv = 0;
                    for (Index k = 0; k < d; ++k)
                        accv += static_cast<i64>(qx(r, k)) * qw1v(k, c);
                    h *= static_cast<float>(accv * s1v)
                        + blk.ffn1Value().bias()(0, c);
                }
                h_keep(r, c) = h;
            }
        }
    } else {
        const Matrix &w1 = blk.ffn1().weight();
        for (Index r = 0; r < t; ++r) {
            const float *xrow = x_norm.rowPtr(r);
            for (Index c = 0; c < hid; ++c) {
                if (!st.mask.get(r, c))
                    continue;
                float acc = 0.0f;
                for (Index k = 0; k < d; ++k)
                    acc += xrow[k] * w1(k, c);
                float h = geluScalar(acc + blk.ffn1().bias()(0, c));
                if (geglu) {
                    const Matrix &w1v = blk.ffn1Value().weight();
                    float accv = 0.0f;
                    for (Index k = 0; k < d; ++k)
                        accv += xrow[k] * w1v(k, c);
                    h *= accv + blk.ffn1Value().bias()(0, c);
                }
                h_keep(r, c) = h;
            }
        }
    }

    const OpCount per_element = (geglu ? 2 : 1);
    stats.ffnOpsDense += (geglu ? 2 : 1) * mmulOps(t, d, hid);
    stats.ffnOpsExecuted += 2 * per_element * nnz * d;

    // Second layer: accumulate only the recomputed contributions onto
    // the cached partial sums — via the masked positions in the float
    // path, so the executed work tracks nnz instead of the dense
    // shape.
    Matrix out = quantize_
        ? add(st.psumSparse,
              execMatmul(h_keep, blk.ffn2().weight(), quantize_,
                         backend_))
        : addMaskedProduct(st.psumSparse, h_keep, st.mask,
                           blk.ffn2().weight());
    addRowVector(out, blk.ffn2().bias());
    stats.ffnOpsDense += mmulOps(t, hid, d);
    stats.ffnOpsExecuted += 2 * nnz * d;
    return out;
}

} // namespace exion
