/**
 * @file
 * Calibrated synthetic output-sparsity masks for full-scale accounting.
 *
 * Paper-size workloads are too large to run functionally; ConMerge and
 * the cycle model instead consume synthetic bitmasks whose structure is
 * calibrated to the paper's reported statistics and to measurements of
 * our reduced-scale functional runs:
 *
 *  - FFN recompute masks are column-structured: a fraction of hidden
 *    units is dead (fully reusable, enabling matrix-level condensing),
 *    a small fraction is hot (recomputed for almost every token), and
 *    the rest fire with a low background probability.
 *  - Attention-score keep masks are row-structured: one-hot rows are
 *    fully skipped, other rows keep exactly ceil(k*T) entries drawn
 *    with a Zipf column-popularity bias (important tokens attract many
 *    queries; unpopular key columns enable K/V projection skips).
 */

#ifndef EXION_SPARSITY_MASK_SYNTH_H_
#define EXION_SPARSITY_MASK_SYNTH_H_

#include "exion/common/rng.h"
#include "exion/model/config.h"
#include "exion/tensor/bitmask.h"

namespace exion
{

/** Column-mixture parameters of an FFN recompute mask. */
struct FfnMaskParams
{
    double density = 0.05;         //!< overall 1-bit fraction (1 - s)
    double deadColFraction = 0.5;  //!< columns entirely reusable
    double hotColFraction = 0.02;  //!< columns almost always computed
    double hotColDensity = 0.85;   //!< 1-bit rate inside hot columns

    /** Background column density solving the overall target. */
    double backgroundDensity() const;
};

/** Row/column structure parameters of a score keep mask. */
struct ScoreMaskParams
{
    double keepRatio = 0.5;      //!< top-k keep fraction per row
    double oneHotFraction = 0.1; //!< rows resolved by one-hot skip
    double zipfAlpha = 0.8;      //!< column-popularity skew
    /**
     * Key columns no query ever attends (padding/background tokens);
     * these are what matrix-level condensing removes from K/V work.
     */
    double coldColFraction = 0.0;
};

/** Calibrated FFN mask parameters for a benchmark (see DESIGN.md). */
FfnMaskParams ffnMaskParams(Benchmark b);

/** Calibrated score mask parameters for a benchmark. */
ScoreMaskParams scoreMaskParams(Benchmark b);

/** Draws a column-structured FFN recompute mask. */
Bitmask2D synthFfnMask(Index rows, Index cols, const FfnMaskParams &p,
                       Rng &rng);

/** Draws a row-structured attention-score keep mask. */
Bitmask2D synthScoreMask(Index rows, Index cols,
                         const ScoreMaskParams &p, Rng &rng);

} // namespace exion

#endif // EXION_SPARSITY_MASK_SYNTH_H_
