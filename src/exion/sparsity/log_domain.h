/**
 * @file
 * Log-domain arithmetic of the eager-prediction engine (Fig. 5a / 15).
 *
 * Operands are approximated by their leading-one position (LOD) or the
 * two leading set bits (TS-LOD); a multiply becomes an exponent
 * addition realised as a shift, and accumulation of the resulting
 * one-hot values uses the one-hot adder tree (functionally: exact sums
 * of powers of two).
 */

#ifndef EXION_SPARSITY_LOG_DOMAIN_H_
#define EXION_SPARSITY_LOG_DOMAIN_H_

#include "exion/common/bitops.h"
#include "exion/tensor/matrix.h"
#include "exion/tensor/quant_matrix.h"
#include "exion/tensor/simd_dispatch.h"

namespace exion
{

/** Leading-one detection depth. */
enum class LodMode
{
    Single,  //!< original EP (FACT): one bit per operand
    TwoStep, //!< EXION's TS-LOD: two bits per operand
};

/**
 * Approximate signed product of two integers in the log domain.
 *
 * Single mode: sign * 2^(p_a + p_b). TwoStep mode: the four (or fewer)
 * cross terms of (2^a1 + 2^a2)(2^b1 + 2^b2).
 */
i64 ldProduct(i32 a, i32 b, LodMode mode);

/**
 * Log-domain A (m x k) * B (k x n), dequantised to float.
 *
 * Every MAC uses ldProduct; accumulation is exact (the one-hot adder
 * tree merges one-hot addends losslessly). The MAC batches run
 * through the ldDot kernels of the requested SIMD tier — integer and
 * order-insensitive, so every tier is bit-identical to the scalar
 * ldProduct chain.
 */
Matrix ldMatmul(const QuantMatrix &a, const QuantMatrix &b, LodMode mode,
                SimdTier simd = defaultSimdTier());

/** Log-domain A (m x k) * B^T (n x k), dequantised to float. */
Matrix ldMatmulTransposed(const QuantMatrix &a, const QuantMatrix &b,
                          LodMode mode,
                          SimdTier simd = defaultSimdTier());

/**
 * Convenience: quantise both float operands to INT12, then run the
 * log-domain product A * B.
 */
Matrix ldMatmulFloat(const Matrix &a, const Matrix &b, LodMode mode,
                     SimdTier simd = defaultSimdTier());

} // namespace exion

#endif // EXION_SPARSITY_LOG_DOMAIN_H_
