#include "exion/sparsity/cohort_executor.h"

#include "exion/tensor/ops.h"

namespace exion
{

CohortExecutor::CohortExecutor(const SparseExecutor::Options &opt)
    : opt_(opt),
      ffnReuse_(opt.ffnReuse, opt.quantize, opt.gemm, opt.simd, opt.tp)
{
}

CohortExecutor::Slot &
CohortExecutor::slot(Index id)
{
    Slot &s = slots_[id];
    if (s.ctx == nullptr) {
        s.ownedCtx = std::make_unique<ExecContext>();
        s.ctx = s.ownedCtx.get();
    }
    if (s.ffn == nullptr) {
        s.ownedFfn = std::make_unique<FfnReuseState>();
        s.ffn = s.ownedFfn.get();
    }
    return s;
}

void
CohortExecutor::attachSlot(Index id, ExecContext &ctx, FfnReuseState &ffn)
{
    Slot &s = slots_[id];
    s.ctx = &ctx;
    s.ffn = &ffn;
    s.ownedCtx.reset();
    s.ownedFfn.reset();
}

ExecObservers &
CohortExecutor::slotObservers(Index id)
{
    return slot(id).observers;
}

ExecContext &
CohortExecutor::slotContext(Index id)
{
    return *slot(id).ctx;
}

void
CohortExecutor::releaseSlot(Index id)
{
    slots_.erase(id);
}

void
CohortExecutor::beginCohortStep(const std::vector<Index> &slots,
                                const std::vector<int> &iterations)
{
    EXION_ASSERT(slots.size() == iterations.size(),
                 "cohort step slots ", slots.size(), " vs iterations ",
                 iterations.size());
    active_ = slots;
    iterations_ = iterations;
    for (Index m = 0; m < active_.size(); ++m)
        slot(active_[m]).ctx->iteration = iterations_[m];
}

ExecStats &
CohortExecutor::memberStats(Index m)
{
    return slot(active_[m]).ctx->stats;
}

Matrix
CohortExecutor::attention(const TransformerBlock &blk,
                          const Matrix &x_norm)
{
    const Index n = active_.size();
    EXION_ASSERT(n > 0, "cohort attention without beginCohortStep");
    EXION_ASSERT(x_norm.rows() % n == 0, "stacked rows ", x_norm.rows(),
                 " vs ", n, " members");
    const Index t_seg = x_norm.rows() / n;
    const Index d = blk.dModel();

    // Sparse / quantized paths partition by member: EP decisions and
    // INT12 scales are calibrated per request matrix.
    if (opt_.useEp || opt_.quantize) {
        Matrix out(x_norm.rows(), d);
        for (Index m = 0; m < n; ++m) {
            const Matrix x_m = sliceRows(x_norm, m * t_seg, t_seg);
            Slot &s = slot(active_[m]);
            const Matrix seg = opt_.useEp
                ? epAttentionImpl(blk, x_m, opt_.ep, opt_.lodMode,
                                  opt_.quantize, s.ctx->stats,
                                  s.observers, opt_.gemm, opt_.simd,
                                  opt_.tp)
                : denseAttentionImpl(blk, x_m, opt_.quantize,
                                     s.ctx->stats, s.observers,
                                     opt_.gemm, opt_.simd, opt_.tp);
            pasteRows(out, seg, m * t_seg);
        }
        return out;
    }

    // Dense float path: one tall GEMM per projection (row-independent,
    // so each member's rows match its solo run bit for bit), then the
    // token-mixing core per member segment. The tall stacks are
    // exactly the shape the Blocked backend packs for.
    Matrix q = execMatmul(x_norm, blk.wq().weight(), false, opt_.gemm,
                          opt_.simd, opt_.tp);
    addRowVector(q, blk.wq().bias());
    Matrix k = execMatmul(x_norm, blk.wk().weight(), false, opt_.gemm,
                          opt_.simd, opt_.tp);
    addRowVector(k, blk.wk().bias());
    Matrix v = execMatmul(x_norm, blk.wv().weight(), false, opt_.gemm,
                          opt_.simd, opt_.tp);
    addRowVector(v, blk.wv().bias());

    Matrix concat(x_norm.rows(), d);
    for (Index m = 0; m < n; ++m) {
        ExecStats &stats = memberStats(m);
        stats.qkvOpsDense += 3 * mmulOps(t_seg, d, d);
        stats.qkvOpsExecuted += 3 * mmulOps(t_seg, d, d);
        stats.qRowsTotal += t_seg;
        stats.kColsTotal += t_seg;
        stats.vColsTotal += t_seg;

        denseAttentionCoreInto(blk, q, k, v, m * t_seg, t_seg, false,
                               stats, concat, opt_.gemm, opt_.simd);
    }

    Matrix out = execMatmul(concat, blk.wo().weight(), false,
                            opt_.gemm, opt_.simd, opt_.tp);
    addRowVector(out, blk.wo().bias());
    for (Index m = 0; m < n; ++m) {
        ExecStats &stats = memberStats(m);
        stats.attnOpsDense += mmulOps(t_seg, d, d);
        stats.attnOpsExecuted += mmulOps(t_seg, d, d);
    }
    return out;
}

Matrix
CohortExecutor::ffn(const TransformerBlock &blk, const Matrix &x_norm)
{
    const Index n = active_.size();
    EXION_ASSERT(n > 0, "cohort ffn without beginCohortStep");
    EXION_ASSERT(x_norm.rows() % n == 0, "stacked rows ", x_norm.rows(),
                 " vs ", n, " members");
    const Index t_seg = x_norm.rows() / n;
    const Index d = blk.dModel();
    const Index hid = blk.ffnHidden();

    if (opt_.useFfnReuse) {
        // Inter-iteration reuse: thresholds, masks and partial-sum
        // caches are per request — run each member against its own
        // bundle at its own iteration.
        Matrix out(x_norm.rows(), d);
        for (Index m = 0; m < n; ++m) {
            Slot &s = slot(active_[m]);
            ffnReuse_.bindState(*s.ffn);
            const Matrix x_m = sliceRows(x_norm, m * t_seg, t_seg);
            const Matrix seg =
                ffnReuse_.run(blk, x_m, iterations_[m], s.ctx->stats,
                              s.observers);
            pasteRows(out, seg, m * t_seg);
        }
        ffnReuse_.unbindState();
        return out;
    }

    // A hidden-activation observer wants per-member matrices; the
    // stacked fast path would hand it the whole stack instead.
    bool per_member = opt_.quantize;
    for (Index m = 0; m < n && !per_member; ++m)
        per_member = static_cast<bool>(
            slot(active_[m]).observers.onFfnHidden);

    if (per_member) {
        Matrix out(x_norm.rows(), d);
        for (Index m = 0; m < n; ++m) {
            Slot &s = slot(active_[m]);
            const Matrix x_m = sliceRows(x_norm, m * t_seg, t_seg);
            const Matrix seg = denseFfnImpl(blk, x_m, opt_.quantize,
                                            s.ctx->stats, s.observers,
                                            opt_.gemm, opt_.simd,
                                            opt_.tp);
            pasteRows(out, seg, m * t_seg);
        }
        return out;
    }

    // Dense float path: both FFN linears as tall GEMMs over the whole
    // stack; every op involved is row-independent. Account each
    // member exactly as denseFfnImpl would for its own t_seg rows.
    ExecStats scratch;
    ExecObservers none;
    Matrix out = denseFfnImpl(blk, x_norm, false, scratch, none,
                              opt_.gemm, opt_.simd, opt_.tp);
    const OpCount per_member_ops =
        (blk.geglu() ? 2 : 1) * mmulOps(t_seg, d, hid)
        + mmulOps(t_seg, hid, d);
    for (Index m = 0; m < n; ++m) {
        ExecStats &stats = memberStats(m);
        stats.ffnOpsDense += per_member_ops;
        stats.ffnOpsExecuted += per_member_ops;
    }
    return out;
}

} // namespace exion
