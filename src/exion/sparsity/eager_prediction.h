/**
 * @file
 * Eager prediction of attention scores (Section II-B, Fig. 5b).
 *
 * The EPRE predicts the attention score per head with log-domain
 * arithmetic, then derives skip decisions:
 *  - per-row top-k selection zeroes non-top-k score entries;
 *  - rows whose (top1 - top2) exceeds q_th become one-hot and skip the
 *    real computation entirely;
 *  - key columns with no kept entry skip K projection; value columns
 *    needed by neither kept entries nor one-hot argmaxes skip V
 *    projection; one-hot rows skip Q projection.
 */

#ifndef EXION_SPARSITY_EAGER_PREDICTION_H_
#define EXION_SPARSITY_EAGER_PREDICTION_H_

#include <vector>

#include "exion/model/config.h"
#include "exion/sparsity/log_domain.h"
#include "exion/tensor/bitmask.h"

namespace exion
{

/**
 * Per-head skip decision derived from a predicted attention score.
 */
struct HeadDecision
{
    /** T x T keep mask over real score computation (1 = compute). */
    Bitmask2D keep;
    /** Per query row: row resolved by one-hot approximation. */
    std::vector<u8> oneHot;
    /** Argmax column for one-hot rows (undefined otherwise). */
    std::vector<Index> oneHotArg;

    /** Zero fraction of the keep mask (intra-iteration sparsity). */
    double scoreSparsity() const;

    /** Number of one-hot rows. */
    Index oneHotCount() const;
};

/**
 * Block-level projection-skip summary across heads.
 *
 * A projection row/token is needed if any head needs it.
 */
struct ProjectionNeeds
{
    std::vector<u8> qRowNeeded; //!< query tokens needing real Q
    std::vector<u8> kRowNeeded; //!< key tokens needing real K
    std::vector<u8> vRowNeeded; //!< value tokens needing real V

    /** Count of set entries in a needs vector. */
    static Index countNeeded(const std::vector<u8> &needs);
};

/**
 * Builds the skip decision for one head from its predicted score.
 *
 * @param predicted scaled predicted attention score (T x T)
 * @param ep        q_th / top-k configuration
 * @param simd      SIMD tier for the threshold scans (every tier is
 *                  bit-identical — compares carry no reductions)
 */
HeadDecision decideFromPrediction(const Matrix &predicted,
                                  const EpConfig &ep,
                                  SimdTier simd = defaultSimdTier());

/**
 * Predicts one head's scaled attention score in the log domain.
 *
 * Runs LD projections of x through Wq/Wk head slices, then the LD
 * QK^T, mirroring the EPRE datapath. Biases are skipped (the EPRE
 * predicts from the dominant MMUL terms only).
 *
 * @param x_q12   INT12-quantised block input
 * @param wq_head head slice of the Q weight (d x d_head), quantised
 * @param wk_head head slice of the K weight (d x d_head), quantised
 * @param mode    LOD depth
 */
Matrix predictHeadScore(const QuantMatrix &x_q12,
                        const QuantMatrix &wq_head,
                        const QuantMatrix &wk_head, LodMode mode,
                        SimdTier simd = defaultSimdTier());

/** Combines per-head decisions into block-level projection needs. */
ProjectionNeeds combineNeeds(const std::vector<HeadDecision> &heads,
                             Index tokens);

} // namespace exion

#endif // EXION_SPARSITY_EAGER_PREDICTION_H_
