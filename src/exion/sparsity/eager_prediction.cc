#include "exion/sparsity/eager_prediction.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace exion
{

double
HeadDecision::scoreSparsity() const
{
    return keep.sparsity();
}

Index
HeadDecision::oneHotCount() const
{
    Index n = 0;
    for (u8 v : oneHot)
        n += v;
    return n;
}

Index
ProjectionNeeds::countNeeded(const std::vector<u8> &needs)
{
    Index n = 0;
    for (u8 v : needs)
        n += v;
    return n;
}

HeadDecision
decideFromPrediction(const Matrix &predicted, const EpConfig &ep,
                     SimdTier simd)
{
    const SimdKernels &kr = simdKernels(simd);
    const Index t_q = predicted.rows();
    const Index t_k = predicted.cols();
    EXION_ASSERT(t_k > 0, "empty predicted score");

    HeadDecision out;
    out.keep = Bitmask2D(t_q, t_k);
    out.oneHot.assign(t_q, 0);
    out.oneHotArg.assign(t_q, 0);

    const Index keep_k = std::max<Index>(
        1, static_cast<Index>(
               std::ceil(ep.topK * static_cast<double>(t_k))));

    std::vector<float> row(t_k);
    for (Index r = 0; r < t_q; ++r) {
        const float *src = predicted.rowPtr(r);

        // Top-1 / top-2 for the one-hot test.
        float top1 = -std::numeric_limits<float>::infinity();
        float top2 = -std::numeric_limits<float>::infinity();
        Index arg1 = 0;
        for (Index c = 0; c < t_k; ++c) {
            const float v = src[c];
            if (v > top1) {
                top2 = top1;
                top1 = v;
                arg1 = c;
            } else if (v > top2) {
                top2 = v;
            }
        }

        if (t_k > 1 && top1 - top2 > static_cast<float>(ep.qTh)) {
            // Dominant element already decided: whole row one-hot.
            out.oneHot[r] = 1;
            out.oneHotArg[r] = arg1;
            continue;
        }

        // Top-k selection: values outside the top k are zeroed.
        std::copy(src, src + t_k, row.begin());
        std::nth_element(row.begin(), row.begin() + (keep_k - 1),
                         row.end(), std::greater<float>());
        const float threshold = row[keep_k - 1];
        // Compare 64 columns per kernel call; cap at keep_k kept
        // entries (ties at the threshold keep the lowest columns,
        // exactly the per-bit scan's order).
        Index kept = 0;
        for (Index c0 = 0; c0 < t_k && kept < keep_k; c0 += 64) {
            const Index nb = std::min<Index>(64, t_k - c0);
            u64 bits = kr.cmpGeMask64(src + c0, threshold, nb);
            const Index ones =
                static_cast<Index>(std::popcount(bits));
            if (kept + ones > keep_k) {
                u64 trimmed = 0;
                for (Index m = kept; m < keep_k; ++m) {
                    trimmed |= bits & (~bits + 1);
                    bits &= bits - 1;
                }
                bits = trimmed;
                kept = keep_k;
            } else {
                kept += ones;
            }
            out.keep.writeRowBits(r, c0, bits, nb);
        }
    }
    return out;
}

Matrix
predictHeadScore(const QuantMatrix &x_q12, const QuantMatrix &wq_head,
                 const QuantMatrix &wk_head, LodMode mode,
                 SimdTier simd)
{
    EXION_ASSERT(wq_head.cols() == wk_head.cols(),
                 "head width mismatch");
    const Index dh = wq_head.cols();

    // LD projections produce float estimates; requantise for the
    // second-level LD MMUL, as the EPRE feeds its own outputs back.
    const Matrix q_est = ldMatmul(x_q12, wq_head, mode, simd);
    const Matrix k_est = ldMatmul(x_q12, wk_head, mode, simd);
    const QuantMatrix q12 = QuantMatrix::fromFloat(q_est, IntWidth::Int12);
    const QuantMatrix k12 = QuantMatrix::fromFloat(k_est, IntWidth::Int12);

    Matrix scores = ldMatmulTransposed(q12, k12, mode, simd);
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
    for (Index i = 0; i < scores.size(); ++i)
        scores.data()[i] *= inv_sqrt;
    return scores;
}

ProjectionNeeds
combineNeeds(const std::vector<HeadDecision> &heads, Index tokens)
{
    ProjectionNeeds needs;
    needs.qRowNeeded.assign(tokens, 0);
    needs.kRowNeeded.assign(tokens, 0);
    needs.vRowNeeded.assign(tokens, 0);

    for (const auto &head : heads) {
        EXION_ASSERT(head.keep.rows() == tokens
                         && head.oneHot.size() == tokens,
                     "head decision shape mismatch");
        for (Index r = 0; r < tokens; ++r) {
            if (head.oneHot[r]) {
                // Output copied from V[argmax]; no Q row needed.
                needs.vRowNeeded[head.oneHotArg[r]] = 1;
                continue;
            }
            needs.qRowNeeded[r] = 1;
            head.keep.forEachSetBitInRow(r, [&](Index c) {
                needs.kRowNeeded[c] = 1;
                needs.vRowNeeded[c] = 1;
            });
        }
    }
    return needs;
}

} // namespace exion
