#include "exion/sparsity/sparse_executor.h"

#include <cmath>
#include <limits>

#include "exion/tensor/ops.h"

namespace exion
{

SparseExecutor::SparseExecutor(const Options &opt)
    : opt_(opt),
      ffnReuse_(opt.ffnReuse, opt.quantize, opt.gemm, opt.simd, opt.tp)
{
}

SparseExecutor::Options
SparseExecutor::fromConfig(const ModelConfig &cfg, bool use_ffn_reuse,
                           bool use_ep, bool quantize, LodMode mode)
{
    Options opt;
    opt.useFfnReuse = use_ffn_reuse;
    opt.useEp = use_ep;
    opt.quantize = quantize;
    opt.lodMode = mode;
    opt.ffnReuse = cfg.ffnReuse;
    opt.ep = cfg.ep;
    return opt;
}

Matrix
SparseExecutor::ffn(const TransformerBlock &blk, const Matrix &x_norm)
{
    if (!opt_.useFfnReuse)
        return denseFfnImpl(blk, x_norm, opt_.quantize, stats(),
                            observers, opt_.gemm, opt_.simd, opt_.tp);
    return ffnReuse_.run(blk, x_norm, iteration(), stats(), observers);
}

Matrix
SparseExecutor::attention(const TransformerBlock &blk,
                          const Matrix &x_norm)
{
    if (!opt_.useEp)
        return denseAttentionImpl(blk, x_norm, opt_.quantize, stats(),
                                  observers, opt_.gemm, opt_.simd,
                                  opt_.tp);
    return epAttention(blk, x_norm);
}

namespace
{

/** Row-masked projection: rows with needed == 0 stay zero. */
Matrix
projectNeededRows(const Matrix &x, const Linear &proj,
                  const std::vector<u8> &needed, bool quantize,
                  GemmBackend backend, SimdTier simd,
                  const TpContext &tp)
{
    Matrix out(x.rows(), proj.outDim());
    // Collect needed rows, project densely, scatter back. This keeps
    // the quantisation behaviour identical to the dense path.
    Index n_needed = 0;
    for (u8 v : needed)
        n_needed += v;
    if (n_needed == 0)
        return out;

    Matrix packed(n_needed, x.cols());
    Index w = 0;
    for (Index r = 0; r < x.rows(); ++r) {
        if (!needed[r])
            continue;
        for (Index c = 0; c < x.cols(); ++c)
            packed(w, c) = x(r, c);
        ++w;
    }
    Matrix projected = execWeightMatmul(packed, proj, quantize,
                                        backend, simd, tp);
    addRowVector(projected, proj.bias());
    w = 0;
    for (Index r = 0; r < x.rows(); ++r) {
        if (!needed[r])
            continue;
        for (Index c = 0; c < out.cols(); ++c)
            out(r, c) = projected(w, c);
        ++w;
    }
    return out;
}

} // namespace

Matrix
SparseExecutor::epAttention(const TransformerBlock &blk,
                            const Matrix &x_norm)
{
    return epAttentionImpl(blk, x_norm, opt_.ep, opt_.lodMode,
                           opt_.quantize, stats(), observers,
                           opt_.gemm, opt_.simd, opt_.tp);
}

Matrix
epAttentionImpl(const TransformerBlock &blk, const Matrix &x_norm,
                const EpConfig &ep, LodMode lod_mode, bool quantize,
                ExecStats &stats, ExecObservers &observers,
                GemmBackend backend, SimdTier simd, const TpContext &tp)
{
    const SimdKernels &kr = simdKernels(simd);
    // Exact tier keeps the golden serial chain for the kept-position
    // score dots (the k-chain is the output element); Fast swaps in
    // the reassociated kernel.
    const auto dot =
        simd == SimdTier::Fast ? kr.dotF32 : simd::dotF32Scalar;
    const Index t = x_norm.rows();
    const Index d = blk.dModel();
    const Index dh = blk.headDim();
    const Index n_heads = blk.nHeads();
    const float inv_sqrt = static_cast<float>(blk.scoreTemp())
        / std::sqrt(static_cast<float>(dh));

    // --- EPRE: predicted attention scores and skip decisions. ---
    const QuantMatrix qx = QuantMatrix::fromFloat(x_norm, IntWidth::Int12);
    std::vector<HeadDecision> decisions;
    decisions.reserve(n_heads);
    for (Index h = 0; h < n_heads; ++h) {
        const QuantMatrix qwq = QuantMatrix::fromFloat(
            sliceCols(blk.wq().weight(), h * dh, dh), IntWidth::Int12);
        const QuantMatrix qwk = QuantMatrix::fromFloat(
            sliceCols(blk.wk().weight(), h * dh, dh), IntWidth::Int12);
        Matrix predicted =
            predictHeadScore(qx, qwq, qwk, lod_mode, simd);
        for (Index i = 0; i < predicted.size(); ++i)
            predicted.data()[i] *=
                static_cast<float>(blk.scoreTemp());
        HeadDecision dec = decideFromPrediction(predicted, ep, simd);
        if (observers.onScoreMask)
            observers.onScoreMask(blk.id(), static_cast<int>(h),
                                  dec.keep);
        stats.scoreSparsitySum += dec.scoreSparsity();
        ++stats.scoreSparsitySamples;
        decisions.push_back(std::move(dec));
    }
    const ProjectionNeeds needs = combineNeeds(decisions, t);

    const Index nq = ProjectionNeeds::countNeeded(needs.qRowNeeded);
    const Index nk = ProjectionNeeds::countNeeded(needs.kRowNeeded);
    const Index nv = ProjectionNeeds::countNeeded(needs.vRowNeeded);
    stats.qRowsTotal += t;
    stats.kColsTotal += t;
    stats.vColsTotal += t;
    stats.qRowsSkipped += t - nq;
    stats.kColsSkipped += t - nk;
    stats.vColsSkipped += t - nv;

    // --- Real projections, only for needed tokens (SDUE, INT12). ---
    const Matrix q = projectNeededRows(x_norm, blk.wq(),
                                       needs.qRowNeeded, quantize,
                                       backend, simd, tp);
    const Matrix k = projectNeededRows(x_norm, blk.wk(),
                                       needs.kRowNeeded, quantize,
                                       backend, simd, tp);
    const Matrix v = projectNeededRows(x_norm, blk.wv(),
                                       needs.vRowNeeded, quantize,
                                       backend, simd, tp);
    stats.qkvOpsDense += 3 * mmulOps(t, d, d);
    stats.qkvOpsExecuted += mmulOps(nq, d, d) + mmulOps(nk, d, d)
        + mmulOps(nv, d, d);

    // --- Real attention at kept positions only. ---
    Matrix concat(t, d);
    std::vector<float> row_scores(t);
    std::vector<Index> kept_cols;
    kept_cols.reserve(t);
    for (Index h = 0; h < n_heads; ++h) {
        const HeadDecision &dec = decisions[h];
        OpCount kept_total = 0;
        for (Index r = 0; r < t; ++r) {
            if (dec.oneHot[r]) {
                // One-hot approximation: output is V at the argmax.
                const Index src = dec.oneHotArg[r];
                for (Index c = 0; c < dh; ++c)
                    concat(r, h * dh + c) = v(src, h * dh + c);
                continue;
            }
            kept_cols.clear();
            dec.keep.forEachSetBitInRow(
                r, [&](Index c) { kept_cols.push_back(c); });
            EXION_ASSERT(!kept_cols.empty(),
                         "non-one-hot row with empty keep set");

            // Scores at kept positions. Head h's slice of a
            // projection row is contiguous, so the kept dots stream
            // both operands directly.
            const float *qrow = q.rowPtr(r) + h * dh;
            float max_v = -std::numeric_limits<float>::infinity();
            for (Index idx = 0; idx < kept_cols.size(); ++idx) {
                const float *krow =
                    k.rowPtr(kept_cols[idx]) + h * dh;
                const float s = dot(qrow, krow, dh) * inv_sqrt;
                row_scores[idx] = s;
                max_v = std::max(max_v, s);
            }
            kept_total += kept_cols.size();

            // Softmax over kept entries.
            double denom = 0.0;
            for (Index idx = 0; idx < kept_cols.size(); ++idx) {
                row_scores[idx] = std::exp(row_scores[idx] - max_v);
                denom += row_scores[idx];
            }
            const float inv_denom = static_cast<float>(1.0 / denom);

            // Attention x V over kept entries: one axpy sweep per
            // kept column into the (zero-initialised) concat slice.
            // Per output element the terms still add in ascending
            // idx order from +0.0f, with the probability weight
            // rounded once before the sweep — exactly the original
            // left-associated chain.
            float *crow = concat.rowPtr(r) + h * dh;
            for (Index idx = 0; idx < kept_cols.size(); ++idx)
                kr.axpyF32(crow,
                           v.rowPtr(kept_cols[idx]) + h * dh,
                           row_scores[idx] * inv_denom, dh);
        }
        stats.attnOpsDense += mmulOps(t, dh, t) + mmulOps(t, t, dh);
        stats.attnOpsExecuted += 2 * 2 * kept_total * dh;
    }

    // Output projection stays dense (all rows have outputs).
    Matrix out = execWeightMatmul(concat, blk.wo(), quantize,
                                  backend, simd, tp);
    addRowVector(out, blk.wo().bias());
    stats.attnOpsDense += mmulOps(t, d, d);
    stats.attnOpsExecuted += mmulOps(t, d, d);
    return out;
}

} // namespace exion
