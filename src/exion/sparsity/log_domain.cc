#include "exion/sparsity/log_domain.h"

#include <cstdlib>

namespace exion
{

i64
ldProduct(i32 a, i32 b, LodMode mode)
{
    if (a == 0 || b == 0)
        return 0;
    const bool negative = (a < 0) != (b < 0);
    const u32 ua = static_cast<u32>(std::abs(static_cast<i64>(a)));
    const u32 ub = static_cast<u32>(std::abs(static_cast<i64>(b)));

    i64 magnitude = 0;
    if (mode == LodMode::Single) {
        const int pa = leadingOne(ua);
        const int pb = leadingOne(ub);
        // The zero-operand early return above makes the sentinel
        // unreachable here, but a kNoLeadingOne (-1) position used as
        // a shift amount would be UB — guard locally so the check
        // does not depend on distant control flow.
        if (pa == kNoLeadingOne || pb == kNoLeadingOne)
            return 0;
        magnitude = i64{1} << (pa + pb);
    } else {
        const TsLod ta = twoStepLeadingOne(ua);
        const TsLod tb = twoStepLeadingOne(ub);
        const int a_bits[2] = {ta.first, ta.second};
        const int b_bits[2] = {tb.first, tb.second};
        for (int ai : a_bits) {
            if (ai == kNoLeadingOne)
                continue;
            for (int bi : b_bits) {
                if (bi == kNoLeadingOne)
                    continue;
                magnitude += i64{1} << (ai + bi);
            }
        }
    }
    return negative ? -magnitude : magnitude;
}

Matrix
ldMatmul(const QuantMatrix &a, const QuantMatrix &b, LodMode mode)
{
    EXION_ASSERT(a.cols() == b.rows(), "ldMatmul shape mismatch");
    Matrix c(a.rows(), b.cols());
    const double out_scale = a.scale() * b.scale();
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index j = 0; j < b.cols(); ++j) {
            i64 acc = 0;
            for (Index k = 0; k < a.cols(); ++k)
                acc += ldProduct(a(i, k), b(k, j), mode);
            c(i, j) = static_cast<float>(acc * out_scale);
        }
    }
    return c;
}

Matrix
ldMatmulTransposed(const QuantMatrix &a, const QuantMatrix &b,
                   LodMode mode)
{
    EXION_ASSERT(a.cols() == b.cols(), "ldMatmulT shape mismatch");
    Matrix c(a.rows(), b.rows());
    const double out_scale = a.scale() * b.scale();
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index j = 0; j < b.rows(); ++j) {
            i64 acc = 0;
            for (Index k = 0; k < a.cols(); ++k)
                acc += ldProduct(a(i, k), b(j, k), mode);
            c(i, j) = static_cast<float>(acc * out_scale);
        }
    }
    return c;
}

Matrix
ldMatmulFloat(const Matrix &a, const Matrix &b, LodMode mode)
{
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    return ldMatmul(qa, qb, mode);
}

} // namespace exion
