#include "exion/sparsity/log_domain.h"

#include <cstdlib>
#include <vector>

namespace exion
{

i64
ldProduct(i32 a, i32 b, LodMode mode)
{
    if (a == 0 || b == 0)
        return 0;
    const bool negative = (a < 0) != (b < 0);
    const u32 ua = static_cast<u32>(std::abs(static_cast<i64>(a)));
    const u32 ub = static_cast<u32>(std::abs(static_cast<i64>(b)));

    i64 magnitude = 0;
    if (mode == LodMode::Single) {
        const int pa = leadingOne(ua);
        const int pb = leadingOne(ub);
        // The zero-operand early return above makes the sentinel
        // unreachable here, but a kNoLeadingOne (-1) position used as
        // a shift amount would be UB — guard locally so the check
        // does not depend on distant control flow.
        if (pa == kNoLeadingOne || pb == kNoLeadingOne)
            return 0;
        magnitude = i64{1} << (pa + pb);
    } else {
        const TsLod ta = twoStepLeadingOne(ua);
        const TsLod tb = twoStepLeadingOne(ub);
        const int a_bits[2] = {ta.first, ta.second};
        const int b_bits[2] = {tb.first, tb.second};
        for (int ai : a_bits) {
            if (ai == kNoLeadingOne)
                continue;
            for (int bi : b_bits) {
                if (bi == kNoLeadingOne)
                    continue;
                magnitude += i64{1} << (ai + bi);
            }
        }
    }
    return negative ? -magnitude : magnitude;
}

namespace
{

/** ldDot kernel of a tier's table for the given LOD depth. */
i64 (*ldDotKernel(LodMode mode, SimdTier simd))(const i32 *,
                                                const i32 *, Index)
{
    const SimdKernels &kr = simdKernels(simd);
    return mode == LodMode::Single ? kr.ldDotSingle : kr.ldDotTwoStep;
}

} // namespace

Matrix
ldMatmul(const QuantMatrix &a, const QuantMatrix &b, LodMode mode,
         SimdTier simd)
{
    EXION_ASSERT(a.cols() == b.rows(), "ldMatmul shape mismatch");
    Matrix c(a.rows(), b.cols());
    const double out_scale = a.scale() * b.scale();
    const auto ld_dot = ldDotKernel(mode, simd);
    const Index k_dim = a.cols();
    const Index n = b.cols();
    // The k-chain walks a column of B; transpose B's integer values
    // once so the kernel streams both operands contiguously. The sum
    // is integer — reordering nothing, copying everything — so this
    // matches the ldProduct accumulation exactly.
    std::vector<i32> bt(n * k_dim);
    for (Index k = 0; k < k_dim; ++k) {
        const i32 *brow = b.rowPtr(k);
        for (Index j = 0; j < n; ++j)
            bt[j * k_dim + k] = brow[j];
    }
    for (Index i = 0; i < a.rows(); ++i) {
        const i32 *arow = a.rowPtr(i);
        for (Index j = 0; j < n; ++j)
            c(i, j) = static_cast<float>(
                ld_dot(arow, bt.data() + j * k_dim, k_dim)
                * out_scale);
    }
    return c;
}

Matrix
ldMatmulTransposed(const QuantMatrix &a, const QuantMatrix &b,
                   LodMode mode, SimdTier simd)
{
    EXION_ASSERT(a.cols() == b.cols(), "ldMatmulT shape mismatch");
    Matrix c(a.rows(), b.rows());
    const double out_scale = a.scale() * b.scale();
    const auto ld_dot = ldDotKernel(mode, simd);
    const Index k_dim = a.cols();
    for (Index i = 0; i < a.rows(); ++i) {
        const i32 *arow = a.rowPtr(i);
        for (Index j = 0; j < b.rows(); ++j)
            c(i, j) = static_cast<float>(
                ld_dot(arow, b.rowPtr(j), k_dim) * out_scale);
    }
    return c;
}

Matrix
ldMatmulFloat(const Matrix &a, const Matrix &b, LodMode mode,
              SimdTier simd)
{
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    return ldMatmul(qa, qb, mode, simd);
}

} // namespace exion
