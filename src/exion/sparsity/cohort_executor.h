/**
 * @file
 * Cohort execution strategy: one executor stepping several requests'
 * stacked latents through each block, with all mutable state
 * partitioned per request.
 *
 * Row-independent work (QKV projections, FFN linears, the output
 * projection) runs as one tall MMUL over the whole stack, amortising
 * the traversal of each weight matrix across every cohort member;
 * token-mixing attention and all sparsity decisions (eager-prediction
 * masks, FFN-Reuse thresholds/caches) run per member segment against
 * that member's own state, so each member's rows — and its ExecStats
 * — are bit-identical to a solo run under a SparseExecutor /
 * DenseExecutor with the same options.
 */

#ifndef EXION_SPARSITY_COHORT_EXECUTOR_H_
#define EXION_SPARSITY_COHORT_EXECUTOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "exion/sparsity/sparse_executor.h"

namespace exion
{

/**
 * Segment-aware block executor covering every ablation mode.
 *
 * Per-member state lives in slots. A serving layer attaches its own
 * per-request ExecContext / FfnReuseState to a slot (attachSlot) so
 * accounting survives the executor; unattached slots get
 * executor-owned state created on demand (convenient for tests and
 * pipeline-level use). Per-slot observers fire with that member's
 * masks and activations only.
 *
 * Quantized modes fall back to per-member execution for the dense
 * paths too: INT12 scales are calibrated per matrix, so a stacked
 * operand would change every member's quantisation grid.
 */
class CohortExecutor : public CohortBlockExecutor
{
  public:
    explicit CohortExecutor(const SparseExecutor::Options &opt);

    /**
     * Binds external per-request state to a slot. The references must
     * outlive the slot (until releaseSlot() or destruction).
     */
    void attachSlot(Index slot, ExecContext &ctx, FfnReuseState &ffn);

    /** Per-slot observers (created on first access). */
    ExecObservers &slotObservers(Index slot);

    /** Execution context of a slot (created on first access). */
    ExecContext &slotContext(Index slot);

    /** Drops a slot's bindings and owned state. */
    void releaseSlot(Index slot);

    void beginCohortStep(const std::vector<Index> &slots,
                         const std::vector<int> &iterations) override;

    Matrix attention(const TransformerBlock &blk,
                     const Matrix &x_norm) override;
    Matrix ffn(const TransformerBlock &blk, const Matrix &x_norm) override;

    /** Active options. */
    const SparseExecutor::Options &options() const { return opt_; }

    /** GEMM backend used for dense MMULs (Options::gemm). */
    GemmBackend gemmBackend() const override { return opt_.gemm; }

    /** SIMD tier used for kernels (Options::simd). */
    SimdTier simdTier() const override { return opt_.simd; }

    /** Slice context for the tall stacked GEMMs (Options::tp). */
    TpContext tpContext() const override { return opt_.tp; }

    /** Cohort members in the current step. */
    Index cohortSize() const { return active_.size(); }

  private:
    struct Slot
    {
        ExecContext *ctx = nullptr;
        FfnReuseState *ffn = nullptr;
        std::unique_ptr<ExecContext> ownedCtx;
        std::unique_ptr<FfnReuseState> ownedFfn;
        ExecObservers observers;
    };

    /** The slot's state, created (executor-owned) on demand. */
    Slot &slot(Index id);

    /** Stats sink of the m-th active member. */
    ExecStats &memberStats(Index m);

    SparseExecutor::Options opt_;
    FfnReuse ffnReuse_;
    std::unordered_map<Index, Slot> slots_;
    std::vector<Index> active_;
    std::vector<int> iterations_;
};

} // namespace exion

#endif // EXION_SPARSITY_COHORT_EXECUTOR_H_
