#include "exion/sparsity/mask_synth.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exion/common/logging.h"

namespace exion
{

double
FfnMaskParams::backgroundDensity() const
{
    const double bg_fraction = 1.0 - deadColFraction - hotColFraction;
    if (bg_fraction <= 0.0)
        return 0.0;
    const double hot_mass = hotColFraction * hotColDensity;
    return std::clamp((density - hot_mass) / bg_fraction, 0.0, 1.0);
}

FfnMaskParams
ffnMaskParams(Benchmark b)
{
    // density = 1 - Table I inter-iteration sparsity. Dead/hot column
    // fractions calibrated so matrix-level condensing matches the
    // paper's Fig. 8/17 remainders (e.g. MLD 13.8%, SD 77.4%).
    switch (b) {
      case Benchmark::MLD:
        return {0.05, 0.85, 0.03, 0.85};
      case Benchmark::MDM:
        return {0.05, 0.80, 0.02, 0.85};
      case Benchmark::EDGE:
        return {0.05, 0.70, 0.02, 0.85};
      case Benchmark::MakeAnAudio:
        return {0.03, 0.50, 0.02, 0.85};
      case Benchmark::StableDiffusion:
        return {0.03, 0.226, 0.02, 0.85};
      case Benchmark::DiT:
        return {0.20, 0.20, 0.05, 0.85};
      case Benchmark::VideoCrafter2:
        return {0.30, 0.10, 0.10, 0.85};
    }
    EXION_PANIC("unhandled benchmark");
}

ScoreMaskParams
scoreMaskParams(Benchmark b)
{
    // keepRatio = Table I top-k; one-hot fractions measured on the
    // reduced-scale functional runs (bench_table1 prints them); cold
    // column fractions calibrated to Fig. 17's attention condensing.
    switch (b) {
      case Benchmark::MLD:
        return {0.7, 0.10, 0.8, 0.10};
      case Benchmark::MDM:
        return {0.05, 0.30, 0.8, 0.35};
      case Benchmark::EDGE:
        return {0.5, 0.20, 0.8, 0.20};
      case Benchmark::MakeAnAudio:
        return {0.2, 0.20, 0.8, 0.25};
      case Benchmark::StableDiffusion:
        return {0.8, 0.05, 0.8, 0.05};
      case Benchmark::DiT:
        return {0.05, 0.30, 0.8, 0.35};
      case Benchmark::VideoCrafter2:
        return {0.5, 0.10, 0.8, 0.10};
    }
    EXION_PANIC("unhandled benchmark");
}

Bitmask2D
synthFfnMask(Index rows, Index cols, const FfnMaskParams &p, Rng &rng)
{
    Bitmask2D mask(rows, cols);
    const double bg = p.backgroundDensity();
    for (Index c = 0; c < cols; ++c) {
        const double draw = rng.uniform();
        double density;
        if (draw < p.deadColFraction) {
            continue; // dead column: stays all zero
        } else if (draw < p.deadColFraction + p.hotColFraction) {
            density = p.hotColDensity;
        } else {
            density = bg;
        }
        for (Index r = 0; r < rows; ++r)
            if (rng.bernoulli(density))
                mask.set(r, c, true);
    }
    return mask;
}

Bitmask2D
synthScoreMask(Index rows, Index cols, const ScoreMaskParams &p,
               Rng &rng)
{
    Bitmask2D mask(rows, cols);
    Index keep_k = std::max<Index>(
        1, static_cast<Index>(
               std::ceil(p.keepRatio * static_cast<double>(cols))));

    // Zipf-distributed column popularity over a shuffled rank order;
    // a coldColFraction of columns is never attended (weight zero).
    std::vector<double> weight(cols);
    std::vector<Index> rank(cols);
    for (Index c = 0; c < cols; ++c)
        rank[c] = c;
    for (Index c = cols; c > 1; --c)
        std::swap(rank[c - 1], rank[rng.uniformInt(c)]);
    const Index cold = static_cast<Index>(
        p.coldColFraction * static_cast<double>(cols));
    double total = 0.0;
    Index warm = 0;
    for (Index c = 0; c < cols; ++c) {
        // The highest rank indices are the cold tail.
        if (rank[c] + cold >= cols) {
            weight[c] = 0.0;
        } else {
            weight[c] = std::pow(static_cast<double>(rank[c] + 1),
                                 -p.zipfAlpha);
            ++warm;
        }
        total += weight[c];
    }
    keep_k = std::min<Index>(keep_k, std::max<Index>(1, warm));

    std::vector<Index> chosen;
    chosen.reserve(keep_k);
    for (Index r = 0; r < rows; ++r) {
        if (rng.bernoulli(p.oneHotFraction))
            continue; // one-hot row: no real score computation

        if (keep_k * 2 >= warm) {
            // Dense keep: cheaper to drop (warm - keep_k) columns.
            std::vector<u8> kept(cols);
            for (Index c = 0; c < cols; ++c)
                kept[c] = weight[c] > 0.0 ? 1 : 0;
            Index dropped = 0;
            while (dropped < warm - keep_k) {
                const Index c = rng.uniformInt(cols);
                // Drop inversely proportional to popularity.
                if (kept[c]
                    && rng.bernoulli(1.0 - weight[c] * cols / total
                                               * 0.5)) {
                    kept[c] = 0;
                    ++dropped;
                }
            }
            for (Index c = 0; c < cols; ++c)
                if (kept[c])
                    mask.set(r, c, true);
        } else {
            // Sparse keep: weighted sampling without replacement.
            chosen.clear();
            double remaining = total;
            std::vector<u8> used(cols, 0);
            while (chosen.size() < keep_k) {
                double target = rng.uniform() * remaining;
                Index pick = cols - 1;
                for (Index c = 0; c < cols; ++c) {
                    if (used[c])
                        continue;
                    if (target < weight[c]) {
                        pick = c;
                        break;
                    }
                    target -= weight[c];
                }
                if (used[pick])
                    continue;
                used[pick] = 1;
                remaining -= weight[pick];
                chosen.push_back(pick);
            }
            for (Index c : chosen)
                mask.set(r, c, true);
        }
    }
    return mask;
}

} // namespace exion
