/**
 * @file
 * The EXION execution strategy: FFN-Reuse + eager prediction.
 *
 * One executor covers all ablation points of the evaluation
 * (EXION_Base / _EP / _FFNR / _All) through its Options flags.
 */

#ifndef EXION_SPARSITY_SPARSE_EXECUTOR_H_
#define EXION_SPARSITY_SPARSE_EXECUTOR_H_

#include "exion/model/config.h"
#include "exion/model/executor.h"
#include "exion/sparsity/eager_prediction.h"
#include "exion/sparsity/ffn_reuse.h"

namespace exion
{

/**
 * Block executor applying EXION's software-level optimisations.
 */
class SparseExecutor : public BlockExecutor
{
  public:
    /** Feature selection mirroring the paper's ablations. */
    struct Options
    {
        bool useFfnReuse = true;
        bool useEp = true;
        bool quantize = false;
        LodMode lodMode = LodMode::TwoStep;
        FfnReuseConfig ffnReuse{};
        EpConfig ep{};
        /**
         * GEMM backend for every dense MMUL this executor issues
         * (dense fallbacks, FFN-Reuse dense iterations, EP's packed
         * projections and output projection). Bit-identical across
         * backends; a pure wall-clock knob.
         */
        GemmBackend gemm = defaultGemmBackend();
        /**
         * SIMD tier for the sparse hot-path kernels (EP compare
         * scans, log-domain MACs, kept-position attention, FFN-Reuse
         * loops) and the dense MMULs above. Scalar and Exact are
         * bit-identical; Fast reassociates float reductions.
         */
        SimdTier simd = defaultSimdTier();
        /**
         * Tensor-parallel slice context for the tall weight GEMMs
         * (QKV / out-proj / FFN projections). Sparsity decisions —
         * thresholds, recompute masks, EP keep sets — are always
         * taken on whole logical outputs; slicing only forks the
         * projection columns, so tp=N is bit-identical to solo.
         */
        TpContext tp{};
    };

    explicit SparseExecutor(const Options &opt);

    /** Options derived from a model config (Table I knobs). */
    static Options fromConfig(const ModelConfig &cfg,
                              bool use_ffn_reuse, bool use_ep,
                              bool quantize,
                              LodMode mode = LodMode::TwoStep);

    Matrix attention(const TransformerBlock &blk,
                     const Matrix &x_norm) override;
    Matrix ffn(const TransformerBlock &blk, const Matrix &x_norm) override;

    /** The FFN-Reuse engine (inspectable state). */
    FfnReuse &ffnReuse() { return ffnReuse_; }

    /**
     * Binds all per-request state in one call: the execution context
     * (iteration + stats) and the FFN-Reuse bundle.
     */
    void bindRequestState(ExecContext &ctx, FfnReuseState &ffn)
    {
        bindContext(ctx);
        ffnReuse_.bindState(ffn);
    }

    /** Active options. */
    const Options &options() const { return opt_; }

    /** GEMM backend used for dense MMULs (Options::gemm). */
    GemmBackend gemmBackend() const override { return opt_.gemm; }

    /** SIMD tier used for kernels (Options::simd). */
    SimdTier simdTier() const override { return opt_.simd; }

    /** Slice context for tall projection GEMMs (Options::tp). */
    TpContext tpContext() const override { return opt_.tp; }

  private:
    Matrix epAttention(const TransformerBlock &blk, const Matrix &x_norm);

    Options opt_;
    FfnReuse ffnReuse_;
};

/**
 * Eager-prediction attention on one request's activation rows.
 *
 * Stateless across iterations (all skip decisions derive from x_norm
 * alone), so cohort executors run it per member segment with that
 * member's stats/observers — bit-identical to a solo SparseExecutor.
 *
 * @param x_norm    normalised block input (tokens x dModel)
 * @param ep        q_th / top-k configuration
 * @param lod_mode  LOD depth of the score prediction
 * @param quantize  route real MMULs through INT12 operands
 */
Matrix epAttentionImpl(const TransformerBlock &blk, const Matrix &x_norm,
                       const EpConfig &ep, LodMode lod_mode,
                       bool quantize, ExecStats &stats,
                       ExecObservers &observers,
                       GemmBackend backend = defaultGemmBackend(),
                       SimdTier simd = defaultSimdTier(),
                       const TpContext &tp = {});

} // namespace exion

#endif // EXION_SPARSITY_SPARSE_EXECUTOR_H_
