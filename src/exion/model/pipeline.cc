#include "exion/model/pipeline.h"

#include "exion/common/rng.h"
#include "exion/tensor/ops.h"

namespace exion
{

DiffusionPipeline::DiffusionPipeline(const ModelConfig &cfg)
    : network_(cfg), scheduler_(cfg.iterations)
{
}

DiffusionPipeline::DiffusionPipeline(
    std::shared_ptr<const WeightStore> store)
    : network_(std::move(store)),
      scheduler_(network_.config().iterations)
{
}

Matrix
DiffusionPipeline::run(BlockExecutor &exec, u64 noise_seed) const
{
    RunOptions opts;
    opts.noiseSeed = noise_seed;
    // The legacy hook lives on the (possibly shared) pipeline; route
    // it through the per-request options so both entry points share
    // one loop.
    opts.onIteration = onIteration;
    return run(exec, opts);
}

Matrix
DiffusionPipeline::run(BlockExecutor &exec, const RunOptions &opts) const
{
    return runCancellable(exec, opts).latent;
}

RunOutcome
DiffusionPipeline::runCancellable(BlockExecutor &exec,
                                  const RunOptions &opts) const
{
    const ModelConfig &cfg = network_.config();
    Rng rng(opts.noiseSeed);
    RunOutcome out;
    Matrix x(cfg.latentTokens, cfg.latentDim);
    x.fillNormal(rng, 0.0f, 1.0f);

    for (int i = 0; i < scheduler_.inferenceSteps(); ++i) {
        if (opts.cancel
            && opts.cancel->load(std::memory_order_relaxed)) {
            out.cancelled = true;
            break;
        }
        exec.beginIteration(i);
        const Matrix eps = network_.forward(x, scheduler_.timestep(i),
                                            exec);
        x = scheduler_.step(x, eps, i);
        out.iterations = i + 1;
        if (opts.onIteration)
            opts.onIteration(i, x);
    }
    out.latent = std::move(x);
    return out;
}

std::vector<Matrix>
DiffusionPipeline::runCohort(CohortBlockExecutor &exec,
                             const std::vector<u64> &seeds) const
{
    CohortRun run(*this, exec);
    std::vector<Index> slots;
    slots.reserve(seeds.size());
    for (u64 seed : seeds)
        slots.push_back(run.join(seed));
    while (!run.done())
        run.step();
    std::vector<Matrix> outputs;
    outputs.reserve(seeds.size());
    for (Index slot : slots)
        outputs.push_back(run.takeResult(slot));
    return outputs;
}

CohortRun::CohortRun(const DiffusionPipeline &pipe,
                     CohortBlockExecutor &exec)
    : pipe_(&pipe), exec_(&exec)
{
}

Index
CohortRun::join(u64 noise_seed)
{
    const ModelConfig &cfg = pipe_->config();
    const Index tokens = cfg.latentTokens;
    // Seed exactly like a solo run so the member's rows are
    // bit-identical to DiffusionPipeline::run(noise_seed).
    Rng rng(noise_seed);
    Matrix latent(tokens, cfg.latentDim);
    latent.fillNormal(rng, 0.0f, 1.0f);

    const Index slot = members_.size();
    Matrix grown(stacked_.rows() + tokens, cfg.latentDim);
    std::copy(stacked_.data().begin(), stacked_.data().end(),
              grown.data().begin());
    pasteRows(grown, latent, stacked_.rows());
    stacked_ = std::move(grown);
    stackOrder_.push_back(slot);
    members_.push_back(Member{});
    return slot;
}

void
CohortRun::removeFromStack(Index pos)
{
    const Index tokens = pipe_->config().latentTokens;
    Matrix shrunk(stacked_.rows() - tokens, stacked_.cols());
    const auto &src = stacked_.data();
    auto &dst = shrunk.data();
    const Index cut = pos * tokens * stacked_.cols();
    const Index cut_len = tokens * stacked_.cols();
    std::copy(src.begin(), src.begin() + cut, dst.begin());
    std::copy(src.begin() + cut + cut_len, src.end(),
              dst.begin() + cut);
    stacked_ = std::move(shrunk);
    stackOrder_.erase(stackOrder_.begin() + pos);
}

void
CohortRun::leave(Index slot)
{
    EXION_ASSERT(slot < members_.size(), "cohort slot ", slot);
    Member &member = members_[slot];
    if (member.state != State::Active)
        return;
    member.state = State::Left;
    for (Index pos = 0; pos < stackOrder_.size(); ++pos) {
        if (stackOrder_[pos] == slot) {
            removeFromStack(pos);
            break;
        }
    }
}

std::vector<Index>
CohortRun::step()
{
    const ModelConfig &cfg = pipe_->config();
    const DdimScheduler &sched = pipe_->scheduler();
    const Index tokens = cfg.latentTokens;

    std::vector<Index> finished;
    if (stackOrder_.empty())
        return finished;
    std::vector<int> iterations;
    std::vector<int> timesteps;
    iterations.reserve(stackOrder_.size());
    timesteps.reserve(stackOrder_.size());
    for (Index slot : stackOrder_) {
        iterations.push_back(members_[slot].iteration);
        timesteps.push_back(sched.timestep(members_[slot].iteration));
    }

    exec_->beginCohortStep(stackOrder_, iterations);
    const Matrix eps = pipe_->network().forward(stacked_, timesteps,
                                                *exec_);

    for (Index m = 0; m < stackOrder_.size(); ++m) {
        Member &member = members_[stackOrder_[m]];
        sched.stepRowsInPlace(stacked_, eps, member.iteration,
                              m * tokens, tokens);
        ++member.iteration;
        if (member.iteration >= sched.inferenceSteps())
            finished.push_back(stackOrder_[m]);
    }
    // Extract finished members' rows and compact the stack, from the
    // back so earlier positions stay valid.
    for (Index i = finished.size(); i-- > 0;) {
        const Index slot = finished[i];
        Index pos = 0;
        while (stackOrder_[pos] != slot)
            ++pos;
        Member &member = members_[slot];
        member.latent = sliceRows(stacked_, pos * tokens, tokens);
        member.state = State::Finished;
        removeFromStack(pos);
    }
    return finished;
}

Index
CohortRun::activeCount() const
{
    return stackOrder_.size();
}

bool
CohortRun::isActive(Index slot) const
{
    EXION_ASSERT(slot < members_.size(), "cohort slot ", slot);
    return members_[slot].state == State::Active;
}

bool
CohortRun::isFinished(Index slot) const
{
    EXION_ASSERT(slot < members_.size(), "cohort slot ", slot);
    return members_[slot].state == State::Finished;
}

int
CohortRun::iterationOf(Index slot) const
{
    EXION_ASSERT(slot < members_.size(), "cohort slot ", slot);
    return members_[slot].iteration;
}

Matrix
CohortRun::takeResult(Index slot)
{
    EXION_ASSERT(slot < members_.size()
                     && members_[slot].state == State::Finished,
                 "takeResult of unfinished cohort slot ", slot);
    return std::move(members_[slot].latent);
}

} // namespace exion
