#include "exion/model/pipeline.h"

#include "exion/common/rng.h"

namespace exion
{

DiffusionPipeline::DiffusionPipeline(const ModelConfig &cfg)
    : network_(cfg), scheduler_(cfg.iterations)
{
}

Matrix
DiffusionPipeline::run(BlockExecutor &exec, u64 noise_seed) const
{
    RunOptions opts;
    opts.noiseSeed = noise_seed;
    // The legacy hook lives on the (possibly shared) pipeline; route
    // it through the per-request options so both entry points share
    // one loop.
    opts.onIteration = onIteration;
    return run(exec, opts);
}

Matrix
DiffusionPipeline::run(BlockExecutor &exec, const RunOptions &opts) const
{
    const ModelConfig &cfg = network_.config();
    Rng rng(opts.noiseSeed);
    Matrix x(cfg.latentTokens, cfg.latentDim);
    x.fillNormal(rng, 0.0f, 1.0f);

    for (int i = 0; i < scheduler_.inferenceSteps(); ++i) {
        exec.beginIteration(i);
        const Matrix eps = network_.forward(x, scheduler_.timestep(i),
                                            exec);
        x = scheduler_.step(x, eps, i);
        if (opts.onIteration)
            opts.onIteration(i, x);
    }
    return x;
}

} // namespace exion
