#include "exion/model/pipeline.h"

#include "exion/common/rng.h"

namespace exion
{

DiffusionPipeline::DiffusionPipeline(const ModelConfig &cfg)
    : network_(cfg), scheduler_(cfg.iterations)
{
}

Matrix
DiffusionPipeline::run(BlockExecutor &exec, u64 noise_seed) const
{
    const ModelConfig &cfg = network_.config();
    Rng rng(noise_seed);
    Matrix x(cfg.latentTokens, cfg.latentDim);
    x.fillNormal(rng, 0.0f, 1.0f);

    for (int i = 0; i < scheduler_.inferenceSteps(); ++i) {
        exec.beginIteration(i);
        const Matrix eps = network_.forward(x, scheduler_.timestep(i),
                                            exec);
        x = scheduler_.step(x, eps, i);
        if (onIteration)
            onIteration(i, x);
    }
    return x;
}

} // namespace exion
