#include "exion/model/weight_store.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "exion/common/rng.h"
#include "exion/tensor/ops.h"

namespace exion
{

namespace
{

constexpr char kMagic[8] = {'E', 'X', 'I', 'O', 'N', 'W', 'S', '1'};
constexpr u32 kEndianTag = 0x01020304u;
constexpr u32 kVersion = 1;
constexpr u64 kHeaderSize = 64;
constexpr u64 kSectionAlign = 64;

// Header field offsets (see weight_store.h for the layout).
constexpr u64 kOffEndian = 8;
constexpr u64 kOffVersion = 12;
constexpr u64 kOffFileSize = 16;
constexpr u64 kOffChecksum = 24;
constexpr u64 kOffConfigOffset = 32;
constexpr u64 kOffConfigSize = 40;
constexpr u64 kOffIndexOffset = 48;
constexpr u64 kOffIndexCount = 56;

u64
fnv1a64(const u8 *data, u64 n)
{
    u64 h = 14695981039346656037ULL;
    for (u64 i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

template <typename T>
void
put(std::vector<u8> &buf, T v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t at = buf.size();
    buf.resize(at + sizeof(T));
    std::memcpy(buf.data() + at, &v, sizeof(T));
}

template <typename T>
void
putAt(std::vector<u8> &buf, u64 at, T v)
{
    std::memcpy(buf.data() + at, &v, sizeof(T));
}

void
putStr(std::vector<u8> &buf, const std::string &s)
{
    put<u32>(buf, static_cast<u32>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

/** Bounds-checked sequential reader over the image. */
class Reader
{
  public:
    Reader(const u8 *data, u64 size, u64 at) : data_(data), size_(size),
                                               at_(at)
    {
    }

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        need(sizeof(T));
        T v;
        std::memcpy(&v, data_ + at_, sizeof(T));
        at_ += sizeof(T);
        return v;
    }

    std::string
    getStr(u64 max_len)
    {
        const u32 len = get<u32>();
        if (len > max_len)
            throw WeightStoreError("weight store: string length "
                                   + std::to_string(len)
                                   + " exceeds limit");
        need(len);
        std::string s(reinterpret_cast<const char *>(data_ + at_), len);
        at_ += len;
        return s;
    }

    u64 at() const { return at_; }

  private:
    void
    need(u64 n) const
    {
        if (at_ + n > size_ || at_ + n < at_)
            throw WeightStoreError("weight store: truncated image");
    }

    const u8 *data_;
    u64 size_;
    u64 at_;
};

u8
encodeWidth(IntWidth w)
{
    switch (w) {
      case IntWidth::Int12:
        return 0;
      case IntWidth::Int16:
        return 1;
      case IntWidth::Int32:
        return 2;
    }
    EXION_PANIC("unhandled IntWidth");
}

IntWidth
decodeWidth(u8 v)
{
    switch (v) {
      case 0:
        return IntWidth::Int12;
      case 1:
        return IntWidth::Int16;
      case 2:
        return IntWidth::Int32;
    }
    throw WeightStoreError("weight store: bad IntWidth tag "
                           + std::to_string(v));
}

void
serializeConfig(std::vector<u8> &buf, const ModelConfig &cfg)
{
    putStr(buf, cfg.name);
    put<u32>(buf, static_cast<u32>(cfg.benchmark));
    put<u32>(buf, static_cast<u32>(cfg.type));
    put<u32>(buf, static_cast<u32>(cfg.scale));
    put<u64>(buf, cfg.stages.size());
    for (const StageConfig &sc : cfg.stages) {
        put<u64>(buf, sc.tokens);
        put<u64>(buf, sc.dModel);
        put<u64>(buf, sc.nHeads);
        put<u64>(buf, sc.ffnMult);
        put<u64>(buf, sc.nBlocks);
        put<u64>(buf, sc.nResBlocks);
        put<double>(buf, sc.scoreTemp);
    }
    put<u64>(buf, cfg.latentTokens);
    put<u64>(buf, cfg.latentDim);
    put<u8>(buf, cfg.geglu ? 1 : 0);
    put<i32>(buf, cfg.iterations);
    put<i32>(buf, cfg.ffnReuse.denseInterval);
    put<double>(buf, cfg.ffnReuse.targetSparsity);
    put<double>(buf, cfg.ep.qTh);
    put<double>(buf, cfg.ep.topK);
    put<double>(buf, cfg.intraTargetSparsity);
    put<u64>(buf, cfg.seed);
}

template <typename Enum>
Enum
checkedEnum(u32 v, u32 count, const char *what)
{
    if (v >= count)
        throw WeightStoreError(std::string("weight store: bad ") + what
                               + " tag " + std::to_string(v));
    return static_cast<Enum>(v);
}

ModelConfig
deserializeConfig(Reader &r)
{
    ModelConfig cfg;
    cfg.name = r.getStr(4096);
    cfg.benchmark = checkedEnum<Benchmark>(r.get<u32>(), 7, "benchmark");
    cfg.type = checkedEnum<NetworkType>(r.get<u32>(), 3, "network type");
    cfg.scale = checkedEnum<Scale>(r.get<u32>(), 2, "scale");
    const u64 n_stages = r.get<u64>();
    if (n_stages > 4096)
        throw WeightStoreError("weight store: implausible stage count");
    cfg.stages.resize(n_stages);
    for (StageConfig &sc : cfg.stages) {
        sc.tokens = r.get<u64>();
        sc.dModel = r.get<u64>();
        sc.nHeads = r.get<u64>();
        sc.ffnMult = r.get<u64>();
        sc.nBlocks = r.get<u64>();
        sc.nResBlocks = r.get<u64>();
        sc.scoreTemp = r.get<double>();
    }
    cfg.latentTokens = r.get<u64>();
    cfg.latentDim = r.get<u64>();
    cfg.geglu = r.get<u8>() != 0;
    cfg.iterations = r.get<i32>();
    cfg.ffnReuse.denseInterval = r.get<i32>();
    cfg.ffnReuse.targetSparsity = r.get<double>();
    cfg.ep.qTh = r.get<double>();
    cfg.ep.topK = r.get<double>();
    cfg.intraTargetSparsity = r.get<double>();
    cfg.seed = r.get<u64>();
    return cfg;
}

} // namespace

// ------------------------------------------------------------ builder

WeightStoreBuilder::WeightStoreBuilder(const ModelConfig &cfg)
    : cfg_(cfg), buf_(kHeaderSize, 0)
{
    const u64 config_offset = buf_.size();
    serializeConfig(buf_, cfg);
    putAt<u64>(buf_, kOffConfigOffset, config_offset);
    putAt<u64>(buf_, kOffConfigSize, buf_.size() - config_offset);
}

u64
WeightStoreBuilder::reserve(u64 n)
{
    u64 at = buf_.size();
    at = (at + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
    buf_.resize(at + n, 0);
    return at;
}

void
WeightStoreBuilder::add(const std::string &name, const Matrix &m)
{
    EXION_ASSERT(!finished_, "add() after finish()");
    WeightStore::Entry e;
    e.kind = WeightStore::TensorKind::Float32;
    e.rows = m.rows();
    e.cols = m.cols();
    e.byteLen = static_cast<u64>(m.size()) * sizeof(float);
    e.offset = reserve(e.byteLen);
    if (e.byteLen != 0)
        std::memcpy(buf_.data() + e.offset, m.data().data(), e.byteLen);
    records_.push_back({name, e});
}

void
WeightStoreBuilder::add(const std::string &name, const QuantMatrix &q)
{
    EXION_ASSERT(!finished_, "add() after finish()");
    WeightStore::Entry e;
    e.kind = WeightStore::TensorKind::QuantInt;
    e.params = q.params();
    e.rows = q.rows();
    e.cols = q.cols();
    e.byteLen = static_cast<u64>(q.size()) * sizeof(i32);
    e.offset = reserve(e.byteLen);
    if (e.byteLen != 0)
        std::memcpy(buf_.data() + e.offset, q.rowPtr(0), e.byteLen);
    records_.push_back({name, e});
}

std::shared_ptr<const WeightStore>
WeightStoreBuilder::finish()
{
    EXION_ASSERT(!finished_, "finish() twice");
    finished_ = true;

    const u64 index_offset = reserve(0);
    for (const Record &rec : records_) {
        putStr(buf_, rec.name);
        put<u8>(buf_, static_cast<u8>(rec.entry.kind));
        put<u8>(buf_, encodeWidth(rec.entry.params.width));
        put<u64>(buf_, rec.entry.rows);
        put<u64>(buf_, rec.entry.cols);
        put<double>(buf_, rec.entry.params.scale);
        put<u64>(buf_, rec.entry.offset);
        put<u64>(buf_, rec.entry.byteLen);
    }

    std::memcpy(buf_.data(), kMagic, sizeof(kMagic));
    putAt<u32>(buf_, kOffEndian, kEndianTag);
    putAt<u32>(buf_, kOffVersion, kVersion);
    putAt<u64>(buf_, kOffFileSize, buf_.size());
    putAt<u64>(buf_, kOffIndexOffset, index_offset);
    putAt<u64>(buf_, kOffIndexCount, records_.size());
    putAt<u64>(buf_, kOffChecksum,
               fnv1a64(buf_.data() + kHeaderSize,
                       buf_.size() - kHeaderSize));

    std::shared_ptr<WeightStore> store(new WeightStore());
    store->heap_ = std::move(buf_);
    store->size_ = store->heap_.size();
    store->parse();
    return store;
}

// -------------------------------------------------------------- store

void
WeightStore::parse()
{
    const u8 *p = bytes();
    if (size_ < kHeaderSize)
        throw WeightStoreError("weight store: file shorter than header");
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0)
        throw WeightStoreError("weight store: bad magic "
                               "(not an EXWS file)");
    Reader hdr(p, size_, kOffEndian);
    const u32 endian = hdr.get<u32>();
    if (endian != kEndianTag)
        throw WeightStoreError("weight store: foreign endianness");
    const u32 version = hdr.get<u32>();
    if (version != kVersion)
        throw WeightStoreError("weight store: unsupported version "
                               + std::to_string(version));
    const u64 file_size = hdr.get<u64>();
    if (file_size != size_)
        throw WeightStoreError("weight store: size mismatch (header "
                               + std::to_string(file_size) + ", file "
                               + std::to_string(size_) + ")");
    checksum_ = hdr.get<u64>();
    const u64 actual = fnv1a64(p + kHeaderSize, size_ - kHeaderSize);
    if (actual != checksum_)
        throw WeightStoreError("weight store: checksum mismatch "
                               "(corrupt image)");
    const u64 config_offset = hdr.get<u64>();
    const u64 config_size = hdr.get<u64>();
    const u64 index_offset = hdr.get<u64>();
    const u64 index_count = hdr.get<u64>();
    if (config_offset > size_ || config_size > size_ - config_offset)
        throw WeightStoreError("weight store: config out of bounds");

    Reader cr(p, config_offset + config_size, config_offset);
    cfg_ = deserializeConfig(cr);

    if (index_offset > size_)
        throw WeightStoreError("weight store: index out of bounds");
    Reader ir(p, size_, index_offset);
    for (u64 i = 0; i < index_count; ++i) {
        const std::string name = ir.getStr(4096);
        Entry e;
        const u8 kind = ir.get<u8>();
        if (kind > static_cast<u8>(TensorKind::QuantInt))
            throw WeightStoreError("weight store: bad tensor kind");
        e.kind = static_cast<TensorKind>(kind);
        e.params.width = decodeWidth(ir.get<u8>());
        e.rows = ir.get<u64>();
        e.cols = ir.get<u64>();
        e.params.scale = ir.get<double>();
        e.offset = ir.get<u64>();
        e.byteLen = ir.get<u64>();
        const u64 elem = e.kind == TensorKind::Float32 ? sizeof(float)
                                                       : sizeof(i32);
        if (e.rows != 0 && e.cols > ~u64{0} / e.rows)
            throw WeightStoreError("weight store: tensor shape "
                                   "overflow");
        if (e.byteLen != e.rows * e.cols * elem)
            throw WeightStoreError("weight store: tensor '" + name
                                   + "' length/shape mismatch");
        if (e.offset % kSectionAlign != 0 || e.offset > size_
            || e.byteLen > size_ - e.offset)
            throw WeightStoreError("weight store: tensor '" + name
                                   + "' section out of bounds");
        if (!index_.emplace(name, e).second)
            throw WeightStoreError("weight store: duplicate tensor '"
                                   + name + "'");
    }
}

std::shared_ptr<const WeightStore>
WeightStore::load(const std::string &path, bool pin)
{
    std::shared_ptr<WeightStore> store(new WeightStore());
    store->file_ = MmapFile::open(path, pin);
    store->size_ = store->file_.size();
    store->parse();
    return store;
}

void
WeightStore::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw WeightStoreError("weight store: cannot write " + path);
    const size_t wrote = size_ == 0
        ? 0 : std::fwrite(bytes(), 1, size_, f);
    const bool ok = wrote == size_ && std::fclose(f) == 0;
    if (!ok)
        throw WeightStoreError("weight store: short write to " + path);
}

bool
WeightStore::has(const std::string &name) const
{
    return index_.count(name) != 0;
}

const WeightStore::Entry &
WeightStore::entry(const std::string &name) const
{
    const auto it = index_.find(name);
    if (it == index_.end())
        throw WeightStoreError("weight store: no tensor '" + name + "'");
    return it->second;
}

Matrix
WeightStore::matrix(const std::string &name) const
{
    const Entry &e = entry(name);
    if (e.kind != TensorKind::Float32)
        throw WeightStoreError("weight store: tensor '" + name
                               + "' is not float32");
    return Matrix::borrow(
        reinterpret_cast<const float *>(bytes() + e.offset), e.rows,
        e.cols);
}

QuantMatrix
WeightStore::quant(const std::string &name) const
{
    const Entry &e = entry(name);
    if (e.kind != TensorKind::QuantInt)
        throw WeightStoreError("weight store: tensor '" + name
                               + "' is not quantized");
    return QuantMatrix::borrow(
        reinterpret_cast<const i32 *>(bytes() + e.offset), e.rows,
        e.cols, e.params);
}

std::shared_ptr<const WeightStore>
WeightStore::build(const ModelConfig &cfg)
{
    EXION_ASSERT(!cfg.stages.empty(), "store needs at least one stage");
    WeightStoreBuilder b(cfg);
    Rng rng(cfg.seed);

    // The draw sequence below must replay DenoisingNetwork's historical
    // member construction order exactly — inProj, outProj, condEmbed,
    // then per stage channelProj/timeProj/ResBlocks/blocks, with each
    // TransformerBlock drawing wq, wk, wv, wo, ffn1, ffn2 and (GEGLU
    // only, last) ffn1Value — so store-built weights are bit-identical
    // to the Rng-built ones. Quantisation and transposition consume no
    // draws, so the extra at-rest images cannot shift the stream.
    const auto add_linear = [&](const std::string &name, Index in,
                                Index out) {
        Matrix w(in, out);
        const float stddev =
            1.0f / std::sqrt(static_cast<float>(in));
        w.fillNormal(rng, 0.0f, stddev);
        b.add(name + ".w", w);
        b.add(name + ".b", Matrix(1, out));
        b.add(name + ".w.q", QuantMatrix::fromFloat(w, IntWidth::Int12));
        return w;
    };
    const auto add_transposed = [&](const std::string &name,
                                    const Matrix &w) {
        const Matrix wt = transpose(w);
        b.add(name + ".wT", wt);
        b.add(name + ".wT.q",
              QuantMatrix::fromFloat(wt, IntWidth::Int12));
    };

    add_linear("inProj", cfg.latentDim, cfg.stages.front().dModel);
    add_linear("outProj", cfg.stages.back().dModel, cfg.latentDim);
    Matrix cond(1, cfg.stages.front().dModel);
    cond.fillNormal(rng, 0.0f, 0.5f);
    b.add("condEmbed", cond);

    int block_id = 0;
    Index prev_d = cfg.stages.front().dModel;
    Index stage_id = 0;
    for (const StageConfig &sc : cfg.stages) {
        const std::string sp = "s" + std::to_string(stage_id++);
        if (sc.dModel != prev_d)
            add_linear(sp + ".channelProj", prev_d, sc.dModel);
        add_linear(sp + ".timeProj", kTimeEmbedDim, sc.dModel);
        for (Index i = 0; i < sc.nResBlocks; ++i) {
            const std::string rp = sp + ".res" + std::to_string(i);
            add_linear(rp + ".conv1", sc.dModel, sc.dModel);
            add_linear(rp + ".conv2", sc.dModel, sc.dModel);
        }
        for (Index i = 0; i < sc.nBlocks; ++i) {
            const std::string bp = "blk" + std::to_string(block_id++);
            const Index hid = sc.ffnMult * sc.dModel;
            add_linear(bp + ".wq", sc.dModel, sc.dModel);
            add_linear(bp + ".wk", sc.dModel, sc.dModel);
            add_linear(bp + ".wv", sc.dModel, sc.dModel);
            add_linear(bp + ".wo", sc.dModel, sc.dModel);
            const Matrix w1 = add_linear(bp + ".ffn1", sc.dModel, hid);
            add_linear(bp + ".ffn2", hid, sc.dModel);
            add_transposed(bp + ".ffn1", w1);
            if (cfg.geglu) {
                const Matrix w1v =
                    add_linear(bp + ".ffn1v", sc.dModel, hid);
                add_transposed(bp + ".ffn1v", w1v);
            }
        }
        prev_d = sc.dModel;
    }
    return b.finish();
}

} // namespace exion
