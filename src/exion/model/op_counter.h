/**
 * @file
 * Analytic per-iteration operation counting (Fig. 4).
 *
 * MACs are counted as 2 ops. Transformer-block ops split into the
 * paper's categories: QKV projection, attention computation (scores,
 * attention x V, output projection), and FFN layers. Everything else —
 * ResBlocks (as 3x3 convs), in/out projections, resampling — lands in
 * "etc".
 */

#ifndef EXION_MODEL_OP_COUNTER_H_
#define EXION_MODEL_OP_COUNTER_H_

#include "exion/model/config.h"

namespace exion
{

/** Per-iteration op counts by category. */
struct OpBreakdown
{
    OpCount qkv = 0;  //!< Q/K/V projections
    OpCount attn = 0; //!< QK^T, AV, output projection
    OpCount ffn = 0;  //!< both FFN linears
    OpCount etc = 0;  //!< ResBlocks, in/out proj, resampling

    /** Sum of all categories. */
    OpCount total() const { return qkv + attn + ffn + etc; }

    /** Fraction of ops inside transformer blocks. */
    double transformerShare() const;

    /** FFN fraction within the transformer block. */
    double ffnShareOfTransformer() const;
};

/** Op counts for one denoising iteration of the model. */
OpBreakdown countOpsPerIteration(const ModelConfig &cfg);

/** Op counts for one transformer block at the given stage shape. */
OpBreakdown countBlockOps(const StageConfig &stage, bool geglu);

} // namespace exion

#endif // EXION_MODEL_OP_COUNTER_H_
