/**
 * @file
 * Denoising networks (Fig. 3a).
 *
 * One generic implementation covers the three published shapes:
 * a flat transformer stack (type 3), a transformer UNet with skip
 * connections (type 1), and a UNet with ResBlocks (type 2). Stages at
 * different token counts are connected by average-pool downsampling /
 * repeat upsampling plus channel projections.
 */

#ifndef EXION_MODEL_NETWORK_H_
#define EXION_MODEL_NETWORK_H_

#include <memory>
#include <vector>

#include "exion/model/config.h"
#include "exion/model/resblock.h"
#include "exion/model/transformer_block.h"

namespace exion
{

/** Average-pools token groups of size factor. @pre factor divides rows. */
Matrix poolTokens(const Matrix &x, Index factor);

/** Repeats each token factor times. */
Matrix upsampleTokens(const Matrix &x, Index factor);

/**
 * The diffusion denoiser: predicts the noise of a latent at timestep t.
 */
class WeightStore;

class DenoisingNetwork
{
  public:
    /**
     * Builds all stages and weights deterministically from cfg.seed.
     * Internally snapshots the build into an in-memory WeightStore
     * and views it — bit-identical to the historical direct build,
     * with the at-rest quantized/transposed images along for free.
     */
    explicit DenoisingNetwork(const ModelConfig &cfg);

    /**
     * Builds the network over an existing (typically mmap'd, shared)
     * store: every layer borrows the store's tensors, so N networks
     * over one store share one physical copy of the weights and
     * construction does no Rng work.
     */
    explicit DenoisingNetwork(std::shared_ptr<const WeightStore> store);

    /**
     * Predicts noise for latent x at the given (training) timestep.
     *
     * @param x        latentTokens x latentDim input
     * @param timestep scheduler timestep (conditions the time embedding)
     * @param exec     execution strategy for transformer blocks
     */
    Matrix forward(const Matrix &x, int timestep,
                   BlockExecutor &exec) const;

    /**
     * Cohort forward: predicts noise for a stack of latents in one
     * pass over the weights.
     *
     * x carries timesteps.size() row-segments of latentTokens rows
     * each, one per cohort member, and timesteps[m] conditions
     * segment m — members may sit at different denoising iterations.
     * All row-independent layers (projections, norms, FFN linears,
     * pooling) run on the tall matrix directly; token-mixing
     * (attention) and per-request sparsity state are the executor's
     * responsibility — the parameter type requires a segment-aware
     * executor, because a plain BlockExecutor would silently attend
     * across member boundaries. Every output row-segment is
     * bit-identical to a solo forward() of that segment.
     */
    Matrix forward(const Matrix &x, const std::vector<int> &timesteps,
                   CohortBlockExecutor &exec) const;

    /** Model configuration. */
    const ModelConfig &config() const { return cfg_; }

    /** Total number of transformer blocks. */
    Index numBlocks() const { return blockPtrs_.size(); }

    /** Access to block i in execution order. */
    const TransformerBlock &block(Index i) const { return *blockPtrs_[i]; }

    /** The weight store this network views. */
    const std::shared_ptr<const WeightStore> &store() const
    {
        return store_;
    }

  private:
    Matrix forwardImpl(const Matrix &x, const int *timesteps,
                       Index segments, BlockExecutor &exec) const;

    struct Stage
    {
        StageConfig cfg;
        std::vector<ResBlock> resBlocks;
        std::vector<TransformerBlock> blocks;
        Linear channelProj; //!< previous d -> this d (empty when equal)
        Linear timeProj;    //!< time embedding -> this d
    };

    ModelConfig cfg_;
    /** Keeps every borrowed view below alive. */
    std::shared_ptr<const WeightStore> store_;
    Linear inProj_;
    Linear outProj_;
    Matrix condEmbed_;
    std::vector<Stage> stages_;
    std::vector<const TransformerBlock *> blockPtrs_;
};

} // namespace exion

#endif // EXION_MODEL_NETWORK_H_
