#include "exion/model/executor.h"

#include <cmath>

#include "exion/model/transformer_block.h"
#include "exion/tensor/ops.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{

void
ExecStats::merge(const ExecStats &other)
{
    qkvOpsDense += other.qkvOpsDense;
    qkvOpsExecuted += other.qkvOpsExecuted;
    attnOpsDense += other.attnOpsDense;
    attnOpsExecuted += other.attnOpsExecuted;
    ffnOpsDense += other.ffnOpsDense;
    ffnOpsExecuted += other.ffnOpsExecuted;
    ffnSparsitySum += other.ffnSparsitySum;
    ffnSparsitySamples += other.ffnSparsitySamples;
    scoreSparsitySum += other.scoreSparsitySum;
    scoreSparsitySamples += other.scoreSparsitySamples;
    qRowsTotal += other.qRowsTotal;
    qRowsSkipped += other.qRowsSkipped;
    kColsTotal += other.kColsTotal;
    kColsSkipped += other.kColsSkipped;
    vColsTotal += other.vColsTotal;
    vColsSkipped += other.vColsSkipped;
}

Matrix
execMatmul(const Matrix &a, const Matrix &b, bool quantize,
           GemmBackend backend, SimdTier simd, const TpContext &tp)
{
    if (!quantize)
        return matmulSliced(a, b, tp, backend, simd);
    // Quantise whole operands once — a slice is a window onto the
    // full quantisation domain, so tp=N stays bit-identical to solo.
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    return matmulQuantSliced(qa, qb, tp, backend, simd);
}

Matrix
execWeightMatmul(const Matrix &x, const Linear &lin, bool quantize,
                 GemmBackend backend, SimdTier simd, const TpContext &tp)
{
    if (!quantize)
        return matmulSliced(x, lin.weight(), tp, backend, simd);
    const QuantMatrix qx = QuantMatrix::fromFloat(x, IntWidth::Int12);
    if (lin.hasQuantWeight())
        return matmulQuantSliced(qx, lin.quantWeight(), tp, backend,
                                 simd);
    return matmulQuantSliced(
        qx, QuantMatrix::fromFloat(lin.weight(), IntWidth::Int12), tp,
        backend, simd);
}

void
denseAttentionCoreInto(const TransformerBlock &blk, const Matrix &q,
                       const Matrix &k, const Matrix &v, Index r0,
                       Index rows, bool quantize, ExecStats &stats,
                       Matrix &concat, GemmBackend backend,
                       SimdTier simd)
{
    const Index t = rows;
    const Index dh = blk.headDim();
    const float inv_sqrt = static_cast<float>(blk.scoreTemp())
        / std::sqrt(static_cast<float>(dh));

    for (Index h = 0; h < blk.nHeads(); ++h) {
        const Matrix qh = sliceBlock(q, r0, t, h * dh, dh);
        const Matrix kh = sliceBlock(k, r0, t, h * dh, dh);
        const Matrix vh = sliceBlock(v, r0, t, h * dh, dh);

        Matrix scores =
            scale(matmulTransposedWith(qh, kh, backend, simd),
                  inv_sqrt);
        const Matrix probs = softmax(scores);
        const Matrix out_h =
            execMatmul(probs, vh, quantize, backend, simd);
        for (Index r = 0; r < t; ++r)
            for (Index c = 0; c < dh; ++c)
                concat(r0 + r, h * dh + c) = out_h(r, c);

        stats.attnOpsDense += mmulOps(t, dh, t) + mmulOps(t, t, dh);
        stats.attnOpsExecuted += mmulOps(t, dh, t) + mmulOps(t, t, dh);
    }
}

Matrix
denseAttentionImpl(const TransformerBlock &blk, const Matrix &x_norm,
                   bool quantize, ExecStats &stats,
                   ExecObservers &observers, GemmBackend backend,
                   SimdTier simd, const TpContext &tp)
{
    (void)observers;
    const Index t = x_norm.rows();
    const Index d = blk.dModel();

    Matrix q =
        execWeightMatmul(x_norm, blk.wq(), quantize, backend, simd, tp);
    addRowVector(q, blk.wq().bias());
    Matrix k =
        execWeightMatmul(x_norm, blk.wk(), quantize, backend, simd, tp);
    addRowVector(k, blk.wk().bias());
    Matrix v =
        execWeightMatmul(x_norm, blk.wv(), quantize, backend, simd, tp);
    addRowVector(v, blk.wv().bias());

    stats.qkvOpsDense += 3 * mmulOps(t, d, d);
    stats.qkvOpsExecuted += 3 * mmulOps(t, d, d);
    stats.qRowsTotal += t;
    stats.kColsTotal += t;
    stats.vColsTotal += t;

    Matrix concat(t, d);
    denseAttentionCoreInto(blk, q, k, v, 0, t, quantize, stats,
                           concat, backend, simd);

    Matrix out =
        execWeightMatmul(concat, blk.wo(), quantize, backend, simd, tp);
    addRowVector(out, blk.wo().bias());
    stats.attnOpsDense += mmulOps(t, d, d);
    stats.attnOpsExecuted += mmulOps(t, d, d);
    return out;
}

Matrix
denseFfnImpl(const TransformerBlock &blk, const Matrix &x_norm,
             bool quantize, ExecStats &stats, ExecObservers &observers,
             GemmBackend backend, SimdTier simd, const TpContext &tp)
{
    const Index t = x_norm.rows();
    const Index d = blk.dModel();
    const Index hid = blk.ffnHidden();

    Matrix gate = execWeightMatmul(x_norm, blk.ffn1(), quantize,
                                   backend, simd, tp);
    addRowVector(gate, blk.ffn1().bias());
    stats.ffnOpsDense += mmulOps(t, d, hid);
    stats.ffnOpsExecuted += mmulOps(t, d, hid);

    Matrix hidden;
    if (blk.geglu()) {
        Matrix value = execWeightMatmul(x_norm, blk.ffn1Value(),
                                        quantize, backend, simd, tp);
        addRowVector(value, blk.ffn1Value().bias());
        stats.ffnOpsDense += mmulOps(t, d, hid);
        stats.ffnOpsExecuted += mmulOps(t, d, hid);
        hidden = gelu(gate);
        for (Index i = 0; i < hidden.size(); ++i)
            hidden.data()[i] *= value.data()[i];
    } else {
        hidden = gelu(gate);
    }

    if (observers.onFfnHidden)
        observers.onFfnHidden(blk.id(), hidden);

    Matrix out = execWeightMatmul(hidden, blk.ffn2(), quantize,
                                  backend, simd, tp);
    addRowVector(out, blk.ffn2().bias());
    stats.ffnOpsDense += mmulOps(t, hid, d);
    stats.ffnOpsExecuted += mmulOps(t, hid, d);
    return out;
}

Matrix
DenseExecutor::attention(const TransformerBlock &blk, const Matrix &x_norm)
{
    return denseAttentionImpl(blk, x_norm, quantize_, stats(), observers,
                              backend_, simd_, tp_);
}

Matrix
DenseExecutor::ffn(const TransformerBlock &blk, const Matrix &x_norm)
{
    return denseFfnImpl(blk, x_norm, quantize_, stats(), observers,
                        backend_, simd_, tp_);
}

} // namespace exion
