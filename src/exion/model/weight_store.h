/**
 * @file
 * Immutable serialized model weights (the EXWS format).
 *
 * A WeightStore is the single owner of a model's parameters: one
 * contiguous byte image holding the ModelConfig, every tensor as
 * float32, and — for the MMUL weights — a quantized-at-rest INT12
 * image plus the transposed first-FFN-layer copies the FFN-Reuse
 * sparse path reads, so serving consumes weights directly (borrowed
 * Matrix/QuantMatrix views) with no per-request quantisation or
 * transposition. The same image is the on-disk format: build() lays
 * the bytes out exactly as save() writes them and load() maps them,
 * so in-memory construction, a saved file and an mmap'd file are one
 * code path and bit-identical by construction.
 *
 * Format (EXWS version 1, host-endian with an endian tag — in
 * practice little-endian on every supported platform):
 *
 *   [ 0, 64)  header: magic "EXIONWS1", endian tag 0x01020304,
 *             version, file size, FNV-1a-64 checksum of [64, size),
 *             config offset/size, index offset/count
 *   config    serialized ModelConfig (field-by-field, see .cc)
 *   tensors   raw row-major element bytes, each section 64-byte
 *             aligned within the file (pages of an mmap'd store are
 *             therefore element-aligned too)
 *   index     one variable-length record per tensor: name, kind
 *             (float32 / quantized int), IntWidth, rows, cols,
 *             scale, section offset, byte length
 *
 * The loader refuses foreign magic/version/endianness, truncated
 * files and checksum mismatches with a typed WeightStoreError.
 */

#ifndef EXION_MODEL_WEIGHT_STORE_H_
#define EXION_MODEL_WEIGHT_STORE_H_

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exion/common/mmap_file.h"
#include "exion/common/types.h"
#include "exion/model/config.h"
#include "exion/tensor/matrix.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{

/** Malformed, corrupt or incompatible weight-store image. */
class WeightStoreError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Immutable, shareable model weights backed by one byte image
 * (in-memory or memory-mapped). Thread-safe after construction:
 * every accessor is const and returns borrowed views into the image.
 */
class WeightStore
{
  public:
    /** What a tensor section holds. */
    enum class TensorKind : u8
    {
        Float32 = 0,  //!< row-major float elements
        QuantInt = 1, //!< row-major i32 elements + QuantParams
    };

    /** One named tensor section of the image. */
    struct Entry
    {
        TensorKind kind = TensorKind::Float32;
        QuantParams params; //!< meaningful for QuantInt sections
        Index rows = 0;
        Index cols = 0;
        u64 offset = 0;  //!< byte offset of the section (64-aligned)
        u64 byteLen = 0; //!< section length in bytes
    };

    /**
     * Builds the store for a config: replays the network's exact
     * Rng(cfg.seed) draw sequence into the serialized image, adding
     * for every Linear its float weight ("<name>.w"), bias
     * ("<name>.b") and INT12 at-rest image ("<name>.w.q"), and for
     * every block's first FFN layer(s) the transposed copies
     * ("blk<i>.ffn1.wT"[".q"], "...ffn1v.wT"[".q"]) the FFN-Reuse
     * sparse path consumes. A pipeline built over this store is
     * bit-identical to the historical Rng-built pipeline.
     */
    static std::shared_ptr<const WeightStore> build(const ModelConfig &cfg);

    /**
     * Opens a serialized store, preferring a read-only shared memory
     * mapping (heap read when mmap is unavailable). With pin set the
     * mapped pages are mlock()'d best-effort (see MmapFile::open) so
     * serving latency never pays a page re-fault; a failed pin
     * degrades to an unpinned mapping with a warning.
     * @throws WeightStoreError on malformed/corrupt images
     * @throws std::runtime_error when the file cannot be read
     */
    static std::shared_ptr<const WeightStore> load(const std::string &path,
                                                   bool pin = false);

    /**
     * Writes the image to path (atomically replaceable: plain
     * truncate-and-write of the already-checksummed bytes).
     * @throws WeightStoreError on I/O failure
     */
    void save(const std::string &path) const;

    /** The model this store parameterises. */
    const ModelConfig &config() const { return cfg_; }

    /** Whether a tensor of this name exists. */
    bool has(const std::string &name) const;

    /**
     * Borrowed float view of a Float32 tensor. The view aliases the
     * store's image; keep the store alive for the view's lifetime.
     * @throws WeightStoreError for unknown names / kind mismatches
     */
    Matrix matrix(const std::string &name) const;

    /** Borrowed integer view of a QuantInt tensor (see matrix()). */
    QuantMatrix quant(const std::string &name) const;

    /** All tensor sections by name. */
    const std::map<std::string, Entry> &entries() const { return index_; }

    /** FNV-1a-64 checksum of the payload (header excluded). */
    u64 checksum() const { return checksum_; }

    /** Total image size in bytes. */
    u64 sizeBytes() const { return size_; }

    /** True when the image is an actual file mapping (pages shared
        across processes); false for in-memory / heap-read images. */
    bool mapped() const { return file_.mapped(); }

    /** True when load(path, pin=true) succeeded in mlock()'ing the
        mapping; always false for build()-mode and unpinned stores. */
    bool pinned() const { return file_.pinned(); }

  private:
    friend class WeightStoreBuilder;

    WeightStore() = default;

    const Entry &entry(const std::string &name) const;

    /** Validates the header/checksum and fills cfg_ and index_. */
    void parse();

    const u8 *bytes() const
    {
        return file_.data() != nullptr ? file_.data() : heap_.data();
    }

    ModelConfig cfg_;
    std::map<std::string, Entry> index_;
    u64 checksum_ = 0;
    u64 size_ = 0;
    std::vector<u8> heap_; //!< build()-mode image
    MmapFile file_;        //!< load()-mode image
};

/**
 * Incremental writer of a store image. build() uses it to snapshot a
 * seeded model; tests and tools can use it to serialize arbitrary
 * tensors. Tensors appear in the store in insertion order; names must
 * be unique.
 */
class WeightStoreBuilder
{
  public:
    /** Starts an image for the given config. */
    explicit WeightStoreBuilder(const ModelConfig &cfg);

    /** Appends a float tensor section. */
    void add(const std::string &name, const Matrix &m);

    /** Appends a quantized tensor section (params stored alongside). */
    void add(const std::string &name, const QuantMatrix &q);

    /**
     * Seals the image (index, header, checksum) and parses it into a
     * ready store — the identical code path load() uses.
     */
    std::shared_ptr<const WeightStore> finish();

  private:
    struct Record
    {
        std::string name;
        WeightStore::Entry entry;
    };

    /** Reserves a 64-aligned section of n bytes; returns its offset. */
    u64 reserve(u64 n);

    ModelConfig cfg_;
    std::vector<u8> buf_;
    std::vector<Record> records_;
    bool finished_ = false;
};

} // namespace exion

#endif // EXION_MODEL_WEIGHT_STORE_H_
