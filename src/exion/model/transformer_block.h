/**
 * @file
 * The typical transformer block of Fig. 3(b).
 *
 * Pre-norm design: x + Attn(LN(x)), then h + FFN(LN(h)). The block owns
 * its weights; computation strategy is delegated to a BlockExecutor.
 */

#ifndef EXION_MODEL_TRANSFORMER_BLOCK_H_
#define EXION_MODEL_TRANSFORMER_BLOCK_H_

#include "exion/model/executor.h"
#include "exion/model/layers.h"

namespace exion
{

/**
 * Transformer block: multi-head self-attention + 2-layer FFN.
 */
class TransformerBlock
{
  public:
    /**
     * @param id       unique block index within the network
     * @param d_model  embedding width
     * @param n_heads  attention heads (must divide d_model)
     * @param ffn_mult FFN hidden dim = ffn_mult * d_model
     * @param geglu    use GEGLU (two first-layer paths) instead of GELU
     * @param rng      weight initialisation stream
     */
    TransformerBlock(int id, Index d_model, Index n_heads,
                     Index ffn_mult, bool geglu, Rng &rng,
                     double score_temp = 1.0);

    /**
     * Block viewing a WeightStore's "blk<id>.*" layers, including the
     * at-rest transposed first-FFN-layer images ffn1AtRest() exposes
     * for the FFN-Reuse sparse path. Borrows storage: the store must
     * outlive the block.
     */
    TransformerBlock(int id, Index d_model, Index n_heads, bool geglu,
                     double score_temp, const WeightStore &ws);

    /**
     * Runs the block on x (tokens x d_model) via the executor.
     *
     * x may also be a cohort stack (members x tokens rows): the
     * norms and residual adds here are row-independent, and a
     * segment-aware executor keeps the token-mixing sub-layers
     * per-member, so each member's rows equal a solo forward.
     */
    Matrix forward(const Matrix &x, BlockExecutor &exec) const;

    /** Unique block index. */
    int id() const { return id_; }

    /** Embedding width. */
    Index dModel() const { return dModel_; }

    /** Attention head count. */
    Index nHeads() const { return nHeads_; }

    /** Per-head width. */
    Index headDim() const { return dModel_ / nHeads_; }

    /** FFN hidden width. */
    Index ffnHidden() const { return ffn1_.outDim(); }

    /** True when the FFN non-linearity is GEGLU. */
    bool geglu() const { return geglu_; }

    /** Attention score temperature. */
    double scoreTemp() const { return scoreTemp_; }

    /** Q projection. */
    const Linear &wq() const { return wq_; }
    /** K projection. */
    const Linear &wk() const { return wk_; }
    /** V projection. */
    const Linear &wv() const { return wv_; }
    /** Output projection after head concatenation. */
    const Linear &wo() const { return wo_; }
    /** First FFN layer (gate path for GEGLU). */
    const Linear &ffn1() const { return ffn1_; }
    /** Second GEGLU first-layer path (value path). Empty when GELU. */
    const Linear &ffn1Value() const { return ffn1Value_; }
    /** Second FFN layer. */
    const Linear &ffn2() const { return ffn2_; }

    /**
     * At-rest images of the transposed first FFN layer(s): W1^T (and
     * W1v^T under GEGLU) as float plus their INT12 quantisations —
     * what FfnReuse's sparse recompute reads column-wise. Identical
     * to transposing/quantising the live weights (per-tensor scales
     * are element-order-independent), just precomputed in the store.
     */
    struct FfnAtRest
    {
        Matrix w1t;
        Matrix w1vt;
        QuantMatrix qw1t;
        QuantMatrix qw1vt;
    };

    /** At-rest transposed FFN images, or nullptr for Rng-built
        blocks (FfnReuse then builds its own copies). */
    const FfnAtRest *
    ffn1AtRest() const
    {
        return ffnAtRest_.w1t.size() != 0 ? &ffnAtRest_ : nullptr;
    }

  private:
    int id_;
    Index dModel_;
    Index nHeads_;
    bool geglu_;
    double scoreTemp_;

    Linear wq_;
    Linear wk_;
    Linear wv_;
    Linear wo_;
    Linear ffn1_;
    Linear ffn1Value_;
    Linear ffn2_;

    Matrix ln1Gamma_;
    Matrix ln1Beta_;
    Matrix ln2Gamma_;
    Matrix ln2Beta_;

    FfnAtRest ffnAtRest_;
};

} // namespace exion

#endif // EXION_MODEL_TRANSFORMER_BLOCK_H_
