/**
 * @file
 * Primitive neural-network layers of the transformer block (Fig. 3b).
 */

#ifndef EXION_MODEL_LAYERS_H_
#define EXION_MODEL_LAYERS_H_

#include <string>

#include "exion/tensor/gemm.h"
#include "exion/tensor/matmul_slice.h"
#include "exion/tensor/matrix.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{

class Rng;
class WeightStore;

/**
 * Fully connected layer: y = x W + b.
 */
class Linear
{
  public:
    /** Uninitialised (empty) layer. */
    Linear() = default;

    /** in x out layer with N(0, 1/sqrt(in)) weights, zero bias. */
    Linear(Index in, Index out, Rng &rng);

    /**
     * Layer viewing a WeightStore's tensors "<name>.w" / "<name>.b",
     * with the at-rest INT12 image "<name>.w.q" attached when present.
     * Borrows storage: the store must outlive the layer.
     */
    static Linear fromStore(const WeightStore &ws,
                            const std::string &name);

    /**
     * Applies the layer to x (rows = tokens).
     *
     * @param backend GEMM backend for the x W product; defaults to
     *                the process-wide backend. All backends are
     *                bit-identical.
     * @param simd    SIMD tier for the backend's kernels (Scalar and
     *                Exact bit-identical; Fast tolerance-gated)
     */
    Matrix forward(const Matrix &x,
                   GemmBackend backend = defaultGemmBackend(),
                   SimdTier simd = defaultSimdTier(),
                   const TpContext &tp = {}) const;

    /** Weight matrix (in x out). */
    const Matrix &weight() const { return weight_; }

    /** Bias row vector (1 x out). */
    const Matrix &bias() const { return bias_; }

    /*
     * Per-slice zero-copy views for tensor-parallel execution: output
     * columns [r.c0, r.c0 + r.n) of the layer. Each is a borrowed
     * sub-view of the same storage weight()/bias()/quantWeight()
     * alias (for store-backed layers, the mmap'd EXWS sections) —
     * same kind, sliced shape, and for the quant image the *whole*
     * tensor's scale, never a per-slice re-quantisation.
     */

    /** Strided view of weight()'s columns [r.c0, r.c0 + r.n). */
    Matrix weightSlice(const SliceRange &r) const
    {
        return sliceCols(weight_, r);
    }

    /** Contiguous view of bias()'s columns (a 1 x r.n row). */
    Matrix biasSlice(const SliceRange &r) const
    {
        return sliceCols(bias_, r);
    }

    /** Strided view of quantWeight()'s columns, whole-tensor scale.
        @pre hasQuantWeight() */
    QuantMatrix quantWeightSlice(const SliceRange &r) const
    {
        return sliceCols(quantWeight_, r);
    }

    /**
     * Quantized-at-rest INT12 weight image (empty unless the layer
     * came from a WeightStore). Identical to
     * QuantMatrix::fromFloat(weight(), IntWidth::Int12) — the store
     * snapshots the same deterministic quantisation — so consumers
     * skip the per-request quantisation, not change its numerics.
     */
    const QuantMatrix &quantWeight() const { return quantWeight_; }

    /** Whether an at-rest quantized weight image is attached. */
    bool hasQuantWeight() const
    {
        return quantWeight_.rows() == weight_.rows()
            && quantWeight_.cols() == weight_.cols()
            && weight_.size() != 0;
    }

    /** Mutable weight access (tests / custom initialisation; never
        paired with an at-rest quant image). */
    Matrix &weight() { return weight_; }

    /** Mutable bias access. */
    Matrix &bias() { return bias_; }

    /** Input width. */
    Index inDim() const { return weight_.rows(); }

    /** Output width. */
    Index outDim() const { return weight_.cols(); }

  private:
    Matrix weight_;
    Matrix bias_;
    QuantMatrix quantWeight_;
};

/** GELU activation (tanh approximation, matching common deployments). */
float geluScalar(float x);

/** Elementwise GELU. */
Matrix gelu(const Matrix &x);

/** Row-wise layer normalisation with learned gamma/beta (1 x cols). */
Matrix layerNorm(const Matrix &x, const Matrix &gamma,
                 const Matrix &beta);

/** Row-wise softmax. Entries equal to -inf produce probability 0. */
Matrix softmax(const Matrix &x);

/** Sinusoidal timestep embedding of width dim. */
Matrix timestepEmbedding(int timestep, Index dim);

} // namespace exion

#endif // EXION_MODEL_LAYERS_H_
