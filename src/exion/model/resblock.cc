#include "exion/model/resblock.h"

#include "exion/common/rng.h"
#include "exion/tensor/ops.h"

namespace exion
{

ResBlock::ResBlock(Index d_model, Rng &rng)
    : conv1_(d_model, d_model, rng), conv2_(d_model, d_model, rng),
      normGamma_(1, d_model, 1.0f), normBeta_(1, d_model, 0.0f)
{
}

ResBlock::ResBlock(const WeightStore &ws, const std::string &prefix)
    : conv1_(Linear::fromStore(ws, prefix + ".conv1")),
      conv2_(Linear::fromStore(ws, prefix + ".conv2")),
      normGamma_(1, conv1_.inDim(), 1.0f),
      normBeta_(1, conv1_.inDim(), 0.0f)
{
}

Matrix
ResBlock::forward(const Matrix &x, GemmBackend backend, SimdTier simd,
                  const TpContext &tp) const
{
    const Matrix n = layerNorm(x, normGamma_, normBeta_);
    const Matrix h = gelu(conv1_.forward(n, backend, simd, tp));
    const Matrix out = conv2_.forward(h, backend, simd, tp);
    return add(x, out);
}

} // namespace exion
