/**
 * @file
 * Deterministic DDIM reverse-denoising scheduler.
 *
 * Only the inference-phase reverse process matters for EXION
 * (Section II-A); we use DDIM with eta = 0 so runs are reproducible and
 * the latent evolves smoothly between iterations — the property
 * FFN-Reuse exploits.
 */

#ifndef EXION_MODEL_SCHEDULER_H_
#define EXION_MODEL_SCHEDULER_H_

#include <vector>

#include "exion/tensor/matrix.h"

namespace exion
{

/**
 * DDIM scheduler over a linear-beta training schedule.
 */
class DdimScheduler
{
  public:
    /**
     * @param inference_steps denoising iterations at inference
     * @param train_steps     training-schedule length (default 1000)
     */
    explicit DdimScheduler(int inference_steps, int train_steps = 1000);

    /** Number of inference iterations. */
    int inferenceSteps() const { return static_cast<int>(steps_.size()); }

    /** Training timestep executed at inference iteration i. */
    int timestep(int i) const;

    /**
     * One reverse step: x_{t_next} from x_t and predicted noise.
     *
     * @param x_t      current latent
     * @param eps_hat  network-predicted noise at timestep(i)
     * @param i        inference iteration index (0 = most noisy)
     */
    Matrix step(const Matrix &x_t, const Matrix &eps_hat, int i) const;

    /**
     * In-place reverse step on rows [r0, r0+rows) of a stacked
     * latent, reading the same rows of eps_hat. The per-element
     * arithmetic is identical to step(), so stepping one member's
     * row-segment of a cohort stack is bit-identical to step() on
     * that member's solo latent — without materialising the five
     * temporaries step() allocates.
     */
    void stepRowsInPlace(Matrix &x, const Matrix &eps_hat, int i,
                         Index r0, Index rows) const;

    /** Cumulative alpha-bar at a training timestep. */
    double alphaBar(int t) const;

  private:
    std::vector<int> steps_;       //!< descending training timesteps
    std::vector<double> alphaBar_; //!< cumulative products, size train
};

} // namespace exion

#endif // EXION_MODEL_SCHEDULER_H_
