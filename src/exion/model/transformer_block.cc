#include "exion/model/transformer_block.h"

#include "exion/common/rng.h"
#include "exion/tensor/ops.h"

namespace exion
{

TransformerBlock::TransformerBlock(int id, Index d_model, Index n_heads,
                                   Index ffn_mult, bool geglu, Rng &rng,
                                   double score_temp)
    : id_(id), dModel_(d_model), nHeads_(n_heads), geglu_(geglu),
      scoreTemp_(score_temp),
      wq_(d_model, d_model, rng), wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng), wo_(d_model, d_model, rng),
      ffn1_(d_model, ffn_mult * d_model, rng),
      ffn2_(ffn_mult * d_model, d_model, rng),
      ln1Gamma_(1, d_model, 1.0f), ln1Beta_(1, d_model, 0.0f),
      ln2Gamma_(1, d_model, 1.0f), ln2Beta_(1, d_model, 0.0f)
{
    EXION_ASSERT(d_model % n_heads == 0,
                 "d_model ", d_model, " not divisible by heads ", n_heads);
    if (geglu_)
        ffn1Value_ = Linear(d_model, ffn_mult * d_model, rng);
}

Matrix
TransformerBlock::forward(const Matrix &x, BlockExecutor &exec) const
{
    const Matrix x_norm = layerNorm(x, ln1Gamma_, ln1Beta_);
    const Matrix attn = exec.attention(*this, x_norm);
    const Matrix h = add(x, attn);
    const Matrix h_norm = layerNorm(h, ln2Gamma_, ln2Beta_);
    const Matrix f = exec.ffn(*this, h_norm);
    return add(h, f);
}

} // namespace exion
