#include "exion/model/transformer_block.h"

#include "exion/common/rng.h"
#include "exion/model/weight_store.h"
#include "exion/tensor/ops.h"

namespace exion
{

TransformerBlock::TransformerBlock(int id, Index d_model, Index n_heads,
                                   Index ffn_mult, bool geglu, Rng &rng,
                                   double score_temp)
    : id_(id), dModel_(d_model), nHeads_(n_heads), geglu_(geglu),
      scoreTemp_(score_temp),
      wq_(d_model, d_model, rng), wk_(d_model, d_model, rng),
      wv_(d_model, d_model, rng), wo_(d_model, d_model, rng),
      ffn1_(d_model, ffn_mult * d_model, rng),
      ffn2_(ffn_mult * d_model, d_model, rng),
      ln1Gamma_(1, d_model, 1.0f), ln1Beta_(1, d_model, 0.0f),
      ln2Gamma_(1, d_model, 1.0f), ln2Beta_(1, d_model, 0.0f)
{
    EXION_ASSERT(d_model % n_heads == 0,
                 "d_model ", d_model, " not divisible by heads ", n_heads);
    if (geglu_)
        ffn1Value_ = Linear(d_model, ffn_mult * d_model, rng);
}

TransformerBlock::TransformerBlock(int id, Index d_model, Index n_heads,
                                   bool geglu, double score_temp,
                                   const WeightStore &ws)
    : id_(id), dModel_(d_model), nHeads_(n_heads), geglu_(geglu),
      scoreTemp_(score_temp),
      ln1Gamma_(1, d_model, 1.0f), ln1Beta_(1, d_model, 0.0f),
      ln2Gamma_(1, d_model, 1.0f), ln2Beta_(1, d_model, 0.0f)
{
    EXION_ASSERT(d_model % n_heads == 0,
                 "d_model ", d_model, " not divisible by heads ", n_heads);
    const std::string bp = "blk" + std::to_string(id);
    wq_ = Linear::fromStore(ws, bp + ".wq");
    wk_ = Linear::fromStore(ws, bp + ".wk");
    wv_ = Linear::fromStore(ws, bp + ".wv");
    wo_ = Linear::fromStore(ws, bp + ".wo");
    ffn1_ = Linear::fromStore(ws, bp + ".ffn1");
    ffn2_ = Linear::fromStore(ws, bp + ".ffn2");
    ffnAtRest_.w1t = ws.matrix(bp + ".ffn1.wT");
    ffnAtRest_.qw1t = ws.quant(bp + ".ffn1.wT.q");
    if (geglu_) {
        ffn1Value_ = Linear::fromStore(ws, bp + ".ffn1v");
        ffnAtRest_.w1vt = ws.matrix(bp + ".ffn1v.wT");
        ffnAtRest_.qw1vt = ws.quant(bp + ".ffn1v.wT.q");
    }
    EXION_ASSERT(wq_.inDim() == dModel_ && ffn1_.inDim() == dModel_,
                 "store shapes disagree with block ", id, " config");
}

Matrix
TransformerBlock::forward(const Matrix &x, BlockExecutor &exec) const
{
    const Matrix x_norm = layerNorm(x, ln1Gamma_, ln1Beta_);
    const Matrix attn = exec.attention(*this, x_norm);
    const Matrix h = add(x, attn);
    const Matrix h_norm = layerNorm(h, ln2Gamma_, ln2Beta_);
    const Matrix f = exec.ffn(*this, h_norm);
    return add(h, f);
}

} // namespace exion
