/**
 * @file
 * End-to-end diffusion inference pipeline.
 *
 * Owns a denoising network and a scheduler; runs the reverse process
 * from seeded noise to the generated latent under a caller-provided
 * execution strategy — either one request at a time (run()) or as a
 * cohort of requests stepping the reverse process together with their
 * latents stacked into one tall matrix per iteration (CohortRun).
 */

#ifndef EXION_MODEL_PIPELINE_H_
#define EXION_MODEL_PIPELINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "exion/model/network.h"
#include "exion/model/scheduler.h"

namespace exion
{

/**
 * Per-request run parameters.
 *
 * Everything that varies between two denoising requests against the
 * same pipeline lives here, so one immutable pipeline can serve many
 * concurrent requests.
 */
struct RunOptions
{
    /** Seed for the initial Gaussian latent. */
    u64 noiseSeed = 7;
    /** Optional per-iteration hook (iteration index, current latent). */
    std::function<void(int, const Matrix &)> onIteration;
    /**
     * Optional cooperative-cancellation flag. Polled at every
     * iteration boundary: once it reads true, the run stops before
     * the next iteration and the outcome reports cancelled. The flag
     * is typically set from another thread; a null pointer disables
     * polling (and changes nothing about the run's numerics).
     */
    const std::atomic<bool> *cancel = nullptr;
};

/**
 * Result of a cancellable run: the latent as of the last completed
 * iteration, how many iterations ran, and whether cancellation cut
 * the run short (in which case the latent is a partial denoising, not
 * a valid output).
 */
struct RunOutcome
{
    Matrix latent;
    int iterations = 0;
    bool cancelled = false;
};

/**
 * Diffusion inference driver.
 *
 * After construction the pipeline is immutable (all weights fixed);
 * run() is const and safe to call from multiple threads concurrently
 * as long as each caller brings its own executor. The legacy
 * onIteration member is the single exception — installing it on a
 * shared pipeline is a single-stream convenience; concurrent callers
 * pass their hook via RunOptions instead.
 */
class DiffusionPipeline
{
  public:
    /** Builds the network and scheduler for cfg (snapshotting the
        build into an in-memory WeightStore; see DenoisingNetwork). */
    explicit DiffusionPipeline(const ModelConfig &cfg);

    /**
     * Builds the pipeline over an existing WeightStore — no Rng
     * weight construction; every layer borrows the (possibly mmap'd,
     * possibly shared-across-engines) store's tensors. Bit-identical
     * to the cfg constructor for the store's config.
     */
    explicit DiffusionPipeline(std::shared_ptr<const WeightStore> store);

    /**
     * Runs the full reverse process.
     *
     * @param exec       block execution strategy
     * @param noise_seed seed for the initial Gaussian latent
     * @return           final generated latent
     */
    Matrix run(BlockExecutor &exec, u64 noise_seed = 7) const;

    /**
     * Runs the full reverse process with per-request options.
     *
     * Thread-safe: touches no pipeline state besides the immutable
     * network/scheduler and ignores the legacy onIteration member.
     */
    Matrix run(BlockExecutor &exec, const RunOptions &opts) const;

    /**
     * Cancellable run: like run(), but polls opts.cancel at every
     * iteration boundary and reports how far the run got. Without a
     * cancel flag the outcome's latent is bit-identical to run().
     */
    RunOutcome runCancellable(BlockExecutor &exec,
                              const RunOptions &opts) const;

    /**
     * Convenience cohort run: steps all seeds to completion together
     * and returns their outputs in seed order. Each output is
     * bit-identical to run(exec_solo, seeds[i]) with an equivalent
     * solo executor.
     */
    std::vector<Matrix> runCohort(CohortBlockExecutor &exec,
                                  const std::vector<u64> &seeds) const;

    /**
     * Optional per-iteration hook (iteration index, current latent).
     * Single-stream use only; see RunOptions for concurrent runs.
     */
    std::function<void(int, const Matrix &)> onIteration;

    /** Underlying network. */
    const DenoisingNetwork &network() const { return network_; }

    /** Underlying scheduler. */
    const DdimScheduler &scheduler() const { return scheduler_; }

    /** Model configuration. */
    const ModelConfig &config() const { return network_.config(); }

    /** The weight store backing the network. */
    const std::shared_ptr<const WeightStore> &store() const
    {
        return network_.store();
    }

  private:
    DenoisingNetwork network_;
    DdimScheduler scheduler_;
};

/**
 * A cohort of denoising requests stepping the reverse process in one
 * stacked pass per iteration.
 *
 * Members join with their own noise seed (at construction or at any
 * step boundary — a late joiner simply starts its iteration 0 while
 * earlier members are further along; the network forward conditions
 * each row-segment on its member's own timestep). Each step() stacks
 * the active members' latents into one tall matrix, runs the network
 * once, and advances every member's scheduler state by one iteration.
 * Members leave the cohort when they finish (all iterations done) or
 * when leave() removes them mid-flight (e.g. a cancelled request) —
 * removing one member never perturbs the others' rows.
 *
 * Bit-identity contract: a member's final latent equals a solo
 * DiffusionPipeline::run() with the same seed, for every execution
 * mode the bound CohortBlockExecutor implements.
 *
 * Not thread-safe; one driver thread steps a cohort.
 */
class CohortRun
{
  public:
    /**
     * @param pipe the pipeline whose reverse process the cohort steps
     * @param exec segment-aware executor; per-member state must be
     *             registered with it under the slot ids join() returns
     */
    CohortRun(const DiffusionPipeline &pipe, CohortBlockExecutor &exec);

    /**
     * Adds a member seeded with its own initial Gaussian latent.
     * Takes effect at the next step(). @return the member's slot id
     */
    Index join(u64 noise_seed);

    /**
     * Removes an unfinished member mid-flight; its rows leave the
     * stack at the next step(). Finished members need no leave().
     */
    void leave(Index slot);

    /**
     * One denoising iteration for every active member.
     *
     * @return slots of members that finished during this step
     */
    std::vector<Index> step();

    /** True when no member has work left. */
    bool done() const { return activeCount() == 0; }

    /** Members still stepping. */
    Index activeCount() const;

    /** Whether a member is still stepping. */
    bool isActive(Index slot) const;

    /** Whether a member completed all iterations. */
    bool isFinished(Index slot) const;

    /** Iterations a member has completed so far. */
    int iterationOf(Index slot) const;

    /** Moves a finished member's final latent out. */
    Matrix takeResult(Index slot);

    /** Members ever joined (slot ids are 0..memberCount()-1). */
    Index memberCount() const { return members_.size(); }

  private:
    enum class State
    {
        Active,
        Finished,
        Left,
    };

    /**
     * Active members' rows live in the persistent stacked_ matrix
     * (no per-iteration restacking); latent holds the final result
     * once a member finishes.
     */
    struct Member
    {
        Matrix latent;
        int iteration = 0;
        State state = State::Active;
    };

    /** Drops stacked rows of the member at stack position pos. */
    void removeFromStack(Index pos);

    const DiffusionPipeline *pipe_;
    CohortBlockExecutor *exec_;
    std::vector<Member> members_;
    Matrix stacked_;                //!< active latents, in stack order
    std::vector<Index> stackOrder_; //!< slot ids of stacked_ segments
};

} // namespace exion

#endif // EXION_MODEL_PIPELINE_H_
