/**
 * @file
 * End-to-end diffusion inference pipeline.
 *
 * Owns a denoising network and a scheduler; runs the reverse process
 * from seeded noise to the generated latent under a caller-provided
 * execution strategy.
 */

#ifndef EXION_MODEL_PIPELINE_H_
#define EXION_MODEL_PIPELINE_H_

#include <functional>
#include <memory>

#include "exion/model/network.h"
#include "exion/model/scheduler.h"

namespace exion
{

/**
 * Diffusion inference driver.
 */
class DiffusionPipeline
{
  public:
    /** Builds the network and scheduler for cfg. */
    explicit DiffusionPipeline(const ModelConfig &cfg);

    /**
     * Runs the full reverse process.
     *
     * @param exec       block execution strategy
     * @param noise_seed seed for the initial Gaussian latent
     * @return           final generated latent
     */
    Matrix run(BlockExecutor &exec, u64 noise_seed = 7) const;

    /** Optional per-iteration hook (iteration index, current latent). */
    std::function<void(int, const Matrix &)> onIteration;

    /** Underlying network. */
    const DenoisingNetwork &network() const { return network_; }

    /** Underlying scheduler. */
    const DdimScheduler &scheduler() const { return scheduler_; }

    /** Model configuration. */
    const ModelConfig &config() const { return network_.config(); }

  private:
    DenoisingNetwork network_;
    DdimScheduler scheduler_;
};

} // namespace exion

#endif // EXION_MODEL_PIPELINE_H_
