/**
 * @file
 * End-to-end diffusion inference pipeline.
 *
 * Owns a denoising network and a scheduler; runs the reverse process
 * from seeded noise to the generated latent under a caller-provided
 * execution strategy.
 */

#ifndef EXION_MODEL_PIPELINE_H_
#define EXION_MODEL_PIPELINE_H_

#include <functional>
#include <memory>

#include "exion/model/network.h"
#include "exion/model/scheduler.h"

namespace exion
{

/**
 * Per-request run parameters.
 *
 * Everything that varies between two denoising requests against the
 * same pipeline lives here, so one immutable pipeline can serve many
 * concurrent requests.
 */
struct RunOptions
{
    /** Seed for the initial Gaussian latent. */
    u64 noiseSeed = 7;
    /** Optional per-iteration hook (iteration index, current latent). */
    std::function<void(int, const Matrix &)> onIteration;
};

/**
 * Diffusion inference driver.
 *
 * After construction the pipeline is immutable (all weights fixed);
 * run() is const and safe to call from multiple threads concurrently
 * as long as each caller brings its own executor. The legacy
 * onIteration member is the single exception — installing it on a
 * shared pipeline is a single-stream convenience; concurrent callers
 * pass their hook via RunOptions instead.
 */
class DiffusionPipeline
{
  public:
    /** Builds the network and scheduler for cfg. */
    explicit DiffusionPipeline(const ModelConfig &cfg);

    /**
     * Runs the full reverse process.
     *
     * @param exec       block execution strategy
     * @param noise_seed seed for the initial Gaussian latent
     * @return           final generated latent
     */
    Matrix run(BlockExecutor &exec, u64 noise_seed = 7) const;

    /**
     * Runs the full reverse process with per-request options.
     *
     * Thread-safe: touches no pipeline state besides the immutable
     * network/scheduler and ignores the legacy onIteration member.
     */
    Matrix run(BlockExecutor &exec, const RunOptions &opts) const;

    /**
     * Optional per-iteration hook (iteration index, current latent).
     * Single-stream use only; see RunOptions for concurrent runs.
     */
    std::function<void(int, const Matrix &)> onIteration;

    /** Underlying network. */
    const DenoisingNetwork &network() const { return network_; }

    /** Underlying scheduler. */
    const DdimScheduler &scheduler() const { return scheduler_; }

    /** Model configuration. */
    const ModelConfig &config() const { return network_.config(); }

  private:
    DenoisingNetwork network_;
    DdimScheduler scheduler_;
};

} // namespace exion

#endif // EXION_MODEL_PIPELINE_H_
