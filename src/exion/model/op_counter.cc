#include "exion/model/op_counter.h"

namespace exion
{

namespace
{

OpCount
mmulOps(OpCount m, OpCount k, OpCount n)
{
    return 2 * m * k * n;
}

} // namespace

double
OpBreakdown::transformerShare() const
{
    const OpCount t = total();
    if (t == 0)
        return 0.0;
    return static_cast<double>(qkv + attn + ffn)
        / static_cast<double>(t);
}

double
OpBreakdown::ffnShareOfTransformer() const
{
    const OpCount tr = qkv + attn + ffn;
    if (tr == 0)
        return 0.0;
    return static_cast<double>(ffn) / static_cast<double>(tr);
}

OpBreakdown
countBlockOps(const StageConfig &stage, bool geglu)
{
    OpBreakdown out;
    const OpCount t = stage.tokens;
    const OpCount d = stage.dModel;
    const OpCount hid = stage.ffnMult * stage.dModel;

    out.qkv = 3 * mmulOps(t, d, d);
    // Per-head scores and AV sum to 2 * T^2 * d MACs in total.
    out.attn = mmulOps(t, d, t) + mmulOps(t, t, d) + mmulOps(t, d, d);
    out.ffn = (geglu ? 3 : 2) * mmulOps(t, d, hid);
    return out;
}

OpBreakdown
countOpsPerIteration(const ModelConfig &cfg)
{
    OpBreakdown out;
    for (const auto &stage : cfg.stages) {
        const OpBreakdown blk = countBlockOps(stage, cfg.geglu);
        out.qkv += blk.qkv * stage.nBlocks;
        out.attn += blk.attn * stage.nBlocks;
        out.ffn += blk.ffn * stage.nBlocks;
        // ResBlocks: two 3x3 convs over tokens x d channels.
        out.etc += stage.nResBlocks * 2
            * mmulOps(stage.tokens, 9 * stage.dModel, stage.dModel);
    }
    // Input/output projections on the latent.
    out.etc += mmulOps(cfg.latentTokens, cfg.latentDim,
                       cfg.stages.front().dModel);
    out.etc += mmulOps(cfg.latentTokens, cfg.stages.back().dModel,
                       cfg.latentDim);
    return out;
}

} // namespace exion
