/**
 * @file
 * Benchmark model configurations.
 *
 * The paper evaluates seven diffusion models spanning the three network
 * types of Fig. 3. We mirror their public architectures at Scale::Full
 * (used for op counting and cycle/energy roll-ups) and provide
 * Scale::Reduced variants whose full numerics run in seconds (used for
 * accuracy experiments and sparsity-structure calibration).
 *
 * Sparsity knobs (dense interval N, FFN threshold target, EP q_th and
 * top-k ratio) follow Table I of the paper exactly.
 */

#ifndef EXION_MODEL_CONFIG_H_
#define EXION_MODEL_CONFIG_H_

#include <string>
#include <vector>

#include "exion/common/types.h"

namespace exion
{

/** Width of the sinusoidal timestep embedding every network uses. */
inline constexpr Index kTimeEmbedDim = 64;

/** The three diffusion network shapes of Fig. 3(a). */
enum class NetworkType
{
    UNetNoRes,       //!< type 1: UNet built from transformer blocks only
    UNetRes,         //!< type 2: UNet with ResBlocks + transformer blocks
    TransformerOnly, //!< type 3: a flat stack of transformer blocks
};

/** The seven benchmark workloads. */
enum class Benchmark
{
    MLD,             //!< text-to-motion, latent transformer
    MDM,             //!< text-to-motion, transformer encoder
    EDGE,            //!< music-to-motion
    MakeAnAudio,     //!< text-to-audio latent UNet
    StableDiffusion, //!< text-to-image latent UNet
    DiT,             //!< class-to-image diffusion transformer (XL/2)
    VideoCrafter2,   //!< text-to-video latent UNet
};

/** All benchmarks in paper order. */
const std::vector<Benchmark> &allBenchmarks();

/** Short display name, e.g. "MLD", "StableDiff". */
std::string benchmarkName(Benchmark b);

/** Model scale selector. */
enum class Scale
{
    Full,    //!< paper dimensions; analytic accounting only
    Reduced, //!< shrunk dims; full numerics run in seconds
};

/**
 * One resolution stage of a denoising network.
 *
 * TransformerOnly models have a single stage; UNet models list their
 * encoder/bottleneck/decoder stages in execution order.
 */
struct StageConfig
{
    Index tokens = 0;    //!< sequence length at this stage
    Index dModel = 0;    //!< embedding width
    Index nHeads = 1;    //!< attention heads
    Index ffnMult = 4;   //!< FFN hidden dim = ffnMult * dModel
    Index nBlocks = 0;   //!< transformer blocks in this stage
    Index nResBlocks = 0; //!< ResBlocks (conv3x3 pairs) in this stage
    /**
     * Attention score temperature (multiplies scaled QK^T). Trained
     * attention is peaked; reduced-scale models with random weights
     * can raise this to reproduce realistic softmax concentration.
     */
    double scoreTemp = 1.0;
};

/** Eager-prediction configuration (Table I). */
struct EpConfig
{
    double qTh = 0.5;  //!< one-hot threshold on (top1 - top2)
    double topK = 0.5; //!< keep ratio k per predicted-score row
};

/** FFN-Reuse configuration (Table I / Fig. 6). */
struct FfnReuseConfig
{
    int denseInterval = 4;        //!< N sparse iterations per dense one
    double targetSparsity = 0.95; //!< calibration quantile for theta
};

/**
 * Complete description of one benchmark at one scale.
 */
struct ModelConfig
{
    std::string name;
    Benchmark benchmark = Benchmark::MLD;
    NetworkType type = NetworkType::TransformerOnly;
    Scale scale = Scale::Full;

    std::vector<StageConfig> stages;
    Index latentTokens = 0; //!< tokens of the network input/output
    Index latentDim = 0;    //!< channels of the network input/output
    bool geglu = false;     //!< GEGLU (two first-layer paths) vs GELU

    int iterations = 50;    //!< denoising steps

    FfnReuseConfig ffnReuse;
    EpConfig ep;
    double intraTargetSparsity = 0.5; //!< Table I's reported intra level

    u64 seed = 1;

    /** Total transformer blocks across all stages. */
    Index totalBlocks() const;

    /** Total ResBlocks across all stages. */
    Index totalResBlocks() const;
};

/** Returns the configuration of a benchmark at the given scale. */
ModelConfig makeConfig(Benchmark b, Scale scale);

/** Convenience: a tiny single-stage config for unit tests. */
ModelConfig makeTinyConfig(Index tokens = 8, Index d_model = 16,
                           Index n_blocks = 2, int iterations = 8);

} // namespace exion

#endif // EXION_MODEL_CONFIG_H_
