#include "exion/model/scheduler.h"

#include <cmath>

#include "exion/common/logging.h"
#include "exion/tensor/ops.h"

namespace exion
{

DdimScheduler::DdimScheduler(int inference_steps, int train_steps)
{
    EXION_ASSERT(inference_steps > 0 && train_steps >= inference_steps,
                 "scheduler steps ", inference_steps, "/", train_steps);

    // Linear beta schedule (DDPM defaults).
    const double beta_start = 1e-4;
    const double beta_end = 0.02;
    alphaBar_.resize(train_steps);
    double prod = 1.0;
    for (int t = 0; t < train_steps; ++t) {
        const double beta = beta_start
            + (beta_end - beta_start) * t
                / static_cast<double>(train_steps - 1);
        prod *= 1.0 - beta;
        alphaBar_[t] = prod;
    }

    // Evenly spaced timesteps, descending from the noisiest.
    steps_.resize(inference_steps);
    for (int i = 0; i < inference_steps; ++i) {
        const double frac = static_cast<double>(inference_steps - 1 - i)
            / static_cast<double>(inference_steps);
        steps_[i] = static_cast<int>(frac * (train_steps - 1));
    }
}

int
DdimScheduler::timestep(int i) const
{
    EXION_ASSERT(i >= 0 && i < inferenceSteps(), "iteration ", i);
    return steps_[i];
}

double
DdimScheduler::alphaBar(int t) const
{
    EXION_ASSERT(t >= 0 && t < static_cast<int>(alphaBar_.size()),
                 "timestep ", t);
    return alphaBar_[t];
}

Matrix
DdimScheduler::step(const Matrix &x_t, const Matrix &eps_hat, int i) const
{
    const int t = timestep(i);
    const bool last = (i + 1 >= inferenceSteps());
    const double ab_t = alphaBar(t);
    const double ab_next = last ? 1.0 : alphaBar(timestep(i + 1));

    const float sqrt_ab_t = static_cast<float>(std::sqrt(ab_t));
    const float sqrt_1m_ab_t =
        static_cast<float>(std::sqrt(1.0 - ab_t));
    const float sqrt_ab_next = static_cast<float>(std::sqrt(ab_next));
    const float sqrt_1m_ab_next =
        static_cast<float>(std::sqrt(1.0 - ab_next));

    // x0 prediction, then deterministic DDIM update.
    Matrix x0 = scale(sub(x_t, scale(eps_hat, sqrt_1m_ab_t)),
                      1.0f / sqrt_ab_t);
    return add(scale(x0, sqrt_ab_next), scale(eps_hat, sqrt_1m_ab_next));
}

void
DdimScheduler::stepRowsInPlace(Matrix &x, const Matrix &eps_hat, int i,
                               Index r0, Index rows) const
{
    EXION_ASSERT(x.rows() == eps_hat.rows()
                     && x.cols() == eps_hat.cols()
                     && r0 + rows <= x.rows(),
                 "stepRowsInPlace shape/range mismatch");
    const int t = timestep(i);
    const bool last = (i + 1 >= inferenceSteps());
    const double ab_t = alphaBar(t);
    const double ab_next = last ? 1.0 : alphaBar(timestep(i + 1));

    const float sqrt_ab_t = static_cast<float>(std::sqrt(ab_t));
    const float sqrt_1m_ab_t =
        static_cast<float>(std::sqrt(1.0 - ab_t));
    const float sqrt_ab_next = static_cast<float>(std::sqrt(ab_next));
    const float sqrt_1m_ab_next =
        static_cast<float>(std::sqrt(1.0 - ab_next));
    // The same float operation sequence as step(): eps*s, subtract,
    // multiply by the precomputed reciprocal, then the two scaled
    // terms added — fused per element, allocation-free.
    const float inv_sqrt_ab_t = 1.0f / sqrt_ab_t;

    for (Index r = r0; r < r0 + rows; ++r) {
        float *xrow = x.rowPtr(r);
        const float *erow = eps_hat.rowPtr(r);
        for (Index c = 0; c < x.cols(); ++c) {
            const float e = erow[c];
            const float x0 = (xrow[c] - e * sqrt_1m_ab_t)
                * inv_sqrt_ab_t;
            xrow[c] = x0 * sqrt_ab_next + e * sqrt_1m_ab_next;
        }
    }
}

} // namespace exion
