#include "exion/model/network.h"

#include "exion/common/rng.h"
#include "exion/model/weight_store.h"
#include "exion/tensor/ops.h"

namespace exion
{

Matrix
poolTokens(const Matrix &x, Index factor)
{
    EXION_ASSERT(factor > 0 && x.rows() % factor == 0,
                 "pool factor ", factor, " vs rows ", x.rows());
    Matrix out(x.rows() / factor, x.cols());
    const float inv = 1.0f / static_cast<float>(factor);
    for (Index r = 0; r < out.rows(); ++r) {
        for (Index c = 0; c < x.cols(); ++c) {
            float acc = 0.0f;
            for (Index f = 0; f < factor; ++f)
                acc += x(r * factor + f, c);
            out(r, c) = acc * inv;
        }
    }
    return out;
}

Matrix
upsampleTokens(const Matrix &x, Index factor)
{
    Matrix out(x.rows() * factor, x.cols());
    for (Index r = 0; r < x.rows(); ++r)
        for (Index f = 0; f < factor; ++f)
            for (Index c = 0; c < x.cols(); ++c)
                out(r * factor + f, c) = x(r, c);
    return out;
}

DenoisingNetwork::DenoisingNetwork(const ModelConfig &cfg)
    : DenoisingNetwork(WeightStore::build(cfg))
{
}

DenoisingNetwork::DenoisingNetwork(std::shared_ptr<const WeightStore> store)
    : cfg_(store->config()), store_(std::move(store))
{
    EXION_ASSERT(!cfg_.stages.empty(), "network needs at least one stage");
    const WeightStore &ws = *store_;

    inProj_ = Linear::fromStore(ws, "inProj");
    outProj_ = Linear::fromStore(ws, "outProj");
    condEmbed_ = ws.matrix("condEmbed");

    int block_id = 0;
    Index prev_d = cfg_.stages.front().dModel;
    Index stage_id = 0;
    for (const auto &sc : cfg_.stages) {
        const std::string sp = "s" + std::to_string(stage_id++);
        Stage stage;
        stage.cfg = sc;
        if (sc.dModel != prev_d)
            stage.channelProj = Linear::fromStore(ws, sp + ".channelProj");
        stage.timeProj = Linear::fromStore(ws, sp + ".timeProj");
        for (Index i = 0; i < sc.nResBlocks; ++i)
            stage.resBlocks.emplace_back(
                ws, sp + ".res" + std::to_string(i));
        for (Index i = 0; i < sc.nBlocks; ++i) {
            stage.blocks.emplace_back(block_id++, sc.dModel, sc.nHeads,
                                      cfg_.geglu, sc.scoreTemp, ws);
        }
        prev_d = sc.dModel;
        stages_.push_back(std::move(stage));
    }
    for (const auto &stage : stages_)
        for (const auto &blk : stage.blocks)
            blockPtrs_.push_back(&blk);
}

Matrix
DenoisingNetwork::forward(const Matrix &x, int timestep,
                          BlockExecutor &exec) const
{
    EXION_ASSERT(x.rows() == cfg_.latentTokens
                     && x.cols() == cfg_.latentDim,
                 "latent shape (", x.rows(), ",", x.cols(), ") vs config");
    return forwardImpl(x, &timestep, /*segments=*/1, exec);
}

Matrix
DenoisingNetwork::forward(const Matrix &x,
                          const std::vector<int> &timesteps,
                          CohortBlockExecutor &exec) const
{
    const Index segments = timesteps.size();
    EXION_ASSERT(segments > 0, "cohort forward needs >= 1 segment");
    EXION_ASSERT(x.rows() == segments * cfg_.latentTokens
                     && x.cols() == cfg_.latentDim,
                 "stacked latent shape (", x.rows(), ",", x.cols(),
                 ") vs ", segments, " segments of config");
    return forwardImpl(x, timesteps.data(), segments, exec);
}

Matrix
DenoisingNetwork::forwardImpl(const Matrix &x, const int *timesteps,
                              Index segments, BlockExecutor &exec) const
{
    // The executor's backend also covers the network-level linears
    // and ResBlock convolutions, so an engine's backend choice
    // reaches every dense MMUL of the run, not just the blocks.
    const GemmBackend gemm = exec.gemmBackend();
    const SimdTier simd = exec.simdTier();
    const TpContext tp = exec.tpContext();

    Matrix h = inProj_.forward(x, gemm, simd, tp);
    addRowVector(h, condEmbed_);

    // Per-segment timestep embeddings. Cohort members usually step in
    // lockstep, so consecutive equal timesteps share one embedding —
    // bit-identical to recomputing it (the function is
    // deterministic), but computed once per distinct value.
    std::vector<Matrix> t_embs(segments);
    for (Index m = 0; m < segments; ++m) {
        t_embs[m] = m > 0 && timesteps[m] == timesteps[m - 1]
            ? t_embs[m - 1]
            : timestepEmbedding(timesteps[m], kTimeEmbedDim);
    }

    const bool unet = cfg_.type != NetworkType::TransformerOnly
        && stages_.size() >= 3;
    std::vector<Matrix> skips;

    Index cur_tokens = cfg_.latentTokens;
    for (Index s = 0; s < stages_.size(); ++s) {
        const Stage &stage = stages_[s];
        const Index want = stage.cfg.tokens;

        // Skip connection: decoder stages mirror encoder stages.
        const bool upsampling = want > cur_tokens;

        if (want < cur_tokens) {
            if (unet)
                skips.push_back(h);
            const Index factor = cur_tokens / want;
            // Pool groups must not straddle segment boundaries, or a
            // stacked pool would mix members' tokens.
            EXION_ASSERT(cur_tokens % factor == 0,
                         "pool factor ", factor, " straddles segments "
                         "of ", cur_tokens, " tokens");
            h = poolTokens(h, factor);
        } else if (want > cur_tokens) {
            h = upsampleTokens(h, want / cur_tokens);
        }
        cur_tokens = want;

        if (stage.channelProj.inDim() != 0)
            h = stage.channelProj.forward(h, gemm, simd, tp);

        if (unet && upsampling && !skips.empty()) {
            const Matrix &skip = skips.back();
            if (skip.rows() == h.rows() && skip.cols() == h.cols()) {
                h = add(h, skip);
                skips.pop_back();
            }
        }

        // Time conditioning per segment; lockstep members share one
        // projection (amortised weight traversal, identical bits).
        Matrix t_proj;
        for (Index m = 0; m < segments; ++m) {
            if (m == 0 || timesteps[m] != timesteps[m - 1])
                t_proj =
                    stage.timeProj.forward(t_embs[m], gemm, simd, tp);
            addRowVectorToRows(h, t_proj, m * cur_tokens, cur_tokens);
        }

        for (const auto &res : stage.resBlocks)
            h = res.forward(h, gemm, simd, tp);
        for (const auto &blk : stage.blocks)
            h = blk.forward(h, exec);
    }

    return outProj_.forward(h, gemm, simd, tp);
}

} // namespace exion
