/**
 * @file
 * Block execution strategies.
 *
 * A TransformerBlock owns weights; *how* its MMULs are computed is a
 * BlockExecutor decision. The model library ships the dense reference
 * executor (optionally with INT12 operand quantisation); the sparsity
 * library layers FFN-Reuse and eager prediction on top of the same
 * interface. Every optimised executor is validated against
 * DenseExecutor outputs in the test suite.
 */

#ifndef EXION_MODEL_EXECUTOR_H_
#define EXION_MODEL_EXECUTOR_H_

#include <functional>
#include <vector>

#include "exion/tensor/bitmask.h"
#include "exion/tensor/gemm.h"
#include "exion/tensor/matmul_slice.h"
#include "exion/tensor/matrix.h"

namespace exion
{

class Linear;
class TransformerBlock;

/**
 * Accumulated execution statistics across blocks and iterations.
 *
 * "Dense" counters record what an unoptimised execution would cost;
 * "executed" counters record work actually performed after skips.
 * MACs are counted as 2 ops, matching the paper's TOPS convention.
 */
struct ExecStats
{
    OpCount qkvOpsDense = 0;
    OpCount qkvOpsExecuted = 0;
    OpCount attnOpsDense = 0;
    OpCount attnOpsExecuted = 0;
    OpCount ffnOpsDense = 0;
    OpCount ffnOpsExecuted = 0;

    /** Sum + count for averaging FFN mask sparsity over sparse iters. */
    double ffnSparsitySum = 0.0;
    u64 ffnSparsitySamples = 0;

    /** Sum + count for attention-score output sparsity. */
    double scoreSparsitySum = 0.0;
    u64 scoreSparsitySamples = 0;

    /** Projection skip accounting (EP side effects, Section II-B). */
    u64 qRowsTotal = 0;
    u64 qRowsSkipped = 0;
    u64 kColsTotal = 0;
    u64 kColsSkipped = 0;
    u64 vColsTotal = 0;
    u64 vColsSkipped = 0;

    /** Total dense-equivalent ops. */
    OpCount totalDense() const
    {
        return qkvOpsDense + attnOpsDense + ffnOpsDense;
    }

    /** Total executed ops. */
    OpCount totalExecuted() const
    {
        return qkvOpsExecuted + attnOpsExecuted + ffnOpsExecuted;
    }

    /** Mean FFN recompute-mask sparsity over sparse iterations. */
    double meanFfnSparsity() const
    {
        return ffnSparsitySamples
            ? ffnSparsitySum / static_cast<double>(ffnSparsitySamples)
            : 0.0;
    }

    /** Mean attention-score output sparsity. */
    double meanScoreSparsity() const
    {
        return scoreSparsitySamples
            ? scoreSparsitySum / static_cast<double>(scoreSparsitySamples)
            : 0.0;
    }

    /** Merges another stats block into this one. */
    void merge(const ExecStats &other);
};

/**
 * Observation hooks for experiments that need internal activations.
 *
 * All hooks are optional. Masks use the paper's convention
 * (1 = non-sparse / compute).
 */
struct ExecObservers
{
    /** Fires with the non-linear (GELU/GEGLU) output of each FFN. */
    std::function<void(int block, const Matrix &hidden)> onFfnHidden;

    /**
     * Fires with the FFN recompute mask. dense_iteration marks the mask
     * generation pass (Fig. 6).
     */
    std::function<void(int block, const Bitmask2D &mask,
                       bool dense_iteration)> onFfnMask;

    /** Fires with the per-head attention-score keep mask. */
    std::function<void(int block, int head, const Bitmask2D &keep)>
        onScoreMask;
};

/**
 * Per-request mutable execution state.
 *
 * Every piece of state a BlockExecutor mutates while driving one
 * denoising stream — the current iteration index and the op/sparsity
 * accounting — lives here rather than in the executor itself. An
 * executor owns a private context by default (the original
 * single-stream behaviour); a serving layer binds one ExecContext per
 * in-flight request so request state never leaks across streams and
 * survives the executor that produced it.
 */
struct ExecContext
{
    /** Current denoising iteration. */
    int iteration = 0;
    /** Accumulated op/sparsity accounting. */
    ExecStats stats;
};

/**
 * Strategy interface for computing a block's two heavy sub-layers.
 *
 * Executors are stateful (bound context + observers) and not
 * copyable; create one per concurrent denoising stream.
 */
class BlockExecutor
{
  public:
    BlockExecutor() = default;
    virtual ~BlockExecutor() = default;

    BlockExecutor(const BlockExecutor &) = delete;
    BlockExecutor &operator=(const BlockExecutor &) = delete;

    /** Called once at the start of every denoising iteration. */
    virtual void beginIteration(int iteration)
    {
        ctx().iteration = iteration;
    }

    /**
     * GEMM backend for dense MMULs issued on this executor's behalf
     * by layers outside the block (network in/out/time projections,
     * ResBlock convolutions). Backends are bit-identical, so this is
     * purely a wall-clock knob; the base implementation follows the
     * process default.
     */
    virtual GemmBackend gemmBackend() const
    {
        return defaultGemmBackend();
    }

    /**
     * SIMD tier for kernels issued on this executor's behalf (see
     * simd_dispatch.h). Scalar and Exact are bit-identical; the base
     * implementation follows the process default.
     */
    virtual SimdTier simdTier() const { return defaultSimdTier(); }

    /**
     * Tensor-parallel slicing for projection GEMMs issued on this
     * executor's behalf, inside the block and out (network in/out/
     * time projections). Sliced execution is bit-identical to solo
     * (see matmul_slice.h), so this too is purely a wall-clock knob;
     * the base implementation is inactive.
     */
    virtual TpContext tpContext() const { return {}; }

    /** Multi-head attention sub-layer (QKV, scores, AV, out-proj). */
    virtual Matrix attention(const TransformerBlock &blk,
                             const Matrix &x_norm) = 0;

    /** FFN sub-layer (two linears around the non-linearity). */
    virtual Matrix ffn(const TransformerBlock &blk,
                       const Matrix &x_norm) = 0;

    /** Binds an external per-request context. */
    void bindContext(ExecContext &ctx) { ctx_ = &ctx; }

    /** Reverts to the executor-owned single-stream context. */
    void unbindContext() { ctx_ = &ownCtx_; }

    /** Active execution context. */
    ExecContext &ctx() { return *ctx_; }

    /** Active execution context (const). */
    const ExecContext &ctx() const { return *ctx_; }

    /** Accumulated statistics of the active context. */
    ExecStats &stats() { return ctx_->stats; }

    /** Accumulated statistics (const). */
    const ExecStats &stats() const { return ctx_->stats; }

    /** Clears the active context's statistics. */
    void resetStats() { ctx_->stats = ExecStats{}; }

    /** Observation hooks (mutable by design; callers install them). */
    ExecObservers observers;

  protected:
    /** Current iteration of the active context. */
    int iteration() const { return ctx_->iteration; }

  private:
    ExecContext ownCtx_;
    ExecContext *ctx_ = &ownCtx_;
};

/**
 * Reference dense executor, optionally quantising MMUL operands to
 * INT12 the way the SDUE does.
 */
class DenseExecutor : public BlockExecutor
{
  public:
    /**
     * @param quantize route every MMUL through INT12 operands
     * @param backend  GEMM backend for every dense MMUL (all
     *                 backends are bit-identical; this is a pure
     *                 wall-clock knob)
     * @param simd     SIMD tier for the backend's kernels (Scalar and
     *                 Exact bit-identical; Fast tolerance-gated)
     * @param tp       tensor-parallel slicing for the projection
     *                 GEMMs (bit-identical at any slice count)
     */
    explicit DenseExecutor(bool quantize = false,
                           GemmBackend backend = defaultGemmBackend(),
                           SimdTier simd = defaultSimdTier(),
                           TpContext tp = {})
        : quantize_(quantize), backend_(backend), simd_(simd), tp_(tp)
    {}

    Matrix attention(const TransformerBlock &blk,
                     const Matrix &x_norm) override;
    Matrix ffn(const TransformerBlock &blk, const Matrix &x_norm) override;

    /** Whether INT12 quantisation is applied. */
    bool quantized() const { return quantize_; }

    /** GEMM backend used for dense MMULs. */
    GemmBackend gemmBackend() const override { return backend_; }

    /** SIMD tier used for kernels. */
    SimdTier simdTier() const override { return simd_; }

    /** Tensor-parallel slicing for projection GEMMs. */
    TpContext tpContext() const override { return tp_; }

  private:
    bool quantize_;
    GemmBackend backend_;
    SimdTier simd_;
    TpContext tp_;
};

/**
 * Executor interface for cohort (stacked multi-request) stepping.
 *
 * A cohort executor computes a block whose activation matrix carries
 * one row-segment per cohort member, stacked in slot order. Before
 * every network forward the driver (CohortRun) announces the stacked
 * order and each member's denoising iteration; implementations keep
 * all mutable state — op accounting, sparsity masks, inter-iteration
 * caches — partitioned per slot so every member's rows are
 * bit-identical to a solo run of that member.
 */
class CohortBlockExecutor : public BlockExecutor
{
  public:
    /**
     * Announces the stacked segment order for the next forward.
     *
     * @param slots      member slot ids, one per stacked segment
     * @param iterations each member's current denoising iteration
     */
    virtual void beginCohortStep(const std::vector<Index> &slots,
                                 const std::vector<int> &iterations) = 0;
};

/**
 * A*B with optional INT12 operand quantisation, computed with the
 * given GEMM backend (defaults to the process-wide backend). An
 * active tp slices b's columns across workers — bit-identical to the
 * unsliced product (quantisation happens once over the whole
 * operands; slices are views into the quantized image).
 */
Matrix execMatmul(const Matrix &a, const Matrix &b, bool quantize,
                  GemmBackend backend = defaultGemmBackend(),
                  SimdTier simd = defaultSimdTier(),
                  const TpContext &tp = {});

/**
 * x * W for a layer's weight, with optional INT12 operand
 * quantisation. Identical numerics to
 * execMatmul(x, lin.weight(), ...), but a layer carrying a
 * quantized-at-rest image (one built from a WeightStore) feeds it to
 * matmulQuant directly — the weight-side fromFloat disappears from
 * the request path while the product stays bit-identical, because the
 * at-rest image snapshots the same deterministic quantisation.
 */
Matrix execWeightMatmul(const Matrix &x, const Linear &lin,
                        bool quantize,
                        GemmBackend backend = defaultGemmBackend(),
                        SimdTier simd = defaultSimdTier(),
                        const TpContext &tp = {});

/**
 * MACs-as-2-ops for an (m x k) * (k x n) MMUL — the paper's TOPS
 * convention. The single accounting formula every executor path
 * (dense, EP, FFN-Reuse, cohort) shares, so their ExecStats stay
 * comparable element for element.
 */
constexpr OpCount
mmulOps(Index m, Index k, Index n)
{
    return static_cast<OpCount>(2) * m * k * n;
}

/**
 * Dense multi-head attention implementation shared by executors.
 *
 * Accumulates into stats and fires observers; returns the sub-layer
 * output (pre-residual).
 */
Matrix denseAttentionImpl(const TransformerBlock &blk,
                          const Matrix &x_norm, bool quantize,
                          ExecStats &stats, ExecObservers &observers,
                          GemmBackend backend = defaultGemmBackend(),
                          SimdTier simd = defaultSimdTier(),
                          const TpContext &tp = {});

/**
 * Per-head score/softmax/AV core of dense attention on rows
 * [r0, r0+rows) of projected q/k/v, writing the concatenated head
 * outputs (pre output-projection) into the same rows of concat and
 * accumulating the per-head attn op counts. Split out — and
 * row-ranged — so cohort executors can run the token-mixing core per
 * member segment of one tall projection GEMM without slicing or
 * re-pasting activations; with r0 = 0 and rows = q.rows() it is the
 * solo dense path.
 */
void denseAttentionCoreInto(const TransformerBlock &blk,
                            const Matrix &q, const Matrix &k,
                            const Matrix &v, Index r0, Index rows,
                            bool quantize, ExecStats &stats,
                            Matrix &concat,
                            GemmBackend backend = defaultGemmBackend(),
                            SimdTier simd = defaultSimdTier());

/** Dense FFN implementation shared by executors. */
Matrix denseFfnImpl(const TransformerBlock &blk, const Matrix &x_norm,
                    bool quantize, ExecStats &stats,
                    ExecObservers &observers,
                    GemmBackend backend = defaultGemmBackend(),
                    SimdTier simd = defaultSimdTier(),
                    const TpContext &tp = {});

} // namespace exion

#endif // EXION_MODEL_EXECUTOR_H_
