#include "exion/model/config.h"

#include "exion/common/logging.h"

namespace exion
{

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> list = {
        Benchmark::MLD,          Benchmark::MDM,
        Benchmark::EDGE,         Benchmark::MakeAnAudio,
        Benchmark::StableDiffusion, Benchmark::DiT,
        Benchmark::VideoCrafter2,
    };
    return list;
}

std::string
benchmarkName(Benchmark b)
{
    switch (b) {
      case Benchmark::MLD:
        return "MLD";
      case Benchmark::MDM:
        return "MDM";
      case Benchmark::EDGE:
        return "EDGE";
      case Benchmark::MakeAnAudio:
        return "Make-an-Audio";
      case Benchmark::StableDiffusion:
        return "StableDiffusion";
      case Benchmark::DiT:
        return "DiT";
      case Benchmark::VideoCrafter2:
        return "VideoCrafter2";
    }
    EXION_PANIC("unhandled benchmark");
}

Index
ModelConfig::totalBlocks() const
{
    Index total = 0;
    for (const auto &s : stages)
        total += s.nBlocks;
    return total;
}

Index
ModelConfig::totalResBlocks() const
{
    Index total = 0;
    for (const auto &s : stages)
        total += s.nResBlocks;
    return total;
}

namespace
{

/** Table I sparsity knobs, shared by both scales of a benchmark. */
void
applySparsityConfig(ModelConfig &cfg)
{
    switch (cfg.benchmark) {
      case Benchmark::MLD:
        cfg.ffnReuse = {9, 0.95};
        cfg.ep = {0.3, 0.7};
        cfg.intraTargetSparsity = 0.30;
        break;
      case Benchmark::MDM:
        cfg.ffnReuse = {5, 0.95};
        cfg.ep = {0.3, 0.05};
        cfg.intraTargetSparsity = 0.95;
        break;
      case Benchmark::EDGE:
        cfg.ffnReuse = {5, 0.95};
        cfg.ep = {0.9, 0.5};
        cfg.intraTargetSparsity = 0.50;
        break;
      case Benchmark::MakeAnAudio:
        cfg.ffnReuse = {5, 0.97};
        cfg.ep = {0.7, 0.2};
        cfg.intraTargetSparsity = 0.80;
        break;
      case Benchmark::StableDiffusion:
        cfg.ffnReuse = {4, 0.97};
        cfg.ep = {0.8, 0.8};
        cfg.intraTargetSparsity = 0.20;
        break;
      case Benchmark::DiT:
        cfg.ffnReuse = {2, 0.80};
        cfg.ep = {0.15, 0.05};
        cfg.intraTargetSparsity = 0.95;
        break;
      case Benchmark::VideoCrafter2:
        cfg.ffnReuse = {3, 0.70};
        cfg.ep = {2.0, 0.5};
        cfg.intraTargetSparsity = 0.50;
        break;
    }
}

ModelConfig
fullConfig(Benchmark b)
{
    ModelConfig cfg;
    cfg.benchmark = b;
    cfg.scale = Scale::Full;
    cfg.name = benchmarkName(b);
    cfg.seed = 0x517cc1b727220a95ULL + static_cast<u64>(b);

    switch (b) {
      case Benchmark::MLD:
        // Latent transformer over a compact motion latent.
        cfg.type = NetworkType::UNetNoRes;
        cfg.stages = {{8, 256, 4, 4, 9, 0}};
        cfg.latentTokens = 8;
        cfg.latentDim = 256;
        cfg.iterations = 50;
        break;
      case Benchmark::MDM:
        // Transformer encoder over motion frames.
        cfg.type = NetworkType::TransformerOnly;
        cfg.stages = {{196, 512, 8, 4, 8, 0}};
        cfg.latentTokens = 196;
        cfg.latentDim = 263;
        cfg.iterations = 50;
        break;
      case Benchmark::EDGE:
        cfg.type = NetworkType::TransformerOnly;
        cfg.stages = {{150, 512, 8, 4, 12, 0}};
        cfg.latentTokens = 150;
        cfg.latentDim = 151;
        cfg.iterations = 50;
        break;
      case Benchmark::MakeAnAudio:
        cfg.type = NetworkType::UNetRes;
        cfg.geglu = true;
        cfg.stages = {
            {256, 320, 8, 4, 1, 1},
            {64, 640, 8, 4, 1, 1},
            {16, 1280, 8, 4, 1, 1},
            {64, 640, 8, 4, 1, 1},
            {256, 320, 8, 4, 1, 1},
        };
        cfg.latentTokens = 256;
        cfg.latentDim = 8;
        cfg.iterations = 50;
        break;
      case Benchmark::StableDiffusion:
        cfg.type = NetworkType::UNetRes;
        cfg.geglu = true;
        cfg.stages = {
            {4096, 320, 8, 4, 1, 2},
            {1024, 640, 8, 4, 1, 2},
            {256, 1280, 8, 4, 1, 2},
            {64, 1280, 8, 4, 0, 2},
            {256, 1280, 8, 4, 1, 2},
            {1024, 640, 8, 4, 1, 2},
            {4096, 320, 8, 4, 1, 2},
        };
        cfg.latentTokens = 4096;
        cfg.latentDim = 4;
        cfg.iterations = 50;
        break;
      case Benchmark::DiT:
        // DiT-XL/2 at 256x256: 32x32 latent, patch 2 -> 256 tokens.
        cfg.type = NetworkType::TransformerOnly;
        cfg.stages = {{256, 1152, 16, 4, 28, 0}};
        cfg.latentTokens = 256;
        cfg.latentDim = 4;
        cfg.iterations = 100;
        break;
      case Benchmark::VideoCrafter2:
        // 16 frames x 32x32 latent.
        cfg.type = NetworkType::UNetRes;
        cfg.geglu = true;
        cfg.stages = {
            {16384, 320, 8, 4, 1, 2},
            {4096, 640, 8, 4, 1, 2},
            {1024, 1280, 8, 4, 1, 2},
            {256, 1280, 8, 4, 0, 2},
            {1024, 1280, 8, 4, 1, 2},
            {4096, 640, 8, 4, 1, 2},
            {16384, 320, 8, 4, 1, 2},
        };
        cfg.latentTokens = 16384;
        cfg.latentDim = 4;
        cfg.iterations = 50;
        break;
    }
    applySparsityConfig(cfg);
    return cfg;
}

ModelConfig
reducedConfig(Benchmark b)
{
    ModelConfig cfg;
    cfg.benchmark = b;
    cfg.scale = Scale::Reduced;
    cfg.name = benchmarkName(b) + "-r";
    cfg.seed = 0x2545f4914f6cdd1dULL + static_cast<u64>(b);

    switch (b) {
      case Benchmark::MLD:
        cfg.type = NetworkType::UNetNoRes;
        cfg.stages = {{8, 64, 4, 4, 4, 0}};
        cfg.latentTokens = 8;
        cfg.latentDim = 64;
        cfg.iterations = 50;
        break;
      case Benchmark::MDM:
        cfg.type = NetworkType::TransformerOnly;
        cfg.stages = {{48, 64, 4, 4, 4, 0}};
        cfg.latentTokens = 48;
        cfg.latentDim = 32;
        cfg.iterations = 50;
        break;
      case Benchmark::EDGE:
        cfg.type = NetworkType::TransformerOnly;
        cfg.stages = {{40, 64, 4, 4, 4, 0}};
        cfg.latentTokens = 40;
        cfg.latentDim = 24;
        cfg.iterations = 50;
        break;
      case Benchmark::MakeAnAudio:
        cfg.type = NetworkType::UNetRes;
        cfg.geglu = true;
        cfg.stages = {
            {64, 48, 4, 4, 1, 1},
            {16, 96, 4, 4, 1, 1},
            {64, 48, 4, 4, 1, 1},
        };
        cfg.latentTokens = 64;
        cfg.latentDim = 8;
        cfg.iterations = 50;
        break;
      case Benchmark::StableDiffusion:
        cfg.type = NetworkType::UNetRes;
        cfg.geglu = true;
        cfg.stages = {
            {128, 48, 4, 4, 1, 1},
            {32, 96, 4, 4, 1, 1},
            {128, 48, 4, 4, 1, 1},
        };
        cfg.latentTokens = 128;
        cfg.latentDim = 4;
        cfg.iterations = 50;
        break;
      case Benchmark::DiT:
        cfg.type = NetworkType::TransformerOnly;
        cfg.stages = {{32, 96, 4, 4, 6, 0}};
        cfg.latentTokens = 32;
        cfg.latentDim = 4;
        cfg.iterations = 100;
        break;
      case Benchmark::VideoCrafter2:
        cfg.type = NetworkType::UNetRes;
        cfg.geglu = true;
        cfg.stages = {
            {192, 48, 4, 4, 1, 1},
            {48, 96, 4, 4, 1, 1},
            {192, 48, 4, 4, 1, 1},
        };
        cfg.latentTokens = 192;
        cfg.latentDim = 4;
        cfg.iterations = 50;
        break;
    }
    applySparsityConfig(cfg);
    return cfg;
}

} // namespace

ModelConfig
makeConfig(Benchmark b, Scale scale)
{
    return scale == Scale::Full ? fullConfig(b) : reducedConfig(b);
}

ModelConfig
makeTinyConfig(Index tokens, Index d_model, Index n_blocks,
               int iterations)
{
    ModelConfig cfg;
    cfg.name = "tiny";
    cfg.benchmark = Benchmark::MLD;
    cfg.type = NetworkType::TransformerOnly;
    cfg.scale = Scale::Reduced;
    cfg.stages = {{tokens, d_model, 2, 4, n_blocks, 0}};
    cfg.latentTokens = tokens;
    cfg.latentDim = d_model;
    cfg.iterations = iterations;
    cfg.ffnReuse = {3, 0.9};
    cfg.ep = {0.5, 0.5};
    cfg.intraTargetSparsity = 0.5;
    cfg.seed = 42;
    return cfg;
}

} // namespace exion
