/**
 * @file
 * Residual convolution block of type-2 (UNet w/ ResBlock) networks.
 *
 * Functionally modelled as two channel-mixing linears with GELU and a
 * residual connection (the 1x1-equivalent of the paper's conv pairs).
 * ResBlocks receive no sparsity optimisation in EXION (Section V-C);
 * op counting at full scale uses the 3x3-kernel cost analytically in
 * OpCounter.
 */

#ifndef EXION_MODEL_RESBLOCK_H_
#define EXION_MODEL_RESBLOCK_H_

#include "exion/model/layers.h"

namespace exion
{

/**
 * Residual block: x + Conv(GELU(Conv(GN(x)))).
 */
class ResBlock
{
  public:
    /** d x d block with random weights from rng. */
    ResBlock(Index d_model, Rng &rng);

    /**
     * Block viewing a WeightStore's "<prefix>.conv1" / "<prefix>.conv2"
     * layers. Borrows storage: the store must outlive the block.
     */
    ResBlock(const WeightStore &ws, const std::string &prefix);

    /**
     * Applies the block to x (tokens x d_model). Every op here
     * (norm, channel-mixing linears, GELU, residual) is
     * row-independent, so a cohort stack of several members' tokens
     * passes through unchanged — each member's rows equal a solo
     * forward bit for bit.
     */
    Matrix forward(const Matrix &x,
                   GemmBackend backend = defaultGemmBackend(),
                   SimdTier simd = defaultSimdTier(),
                   const TpContext &tp = {}) const;

    /** Channel width. */
    Index dModel() const { return conv1_.inDim(); }

  private:
    Linear conv1_;
    Linear conv2_;
    Matrix normGamma_;
    Matrix normBeta_;
};

} // namespace exion

#endif // EXION_MODEL_RESBLOCK_H_
