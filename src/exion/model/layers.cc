#include "exion/model/layers.h"

#include <cmath>
#include <limits>

#include "exion/common/rng.h"
#include "exion/model/weight_store.h"
#include "exion/tensor/ops.h"

namespace exion
{

Linear::Linear(Index in, Index out, Rng &rng)
    : weight_(in, out), bias_(1, out)
{
    const float stddev = 1.0f / std::sqrt(static_cast<float>(in));
    weight_.fillNormal(rng, 0.0f, stddev);
}

Linear
Linear::fromStore(const WeightStore &ws, const std::string &name)
{
    Linear lin;
    lin.weight_ = ws.matrix(name + ".w");
    lin.bias_ = ws.matrix(name + ".b");
    if (ws.has(name + ".w.q"))
        lin.quantWeight_ = ws.quant(name + ".w.q");
    return lin;
}

Matrix
Linear::forward(const Matrix &x, GemmBackend backend, SimdTier simd,
                const TpContext &tp) const
{
    Matrix y = matmulSliced(x, weight_, tp, backend, simd);
    addRowVector(y, bias_);
    return y;
}

float
geluScalar(float x)
{
    // tanh approximation of GELU.
    const float c = 0.7978845608028654f; // sqrt(2/pi)
    const float inner = c * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
}

Matrix
gelu(const Matrix &x)
{
    Matrix y(x.rows(), x.cols());
    for (Index i = 0; i < x.size(); ++i)
        y.data()[i] = geluScalar(x.data()[i]);
    return y;
}

Matrix
layerNorm(const Matrix &x, const Matrix &gamma, const Matrix &beta)
{
    EXION_ASSERT(gamma.rows() == 1 && gamma.cols() == x.cols()
                     && beta.rows() == 1 && beta.cols() == x.cols(),
                 "layerNorm parameter shape mismatch");
    Matrix y(x.rows(), x.cols());
    const float eps = 1e-5f;
    for (Index r = 0; r < x.rows(); ++r) {
        const float *row = x.rowPtr(r);
        double sum = 0.0;
        for (Index c = 0; c < x.cols(); ++c)
            sum += row[c];
        const double mu = sum / static_cast<double>(x.cols());
        double var = 0.0;
        for (Index c = 0; c < x.cols(); ++c) {
            const double d = row[c] - mu;
            var += d * d;
        }
        var /= static_cast<double>(x.cols());
        const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
        float *out = y.rowPtr(r);
        for (Index c = 0; c < x.cols(); ++c) {
            out[c] = (row[c] - static_cast<float>(mu)) * inv
                * gamma(0, c) + beta(0, c);
        }
    }
    return y;
}

Matrix
softmax(const Matrix &x)
{
    Matrix y(x.rows(), x.cols());
    for (Index r = 0; r < x.rows(); ++r) {
        const float *row = x.rowPtr(r);
        float max_v = -std::numeric_limits<float>::infinity();
        for (Index c = 0; c < x.cols(); ++c)
            max_v = std::max(max_v, row[c]);
        float *out = y.rowPtr(r);
        if (max_v == -std::numeric_limits<float>::infinity()) {
            // Whole row masked: define output as zeros.
            for (Index c = 0; c < x.cols(); ++c)
                out[c] = 0.0f;
            continue;
        }
        double denom = 0.0;
        for (Index c = 0; c < x.cols(); ++c) {
            const float e = std::exp(row[c] - max_v);
            out[c] = e;
            denom += e;
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (Index c = 0; c < x.cols(); ++c)
            out[c] *= inv;
    }
    return y;
}

Matrix
timestepEmbedding(int timestep, Index dim)
{
    Matrix emb(1, dim);
    const Index half = dim / 2;
    for (Index i = 0; i < half; ++i) {
        const double freq = std::exp(
            -std::log(10000.0) * static_cast<double>(i)
            / static_cast<double>(half));
        const double angle = timestep * freq;
        emb(0, i) = static_cast<float>(std::sin(angle));
        emb(0, half + i) = static_cast<float>(std::cos(angle));
    }
    return emb;
}

} // namespace exion
