/**
 * @file
 * EXION device performance/energy model.
 *
 * Rolls per-layer cycle and energy costs up to whole-workload latency
 * and energy for a given device instance and ablation. Tile-level
 * costs come from the same formulas the detailed Sdue/Epre/Cfse models
 * use (tests pin them against each other at small sizes); sparsity
 * behaviour comes from calibrated SparsityProfiles with ConMerge
 * effects measured by running the real pipeline on sampled groups.
 *
 * Reporting conventions follow the paper: "TOPS" is dense-equivalent
 * work over time (optimisations can push it past peak), and TOPS/W is
 * dense-equivalent work per energy.
 */

#ifndef EXION_ACCEL_PERF_MODEL_H_
#define EXION_ACCEL_PERF_MODEL_H_

#include <map>

#include "exion/accel/conmerge_estimator.h"
#include "exion/accel/exion_config.h"
#include "exion/accel/sparsity_profile.h"
#include "exion/model/op_counter.h"
#include "exion/sim/cfse.h"
#include "exion/sim/dram.h"
#include "exion/sim/energy.h"
#include "exion/sim/epre.h"
#include "exion/sim/sdue.h"

namespace exion
{

/** Whole-run performance and energy result. */
struct RunStats
{
    double latencySeconds = 0.0;
    EnergyPj energy = 0.0;
    OpCount denseOps = 0;    //!< dense-equivalent ops of the workload
    OpCount executedOps = 0; //!< ops actually computed
    Cycle wallCycles = 0;

    EnergyPj sdueEnergy = 0.0;
    EnergyPj epreEnergy = 0.0;
    EnergyPj cfseEnergy = 0.0;
    EnergyPj cauEnergy = 0.0;
    EnergyPj memEnergy = 0.0;
    EnergyPj ctrlEnergy = 0.0;
    EnergyPj dramEnergy = 0.0;
    u64 dramBytes = 0;

    /** Dense-equivalent throughput in TOPS. */
    double effectiveTops() const;

    /** Dense-equivalent energy efficiency in TOPS/W (= ops per pJ). */
    double topsPerWatt() const;

    /** Average power draw in watts. */
    double avgPowerW() const;
};

/**
 * Analytic device model for one (config, ablation) pair.
 */
class ExionPerfModel
{
  public:
    ExionPerfModel(const ExionConfig &config, Ablation ablation);

    /**
     * Models a full diffusion run of the benchmark.
     *
     * @param model full-scale model configuration
     * @param prof  calibrated sparsity profile
     * @param batch batch size (Fig. 18/19 use 1 and 8)
     */
    RunStats run(const ModelConfig &model, const SparsityProfile &prof,
                 int batch = 1);

    /** Device configuration. */
    const ExionConfig &config() const { return cfg_; }

    /** Active ablation. */
    Ablation ablation() const { return ablation_; }

  private:
    struct BlockCost
    {
        Cycle sdueCycles = 0; //!< per-device wall cycles on the SDUE
        Cycle epreCycles = 0;
        Cycle cfseCycles = 0;
        Cycle cauCycles = 0;
        u64 activeDpuCycles = 0;
        u64 gatedDpuCycles = 0;
        u64 weightBytes = 0;
        u64 activationBytes = 0;
        OpCount denseOps = 0;
        OpCount executedOps = 0;
    };

    /** Wall cycles of a dense MMUL, parallelised over DSCs. */
    Cycle parDenseCycles(Index m, Index k, Index n, u64 *active_dpu,
                         u64 *gated_dpu) const;

    BlockCost attentionCost(const StageConfig &stage, Index batch_rows,
                            int batch, const SparsityProfile &prof,
                            const ConMergeSummary &score_summary) const;
    BlockCost ffnCost(const StageConfig &stage, Index batch_rows,
                      bool geglu, bool sparse_iteration,
                      const SparsityProfile &prof,
                      const ConMergeSummary &ffn_summary) const;
    BlockCost resBlockCost(const StageConfig &stage,
                           Index batch_rows) const;

    const ConMergeSummary &ffnSummary(const StageConfig &stage,
                                      Index batch_rows,
                                      const SparsityProfile &prof);
    const ConMergeSummary &scoreSummary(const StageConfig &stage,
                                        const SparsityProfile &prof);

    ExionConfig cfg_;
    Ablation ablation_;
    EnergyModel energy_;
    Sdue sdue_;
    Epre epre_;
    Cfse cfse_;
    DramModel dram_;
    std::map<std::pair<Index, Index>, ConMergeSummary> ffnCache_;
    std::map<std::pair<Index, Index>, ConMergeSummary> scoreCache_;
};

} // namespace exion

#endif // EXION_ACCEL_PERF_MODEL_H_
