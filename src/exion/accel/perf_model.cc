#include "exion/accel/perf_model.h"

#include <algorithm>
#include <cmath>

#include "exion/common/bitops.h"
#include "exion/common/logging.h"

namespace exion
{

namespace
{

/** Bytes of an INT12 tensor (1.5 bytes per element). */
u64
int12Bytes(u64 elements)
{
    return (elements * 3 + 1) / 2;
}

OpCount
mmulOps(u64 m, u64 k, u64 n)
{
    return 2 * m * k * n;
}

/** Fraction of CFSE cycles hidden behind SDUE execution. */
constexpr double kCfseOverlap = 0.5;

/** Irregular-gather penalty of the 2nd FFN layer's update pass. */
constexpr double kFfn2GatherOverhead = 2.0;

/** Control cycles per iteration (instruction fetch, sync). */
constexpr Cycle kIterationOverheadCycles = 1600;

/** Sampled 16-row groups per ConMerge estimate. */
constexpr Index kSampleGroups = 6;

} // namespace

double
RunStats::effectiveTops() const
{
    if (latencySeconds <= 0.0)
        return 0.0;
    return static_cast<double>(denseOps) / latencySeconds / 1e12;
}

double
RunStats::topsPerWatt() const
{
    if (energy <= 0.0)
        return 0.0;
    // ops per pJ equals TOPS per watt.
    return static_cast<double>(denseOps) / energy;
}

double
RunStats::avgPowerW() const
{
    if (latencySeconds <= 0.0)
        return 0.0;
    return energy * 1e-12 / latencySeconds;
}

ExionPerfModel::ExionPerfModel(const ExionConfig &config,
                               Ablation ablation)
    : cfg_(config), ablation_(ablation), energy_(config.dsc),
      sdue_(config.dsc), epre_(config.dsc), cfse_(config.dsc),
      dram_(config.dramType, config.dramBandwidthGbs)
{
}

Cycle
ExionPerfModel::parDenseCycles(Index m, Index k, Index n,
                               u64 *active_dpu, u64 *gated_dpu) const
{
    const SdueRunStats stats = sdue_.denseMmulStats(m, k, n);
    if (active_dpu)
        *active_dpu += stats.activeDpuCycles;
    if (gated_dpu)
        *gated_dpu += stats.gatedDpuCycles;
    const u64 k_steps = ceilDiv(k, cfg_.dsc.laneLength);
    const u64 per_dsc_tiles = ceilDiv(stats.tilePasses,
                                      static_cast<u64>(cfg_.numDscs));
    return per_dsc_tiles * k_steps;
}

const ConMergeSummary &
ExionPerfModel::ffnSummary(const StageConfig &stage, Index batch_rows,
                           const SparsityProfile &prof)
{
    const Index hid = stage.ffnMult * stage.dModel;
    const auto key = std::make_pair(batch_rows, hid);
    auto it = ffnCache_.find(key);
    if (it == ffnCache_.end()) {
        const u64 seed = 0xc0ffee ^ (batch_rows * 131) ^ hid;
        it = ffnCache_
                 .emplace(key, estimateFfnConMerge(batch_rows, hid,
                                                   prof.ffnMask,
                                                   kSampleGroups, seed))
                 .first;
    }
    return it->second;
}

const ConMergeSummary &
ExionPerfModel::scoreSummary(const StageConfig &stage,
                             const SparsityProfile &prof)
{
    const auto key = std::make_pair(stage.tokens, stage.tokens);
    auto it = scoreCache_.find(key);
    if (it == scoreCache_.end()) {
        const u64 seed = 0xdead ^ (stage.tokens * 977);
        it = scoreCache_
                 .emplace(key,
                          estimateScoreConMerge(stage.tokens,
                                                stage.tokens,
                                                prof.scoreMask,
                                                kSampleGroups, seed))
                 .first;
    }
    return it->second;
}

ExionPerfModel::BlockCost
ExionPerfModel::attentionCost(const StageConfig &stage, Index batch_rows,
                              int batch, const SparsityProfile &prof,
                              const ConMergeSummary &score_summary) const
{
    BlockCost cost;
    const Index t = stage.tokens;
    const Index d = stage.dModel;
    const Index dh = d / stage.nHeads;
    const bool use_ep = ablationUsesEp(ablation_);

    cost.denseOps += 3 * mmulOps(batch_rows, d, d); // QKV
    cost.denseOps += stage.nHeads * batch
        * (mmulOps(t, dh, t) + mmulOps(t, t, dh));
    cost.denseOps += mmulOps(batch_rows, d, d); // out proj

    // --- QKV projections. ---
    const double q_keep = use_ep ? 1.0 - prof.qRowSkip : 1.0;
    const double k_keep = use_ep ? 1.0 - prof.kColSkip : 1.0;
    const double v_keep = use_ep ? 1.0 - prof.vColSkip : 1.0;
    for (double keep : {q_keep, k_keep, v_keep}) {
        const Index rows = std::max<Index>(
            1, static_cast<Index>(std::llround(batch_rows * keep)));
        cost.sdueCycles += parDenseCycles(rows, d, d,
                                          &cost.activeDpuCycles,
                                          &cost.gatedDpuCycles);
        cost.executedOps += mmulOps(rows, d, d);
    }
    cost.weightBytes += int12Bytes(3ull * d * d);

    // --- EPRE prediction (overlapped; energy + max() in caller). ---
    if (use_ep) {
        const Cycle predict =
            epre_.predictAttentionCycles(t, d, stage.nHeads)
            * static_cast<Cycle>(batch);
        cost.epreCycles += ceilDiv(predict,
                                   static_cast<u64>(cfg_.numDscs));
    }

    // --- Attention scores. ---
    const double keep_ratio = use_ep ? prof.scoreMask.keepRatio : 1.0;
    const double onehot = use_ep ? prof.scoreMask.oneHotFraction : 0.0;
    if (use_ep) {
        // Output-sparse MMUL through ConMerge-merged tiles.
        const double groups =
            static_cast<double>(ceilDiv(t, kLanes)) * batch
            * stage.nHeads;
        const u64 tiles = static_cast<u64>(
            std::ceil(groups * score_summary.tilesPerGroup));
        const u64 k_steps = ceilDiv(dh, cfg_.dsc.laneLength);
        cost.sdueCycles +=
            ceilDiv(tiles, static_cast<u64>(cfg_.numDscs)) * k_steps;
        const u64 tile_dpu_cycles = tiles * k_steps
            * cfg_.dsc.dpuRows * cfg_.dsc.dpuCols;
        cost.activeDpuCycles += static_cast<u64>(
            tile_dpu_cycles * score_summary.tileOccupancy);
        cost.gatedDpuCycles += static_cast<u64>(
            tile_dpu_cycles * (1.0 - score_summary.tileOccupancy));
        cost.cauCycles += static_cast<Cycle>(
            std::ceil(groups * score_summary.mergeCyclesPerGroup
                      / cfg_.numDscs));
        cost.executedOps += static_cast<OpCount>(
            stage.nHeads * batch
            * mmulOps(t, dh, t)
            * (1.0 - onehot) * keep_ratio);
    } else {
        for (Index h = 0; h < stage.nHeads; ++h) {
            cost.sdueCycles += static_cast<Cycle>(batch)
                * parDenseCycles(t, dh, t, &cost.activeDpuCycles,
                                 &cost.gatedDpuCycles);
        }
        cost.executedOps += stage.nHeads * batch * mmulOps(t, dh, t);
    }

    // --- Softmax on the CFSE (kept entries only under EP). ---
    const u64 score_elems = static_cast<u64>(
        static_cast<double>(batch) * stage.nHeads * t * t
        * (1.0 - onehot) * keep_ratio);
    cost.cfseCycles += ceilDiv(
        cfse_.opCycles(CfseOp::Softmax, score_elems),
        static_cast<u64>(cfg_.numDscs));

    // --- Attention x V (probability matrix is row-sparse under EP). --
    const Index av_rows = std::max<Index>(
        1, static_cast<Index>(std::llround(
               static_cast<double>(t) * (1.0 - onehot))));
    const Index av_k = std::max<Index>(
        1,
        static_cast<Index>(std::llround(
            static_cast<double>(t) * keep_ratio)));
    for (Index h = 0; h < stage.nHeads; ++h) {
        cost.sdueCycles += static_cast<Cycle>(batch)
            * parDenseCycles(av_rows, av_k, dh, &cost.activeDpuCycles,
                             &cost.gatedDpuCycles);
    }
    cost.executedOps += stage.nHeads * batch * mmulOps(av_rows, av_k,
                                                       dh);

    // --- Output projection (dense). ---
    cost.sdueCycles += parDenseCycles(batch_rows, d, d,
                                      &cost.activeDpuCycles,
                                      &cost.gatedDpuCycles);
    cost.executedOps += mmulOps(batch_rows, d, d);
    cost.weightBytes += int12Bytes(static_cast<u64>(d) * d);

    // --- LayerNorm + residual + requantisation. ---
    const u64 token_elems = static_cast<u64>(batch_rows) * d;
    Cycle cfse = cfse_.opCycles(CfseOp::LayerNorm, token_elems)
        + cfse_.opCycles(CfseOp::ResidualAdd, token_elems)
        + cfse_.opCycles(CfseOp::Quantize, token_elems);
    cost.cfseCycles += ceilDiv(cfse, static_cast<u64>(cfg_.numDscs));

    cost.activationBytes += 2 * int12Bytes(token_elems);
    return cost;
}

ExionPerfModel::BlockCost
ExionPerfModel::ffnCost(const StageConfig &stage, Index batch_rows,
                        bool geglu, bool sparse_iteration,
                        const SparsityProfile &prof,
                        const ConMergeSummary &ffn_summary) const
{
    BlockCost cost;
    const Index d = stage.dModel;
    const Index hid = stage.ffnMult * d;
    const int ffn1_paths = geglu ? 2 : 1;

    cost.denseOps += ffn1_paths * mmulOps(batch_rows, d, hid);
    cost.denseOps += mmulOps(batch_rows, hid, d);

    const u64 token_elems = static_cast<u64>(batch_rows) * d;
    const u64 hidden_elems = static_cast<u64>(batch_rows) * hid;

    if (!sparse_iteration) {
        // Dense iteration: full FFN; CAU sorts/merges in the shadow of
        // the SDUE sweep (its cycles surface via cauCycles).
        for (int path = 0; path < ffn1_paths; ++path) {
            cost.sdueCycles += parDenseCycles(batch_rows, d, hid,
                                              &cost.activeDpuCycles,
                                              &cost.gatedDpuCycles);
            cost.executedOps += mmulOps(batch_rows, d, hid);
        }
        cost.sdueCycles += parDenseCycles(batch_rows, hid, d,
                                          &cost.activeDpuCycles,
                                          &cost.gatedDpuCycles);
        cost.executedOps += mmulOps(batch_rows, hid, d);
        cost.weightBytes +=
            int12Bytes(static_cast<u64>(ffn1_paths + 1) * d * hid);
        cost.cfseCycles += ceilDiv(
            cfse_.opCycles(CfseOp::Gelu, hidden_elems),
            static_cast<u64>(cfg_.numDscs));
        if (ablationUsesFfnReuse(ablation_)) {
            const double groups = static_cast<double>(
                ceilDiv(batch_rows, kLanes));
            cost.cauCycles += static_cast<Cycle>(std::ceil(
                groups * ffn_summary.mergeCyclesPerGroup
                / cfg_.numDscs));
        }
    } else {
        // Sparse iteration: 1st layer through merged tiles.
        const double groups =
            static_cast<double>(ceilDiv(batch_rows, kLanes));
        const u64 tiles = static_cast<u64>(
            std::ceil(groups * ffn_summary.tilesPerGroup));
        const u64 k_steps = ceilDiv(d, cfg_.dsc.laneLength);
        cost.sdueCycles += static_cast<Cycle>(ffn1_paths)
            * ceilDiv(tiles, static_cast<u64>(cfg_.numDscs)) * k_steps;
        const u64 tile_dpu = static_cast<u64>(ffn1_paths) * tiles
            * k_steps * cfg_.dsc.dpuRows * cfg_.dsc.dpuCols;
        cost.activeDpuCycles += static_cast<u64>(
            tile_dpu * ffn_summary.tileOccupancy);
        cost.gatedDpuCycles += static_cast<u64>(
            tile_dpu * (1.0 - ffn_summary.tileOccupancy));
        const double density = prof.ffnMask.density;
        cost.executedOps += static_cast<OpCount>(
            ffn1_paths * mmulOps(batch_rows, d, hid) * density);

        // GELU only on recomputed elements.
        cost.cfseCycles += ceilDiv(
            cfse_.opCycles(CfseOp::Gelu,
                           static_cast<u64>(hidden_elems * density)),
            static_cast<u64>(cfg_.numDscs));

        // 2nd layer: accumulate updates onto cached partial sums.
        const Index k_eff = std::max<Index>(
            1, static_cast<Index>(std::ceil(
                   static_cast<double>(hid) * density
                   * kFfn2GatherOverhead)));
        cost.sdueCycles += parDenseCycles(batch_rows, k_eff, d,
                                          &cost.activeDpuCycles,
                                          &cost.gatedDpuCycles);
        cost.executedOps += static_cast<OpCount>(
            mmulOps(batch_rows, hid, d) * density);

        // Weight fetch shrinks to the condensed column set.
        const double col_keep = ffn_summary.condenseRemainingFraction;
        cost.weightBytes += static_cast<u64>(
            int12Bytes(static_cast<u64>(ffn1_paths + 1) * d * hid)
            * col_keep);
        // Cached partial sums stream through the scratchpad.
        cost.activationBytes += 2 * int12Bytes(token_elems);
    }

    Cycle cfse = cfse_.opCycles(CfseOp::LayerNorm, token_elems)
        + cfse_.opCycles(CfseOp::ResidualAdd, token_elems)
        + cfse_.opCycles(CfseOp::Quantize, token_elems);
    cost.cfseCycles += ceilDiv(cfse, static_cast<u64>(cfg_.numDscs));
    cost.activationBytes += 2 * int12Bytes(token_elems);
    return cost;
}

ExionPerfModel::BlockCost
ExionPerfModel::resBlockCost(const StageConfig &stage,
                             Index batch_rows) const
{
    BlockCost cost;
    const Index d = stage.dModel;
    // Two 3x3 convs as im2col GEMMs; no sparsity optimisation.
    for (int conv = 0; conv < 2; ++conv) {
        cost.sdueCycles += parDenseCycles(batch_rows, 9 * d, d,
                                          &cost.activeDpuCycles,
                                          &cost.gatedDpuCycles);
        cost.denseOps += mmulOps(batch_rows, 9 * d, d);
        cost.executedOps += mmulOps(batch_rows, 9 * d, d);
        cost.weightBytes += int12Bytes(9ull * d * d);
    }
    const u64 token_elems = static_cast<u64>(batch_rows) * d;
    Cycle cfse = cfse_.opCycles(CfseOp::Gelu, token_elems)
        + cfse_.opCycles(CfseOp::ResidualAdd, token_elems);
    cost.cfseCycles += ceilDiv(cfse, static_cast<u64>(cfg_.numDscs));
    cost.activationBytes += 2 * int12Bytes(token_elems);
    return cost;
}

RunStats
ExionPerfModel::run(const ModelConfig &model, const SparsityProfile &prof,
                    int batch)
{
    EXION_ASSERT(batch >= 1, "batch ", batch);
    RunStats stats;

    const bool use_ffnr = ablationUsesFfnReuse(ablation_);
    const int interval = model.ffnReuse.denseInterval + 1;
    int dense_iters = 0;
    int sparse_iters = 0;
    for (int i = 0; i < model.iterations; ++i) {
        if (!use_ffnr || i % interval == 0)
            ++dense_iters;
        else
            ++sparse_iters;
    }

    // Per-DPU energies for occupancy-weighted accounting.
    const double per_dpu_active =
        energy_.activeEnergyPerCycle(DscComponent::Sdue)
        / static_cast<double>(cfg_.dsc.dpuRows * cfg_.dsc.dpuCols);
    const double per_dpu_gated =
        per_dpu_active * EnergyModel::kGatedFraction;

    // Model weights are refetched per iteration unless they fit in
    // the shared scratchpad.
    u64 weight_bytes_once = 0;

    auto accumulate = [&](const BlockCost &cost, int times) {
        if (times == 0)
            return;
        const double n = static_cast<double>(times);
        // Visible latency: SDUE serialises with the non-overlapped
        // CFSE share; EPRE and CAU run in the pipeline shadow.
        const Cycle visible_cfse = static_cast<Cycle>(std::max(
            0.0, static_cast<double>(cost.cfseCycles)
                     - kCfseOverlap
                           * static_cast<double>(cost.sdueCycles)));
        const Cycle compute = std::max(
            cost.sdueCycles + visible_cfse,
            std::max(cost.epreCycles, cost.cauCycles));
        const u64 dma_bytes = cost.weightBytes + cost.activationBytes;
        const Cycle dma = dram_.transferCycles(dma_bytes,
                                               cfg_.dsc.clockGhz);
        stats.wallCycles += static_cast<Cycle>(
            n * static_cast<double>(std::max(compute, dma)));

        stats.sdueEnergy += n
            * (static_cast<double>(cost.activeDpuCycles) * per_dpu_active
               + static_cast<double>(cost.gatedDpuCycles)
                   * per_dpu_gated);
        stats.epreEnergy += n * static_cast<double>(cost.epreCycles)
            * cfg_.numDscs
            * energy_.activeEnergyPerCycle(DscComponent::Epre);
        stats.cfseEnergy += n * static_cast<double>(cost.cfseCycles)
            * cfg_.numDscs
            * energy_.activeEnergyPerCycle(DscComponent::Cfse);
        stats.cauEnergy += n * static_cast<double>(cost.cauCycles)
            * cfg_.numDscs
            * energy_.activeEnergyPerCycle(DscComponent::Cau);
        stats.dramEnergy += n * dram_.transferEnergy(dma_bytes);
        stats.dramBytes += static_cast<u64>(n) * dma_bytes;
        stats.denseOps += static_cast<OpCount>(n) * cost.denseOps;
        stats.executedOps +=
            static_cast<OpCount>(n) * cost.executedOps;
    };

    for (const auto &stage : model.stages) {
        const Index batch_rows = stage.tokens * batch;
        const ConMergeSummary &ffn_sum = use_ffnr
            ? ffnSummary(stage, batch_rows, prof)
            : ConMergeSummary{};
        const ConMergeSummary &score_sum = ablationUsesEp(ablation_)
            ? scoreSummary(stage, prof)
            : ConMergeSummary{};

        // Transformer blocks.
        if (stage.nBlocks > 0) {
            const BlockCost attn = attentionCost(stage, batch_rows,
                                                 batch, prof, score_sum);
            accumulate(attn, static_cast<int>(stage.nBlocks)
                                 * model.iterations);
            const BlockCost ffn_dense = ffnCost(stage, batch_rows,
                                                model.geglu, false,
                                                prof, ffn_sum);
            accumulate(ffn_dense,
                       static_cast<int>(stage.nBlocks) * dense_iters);
            if (sparse_iters > 0) {
                const BlockCost ffn_sparse = ffnCost(
                    stage, batch_rows, model.geglu, true, prof,
                    ffn_sum);
                accumulate(ffn_sparse, static_cast<int>(stage.nBlocks)
                                           * sparse_iters);
            }
            weight_bytes_once += stage.nBlocks
                * int12Bytes(
                      (4ull + (model.geglu ? 3ull : 2ull) * stage.ffnMult)
                      * stage.dModel * stage.dModel);
        }
        // ResBlocks.
        if (stage.nResBlocks > 0) {
            const BlockCost res = resBlockCost(stage, batch_rows);
            accumulate(res, static_cast<int>(stage.nResBlocks)
                                * model.iterations);
            weight_bytes_once += stage.nResBlocks
                * int12Bytes(18ull * stage.dModel * stage.dModel);
        }
    }

    // In/out latent projections (etc.), dense each iteration.
    {
        BlockCost proj;
        const Index rows = model.latentTokens * batch;
        proj.sdueCycles += parDenseCycles(rows, model.latentDim,
                                          model.stages.front().dModel,
                                          &proj.activeDpuCycles,
                                          &proj.gatedDpuCycles);
        proj.sdueCycles += parDenseCycles(rows,
                                          model.stages.back().dModel,
                                          model.latentDim,
                                          &proj.activeDpuCycles,
                                          &proj.gatedDpuCycles);
        proj.denseOps += mmulOps(rows, model.latentDim,
                                 model.stages.front().dModel)
            + mmulOps(rows, model.stages.back().dModel,
                      model.latentDim);
        proj.executedOps = proj.denseOps;
        proj.activationBytes += 2 * int12Bytes(
            static_cast<u64>(rows) * model.latentDim);
        accumulate(proj, model.iterations);
    }

    stats.wallCycles += static_cast<Cycle>(model.iterations)
        * kIterationOverheadCycles;

    // Idle/background energy: memories + control draw a constant
    // fraction across the run; idle fractions for compute units.
    const double wall = static_cast<double>(stats.wallCycles);
    stats.memEnergy += wall * cfg_.numDscs
        * energy_.activeEnergyPerCycle(DscComponent::OnChipMemories)
        * 0.6;
    stats.ctrlEnergy += wall * cfg_.numDscs
        * energy_.activeEnergyPerCycle(DscComponent::ControlDmaEtc)
        * 0.6;
    for (DscComponent c : {DscComponent::Sdue, DscComponent::Epre,
                           DscComponent::Cfse, DscComponent::Cau}) {
        const EnergyPj idle = wall * cfg_.numDscs
            * energy_.activeEnergyPerCycle(c)
            * EnergyModel::kIdleFraction;
        switch (c) {
          case DscComponent::Sdue:
            stats.sdueEnergy += idle;
            break;
          case DscComponent::Epre:
            stats.epreEnergy += idle;
            break;
          case DscComponent::Cfse:
            stats.cfseEnergy += idle;
            break;
          default:
            stats.cauEnergy += idle;
            break;
        }
    }

    // Whole-model weight refetch when the GSC cannot hold the model.
    if (weight_bytes_once > cfg_.gscBytes) {
        // Already charged per block per iteration above.
    } else if (model.iterations > 1) {
        // Weights stay resident: refund the refetches after the first
        // iteration (approximate — per-block charges assumed uniform).
        const double refund_fraction =
            static_cast<double>(model.iterations - 1)
            / static_cast<double>(model.iterations);
        const u64 weight_traffic = static_cast<u64>(
            static_cast<double>(stats.dramBytes) * 0.7
            * refund_fraction);
        stats.dramBytes -= std::min(stats.dramBytes, weight_traffic);
        stats.dramEnergy -= dram_.transferEnergy(weight_traffic);
    }

    stats.latencySeconds = static_cast<double>(stats.wallCycles)
        / (cfg_.dsc.clockGhz * 1e9);
    stats.energy = stats.sdueEnergy + stats.epreEnergy
        + stats.cfseEnergy + stats.cauEnergy + stats.memEnergy
        + stats.ctrlEnergy + stats.dramEnergy;
    return stats;
}

} // namespace exion
