#include "exion/accel/sparsity_profile.h"

#include "exion/common/logging.h"

namespace exion
{

SparsityProfile
profileFor(Benchmark b)
{
    SparsityProfile p;
    p.ffnMask = ffnMaskParams(b);
    p.scoreMask = scoreMaskParams(b);
    // Projection skips: per-model values chosen so the benchmark
    // average lands near the paper's 26% (Q) / 22% (K,V).
    switch (b) {
      case Benchmark::MLD:
        p.qRowSkip = 0.12;
        p.kColSkip = 0.10;
        p.vColSkip = 0.08;
        break;
      case Benchmark::MDM:
        p.qRowSkip = 0.45;
        p.kColSkip = 0.40;
        p.vColSkip = 0.35;
        break;
      case Benchmark::EDGE:
        p.qRowSkip = 0.22;
        p.kColSkip = 0.18;
        p.vColSkip = 0.15;
        break;
      case Benchmark::MakeAnAudio:
        p.qRowSkip = 0.25;
        p.kColSkip = 0.22;
        p.vColSkip = 0.20;
        break;
      case Benchmark::StableDiffusion:
        p.qRowSkip = 0.06;
        p.kColSkip = 0.05;
        p.vColSkip = 0.04;
        break;
      case Benchmark::DiT:
        p.qRowSkip = 0.45;
        p.kColSkip = 0.40;
        p.vColSkip = 0.35;
        break;
      case Benchmark::VideoCrafter2:
        p.qRowSkip = 0.15;
        p.kColSkip = 0.12;
        p.vColSkip = 0.10;
        break;
    }
    return p;
}

} // namespace exion
