#include "exion/accel/exion_config.h"

#include "exion/common/logging.h"

namespace exion
{

std::string
ablationName(Ablation a)
{
    switch (a) {
      case Ablation::Base:
        return "Base";
      case Ablation::Ep:
        return "EP";
      case Ablation::Ffnr:
        return "FFNR";
      case Ablation::All:
        return "All";
    }
    EXION_PANIC("unhandled ablation");
}

bool
ablationUsesEp(Ablation a)
{
    return a == Ablation::Ep || a == Ablation::All;
}

bool
ablationUsesFfnReuse(Ablation a)
{
    return a == Ablation::Ffnr || a == Ablation::All;
}

double
ExionConfig::peakTops() const
{
    return numDscs * dsc.peakTops();
}

ExionConfig
exion4()
{
    ExionConfig cfg;
    cfg.name = "EXION4";
    cfg.numDscs = 4;
    cfg.dramType = DramType::Lpddr5;
    cfg.dramBandwidthGbs = 51.0;
    cfg.gscBytes = 4ull * 512 * 1024;
    return cfg;
}

ExionConfig
exion24()
{
    ExionConfig cfg;
    cfg.name = "EXION24";
    cfg.numDscs = 24;
    cfg.dramType = DramType::Gddr6;
    cfg.dramBandwidthGbs = 819.0;
    cfg.gscBytes = 64ull * 1024 * 1024;
    return cfg;
}

ExionConfig
exion42()
{
    ExionConfig cfg;
    cfg.name = "EXION42";
    cfg.numDscs = 42;
    cfg.dramType = DramType::Gddr6;
    cfg.dramBandwidthGbs = 1935.0;
    cfg.gscBytes = 112ull * 1024 * 1024;
    return cfg;
}

} // namespace exion
