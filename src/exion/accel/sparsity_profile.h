/**
 * @file
 * Per-benchmark sparsity profiles for full-scale accounting.
 *
 * The reduced-scale functional runs measure what the optimisations
 * actually achieve (bench_table1 prints the live numbers); these
 * profiles carry the calibrated equivalents to paper-scale accounting
 * where full numerics are infeasible. Sources: Table I (sparsity
 * levels, N, q_th, k), Section II-B (projection skip averages), and
 * the DESIGN.md mask-structure calibration.
 */

#ifndef EXION_ACCEL_SPARSITY_PROFILE_H_
#define EXION_ACCEL_SPARSITY_PROFILE_H_

#include "exion/model/config.h"
#include "exion/sparsity/mask_synth.h"

namespace exion
{

/**
 * Everything the performance model needs to know about a workload's
 * sparsity behaviour at full scale.
 */
struct SparsityProfile
{
    /** Inter-iteration recompute-mask structure (1st FFN output). */
    FfnMaskParams ffnMask;
    /** Intra-iteration attention-score keep structure. */
    ScoreMaskParams scoreMask;
    /** Fraction of query rows skipped (one-hot rows, union of heads). */
    double qRowSkip = 0.0;
    /** Fraction of key tokens whose K projection is skipped. */
    double kColSkip = 0.0;
    /** Fraction of value tokens whose V projection is skipped. */
    double vColSkip = 0.0;
};

/** Calibrated profile of a benchmark. */
SparsityProfile profileFor(Benchmark b);

} // namespace exion

#endif // EXION_ACCEL_SPARSITY_PROFILE_H_
