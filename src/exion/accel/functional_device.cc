#include "exion/accel/functional_device.h"

#include "exion/common/bitops.h"
#include "exion/common/logging.h"

namespace exion
{

SparseMatmulResult
sparseMatmulViaConMerge(const Matrix &input, const Matrix &weight,
                        const Bitmask2D &out_mask,
                        const ConMergeConfig &cfg)
{
    EXION_ASSERT(input.cols() == weight.rows(),
                 "operand shape mismatch");
    EXION_ASSERT(out_mask.rows() == input.rows()
                     && out_mask.cols() == weight.cols(),
                 "mask shape mismatch");

    SparseMatmulResult result;
    result.output = Matrix(input.rows(), weight.cols());
    result.conStats.matrixColumns = out_mask.cols();
    result.conStats.matrixNonEmptyColumns =
        out_mask.nonEmptyColumnCount();

    ConMergePipeline pipeline(cfg);
    Sdue sdue{DscParams{}};

    const Index groups = ceilDiv(input.rows(), kLanes);
    for (Index g = 0; g < groups; ++g) {
        const Index row_base = g * kLanes;
        GroupResult group = pipeline.processGroup(out_mask, row_base);
        for (const auto &tile : group.tiles) {
            tile.checkInvariants();
            result.sdueStats.add(sdue.executeMergedTile(
                tile, input, weight, row_base, result.output));
        }
        result.conStats.add(group);
    }
    return result;
}

} // namespace exion
