/**
 * @file
 * Accelerator instances and ablation points (Table II / Section V-B).
 *
 * EXION4 pairs 4 DSCs with LPDDR5 at 51 GB/s to match the edge GPU;
 * EXION24 pairs 24 DSCs with GDDR6 at 819 GB/s to match the server
 * GPU; EXION42 with 1935 GB/s matches the A100 for the Fig. 19(b)
 * comparison against Cambricon-D.
 */

#ifndef EXION_ACCEL_EXION_CONFIG_H_
#define EXION_ACCEL_EXION_CONFIG_H_

#include <string>

#include "exion/sim/dram.h"
#include "exion/sim/params.h"

namespace exion
{

/** Optimisation ablations evaluated in Fig. 18. */
enum class Ablation
{
    Base, //!< no sparsity optimisations (quantised dense)
    Ep,   //!< eager prediction only (intra-iteration sparsity)
    Ffnr, //!< FFN-Reuse only (inter-iteration sparsity)
    All,  //!< both optimisations
};

/** Display name, e.g. "EXION4_All". */
std::string ablationName(Ablation a);

/** True when the ablation enables eager prediction. */
bool ablationUsesEp(Ablation a);

/** True when the ablation enables FFN-Reuse. */
bool ablationUsesFfnReuse(Ablation a);

/**
 * One EXION device instance.
 */
struct ExionConfig
{
    std::string name;
    int numDscs = 1;
    DramType dramType = DramType::Lpddr5;
    double dramBandwidthGbs = 51.0;
    Index gscBytes = 512 * 1024; //!< shared scratchpad
    DscParams dsc;

    /** Peak throughput across all DSCs, in TOPS. */
    double peakTops() const;
};

/** Edge instance: 4 DSCs, LPDDR5 51 GB/s. */
ExionConfig exion4();

/** Server instance: 24 DSCs, GDDR6 819 GB/s, 64 MB GSC. */
ExionConfig exion24();

/** A100-class instance: 42 DSCs, GDDR6 1935 GB/s. */
ExionConfig exion42();

} // namespace exion

#endif // EXION_ACCEL_EXION_CONFIG_H_
