/**
 * @file
 * Functional execution of output-sparse MMULs through ConMerge + SDUE.
 *
 * This is the end-to-end correctness path: a sparsity mask goes
 * through the real ConMerge pipeline, the resulting merged tiles (with
 * their conflict vectors and control maps) execute on the functional
 * SDUE, and the output must equal the dense reference at every masked
 * position. Tests and examples build on it; the analytic performance
 * model is pinned against its cycle counts at small sizes.
 */

#ifndef EXION_ACCEL_FUNCTIONAL_DEVICE_H_
#define EXION_ACCEL_FUNCTIONAL_DEVICE_H_

#include "exion/conmerge/pipeline.h"
#include "exion/sim/sdue.h"
#include "exion/tensor/matrix.h"

namespace exion
{

/** Output and statistics of a ConMerge-executed sparse MMUL. */
struct SparseMatmulResult
{
    Matrix output;           //!< masked positions computed, rest zero
    ConMergeStats conStats;  //!< compaction statistics
    SdueRunStats sdueStats;  //!< array cycles / occupancy
};

/**
 * Computes out = input * weight at the mask's non-sparse positions.
 *
 * @param input   m x k input matrix
 * @param weight  k x n weight matrix
 * @param out_mask m x n output mask (1 = compute)
 * @param cfg     ConMerge configuration
 */
SparseMatmulResult sparseMatmulViaConMerge(
    const Matrix &input, const Matrix &weight, const Bitmask2D &out_mask,
    const ConMergeConfig &cfg = {});

} // namespace exion

#endif // EXION_ACCEL_FUNCTIONAL_DEVICE_H_
