/**
 * @file
 * Sampled ConMerge estimation for paper-scale matrices.
 *
 * Running ConMerge over every 16-row group of every block of every
 * iteration at full scale is unnecessary: groups are statistically
 * identical under the calibrated mask generators. We run the real
 * pipeline on a handful of sampled groups and use analytic formulas
 * (exact for the generators) for matrix-level condensing.
 */

#ifndef EXION_ACCEL_CONMERGE_ESTIMATOR_H_
#define EXION_ACCEL_CONMERGE_ESTIMATOR_H_

#include "exion/conmerge/pipeline.h"
#include "exion/sparsity/mask_synth.h"

namespace exion
{

/** Summary of ConMerge behaviour on one MMUL's output mask. */
struct ConMergeSummary
{
    /** Matrix-level remaining columns after condensing (Fig. 8). */
    double condenseRemainingFraction = 1.0;
    /** Physical columns after merging, relative to original (Fig. 9). */
    double mergedRemainingFraction = 1.0;
    /** Merged tiles per 16-row group. */
    double tilesPerGroup = 0.0;
    /** Occupied-DPU fraction inside merged tiles (energy gating). */
    double tileOccupancy = 0.0;
    /** CAU merge cycles per 16-row group (Fig. 12). */
    double mergeCyclesPerGroup = 0.0;
};

/** Estimates ConMerge on an FFN recompute mask of rows x cols. */
ConMergeSummary estimateFfnConMerge(Index rows, Index cols,
                                    const FfnMaskParams &params,
                                    Index sample_groups, u64 seed,
                                    const ConMergeConfig &cfg = {});

/** Estimates ConMerge on an attention-score keep mask (rows = T_q). */
ConMergeSummary estimateScoreConMerge(Index rows, Index cols,
                                      const ScoreMaskParams &params,
                                      Index sample_groups, u64 seed,
                                      const ConMergeConfig &cfg = {});

/** Analytic matrix-level condensing for the FFN mask generator. */
double analyticFfnCondenseRemaining(Index rows,
                                    const FfnMaskParams &params);

/** Analytic matrix-level condensing for the score mask generator. */
double analyticScoreCondenseRemaining(Index rows, Index cols,
                                      const ScoreMaskParams &params);

} // namespace exion

#endif // EXION_ACCEL_CONMERGE_ESTIMATOR_H_
