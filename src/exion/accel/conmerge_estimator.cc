#include "exion/accel/conmerge_estimator.h"

#include <cmath>

#include "exion/common/logging.h"

namespace exion
{

double
analyticFfnCondenseRemaining(Index rows, const FfnMaskParams &p)
{
    const double r = static_cast<double>(rows);
    const double bg_frac = 1.0 - p.deadColFraction - p.hotColFraction;
    const double bg_empty = std::pow(1.0 - p.backgroundDensity(), r);
    const double hot_empty = std::pow(1.0 - p.hotColDensity, r);
    const double empty = p.deadColFraction + bg_frac * bg_empty
        + p.hotColFraction * hot_empty;
    return 1.0 - empty;
}

double
analyticScoreCondenseRemaining(Index rows, Index cols,
                               const ScoreMaskParams &p)
{
    // Cold columns are never attended; a warm column c is kept by a
    // non-one-hot row with probability roughly keep_k * w_c / W
    // (weighted sampling without replacement, first-order). Average
    // P(empty) over the Zipf weight spectrum.
    const Index cold = static_cast<Index>(
        p.coldColFraction * static_cast<double>(cols));
    const Index warm = cols - cold;
    const double keep_k = std::min<double>(
        static_cast<double>(warm),
        std::max(1.0,
                 std::ceil(p.keepRatio * static_cast<double>(cols))));
    double w_total = 0.0;
    for (Index c = 0; c < warm; ++c)
        w_total += std::pow(static_cast<double>(c + 1), -p.zipfAlpha);

    double empty_mean = static_cast<double>(cold);
    for (Index c = 0; c < warm; ++c) {
        const double w = std::pow(static_cast<double>(c + 1),
                                  -p.zipfAlpha);
        const double q = std::min(1.0, keep_k * w / w_total);
        const double per_row =
            p.oneHotFraction + (1.0 - p.oneHotFraction) * (1.0 - q);
        empty_mean += std::pow(per_row, static_cast<double>(rows));
    }
    empty_mean /= static_cast<double>(cols);
    return 1.0 - empty_mean;
}

namespace
{

template <typename MaskGen>
ConMergeSummary
estimateCommon(Index cols, Index sample_groups, MaskGen &&gen,
               const ConMergeConfig &cfg)
{
    EXION_ASSERT(sample_groups > 0, "need at least one sample group");
    ConMergePipeline pipeline(cfg);

    ConMergeSummary summary;
    Index positions = 0;
    Index tiles = 0;
    Cycle cycles = 0;
    u64 occupied_cells = 0;
    u64 tile_cells = 0;

    for (Index g = 0; g < sample_groups; ++g) {
        const Bitmask2D mask = gen(g);
        const GroupResult group = pipeline.processGroup(mask, 0);
        positions += group.positionsUsed;
        tiles += group.tiles.size();
        cycles += group.mergeCycles;
        for (const auto &tile : group.tiles) {
            tile_cells += kLanes * kTileCols;
            for (Index lane = 0; lane < kLanes; ++lane)
                for (Index pos = 0; pos < kTileCols; ++pos)
                    occupied_cells +=
                        tile.cell(lane, pos).occupied ? 1 : 0;
        }
    }

    const double denom =
        static_cast<double>(cols) * static_cast<double>(sample_groups);
    summary.mergedRemainingFraction =
        static_cast<double>(positions) / denom;
    summary.tilesPerGroup = static_cast<double>(tiles)
        / static_cast<double>(sample_groups);
    summary.tileOccupancy = tile_cells
        ? static_cast<double>(occupied_cells)
            / static_cast<double>(tile_cells)
        : 0.0;
    summary.mergeCyclesPerGroup = static_cast<double>(cycles)
        / static_cast<double>(sample_groups);
    return summary;
}

} // namespace

ConMergeSummary
estimateFfnConMerge(Index rows, Index cols, const FfnMaskParams &params,
                    Index sample_groups, u64 seed,
                    const ConMergeConfig &cfg)
{
    Rng rng(seed);
    ConMergeSummary summary = estimateCommon(
        cols, sample_groups,
        [&](Index) {
            const Index group_rows = std::min<Index>(kLanes, rows);
            return synthFfnMask(group_rows, cols, params, rng);
        },
        cfg);
    summary.condenseRemainingFraction =
        analyticFfnCondenseRemaining(rows, params);
    return summary;
}

ConMergeSummary
estimateScoreConMerge(Index rows, Index cols,
                      const ScoreMaskParams &params, Index sample_groups,
                      u64 seed, const ConMergeConfig &cfg)
{
    Rng rng(seed);
    ConMergeSummary summary = estimateCommon(
        cols, sample_groups,
        [&](Index) {
            const Index group_rows = std::min<Index>(kLanes, rows);
            return synthScoreMask(group_rows, cols, params, rng);
        },
        cfg);
    summary.condenseRemainingFraction =
        analyticScoreCondenseRemaining(rows, cols, params);
    return summary;
}

} // namespace exion
