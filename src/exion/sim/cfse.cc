#include "exion/sim/cfse.h"

#include "exion/common/bitops.h"
#include "exion/common/logging.h"

namespace exion
{

int
cfsePasses(CfseOp op)
{
    switch (op) {
      case CfseOp::LayerNorm:
        return 3;
      case CfseOp::Softmax:
        return 4;
      case CfseOp::Gelu:
        return 2;
      case CfseOp::ResidualAdd:
        return 1;
      case CfseOp::Quantize:
        return 1;
    }
    EXION_PANIC("unhandled CFSE op");
}

Cfse::Cfse(const DscParams &params, bool two_way)
    : params_(params), twoWay_(two_way)
{
}

Index
Cfse::elementsPerCycle() const
{
    // One SIMD lane per DPU column; two-way mode doubles throughput.
    return params_.dpuCols * (twoWay_ ? 2 : 1);
}

Cycle
Cfse::opCycles(CfseOp op, u64 elements) const
{
    return ceilDiv(elements * cfsePasses(op), elementsPerCycle());
}

} // namespace exion
