/**
 * @file
 * Lowers transformer-layer work into DSC instruction streams.
 *
 * The software stack's "compiler": given layer shapes (and, for
 * sparse iterations, the ConMerge outcome), emit the Load / Mmul /
 * Cfse / Store sequence the top controller executes. Tiling follows
 * the array shape; weight loads precede the sweeps they feed so the
 * double buffering can hide them.
 */

#ifndef EXION_SIM_PROGRAM_BUILDER_H_
#define EXION_SIM_PROGRAM_BUILDER_H_

#include "exion/sim/isa.h"
#include "exion/sim/params.h"

namespace exion
{

/**
 * Instruction-stream builder.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(const DscParams &params);

    /** Appends a dense MMUL (loads + sweep + store). */
    void addDenseMmul(Index m, Index k, Index n);

    /**
     * Appends an output-sparse MMUL through merged tiles.
     *
     * @param tiles        merged tiles to execute
     * @param k            reduction depth
     * @param occupancy    occupied-DPU fraction inside tiles
     * @param weight_cols  origin columns whose weights are fetched
     * @param out_rows     output rows written back
     * @param cau_cycles   CVG cycles for generating the control state
     */
    void addMergedMmul(u64 tiles, Index k, double occupancy,
                       Index weight_cols, Index out_rows,
                       Cycle cau_cycles);

    /** Appends an EPRE prediction for one block's attention. */
    void addEpPredict(Index tokens, Index d_model, Index heads);

    /** Appends a CFSE special function over n elements. */
    void addCfse(CfseOp op, u64 elements);

    /** Appends a barrier. */
    void addSync();

    /** The built program. */
    const Program &program() const { return program_; }

    /** Moves the program out. */
    Program take() { return std::move(program_); }

    /** Bytes of an INT12 tensor. */
    static u64 int12Bytes(u64 elements) { return (elements * 3 + 1) / 2; }

  private:
    DscParams params_;
    Program program_;
};

} // namespace exion

#endif // EXION_SIM_PROGRAM_BUILDER_H_
