#include "exion/sim/top_controller.h"

#include <algorithm>

#include "exion/common/bitops.h"
#include "exion/common/logging.h"

namespace exion
{

double
TraceStats::computeUtilisation() const
{
    if (totalCycles == 0)
        return 0.0;
    const Cycle busy = std::max({sdueBusy, epreBusy, cfseBusy});
    return static_cast<double>(busy) / static_cast<double>(totalCycles);
}

TopController::TopController(const DscParams &params,
                             const DramModel &dram)
    : params_(params), dram_(dram), sdue_(params), epre_(params),
      cfse_(params)
{
}

Cycle
TopController::instrCycles(const Instr &instr) const
{
    switch (instr.op) {
      case Opcode::LoadInput:
      case Opcode::LoadWeight:
      case Opcode::StoreOutput:
        return dram_.transferCycles(instr.bytes, params_.clockGhz);
      case Opcode::MmulDense:
        return denseMmulCycles(params_, instr.m, instr.k, instr.n);
      case Opcode::MmulMerged:
        return instr.tiles * ceilDiv(instr.k, params_.laneLength);
      case Opcode::EpPredict:
        return epre_.predictAttentionCycles(instr.m, instr.k, instr.n);
      case Opcode::CauMerge:
        return instr.cauCycles;
      case Opcode::CfseExec:
        return cfse_.opCycles(instr.cfseOp, instr.m);
      case Opcode::Sync:
        return 0;
    }
    EXION_PANIC("unhandled opcode");
}

TraceStats
TopController::run(const Program &program) const
{
    TraceStats stats;

    // Double-buffering model: transfers in flight overlap the
    // previous compute window ("credit"). An MMUL pays only the
    // residual of its operand transfers beyond that window — the
    // shadow IMEM/WMEM buffers filled while the prior sweep ran.
    Cycle dma_in_flight = 0;
    Cycle credit = 0;
    Cycle shadow_pending = 0; //!< EPRE/CAU work pending the next Sync

    auto begin_compute = [&](Cycle cost) {
        const Cycle stall =
            dma_in_flight > credit ? dma_in_flight - credit : 0;
        stats.totalCycles += stall + cost;
        stats.stallCycles += stall;
        dma_in_flight = 0;
        credit = cost;
        shadow_pending =
            shadow_pending > cost ? shadow_pending - cost : 0;
    };

    auto drain = [&]() {
        // A Sync waits for everything outstanding.
        const Cycle dma_residual =
            dma_in_flight > credit ? dma_in_flight - credit : 0;
        const Cycle wait = std::max(dma_residual, shadow_pending);
        stats.totalCycles += wait;
        stats.stallCycles += dma_residual;
        dma_in_flight = 0;
        credit = 0;
        shadow_pending = 0;
    };

    for (const Instr &instr : program) {
        ++stats.instructions;
        const Cycle cost = instrCycles(instr);
        switch (instr.op) {
          case Opcode::LoadInput:
          case Opcode::LoadWeight:
          case Opcode::StoreOutput:
            // Shadow-buffer fill / background writeback.
            dma_in_flight += cost;
            stats.dmaBusy += cost;
            break;
          case Opcode::EpPredict:
            stats.epreBusy += cost;
            shadow_pending = std::max(shadow_pending, cost);
            break;
          case Opcode::CauMerge:
            stats.cauBusy += cost;
            shadow_pending = std::max(shadow_pending, cost);
            break;
          case Opcode::MmulDense:
          case Opcode::MmulMerged: {
            begin_compute(cost);
            stats.sdueBusy += cost;
            if (instr.op == Opcode::MmulDense) {
                const SdueRunStats d = sdue_.denseMmulStats(
                    instr.m, instr.k, instr.n);
                stats.activeDpuCycles += d.activeDpuCycles;
                stats.gatedDpuCycles += d.gatedDpuCycles;
            } else {
                const u64 dpu_cycles = cost * params_.dpuRows
                    * params_.dpuCols;
                stats.activeDpuCycles += static_cast<u64>(
                    dpu_cycles * instr.occupancy);
                stats.gatedDpuCycles += static_cast<u64>(
                    dpu_cycles * (1.0 - instr.occupancy));
            }
            break;
          }
          case Opcode::CfseExec:
            begin_compute(cost);
            stats.cfseBusy += cost;
            break;
          case Opcode::Sync:
            drain();
            break;
        }
    }
    drain();
    return stats;
}

} // namespace exion
