/**
 * @file
 * External-memory model.
 *
 * Stands in for the paper's Ramulator integration: the evaluation only
 * exercises DRAM through sustained streaming of weights and
 * activations, so a bandwidth + fixed-latency + energy-per-bit model
 * captures the contribution at this granularity (see DESIGN.md
 * substitution table). Energy figures follow the LPDDR5/GDDR6 vendor
 * data the paper cites.
 */

#ifndef EXION_SIM_DRAM_H_
#define EXION_SIM_DRAM_H_

#include <string>

#include "exion/common/types.h"

namespace exion
{

/** DRAM technology presets. */
enum class DramType
{
    Lpddr5, //!< edge configuration (EXION4)
    Gddr6,  //!< server configuration (EXION24 / EXION42)
};

/**
 * Streaming DRAM channel model.
 */
class DramModel
{
  public:
    /**
     * @param type          technology (sets energy/bit and latency)
     * @param bandwidth_gbs aggregate sustained bandwidth in GB/s
     */
    DramModel(DramType type, double bandwidth_gbs);

    /** Cycles (at core clock) to transfer the given bytes. */
    Cycle transferCycles(u64 bytes, double clock_ghz) const;

    /** Transfer time in seconds. */
    double transferSeconds(u64 bytes) const;

    /** Energy to move the given bytes, in pJ. */
    EnergyPj transferEnergy(u64 bytes) const;

    /** Sustained bandwidth in GB/s. */
    double bandwidthGbs() const { return bandwidthGbs_; }

    /** Energy per bit in pJ. */
    double energyPerBitPj() const { return energyPerBitPj_; }

    /** Access latency in nanoseconds (row activation + burst setup). */
    double latencyNs() const { return latencyNs_; }

    /** Technology name for reports. */
    std::string name() const;

  private:
    DramType type_;
    double bandwidthGbs_;
    double energyPerBitPj_;
    double latencyNs_;
};

} // namespace exion

#endif // EXION_SIM_DRAM_H_
