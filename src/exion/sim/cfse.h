/**
 * @file
 * Configurable SIMD Engine timing model (Fig. 10).
 *
 * The CFSE computes layer normalisation, Softmax, non-linear functions
 * and residual additions with ALUs configurable as one-way 32-bit or
 * two-way 16-bit (double throughput). We model per-element pass counts
 * per function; lane count matches the DPU-array width.
 */

#ifndef EXION_SIM_CFSE_H_
#define EXION_SIM_CFSE_H_

#include "exion/common/types.h"
#include "exion/sim/params.h"

namespace exion
{

/** Special-function kinds the CFSE executes. */
enum class CfseOp
{
    LayerNorm,   //!< mean/var/normalise: 3 passes
    Softmax,     //!< max/exp/sum/scale: 4 passes
    Gelu,        //!< LUT-based non-linearity: 2 passes
    ResidualAdd, //!< elementwise add: 1 pass
    Quantize,    //!< rescale between domains: 1 pass
};

/**
 * CFSE timing model.
 */
class Cfse
{
  public:
    /**
     * @param params   DSC parameters
     * @param two_way  use two-way 16-bit mode (double throughput)
     */
    explicit Cfse(const DscParams &params, bool two_way = true);

    /** Cycles to apply op over n elements. */
    Cycle opCycles(CfseOp op, u64 elements) const;

    /** Elements processed per cycle in the current mode. */
    Index elementsPerCycle() const;

  private:
    DscParams params_;
    bool twoWay_;
};

/** Number of elementwise passes an op needs. */
int cfsePasses(CfseOp op);

} // namespace exion

#endif // EXION_SIM_CFSE_H_
