/**
 * @file
 * Trace-driven DSC top controller.
 *
 * Executes a straight-line Program with the overlap semantics the
 * double-/triple-buffered memories provide: a Load issued while a
 * compute instruction runs fills the shadow buffer and only stalls
 * the pipeline when its transfer outlasts the remaining compute.
 * EPRE and CAU instructions run in the compute shadow as well
 * (Section IV-A: "EPRE's latency is mostly hidden ... due to
 * pipelining schemes"); a Sync drains everything.
 *
 * The analytic ExionPerfModel uses closed forms of the same costs;
 * tests pin the two against each other on generated programs.
 */

#ifndef EXION_SIM_TOP_CONTROLLER_H_
#define EXION_SIM_TOP_CONTROLLER_H_

#include "exion/sim/cfse.h"
#include "exion/sim/dram.h"
#include "exion/sim/epre.h"
#include "exion/sim/isa.h"
#include "exion/sim/params.h"
#include "exion/sim/sdue.h"

namespace exion
{

/** Per-unit busy-cycle accounting for one program run. */
struct TraceStats
{
    Cycle totalCycles = 0;
    Cycle sdueBusy = 0;
    Cycle epreBusy = 0;
    Cycle cfseBusy = 0;
    Cycle cauBusy = 0;
    Cycle dmaBusy = 0;
    Cycle stallCycles = 0; //!< cycles the pipeline waited on DMA
    u64 activeDpuCycles = 0;
    u64 gatedDpuCycles = 0;
    u64 instructions = 0;

    /** Fraction of total time any compute unit was busy. */
    double computeUtilisation() const;
};

/**
 * Executes instruction streams against the component timing models.
 */
class TopController
{
  public:
    TopController(const DscParams &params, const DramModel &dram);

    /** Runs a program to completion and returns the trace stats. */
    TraceStats run(const Program &program) const;

    /** Cycles one instruction occupies its unit (no overlap logic). */
    Cycle instrCycles(const Instr &instr) const;

  private:
    DscParams params_;
    DramModel dram_;
    Sdue sdue_;
    Epre epre_;
    Cfse cfse_;
};

} // namespace exion

#endif // EXION_SIM_TOP_CONTROLLER_H_
