/**
 * @file
 * Hardware parameters of one Diffusion-Sparsity aware Core (Fig. 11).
 *
 * All values follow the paper's "EXION Configuration" column: a 16x16
 * DPU array with lane length 16 (one 16-element dot-product step per
 * DPU per cycle), 16-bank IMEM/OMEM (1.5 KB per bank, double
 * buffered), 16-bank WMEM (12 KB per bank, triple buffered), 50 KB
 * CVMEM, 512 KB GSC, 3 KB INSTMEM, 800 MHz at 0.8 V in 14 nm.
 */

#ifndef EXION_SIM_PARAMS_H_
#define EXION_SIM_PARAMS_H_

#include "exion/common/types.h"

namespace exion
{

/** DSC hardware configuration. */
struct DscParams
{
    Index dpuRows = 16;      //!< DPU lanes
    Index dpuCols = 16;      //!< DPU columns
    /**
     * MACs per DPU per cycle. 24 multipliers per DPU make one DSC
     * peak at 2 * 256 * 24 * 0.8 GHz = 9.83 TOPS, matching Table II's
     * 9.8 TOPS per DSC (EXION4 = 39.2, EXION24 = 235.2).
     */
    Index laneLength = 24;
    Index imemBanks = 16;
    Index imemBankBytes = 1536;
    Index wmemBanks = 16;
    Index wmemBankBytes = 12288;
    Index omemBanks = 16;
    Index omemBankBytes = 1536;
    Index cvmemBytes = 50 * 1024;
    Index instmemBytes = 3 * 1024;
    Index gscBytes = 512 * 1024;
    double clockGhz = 0.8;
    int mmulBits = 12;  //!< SDUE / EPRE operand width
    int simdBits = 16;  //!< CFSE two-way element width

    /** MACs the whole DPU array retires per cycle. */
    Index
    macsPerCycle() const
    {
        return dpuRows * dpuCols * laneLength;
    }

    /** Peak throughput in TOPS (MAC = 2 ops). */
    double
    peakTops() const
    {
        return 2.0 * static_cast<double>(macsPerCycle()) * clockGhz
            * 1e9 / 1e12;
    }
};

/** Cycle count of a dense (m x k) * (k x n) MMUL on the array. */
Cycle denseMmulCycles(const DscParams &p, Index m, Index k, Index n);

} // namespace exion

#endif // EXION_SIM_PARAMS_H_
