/**
 * @file
 * Sparse-Dense Unified Engine (Fig. 11).
 *
 * Functional + timing model of the DPU array. Dense MMULs broadcast
 * one IMEM bank per lane and one WMEM bank per column; merged tiles
 * additionally route displaced inputs over each lane's conflict line
 * (CV) and select among the three WMEM buffers per column (w_sw).
 *
 * The functional path is the golden check that ConMerge control state
 * reproduces dense results; the timing path feeds the performance
 * model. One tile pass costs ceil(K / laneLength) cycles regardless of
 * occupancy — unoccupied DPUs are clock gated, which the energy model
 * accounts for via the active fraction.
 */

#ifndef EXION_SIM_SDUE_H_
#define EXION_SIM_SDUE_H_

#include "exion/conmerge/merged_tile.h"
#include "exion/sim/params.h"
#include "exion/tensor/matrix.h"

namespace exion
{

/** Timing/occupancy result of executing tiles on the SDUE. */
struct SdueRunStats
{
    Cycle cycles = 0;
    u64 tilePasses = 0;
    u64 activeDpuCycles = 0; //!< cycles x occupied DPUs
    u64 gatedDpuCycles = 0;  //!< cycles x gated DPUs

    /** Fraction of DPU-cycles doing useful work. */
    double activeFraction() const;

    /** Accumulates another run. */
    void add(const SdueRunStats &other);
};

/**
 * DPU-array execution engine.
 */
class Sdue
{
  public:
    explicit Sdue(const DscParams &params);

    /**
     * Dense MMUL timing: full (m x k) * (k x n) sweep.
     */
    SdueRunStats denseMmulStats(Index m, Index k, Index n) const;

    /**
     * Functional + timing execution of one merged tile.
     *
     * Computes, for every occupied cell, the dot product of the
     * source input row and the origin weight column, writing the
     * result into out at (row_base + srcLane, originCol).
     *
     * @param tile     merged tile (control state)
     * @param input    full input matrix (m x k)
     * @param weight   full weight matrix (k x n)
     * @param row_base first row of the tile's 16-lane group
     * @param[in,out] out output matrix (m x n), only masked cells set
     */
    SdueRunStats executeMergedTile(const MergedTile &tile,
                                   const Matrix &input,
                                   const Matrix &weight, Index row_base,
                                   Matrix &out) const;

    /**
     * Timing-only execution of one merged tile (no data).
     *
     * @param tile merged tile
     * @param k    inner (reduction) dimension
     */
    SdueRunStats mergedTileStats(const MergedTile &tile, Index k) const;

    /** Hardware parameters. */
    const DscParams &params() const { return params_; }

  private:
    DscParams params_;
};

} // namespace exion

#endif // EXION_SIM_SDUE_H_
