#include "exion/sim/sdue.h"

#include "exion/common/bitops.h"
#include "exion/common/logging.h"

namespace exion
{

double
SdueRunStats::activeFraction() const
{
    const u64 total = activeDpuCycles + gatedDpuCycles;
    if (total == 0)
        return 0.0;
    return static_cast<double>(activeDpuCycles)
        / static_cast<double>(total);
}

void
SdueRunStats::add(const SdueRunStats &other)
{
    cycles += other.cycles;
    tilePasses += other.tilePasses;
    activeDpuCycles += other.activeDpuCycles;
    gatedDpuCycles += other.gatedDpuCycles;
}

Cycle
denseMmulCycles(const DscParams &p, Index m, Index k, Index n)
{
    const u64 row_tiles = ceilDiv(m, p.dpuRows);
    const u64 col_tiles = ceilDiv(n, p.dpuCols);
    const u64 k_steps = ceilDiv(k, p.laneLength);
    return row_tiles * col_tiles * k_steps;
}

Sdue::Sdue(const DscParams &params) : params_(params)
{
}

SdueRunStats
Sdue::denseMmulStats(Index m, Index k, Index n) const
{
    SdueRunStats stats;
    const u64 row_tiles = ceilDiv(m, params_.dpuRows);
    const u64 col_tiles = ceilDiv(n, params_.dpuCols);
    const u64 k_steps = ceilDiv(k, params_.laneLength);
    stats.tilePasses = row_tiles * col_tiles;
    stats.cycles = stats.tilePasses * k_steps;

    // Edge tiles leave part of the array idle; account exactly.
    const u64 full_rows = m / params_.dpuRows;
    const u64 rem_rows = m % params_.dpuRows;
    const u64 full_cols = n / params_.dpuCols;
    const u64 rem_cols = n % params_.dpuCols;
    auto tile_active = [&](u64 rows, u64 cols) {
        return rows * cols * k_steps;
    };
    u64 active = 0;
    active += full_rows * full_cols
        * tile_active(params_.dpuRows, params_.dpuCols);
    if (rem_rows)
        active += full_cols * tile_active(rem_rows, params_.dpuCols);
    if (rem_cols)
        active += full_rows * tile_active(params_.dpuRows, rem_cols);
    if (rem_rows && rem_cols)
        active += tile_active(rem_rows, rem_cols);
    stats.activeDpuCycles = active;
    stats.gatedDpuCycles =
        stats.cycles * params_.dpuRows * params_.dpuCols - active;
    return stats;
}

SdueRunStats
Sdue::mergedTileStats(const MergedTile &tile, Index k) const
{
    SdueRunStats stats;
    const u64 k_steps = ceilDiv(k, params_.laneLength);
    stats.tilePasses = 1;
    stats.cycles = k_steps;

    u64 occupied = 0;
    for (Index lane = 0; lane < kLanes; ++lane)
        for (Index pos = 0; pos < kTileCols; ++pos)
            occupied += tile.cell(lane, pos).occupied ? 1 : 0;
    stats.activeDpuCycles = occupied * k_steps;
    stats.gatedDpuCycles =
        (params_.dpuRows * params_.dpuCols - occupied) * k_steps;
    return stats;
}

SdueRunStats
Sdue::executeMergedTile(const MergedTile &tile, const Matrix &input,
                        const Matrix &weight, Index row_base,
                        Matrix &out) const
{
    EXION_ASSERT(input.cols() == weight.rows(),
                 "sdue operand shape mismatch");
    EXION_ASSERT(out.rows() == input.rows()
                     && out.cols() == weight.cols(),
                 "sdue output shape mismatch");

    for (Index lane = 0; lane < kLanes; ++lane) {
        for (Index pos = 0; pos < kTileCols; ++pos) {
            const TileCell &cell = tile.cell(lane, pos);
            if (!cell.occupied)
                continue;
            const Index row = row_base + cell.srcLane;
            EXION_ASSERT(row < input.rows(), "source row ", row,
                         " beyond input");
            EXION_ASSERT(cell.originCol < weight.cols(),
                         "origin column out of range");
            float acc = 0.0f;
            const float *in_row = input.rowPtr(row);
            for (Index e = 0; e < input.cols(); ++e)
                acc += in_row[e] * weight(e, cell.originCol);
            out(row, cell.originCol) = acc;
        }
    }
    return mergedTileStats(tile, input.cols());
}

} // namespace exion
