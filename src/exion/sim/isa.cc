#include "exion/sim/isa.h"

#include <sstream>

#include "exion/common/logging.h"

namespace exion
{

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::LoadInput:
        return "LD.IN";
      case Opcode::LoadWeight:
        return "LD.WT";
      case Opcode::MmulDense:
        return "MMUL.D";
      case Opcode::MmulMerged:
        return "MMUL.M";
      case Opcode::EpPredict:
        return "EP.PRED";
      case Opcode::CauMerge:
        return "CAU.MRG";
      case Opcode::CfseExec:
        return "CFSE";
      case Opcode::StoreOutput:
        return "ST.OUT";
      case Opcode::Sync:
        return "SYNC";
    }
    EXION_PANIC("unhandled opcode");
}

std::string
Instr::toString() const
{
    std::ostringstream oss;
    oss << opcodeName(op);
    switch (op) {
      case Opcode::LoadInput:
      case Opcode::LoadWeight:
      case Opcode::StoreOutput:
        oss << " bytes=" << bytes;
        break;
      case Opcode::MmulDense:
        oss << " " << m << "x" << k << "x" << n;
        break;
      case Opcode::MmulMerged:
        oss << " tiles=" << tiles << " k=" << k << " occ="
            << occupancy;
        break;
      case Opcode::EpPredict:
        oss << " t=" << m << " d=" << k << " heads=" << n;
        break;
      case Opcode::CauMerge:
        oss << " cycles=" << cauCycles;
        break;
      case Opcode::CfseExec:
        oss << " elems=" << m;
        break;
      case Opcode::Sync:
        break;
    }
    return oss.str();
}

} // namespace exion
