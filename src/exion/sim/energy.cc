#include "exion/sim/energy.h"

#include "exion/common/logging.h"

namespace exion
{

ComponentSpec
componentSpec(DscComponent c)
{
    // Table III, measured at 800 MHz / 0.8 V.
    switch (c) {
      case DscComponent::Sdue:
        return {957.97, 1.35};
      case DscComponent::Cau:
        return {16.03, 0.04};
      case DscComponent::Epre:
        return {265.15, 0.81};
      case DscComponent::Cfse:
        return {160.61, 0.32};
      case DscComponent::OnChipMemories:
        return {60.41, 1.79};
      case DscComponent::ControlDmaEtc:
        return {51.27, 0.06};
    }
    EXION_PANIC("unhandled component");
}

EnergyModel::EnergyModel(const DscParams &params) : params_(params)
{
}

EnergyPj
EnergyModel::activeEnergyPerCycle(DscComponent c) const
{
    // mW / GHz = pJ per cycle.
    return componentSpec(c).powerMw / params_.clockGhz;
}

EnergyPj
EnergyModel::gatedEnergyPerCycle(DscComponent c) const
{
    return activeEnergyPerCycle(c) * kGatedFraction;
}

EnergyPj
EnergyModel::sdueEnergy(Cycle cycles, double active_fraction) const
{
    EXION_ASSERT(active_fraction >= 0.0 && active_fraction <= 1.0,
                 "active fraction ", active_fraction);
    const EnergyPj active = activeEnergyPerCycle(DscComponent::Sdue);
    const EnergyPj gated = gatedEnergyPerCycle(DscComponent::Sdue);
    return static_cast<double>(cycles)
        * (active * active_fraction + gated * (1.0 - active_fraction));
}

EnergyPj
EnergyModel::idleEnergy(DscComponent c, Cycle cycles) const
{
    return static_cast<double>(cycles) * activeEnergyPerCycle(c)
        * kIdleFraction;
}

double
EnergyModel::totalActivePowerMw() const
{
    double total = 0.0;
    for (DscComponent c :
         {DscComponent::Sdue, DscComponent::Cau, DscComponent::Epre,
          DscComponent::Cfse, DscComponent::OnChipMemories,
          DscComponent::ControlDmaEtc})
        total += componentSpec(c).powerMw;
    return total;
}

double
EnergyModel::totalAreaMm2() const
{
    double total = 0.0;
    for (DscComponent c :
         {DscComponent::Sdue, DscComponent::Cau, DscComponent::Epre,
          DscComponent::Cfse, DscComponent::OnChipMemories,
          DscComponent::ControlDmaEtc})
        total += componentSpec(c).areaMm2;
    return total;
}

double
AreaModel::deviceAreaMm2(int n_dscs, Index gsc_bytes)
{
    EnergyModel one{DscParams{}};
    const double gsc_mb = static_cast<double>(gsc_bytes)
        / (1024.0 * 1024.0);
    return n_dscs * one.totalAreaMm2() + gsc_mb * kSramMm2PerMb;
}

} // namespace exion
