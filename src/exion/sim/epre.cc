#include "exion/sim/epre.h"

#include "exion/common/bitops.h"

namespace exion
{

Epre::Epre(const DscParams &params) : params_(params)
{
}

Cycle
Epre::ldMmulCycles(Index m, Index k, Index n) const
{
    return denseMmulCycles(params_, m, k, n);
}

Cycle
Epre::predictAttentionCycles(Index tokens, Index d_model,
                             Index n_heads) const
{
    const Index dh = d_model / n_heads;
    Cycle total = 0;
    // LD Q and K projections (all heads together are d_model wide).
    total += 2 * ldMmulCycles(tokens, d_model, d_model);
    // LD QK^T per head.
    total += n_heads * ldMmulCycles(tokens, dh, tokens);
    // Top-k / one-hot scan: one row of 16 entries per lane per cycle.
    total += n_heads
        * ceilDiv(static_cast<u64>(tokens) * tokens,
                  params_.dpuRows * params_.dpuCols);
    return total;
}

} // namespace exion
