/**
 * @file
 * Eager Prediction Engine timing model (Fig. 15).
 *
 * The EPRE is a 16x16 array of log-domain DPUs: shifters, low-precision
 * adders and the one-hot adder tree built from OR gates. Its tile
 * timing matches the SDUE's (one 16-element LD step per cycle); the
 * functional log-domain arithmetic lives in exion/sparsity/log_domain.
 * During operation the EPRE's latency is mostly hidden behind SDUE and
 * CFSE execution (Section IV-A); the performance model overlaps it.
 */

#ifndef EXION_SIM_EPRE_H_
#define EXION_SIM_EPRE_H_

#include "exion/sim/params.h"

namespace exion
{

/**
 * EPRE timing model.
 */
class Epre
{
  public:
    explicit Epre(const DscParams &params);

    /** Cycles for a log-domain (m x k) * (k x n) prediction MMUL. */
    Cycle ldMmulCycles(Index m, Index k, Index n) const;

    /**
     * Cycles to predict one block's attention scores.
     *
     * Covers the LD Q/K projections of every head plus the LD QK^T,
     * and the top-k / one-hot scan of each predicted row.
     *
     * @param tokens  sequence length
     * @param d_model embedding width
     * @param n_heads attention heads
     */
    Cycle predictAttentionCycles(Index tokens, Index d_model,
                                 Index n_heads) const;

    /** Hardware parameters. */
    const DscParams &params() const { return params_; }

  private:
    DscParams params_;
};

} // namespace exion

#endif // EXION_SIM_EPRE_H_
