/**
 * @file
 * Instruction set of the DSC top controller (Fig. 10).
 *
 * The top controller fetches instructions from INSTMEM, moves operand
 * tiles between DRAM/GSC and the banked on-chip memories, and kicks
 * the SDUE / EPRE / CFSE. This compact trace-level ISA captures the
 * behaviour the cycle model needs: what unit runs, over which shape,
 * and which transfers can hide behind compute thanks to the
 * double-/triple-buffered IMEM/WMEM.
 */

#ifndef EXION_SIM_ISA_H_
#define EXION_SIM_ISA_H_

#include <string>
#include <vector>

#include "exion/common/types.h"
#include "exion/sim/cfse.h"

namespace exion
{

/** Trace-level opcodes. */
enum class Opcode
{
    LoadInput,   //!< DRAM/GSC -> IMEM (double buffered)
    LoadWeight,  //!< DRAM/GSC -> WMEM (triple buffered)
    MmulDense,   //!< SDUE dense tile sweep
    MmulMerged,  //!< SDUE merged-tile sweep (ConMerge output)
    EpPredict,   //!< EPRE log-domain prediction
    CauMerge,    //!< CAU sorting + CVG merging
    CfseExec,    //!< CFSE special function
    StoreOutput, //!< OMEM -> GSC/DRAM
    Sync,        //!< barrier: drain all units
};

/** Name for traces and disassembly. */
std::string opcodeName(Opcode op);

/**
 * One decoded instruction.
 *
 * Field meaning by opcode:
 *  - LoadInput / LoadWeight / StoreOutput: bytes
 *  - MmulDense: m x k x n sweep
 *  - MmulMerged: tiles merged tiles of depth k, occupancy in
 *    [0,1] for clock gating
 *  - EpPredict: tokens = m, dModel = k, heads = n
 *  - CauMerge: cycles precomputed by the ConMerge pipeline
 *  - CfseExec: cfseOp over m elements
 */
struct Instr
{
    Opcode op = Opcode::Sync;
    Index m = 0;
    Index k = 0;
    Index n = 0;
    u64 bytes = 0;
    u64 tiles = 0;
    double occupancy = 1.0;
    Cycle cauCycles = 0;
    CfseOp cfseOp = CfseOp::ResidualAdd;

    /** One-line disassembly. */
    std::string toString() const;
};

/** A straight-line instruction stream. */
using Program = std::vector<Instr>;

} // namespace exion

#endif // EXION_SIM_ISA_H_
