/**
 * @file
 * Energy and area model of one DSC, seeded from Table III.
 *
 * The paper synthesised the RTL at 14 nm, 0.8 V, 800 MHz; Table III
 * reports per-component power and area. We derive per-cycle active
 * energies (power / clock) and model clock gating as a fixed fraction
 * of active energy for gated cycles — the mechanism the SDUE uses for
 * any output sparsity remaining after merging.
 */

#ifndef EXION_SIM_ENERGY_H_
#define EXION_SIM_ENERGY_H_

#include "exion/common/types.h"
#include "exion/sim/params.h"

namespace exion
{

/** DSC component identifiers matching Table III rows. */
enum class DscComponent
{
    Sdue,
    Cau,
    Epre,
    Cfse,
    OnChipMemories,
    ControlDmaEtc,
};

/** Power (mW) and area (mm^2) of one component (Table III). */
struct ComponentSpec
{
    double powerMw = 0.0;
    double areaMm2 = 0.0;
};

/** Table III figures for a component. */
ComponentSpec componentSpec(DscComponent c);

/**
 * Per-cycle energy accounting for one DSC.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const DscParams &params);

    /** Active energy of a component for one cycle, in pJ. */
    EnergyPj activeEnergyPerCycle(DscComponent c) const;

    /** Gated (clock-gated registers) energy for one cycle, in pJ. */
    EnergyPj gatedEnergyPerCycle(DscComponent c) const;

    /**
     * SDUE energy for a batch of cycles with partial DPU occupancy.
     *
     * @param cycles          array-pass cycles
     * @param active_fraction fraction of DPUs computing (rest gated)
     */
    EnergyPj sdueEnergy(Cycle cycles, double active_fraction) const;

    /** Energy for an idle component over the given cycles. */
    EnergyPj idleEnergy(DscComponent c, Cycle cycles) const;

    /** Total DSC power when fully active, in mW (Table III total). */
    double totalActivePowerMw() const;

    /** Total DSC area in mm^2 (Table III total). */
    double totalAreaMm2() const;

    /** Fraction of active energy consumed when clock gated. */
    static constexpr double kGatedFraction = 0.08;

    /** Fraction of active power burned when a unit idles. */
    static constexpr double kIdleFraction = 0.03;

  private:
    DscParams params_;
};

/**
 * Area model for scale-out instances.
 */
struct AreaModel
{
    /** Area of n DSCs plus a shared scratchpad of gsc_bytes. */
    static double deviceAreaMm2(int n_dscs, Index gsc_bytes);

    /** SRAM density used for the shared GSC (mm^2 per MB, 14 nm). */
    static constexpr double kSramMm2PerMb = 0.74;
};

} // namespace exion

#endif // EXION_SIM_ENERGY_H_
