#include "exion/sim/program_builder.h"

namespace exion
{

ProgramBuilder::ProgramBuilder(const DscParams &params) : params_(params)
{
}

void
ProgramBuilder::addDenseMmul(Index m, Index k, Index n)
{
    Instr load_in;
    load_in.op = Opcode::LoadInput;
    load_in.bytes = int12Bytes(static_cast<u64>(m) * k);
    program_.push_back(load_in);

    Instr load_wt;
    load_wt.op = Opcode::LoadWeight;
    load_wt.bytes = int12Bytes(static_cast<u64>(k) * n);
    program_.push_back(load_wt);

    Instr mmul;
    mmul.op = Opcode::MmulDense;
    mmul.m = m;
    mmul.k = k;
    mmul.n = n;
    program_.push_back(mmul);

    Instr store;
    store.op = Opcode::StoreOutput;
    store.bytes = int12Bytes(static_cast<u64>(m) * n);
    program_.push_back(store);
}

void
ProgramBuilder::addMergedMmul(u64 tiles, Index k, double occupancy,
                              Index weight_cols, Index out_rows,
                              Cycle cau_cycles)
{
    Instr cau;
    cau.op = Opcode::CauMerge;
    cau.cauCycles = cau_cycles;
    program_.push_back(cau);

    Instr load_in;
    load_in.op = Opcode::LoadInput;
    load_in.bytes = int12Bytes(static_cast<u64>(out_rows) * k);
    program_.push_back(load_in);

    Instr load_wt;
    load_wt.op = Opcode::LoadWeight;
    load_wt.bytes = int12Bytes(static_cast<u64>(k) * weight_cols);
    program_.push_back(load_wt);

    Instr mmul;
    mmul.op = Opcode::MmulMerged;
    mmul.tiles = tiles;
    mmul.k = k;
    mmul.occupancy = occupancy;
    program_.push_back(mmul);

    Instr store;
    store.op = Opcode::StoreOutput;
    store.bytes = int12Bytes(static_cast<u64>(out_rows) * weight_cols);
    program_.push_back(store);
}

void
ProgramBuilder::addEpPredict(Index tokens, Index d_model, Index heads)
{
    Instr pred;
    pred.op = Opcode::EpPredict;
    pred.m = tokens;
    pred.k = d_model;
    pred.n = heads;
    program_.push_back(pred);
}

void
ProgramBuilder::addCfse(CfseOp op, u64 elements)
{
    Instr cfse;
    cfse.op = Opcode::CfseExec;
    cfse.cfseOp = op;
    cfse.m = elements;
    program_.push_back(cfse);
}

void
ProgramBuilder::addSync()
{
    Instr sync;
    sync.op = Opcode::Sync;
    program_.push_back(sync);
}

} // namespace exion
