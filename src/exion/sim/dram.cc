#include "exion/sim/dram.h"

#include <cmath>

#include "exion/common/logging.h"

namespace exion
{

DramModel::DramModel(DramType type, double bandwidth_gbs)
    : type_(type), bandwidthGbs_(bandwidth_gbs)
{
    EXION_ASSERT(bandwidth_gbs > 0.0, "bandwidth ", bandwidth_gbs);
    switch (type_) {
      case DramType::Lpddr5:
        energyPerBitPj_ = 4.5;
        latencyNs_ = 45.0;
        break;
      case DramType::Gddr6:
        energyPerBitPj_ = 6.0;
        latencyNs_ = 40.0;
        break;
    }
}

Cycle
DramModel::transferCycles(u64 bytes, double clock_ghz) const
{
    const double seconds = transferSeconds(bytes);
    return static_cast<Cycle>(std::ceil(seconds * clock_ghz * 1e9));
}

double
DramModel::transferSeconds(u64 bytes) const
{
    if (bytes == 0)
        return 0.0;
    return latencyNs_ * 1e-9
        + static_cast<double>(bytes) / (bandwidthGbs_ * 1e9);
}

EnergyPj
DramModel::transferEnergy(u64 bytes) const
{
    return static_cast<double>(bytes) * 8.0 * energyPerBitPj_;
}

std::string
DramModel::name() const
{
    return type_ == DramType::Lpddr5 ? "LPDDR5" : "GDDR6";
}

} // namespace exion
