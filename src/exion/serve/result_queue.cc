#include "exion/serve/result_queue.h"

#include <utility>

#include "exion/common/logging.h"

namespace exion
{

ResultQueue::PushResult
ResultQueue::push(RequestResult result)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        spaceCv_.wait(lock,
                      [this]() { return closed_ || !fullLocked(); });
        if (closed_)
            return dropClosedLocked(result);
        items_.push_back(std::move(result));
    }
    readyCv_.notify_one();
    return PushResult::Ok;
}

ResultQueue::PushResult
ResultQueue::tryPush(RequestResult &&result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_)
            return dropClosedLocked(result);
        if (fullLocked())
            return PushResult::Full;
        items_.push_back(std::move(result));
    }
    readyCv_.notify_one();
    return PushResult::Ok;
}

std::optional<RequestResult>
ResultQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    readyCv_.wait(lock, [this]() { return closed_ || !items_.empty(); });
    return popLocked(lock);
}

std::optional<RequestResult>
ResultQueue::tryPop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    return popLocked(lock);
}

std::optional<RequestResult>
ResultQueue::popFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    readyCv_.wait_for(lock, timeout,
                      [this]() { return closed_ || !items_.empty(); });
    return popLocked(lock);
}

Index
ResultQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

bool
ResultQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

void
ResultQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    readyCv_.notify_all();
    spaceCv_.notify_all();
}

std::optional<RequestResult>
ResultQueue::popLocked(std::unique_lock<std::mutex> &lock)
{
    if (items_.empty())
        return std::nullopt;
    RequestResult result = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    // A slot freed: wake one producer blocked on a full queue.
    spaceCv_.notify_one();
    return result;
}

ResultQueue::PushResult
ResultQueue::dropClosedLocked(const RequestResult &result)
{
    EXION_WARN("ResultQueue: dropping result of request ", result.id,
               " pushed after close");
    return PushResult::Closed;
}

} // namespace exion
