#include "exion/serve/result_queue.h"

#include <utility>

#include "exion/common/logging.h"

namespace exion
{

void
ResultQueue::push(RequestResult result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) {
            EXION_WARN("ResultQueue: dropping result of request ",
                       result.id, " pushed after close");
            return;
        }
        items_.push_back(std::move(result));
    }
    cv_.notify_one();
}

std::optional<RequestResult>
ResultQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this]() { return closed_ || !items_.empty(); });
    return popLocked(lock);
}

std::optional<RequestResult>
ResultQueue::tryPop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    return popLocked(lock);
}

std::optional<RequestResult>
ResultQueue::popFor(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout,
                 [this]() { return closed_ || !items_.empty(); });
    return popLocked(lock);
}

Index
ResultQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

bool
ResultQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

void
ResultQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::optional<RequestResult>
ResultQueue::popLocked(std::unique_lock<std::mutex> &)
{
    if (items_.empty())
        return std::nullopt;
    RequestResult result = std::move(items_.front());
    items_.pop_front();
    return result;
}

} // namespace exion
