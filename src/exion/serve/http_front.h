/**
 * @file
 * HTTP front door of the serving backend: the REST mapping layer.
 *
 * HttpFront::handle() is an HttpServer handler (and is equally
 * callable on hand-built HttpRequest values, so every route is golden-
 * testable without a socket) that maps the engine API onto HTTP:
 *
 *   POST   /v1/jobs              trySubmit(); 201 + job id on accept;
 *                                admission refusals map RejectReason
 *                                to a status code with a Retry-After
 *                                header derived from the engine's
 *                                suggestedBackoffSeconds hint:
 *                                  QueueFull    -> 429
 *                                  LoadShedLow  -> 503
 *                                  UnknownModel -> 404
 *                                  Stopped      -> 503 (Connection:
 *                                                 close, no retry)
 *   GET    /v1/jobs/{id}         status/result JSON (queued/running/
 *                                done/failed/cancelled + progress)
 *   DELETE /v1/jobs/{id}         Ticket::cancel(); 200 with the
 *                                cancellation outcome
 *   GET    /v1/jobs/{id}/events  Server-Sent Events: one `progress`
 *                                event per completed denoising
 *                                iteration (ServeRequest::onProgress),
 *                                heartbeat comments while idle, a
 *                                terminal `done` event; a client that
 *                                disconnects mid-stream cancels the
 *                                running request cooperatively
 *   GET    /metrics              ServeBackend::metricsText()
 *   GET    /healthz              200 "ok"
 *
 * Submission body — a flat JSON object, all fields except
 * "benchmark" optional:
 *
 *   {"benchmark": "MLD", "mode": "exion", "quantize": false,
 *    "seed": 7, "priority": "normal", "deadline_seconds": 0.5,
 *    "track_conmerge": false}
 *
 * Unknown fields, wrong types and malformed JSON are 400s (strict on
 * purpose: a typoed field name silently defaulting is how a load
 * test ends up measuring the wrong mode).
 */

#ifndef EXION_SERVE_HTTP_FRONT_H_
#define EXION_SERVE_HTTP_FRONT_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exion/net/http_server.h"
#include "exion/serve/batch_engine.h"

namespace exion
{

/**
 * Stateful REST facade over one ServeBackend (a solo BatchEngine
 * or a ShardRouter over N of them — the facade cannot tell).
 *
 * Owns the job table (engine tickets keyed by the job ids it hands
 * out) and the engine's completion callback (installed at
 * construction — the callback slot belongs to the front; a service
 * embedding HttpFront must not call engine.setOnComplete itself).
 * Thread-safe: handle() is called concurrently from every connection
 * thread.
 */
class HttpFront
{
  public:
    struct Options
    {
        /**
         * Seconds between SSE heartbeat comments when no progress
         * event is due. Heartbeats keep intermediaries from timing
         * out the stream and bound how quickly a departed client is
         * noticed (each wakeup probes the connection).
         */
        double sseHeartbeatSeconds = 5.0;
        /**
         * Finished (done/failed/cancelled) jobs retained for GET
         * after completion; the oldest are evicted beyond this.
         * In-flight jobs are never evicted.
         */
        u64 maxFinishedJobs = 1024;
    };

    explicit HttpFront(ServeBackend &engine) : HttpFront(engine, Options()) {}
    HttpFront(ServeBackend &engine, Options opts);

    /** Uninstalls the completion callback. */
    ~HttpFront();

    HttpFront(const HttpFront &) = delete;
    HttpFront &operator=(const HttpFront &) = delete;

    /** The HttpServer::Handler: routes one request. */
    void handle(const HttpRequest &req, ResponseWriter &writer);

    /** Jobs currently retained in the table (tests/observability). */
    u64 jobCount() const;

  private:
    /**
     * Per-job state shared between the submitting handler, the
     * engine's onProgress/onComplete callbacks and any number of SSE
     * streams. Terminal state is read from the Ticket; this only
     * carries what the ticket cannot: live iteration progress and
     * the wakeup channel.
     */
    struct Job
    {
        u64 id = 0;
        Ticket ticket;
        Benchmark benchmark = Benchmark::MLD;
        ExecMode mode = ExecMode::Exion;
        Priority priority = Priority::Normal;
        bool quantize = false;
        u64 seed = 0;

        mutable std::mutex m;
        std::condition_variable cv;
        /** Completed denoising iterations (-1: none yet). */
        int iterationsDone = -1;
        /** Engine reported completion (callback fired). */
        bool completed = false;
        /** A client asked for cancellation (DELETE or SSE drop). */
        bool cancelRequested = false;
    };

    std::shared_ptr<Job> findJob(u64 id) const;
    void finishJob(u64 id);
    /** Drops the oldest finished jobs beyond maxFinishedJobs. */
    void evictFinishedLocked();

    void handleSubmit(const HttpRequest &req, ResponseWriter &writer);
    void handleStatus(const Job &job, ResponseWriter &writer);
    void handleCancel(Job &job, ResponseWriter &writer);
    void handleEvents(Job &job, ResponseWriter &writer);
    void handleMetrics(ResponseWriter &writer);

    /** Status JSON of a job (also the SSE `done` payload). */
    std::string statusJson(const Job &job) const;

    ServeBackend &engine_;
    Options opts_;
    mutable std::mutex jobsMutex_;
    std::map<u64, std::shared_ptr<Job>> jobs_;
    u64 nextJobId_ = 1;
};

} // namespace exion

#endif // EXION_SERVE_HTTP_FRONT_H_
