#include "exion/serve/admission.h"

#include <algorithm>
#include <cmath>

namespace exion
{

std::string
rejectReasonName(RejectReason r)
{
    switch (r) {
      case RejectReason::QueueFull:
        return "queue-full";
      case RejectReason::LoadShedLow:
        return "load-shed-low";
      case RejectReason::UnknownModel:
        return "unknown-model";
      case RejectReason::Stopped:
        return "stopped";
    }
    return "?";
}

std::optional<RejectReason>
AdmissionController::decide(Priority cls, const ClassDepths &ready) const
{
    if (cfg_.shedThreshold > 0 && cls < cfg_.shedBelow) {
        u64 total = 0;
        for (const u64 depth : ready)
            total += depth;
        if (total >= cfg_.shedThreshold)
            return RejectReason::LoadShedLow;
    }
    if (cfg_.maxQueuedPerClass > 0
        && ready[classIndex(cls)] >= cfg_.maxQueuedPerClass)
        return RejectReason::QueueFull;
    return std::nullopt;
}

std::chrono::steady_clock::duration
AdmissionController::blockTimeout() const
{
    // Clamp in the double domain so a huge/inf timeout cannot
    // overflow the duration cast; NaN fails the blocking() test.
    constexpr double kMaxTimeoutSeconds = 3600.0;
    const double seconds = std::isfinite(cfg_.blockTimeoutSeconds)
        ? std::clamp(cfg_.blockTimeoutSeconds, 0.0, kMaxTimeoutSeconds)
        : kMaxTimeoutSeconds;
    return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

} // namespace exion
