/**
 * @file
 * Request and result types of the serving layer.
 *
 * A ServeRequest names a registered model, an execution strategy, a
 * noise seed and a scheduling class; a RequestResult carries the
 * output latent plus all per-request accounting. Both are plain value
 * types shared by the BatchEngine and the ResultQueue.
 */

#ifndef EXION_SERVE_REQUEST_H_
#define EXION_SERVE_REQUEST_H_

#include <functional>
#include <string>

#include "exion/conmerge/pipeline.h"
#include "exion/model/config.h"
#include "exion/model/executor.h"
#include "exion/tensor/matrix.h"

namespace exion
{

/** Block execution strategy of one request (the paper's ablations). */
enum class ExecMode
{
    Dense,       //!< reference dense executor
    FfnReuseOnly, //!< inter-iteration sparsity only
    EpOnly,      //!< intra-iteration eager prediction only
    Exion,       //!< FFN-Reuse + eager prediction
};

/** Short display name, e.g. "dense", "exion". */
std::string execModeName(ExecMode mode);

/**
 * Scheduling class of a request. Workers always start the
 * highest-class ready request; within a class, requests with earlier
 * deadlines go first and deadline ties fall back to submission order.
 */
enum class Priority
{
    Low = 0,      //!< background / best-effort work
    Normal = 1,   //!< default interactive traffic
    High = 2,     //!< latency-sensitive traffic
    Critical = 3, //!< jump-the-queue administrative requests
};

/** Short display name, e.g. "low", "critical". */
std::string priorityName(Priority p);

/** Number of scheduling classes (for per-class tables/metrics). */
inline constexpr int kNumPriorityClasses = 4;

/** Dense 0-based index of a class (Low = 0 … Critical = 3). */
constexpr int
classIndex(Priority p)
{
    return static_cast<int>(p);
}

/** One denoising request. */
struct ServeRequest
{
    /** Caller-chosen identifier, echoed in the result. */
    u64 id = 0;
    /** Which registered model serves the request. */
    Benchmark benchmark = Benchmark::MLD;
    /** Execution strategy. */
    ExecMode mode = ExecMode::Exion;
    /** INT12 operand quantisation. */
    bool quantize = false;
    /** Seed of the initial Gaussian latent. */
    u64 noiseSeed = 7;
    /**
     * Accumulate ConMerge compaction statistics over every FFN
     * recompute mask the request produces (sparse modes only).
     */
    bool trackConMerge = false;
    /** Scheduling class; higher classes start first. */
    Priority priority = Priority::Normal;
    /**
     * Optional completion deadline, in seconds relative to
     * submission (0 = none; non-finite or non-positive values count
     * as none). Advisory: within a priority class the scheduler
     * starts the earliest absolute deadline (submission time +
     * deadlineSeconds) first, so queued requests age ahead of fresh
     * arrivals with tighter relative deadlines; it never aborts a
     * request that misses its deadline.
     */
    double deadlineSeconds = 0.0;
    /**
     * Optional progress hook, fired on a worker thread after each
     * completed denoising iteration with its 0-based index. Useful
     * for streaming previews or for cancelling a started request
     * (Ticket::cancel() from inside the hook stops the run at the
     * next iteration boundary). Must not block; it runs on the hot
     * path of the executing worker.
     */
    std::function<void(int iteration)> onProgress;
};

/**
 * Completed request: output latent plus all accounting.
 *
 * When a request fails, `error` is non-empty, the other payload
 * fields are default-constructed, and only `id` is meaningful. The
 * Ticket future for a failed request rethrows the original exception
 * instead. A request cancelled before it started sets `cancelled`
 * (and `error` = "cancelled"): it never ran, so the payload fields
 * are default-constructed too.
 */
struct RequestResult
{
    u64 id = 0;
    Matrix output;
    ExecStats stats;
    ConMergeStats conmerge;
    /** Wall-clock seconds spent executing the request. */
    double seconds = 0.0;
    /** Failure description; empty on success. */
    std::string error;
    /** Dequeued by Ticket::cancel() before a worker started it. */
    bool cancelled = false;

    /** Whether the request completed successfully. */
    bool ok() const { return error.empty(); }
};

} // namespace exion

#endif // EXION_SERVE_REQUEST_H_
