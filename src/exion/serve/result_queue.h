/**
 * @file
 * Thread-safe completion queue of the async serving path.
 *
 * Workers push finished RequestResults as they complete; consumers
 * drain them in completion order with non-blocking, bounded-wait or
 * fully blocking pops. The queue is optionally bounded: a full queue
 * makes tryPush() report PushResult::Full and push() block until a
 * consumer pops, so unpopped results exert backpressure on the
 * producers instead of accumulating for the engine's lifetime.
 * close() wakes every blocked consumer *and* producer — after close,
 * pops keep returning the already-queued results and then report
 * emptiness via std::nullopt, so a drain loop terminates naturally on
 * engine shutdown, and pushes are dropped.
 */

#ifndef EXION_SERVE_RESULT_QUEUE_H_
#define EXION_SERVE_RESULT_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "exion/serve/request.h"

namespace exion
{

/**
 * FIFO of completed requests, optionally bounded.
 */
class ResultQueue
{
  public:
    /** Outcome of a push attempt. */
    enum class PushResult
    {
        Ok,     //!< enqueued
        Full,   //!< at capacity (tryPush only; push blocks instead)
        Closed, //!< queue closed; the result was dropped
    };

    /**
     * @param capacity most results held at once; 0 = unbounded
     */
    explicit ResultQueue(Index capacity = 0) : capacity_(capacity) {}

    ResultQueue(const ResultQueue &) = delete;
    ResultQueue &operator=(const ResultQueue &) = delete;

    /**
     * Appends a completed result, blocking while the queue is at
     * capacity until a consumer pops or close() is called. Results
     * pushed after close() are dropped with a warning (the producer
     * lost the race against shutdown; consumers are already gone).
     *
     * @return Ok, or Closed when the result was dropped
     */
    PushResult push(RequestResult result);

    /**
     * Non-blocking push. On Ok the result is moved from; on Full it
     * is left untouched so the caller can retry or fall back to the
     * blocking push(); on Closed it is dropped with a warning.
     */
    PushResult tryPush(RequestResult &&result);

    /**
     * Blocks until a result is available or the queue is closed.
     *
     * @return the oldest result, or std::nullopt once closed and
     *         drained
     */
    std::optional<RequestResult> pop();

    /** Non-blocking pop: nullopt when currently empty. */
    std::optional<RequestResult> tryPop();

    /**
     * Bounded-wait pop: blocks up to the timeout.
     *
     * @return the oldest result; nullopt on timeout or when closed
     *         and drained
     */
    std::optional<RequestResult> popFor(std::chrono::milliseconds timeout);

    /** Results currently queued. */
    Index size() const;

    /** Configured capacity (0 = unbounded). */
    Index capacity() const { return capacity_; }

    /** Whether close() has been called. */
    bool closed() const;

    /**
     * Closes the queue: blocked and future pops return the remaining
     * results, then std::nullopt; blocked and future pushes drop
     * their result and report Closed. Idempotent.
     */
    void close();

  private:
    bool fullLocked() const
    {
        return capacity_ != 0 && items_.size() >= capacity_;
    }

    std::optional<RequestResult> popLocked(
        std::unique_lock<std::mutex> &lock);
    PushResult dropClosedLocked(const RequestResult &result);

    const Index capacity_;
    mutable std::mutex mutex_;
    std::condition_variable readyCv_; //!< signalled on push and close
    std::condition_variable spaceCv_; //!< signalled on pop and close
    std::deque<RequestResult> items_;
    bool closed_ = false;
};

} // namespace exion

#endif // EXION_SERVE_RESULT_QUEUE_H_
