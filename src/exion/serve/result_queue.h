/**
 * @file
 * Thread-safe completion queue of the async serving path.
 *
 * Workers push finished RequestResults as they complete; consumers
 * drain them in completion order with non-blocking, bounded-wait or
 * fully blocking pops. close() wakes every blocked consumer — after
 * close, pops keep returning the already-queued results and then
 * report emptiness via std::nullopt, so a drain loop terminates
 * naturally on engine shutdown.
 */

#ifndef EXION_SERVE_RESULT_QUEUE_H_
#define EXION_SERVE_RESULT_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "exion/serve/request.h"

namespace exion
{

/**
 * Unbounded FIFO of completed requests.
 */
class ResultQueue
{
  public:
    ResultQueue() = default;

    ResultQueue(const ResultQueue &) = delete;
    ResultQueue &operator=(const ResultQueue &) = delete;

    /**
     * Appends a completed result. Results pushed after close() are
     * dropped with a warning (the producer lost the race against
     * shutdown; consumers are already gone).
     */
    void push(RequestResult result);

    /**
     * Blocks until a result is available or the queue is closed.
     *
     * @return the oldest result, or std::nullopt once closed and
     *         drained
     */
    std::optional<RequestResult> pop();

    /** Non-blocking pop: nullopt when currently empty. */
    std::optional<RequestResult> tryPop();

    /**
     * Bounded-wait pop: blocks up to the timeout.
     *
     * @return the oldest result; nullopt on timeout or when closed
     *         and drained
     */
    std::optional<RequestResult> popFor(std::chrono::milliseconds timeout);

    /** Results currently queued. */
    Index size() const;

    /** Whether close() has been called. */
    bool closed() const;

    /**
     * Closes the queue: blocked and future pops return the remaining
     * results, then std::nullopt. Idempotent.
     */
    void close();

  private:
    std::optional<RequestResult> popLocked(
        std::unique_lock<std::mutex> &lock);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<RequestResult> items_;
    bool closed_ = false;
};

} // namespace exion

#endif // EXION_SERVE_RESULT_QUEUE_H_
