/**
 * @file
 * Admission control of the serving layer.
 *
 * Under overload a serving engine must decide, at the API boundary,
 * which requests enter the ready queue and which are refused — and it
 * must say *why*, so a caller (or an upstream router) can react: back
 * off on QueueFull, downgrade or drop on LoadShedLow, re-register on
 * UnknownModel, stop sending on Stopped. AdmissionConfig declares the
 * policy (bounded ready-queue depth per priority class, a shed-below
 * watermark driven by total queue depth, an optional block-with-
 * timeout mode), AdmissionController evaluates it as a pure function
 * of the current per-class ready depths, and the typed exceptions map
 * the reject reasons onto BatchEngine::submit()'s throwing fast path.
 */

#ifndef EXION_SERVE_ADMISSION_H_
#define EXION_SERVE_ADMISSION_H_

#include <array>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>

#include "exion/serve/request.h"

namespace exion
{

/** Why a request was refused at the admission boundary. */
enum class RejectReason
{
    QueueFull,    //!< the request's class is at its ready-depth bound
    LoadShedLow,  //!< total depth over the watermark; class too low
    UnknownModel, //!< benchmark not registered with addModel()
    Stopped,      //!< engine shutdown has begun
};

/** Short display name, e.g. "queue-full", "load-shed-low". */
std::string rejectReasonName(RejectReason r);

/** Thrown by submit() for a request naming an unregistered model. */
class UnknownModelError : public std::invalid_argument
{
  public:
    explicit UnknownModelError(const std::string &what)
        : std::invalid_argument(what)
    {
    }
};

/**
 * Thrown by submit() when admission policy refuses a request
 * (QueueFull / LoadShedLow). trySubmit() reports the same decision as
 * a SubmitOutcome instead of throwing.
 */
class AdmissionRejected : public std::runtime_error
{
  public:
    AdmissionRejected(RejectReason reason, const std::string &what,
                      double suggested_backoff_seconds = 0.0)
        : std::runtime_error(what), reason_(reason),
          suggestedBackoff_(suggested_backoff_seconds)
    {
    }

    RejectReason reason() const { return reason_; }

    /** Retry-after hint, seconds (see
        SubmitOutcome::suggestedBackoffSeconds). */
    double suggestedBackoffSeconds() const { return suggestedBackoff_; }

  private:
    RejectReason reason_;
    double suggestedBackoff_ = 0.0;
};

/**
 * Declarative admission policy. The default configuration admits
 * everything (unbounded queues, no shedding) — exactly the engine's
 * pre-admission behaviour.
 */
struct AdmissionConfig
{
    /**
     * Most ready (queued, not yet started) requests per priority
     * class; a class at its bound rejects with QueueFull. 0 =
     * unbounded.
     */
    u64 maxQueuedPerClass = 0;

    /**
     * Total ready depth (all classes) at or above which classes below
     * shedBelow are refused with LoadShedLow, keeping headroom for
     * latency-sensitive traffic. 0 = shedding disabled.
     */
    u64 shedThreshold = 0;

    /**
     * First class exempt from shedding: classes strictly below it are
     * shed under overload. With the default (Normal), only Low work
     * is shed.
     */
    Priority shedBelow = Priority::Normal;

    /**
     * Block-with-timeout mode: when a class is at its QueueFull
     * bound, trySubmit()/submit() block up to this long for a slot to
     * free (a worker starting a queued request, or a cancellation)
     * instead of rejecting immediately. Shedding still rejects
     * immediately — blocking sheddable work under overload would only
     * deepen the overload. 0 = reject immediately.
     */
    double blockTimeoutSeconds = 0.0;
};

/** Ready-queue depth of each priority class, indexed by classIndex(). */
using ClassDepths = std::array<u64, kNumPriorityClasses>;

/**
 * Evaluates an AdmissionConfig. Stateless beyond the config: the
 * decision is a pure function of (class, current depths), so the
 * engine can re-evaluate it while waiting in block mode.
 */
class AdmissionController
{
  public:
    AdmissionController() = default;

    explicit AdmissionController(const AdmissionConfig &cfg)
        : cfg_(cfg)
    {
    }

    /**
     * Admission verdict for a request of class `cls` given the
     * current per-class ready depths: nullopt admits, otherwise the
     * reject reason. Shedding is evaluated before the class bound —
     * under overload the cheap signal (LoadShedLow) wins so callers
     * back off instead of retrying.
     */
    std::optional<RejectReason> decide(Priority cls,
                                       const ClassDepths &ready) const;

    /** Whether QueueFull rejections should block for a slot first. */
    bool blocking() const { return cfg_.blockTimeoutSeconds > 0.0; }

    /** Block-mode timeout (meaningful when blocking()). */
    std::chrono::steady_clock::duration blockTimeout() const;

    const AdmissionConfig &config() const { return cfg_; }

  private:
    AdmissionConfig cfg_;
};

} // namespace exion

#endif // EXION_SERVE_ADMISSION_H_
