/**
 * @file
 * Replica-sharded serving: N BatchEngine shards behind one
 * snapshot-routed ServeBackend surface.
 *
 * One BatchEngine caps throughput at one scheduler/ready-queue no
 * matter how many cores the host has. ShardRouter owns N engines
 * (each with its own ThreadPool and worker budget) and places every
 * request on one of them using the shards' own cheap observability
 * signals — ready depths, windowed queue-wait medians, live cohort
 * occupancy — under a pluggable RoutePolicy. All shards register the
 * same mmap'd WeightStores, so N shards cost no extra weight memory
 * (registerModel fans one shared store out; addModel builds once and
 * shares).
 *
 * The router presents the *same* surface as a single engine
 * (ServeBackend): trySubmit()/submit() with typed outcomes,
 * snapshot() aggregated across shards, metricsText() with an extra
 * `shard="i"` label dimension, one completion callback, pause/resume
 * and a draining shutdown. A request is refused only when every
 * eligible shard refuses it, with the merged reject preferring
 * load-driven reasons and the minimum suggestedBackoffSeconds across
 * shards (the caller should retry where a slot frees first).
 * Cancellation needs no routing: a Ticket carries its owning engine.
 *
 * Determinism: each request runs entirely on one shard, and shard
 * engines are bit-identical to a solo engine by the BatchEngine
 * contract, so results are bit-identical to solo serving under every
 * policy (gate: the sharded-vs-solo differential test).
 */

#ifndef EXION_SERVE_SHARD_ROUTER_H_
#define EXION_SERVE_SHARD_ROUTER_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exion/serve/batch_engine.h"
#include "exion/tensor/kernel_flags.h"

namespace exion
{

/** How the router places a request on a shard. */
enum class RoutePolicy
{
    /**
     * Fewest ready requests of the request's class (total depth, then
     * shard index, break ties). The baseline: balances backlog.
     */
    LeastDepth,
    /**
     * Cheapest expected wait: class queue-wait median x (class depth
     * + 1), inflated by the shard's windowed deadline-miss rate — a
     * shard that has been missing deadlines gets less EDF-sensitive
     * work routed at it.
     */
    DeadlineAware,
    /**
     * Same-(benchmark, mode, quantize) requests go to the shard
     * already running or queueing that cohort key, so cohort leaders
     * absorb them into tall stacked GEMMs instead of each shard
     * forming broken mixed-key cohorts. Falls back to least-depth
     * when no shard has affinity (or the affine shards are
     * saturated). The throughput policy for cohort workloads — gated
     * >= least-depth in bench_serve's "shards" section.
     */
    CohortAffinity,
};

/** Short display name, e.g. "least-depth", "cohort-affinity". */
std::string routePolicyName(RoutePolicy p);

/** Parses a routePolicyName() back; false on an unknown name. */
bool parseRoutePolicy(const std::string &name, RoutePolicy &out);

/** Accepted --route spellings ("least-depth|..."), for messages. */
const char *routePolicyValues();

/**
 * Attempts to consume the --route flag at argv[i] — the
 * kernel_flags-style shared parser (see tensor/kernel_flags.h for
 * the protocol): Consumed advances i past the value, Error fills a
 * complete message listing routePolicyValues(), NotMine leaves
 * everything untouched. Every serving CLI offers its argv positions
 * here so a bad --route always reports the accepted policies.
 */
KernelFlagStatus tryConsumeRouteFlag(int argc, const char *const *argv,
                                     int &i, RoutePolicy &policy,
                                     std::string &error);

/** Usage fragment advertising the routing flag. */
const char *routeFlagUsage();

/**
 * N-shard replica router. Register models first (fans out to every
 * shard, sharing one weight store), then serve through the
 * ServeBackend surface. Registration is not thread-safe against
 * submits, like BatchEngine's.
 */
class ShardRouter : public ServeBackend
{
  public:
    struct Options
    {
        /** Engine replicas (>= 1). */
        int shards = 2;
        /**
         * Worker threads per shard (0 = hardware concurrency split
         * evenly across shards, at least 1 each).
         */
        int shardWorkers = 0;
        /** Placement policy. */
        RoutePolicy policy = RoutePolicy::LeastDepth;
        /**
         * Template for every shard engine. `workers` is overridden
         * by shardWorkers; everything else (admission, cohort
         * batching, kernels) applies to each shard as-is — admission
         * bounds are therefore per shard, and the fleet-wide bound is
         * shards x maxQueuedPerClass.
         */
        BatchEngine::Options engine;
        /**
         * Best-effort NUMA placement: pin shard i's workers to NUMA
         * node (i % nodes) via pthread_setaffinity_np. Degrades to a
         * warning when the platform exposes no topology (or only one
         * node), like --pin-weights.
         */
        bool numa = false;
        /**
         * How often the deadline-aware policy refreshes its windowed
         * per-shard deadline-miss rates from snapshots (seconds).
         */
        double missWindowSeconds = 0.050;
    };

    explicit ShardRouter(const Options &opts);

    /** Drains all shards, then stops (see shutdown()). */
    ~ShardRouter() override;

    ShardRouter(const ShardRouter &) = delete;
    ShardRouter &operator=(const ShardRouter &) = delete;

    /**
     * Builds the model's weights once and registers the store with
     * every shard (one physical copy, mmap-shared semantics as in
     * BatchEngine::registerModel).
     */
    void addModel(const ModelConfig &cfg);

    /** Registers one shared store with every shard. */
    void registerModel(Benchmark b,
                       std::shared_ptr<const WeightStore> store);

    /**
     * Loads a serialized store once (mmap'd, optionally pinned) and
     * registers it with every shard.
     */
    void registerModelFromFile(const std::string &path, bool pin = false);

    // ServeBackend surface -------------------------------------------

    /**
     * Routes the request to shards in policy preference order and
     * accepts on the first shard that admits it. Refuses only when
     * every shard refuses: the merged outcome prefers load-driven
     * reasons (QueueFull/LoadShedLow — the caller can retry) over
     * UnknownModel over Stopped, and its suggestedBackoffSeconds is
     * the minimum hint across load-refusing shards.
     */
    SubmitOutcome trySubmit(const ServeRequest &req) override;

    /** trySubmit() with BatchEngine::submit()'s exception mapping. */
    Ticket submit(const ServeRequest &req) override;

    /** Aggregated metrics across shards (see aggregateMetrics()). */
    EngineMetrics snapshot() const override;

    /**
     * Prometheus text: aggregate samples per family plus every
     * shard's samples labelled shard="0", shard="1", ...
     */
    std::string metricsText() const override;

    /** Installs the hook on every shard (results arrive from any). */
    void setOnComplete(CompletionCallback cb) override;

    u64 inFlight() const override;

    void waitIdle() const override;

    void pause() override;

    void resume() override;

    void shutdown() override;

    /** Total workers across shards. */
    int workerCount() const override;

    // Introspection ---------------------------------------------------

    int shardCount() const { return static_cast<int>(shards_.size()); }

    /** Direct access to one shard (tests and benches). */
    BatchEngine &shard(int i) { return *shards_[i]; }

    /** One shard's unaggregated snapshot. */
    EngineMetrics shardSnapshot(int i) const
    {
        return shards_[i]->snapshot();
    }

    RoutePolicy policy() const { return opts_.policy; }

  private:
    /** Shard indices in placement preference order for req. */
    std::vector<int> routeOrder(const ServeRequest &req) const;

    /** Refreshes windowed per-shard deadline-miss rates (lazy). */
    void refreshMissRates() const;

    Options opts_;
    std::vector<std::unique_ptr<BatchEngine>> shards_;

    /**
     * Deadline-aware scoring state: per-shard miss rates over the
     * last refresh window, refreshed at most every
     * missWindowSeconds. Mutable: scoring happens in const routing.
     */
    mutable std::mutex missMutex_;
    mutable std::vector<double> missRate_;
    mutable std::vector<u64> lastMisses_;
    mutable std::vector<u64> lastCompleted_;
    mutable std::chrono::steady_clock::time_point lastMissRefresh_;
};

} // namespace exion

#endif // EXION_SERVE_SHARD_ROUTER_H_
