/**
 * @file
 * Multi-request batched denoising engine with asynchronous
 * submit/complete scheduling.
 *
 * Registers immutable DiffusionPipelines once (weights shared across
 * every request for that benchmark) and schedules concurrent
 * denoising requests across a priority-ordered ThreadPool: submit()
 * returns a Ticket immediately, workers always start the
 * highest-priority ready request, and completed results are delivered
 * through the Ticket future, an optional completion callback and the
 * engine's pollable/blocking ResultQueue. Each request owns a
 * RequestContext bundling every piece of mutable state the run
 * produces — execution context, FFN-Reuse bundle, ConMerge accounting
 * — so results are bit-identical no matter how requests interleave
 * across workers or in which order the scheduler starts them.
 */

#ifndef EXION_SERVE_BATCH_ENGINE_H_
#define EXION_SERVE_BATCH_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exion/common/threadpool.h"
#include "exion/conmerge/pipeline.h"
#include "exion/model/pipeline.h"
#include "exion/serve/request.h"
#include "exion/serve/result_queue.h"
#include "exion/sparsity/sparse_executor.h"

namespace exion
{

/**
 * All mutable state of one in-flight request.
 *
 * This is the per-request context object: executors bind into it
 * instead of holding stream state themselves, so one request's
 * iteration counter, op accounting, inter-iteration FFN-Reuse caches
 * and ConMerge accounting can never bleed into another's.
 */
struct RequestContext
{
    ExecContext exec;       //!< iteration index + ExecStats
    FfnReuseState ffn;      //!< inter-iteration FFN-Reuse caches
    ConMergeStats conmerge; //!< per-iteration mask compaction roll-up
};

/**
 * Handle to one submitted request.
 *
 * Cheap to copy (shares one future state). get() blocks until the
 * request completes and rethrows its failure, if any; ready() polls
 * without blocking.
 */
class Ticket
{
  public:
    /** Invalid ticket; get()/wait()/ready() must not be called. */
    Ticket() = default;

    /** Engine-assigned submission sequence number (1-based). */
    u64 id() const { return id_; }

    /** Whether this ticket refers to a submitted request. */
    bool valid() const { return future_.valid(); }

    /** Non-blocking: whether the result is available. */
    bool ready() const;

    /** Blocks until the request completes. */
    void wait() const { future_.wait(); }

    /**
     * Blocks until completion, then returns the result (a copy; the
     * shared state stays pollable). Rethrows the request's failure.
     */
    RequestResult get() const { return future_.get(); }

  private:
    friend class BatchEngine;

    Ticket(u64 id, std::shared_future<RequestResult> future)
        : id_(id), future_(std::move(future))
    {
    }

    u64 id_ = 0;
    std::shared_future<RequestResult> future_;
};

/**
 * Batched multi-request serving engine.
 *
 * Usage: addModel() every benchmark the request mix needs (not
 * thread-safe; do it before submitting), then submit() requests as
 * they arrive and consume completions via Ticket::get(), the
 * completion callback or results(). runBatch() remains as a
 * synchronous compatibility wrapper (a submit-all barrier that blocks
 * until the whole batch finishes). Request execution is
 * deterministic: a request's result depends only on the request and
 * the registered weights, never on worker count, priorities or
 * scheduling order.
 */
class BatchEngine
{
  public:
    struct Options
    {
        /** Worker threads (0 = hardware concurrency). */
        int workers = 0;
        /**
         * ThreadPool seed. Denoising runs derive all randomness from
         * each request's noiseSeed; this only feeds submitSeeded()
         * consumers (planned: randomised schedulers, see ROADMAP).
         */
        u64 poolSeed = 0x2545f4914f6cdd1dULL;
        /** ConMerge configuration for trackConMerge requests. */
        ConMergeConfig conmerge;
        /**
         * Deliver submit() completions to results(). Disable for
         * long-lived services that consume only Tickets or the
         * completion callback — the queue is unbounded, so unpopped
         * results (output latents included) would otherwise
         * accumulate for the engine's lifetime.
         */
        bool queueResults = true;
    };

    /** Invoked on a worker thread as each request completes. */
    using CompletionCallback = std::function<void(const RequestResult &)>;

    /** Engine with default options (hardware-concurrency workers). */
    BatchEngine();

    explicit BatchEngine(const Options &opts);

    /** Drains in-flight requests, then stops (see shutdown()). */
    ~BatchEngine();

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /**
     * Builds and registers the pipeline serving a benchmark at the
     * given scale. Re-registering a benchmark replaces its pipeline.
     */
    void addModel(const ModelConfig &cfg);

    /** Registered pipeline for a benchmark. @pre addModel'ed. */
    const DiffusionPipeline &pipeline(Benchmark b) const;

    /**
     * Enqueues one request and returns immediately.
     *
     * The request joins the ready queue at its priority class (with
     * earliest-deadline-first ordering within the class) and runs as
     * soon as a worker is free and nothing more urgent is waiting. On
     * completion the result is delivered, in order, to the completion
     * callback (if set), to results(), and to the Ticket future.
     *
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    Ticket submit(const ServeRequest &req);

    /**
     * Installs the completion hook; pass nullptr to remove it. Takes
     * effect for requests completing after the call. The callback
     * runs on a worker thread and must not call back into submit
     * paths that block on its own completion. It should not throw;
     * an escaped exception is logged and swallowed (it cannot be
     * attached to the already-delivered result).
     */
    void setOnComplete(CompletionCallback cb);

    /**
     * Completion queue fed by every submit() (unless
     * Options::queueResults is off). runBatch() requests collect
     * through their tickets instead and do not appear here.
     */
    ResultQueue &results() { return results_; }

    /**
     * Pauses scheduling: workers finish their current request, then
     * idle; submissions still queue up. Lets a burst of submissions
     * be ordered purely by priority before any of them starts.
     * shutdown() overrides a pause and drains.
     */
    void pause() { pool_.pause(); }

    /** Resumes scheduling after pause(). */
    void resume() { pool_.resume(); }

    /** Requests submitted but not yet completed. */
    u64 inFlight() const;

    /** Blocks until every submitted request has completed. */
    void waitIdle() const;

    /**
     * Graceful shutdown: refuses new submissions, runs every request
     * already accepted (pending work is drained, not abandoned),
     * delivers all their results, then closes results() so blocked
     * consumers wake with std::nullopt. Idempotent; also called by
     * the destructor.
     */
    void shutdown();

    /**
     * Compatibility wrapper around submit(): enqueues the whole batch
     * and blocks until every request finishes (a full barrier — a
     * slow request holds the return, which is exactly what submit()
     * avoids). Results are returned in request order. All-or-nothing:
     * if any request throws, every ticket is still drained (no
     * abandoned work) and the first failure is rethrown. Callers
     * needing per-request error handling or streaming completion use
     * submit() and the Ticket / callback / results() surfaces.
     */
    std::vector<RequestResult> runBatch(
        const std::vector<ServeRequest> &requests);

    /**
     * Reference single-stream path: runs the batch on the calling
     * thread, one request at a time. Bit-identical to runBatch().
     */
    std::vector<RequestResult> runSequential(
        const std::vector<ServeRequest> &requests);

    /** Number of pool workers. */
    int workerCount() const { return pool_.workerCount(); }

  private:
    /**
     * Encodes (priority class, absolute deadline) into one pool
     * priority; the absolute deadline is taken against epoch_ at
     * submission, so queued work ages correctly under EDF.
     */
    i64 poolPriority(const ServeRequest &req) const;

    Ticket submitImpl(const ServeRequest &req, bool to_queue);
    RequestResult runOne(const ServeRequest &req) const;

    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    Options opts_;
    ConMergePipeline conmergePipe_;
    std::map<Benchmark, std::unique_ptr<const DiffusionPipeline>> models_;
    ResultQueue results_;

    mutable std::mutex mutex_;
    mutable std::condition_variable idleCv_;
    CompletionCallback onComplete_;
    u64 nextTicket_ = 1;
    u64 inFlight_ = 0;

    /**
     * Last member: destroyed (and therefore drained) first, while the
     * engine state its tasks reference is still alive.
     */
    ThreadPool pool_;
};

} // namespace exion

#endif // EXION_SERVE_BATCH_ENGINE_H_
