/**
 * @file
 * Multi-request batched denoising engine.
 *
 * Registers immutable DiffusionPipelines once (weights shared across
 * every request for that benchmark) and schedules N concurrent
 * denoising requests across a ThreadPool. Each request owns a
 * RequestContext bundling every piece of mutable state the run
 * produces — execution context, FFN-Reuse bundle, ConMerge accounting
 * — so results are bit-identical no matter how requests interleave
 * across workers.
 */

#ifndef EXION_SERVE_BATCH_ENGINE_H_
#define EXION_SERVE_BATCH_ENGINE_H_

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exion/common/threadpool.h"
#include "exion/conmerge/pipeline.h"
#include "exion/model/pipeline.h"
#include "exion/sparsity/sparse_executor.h"

namespace exion
{

/** Block execution strategy of one request (the paper's ablations). */
enum class ExecMode
{
    Dense,       //!< reference dense executor
    FfnReuseOnly, //!< inter-iteration sparsity only
    EpOnly,      //!< intra-iteration eager prediction only
    Exion,       //!< FFN-Reuse + eager prediction
};

/** Short display name, e.g. "dense", "exion". */
std::string execModeName(ExecMode mode);

/** One denoising request. */
struct ServeRequest
{
    /** Caller-chosen identifier, echoed in the result. */
    u64 id = 0;
    /** Which registered model serves the request. */
    Benchmark benchmark = Benchmark::MLD;
    /** Execution strategy. */
    ExecMode mode = ExecMode::Exion;
    /** INT12 operand quantisation. */
    bool quantize = false;
    /** Seed of the initial Gaussian latent. */
    u64 noiseSeed = 7;
    /**
     * Accumulate ConMerge compaction statistics over every FFN
     * recompute mask the request produces (sparse modes only).
     */
    bool trackConMerge = false;
};

/**
 * All mutable state of one in-flight request.
 *
 * This is the per-request context object: executors bind into it
 * instead of holding stream state themselves, so one request's
 * iteration counter, op accounting, inter-iteration FFN-Reuse caches
 * and ConMerge accounting can never bleed into another's.
 */
struct RequestContext
{
    ExecContext exec;       //!< iteration index + ExecStats
    FfnReuseState ffn;      //!< inter-iteration FFN-Reuse caches
    ConMergeStats conmerge; //!< per-iteration mask compaction roll-up
};

/** Completed request: output latent plus all accounting. */
struct RequestResult
{
    u64 id = 0;
    Matrix output;
    ExecStats stats;
    ConMergeStats conmerge;
    /** Wall-clock seconds spent executing the request. */
    double seconds = 0.0;
};

/**
 * Batched multi-request simulation engine.
 *
 * Usage: addModel() every benchmark the request mix needs (not
 * thread-safe; do it before submitting), then submit() individual
 * requests or runBatch() a whole mix. Request execution is
 * deterministic: a request's result depends only on the request and
 * the registered weights, never on worker count or scheduling order.
 */
class BatchEngine
{
  public:
    struct Options
    {
        /** Worker threads (0 = hardware concurrency). */
        int workers = 0;
        /**
         * ThreadPool seed. Denoising runs derive all randomness from
         * each request's noiseSeed; this only feeds submitSeeded()
         * consumers (planned: randomised schedulers, see ROADMAP).
         */
        u64 poolSeed = 0x2545f4914f6cdd1dULL;
        /** ConMerge configuration for trackConMerge requests. */
        ConMergeConfig conmerge;
    };

    /** Engine with default options (hardware-concurrency workers). */
    BatchEngine();

    explicit BatchEngine(const Options &opts);

    /**
     * Builds and registers the pipeline serving a benchmark at the
     * given scale. Re-registering a benchmark replaces its pipeline.
     */
    void addModel(const ModelConfig &cfg);

    /** Registered pipeline for a benchmark. @pre addModel'ed. */
    const DiffusionPipeline &pipeline(Benchmark b) const;

    /**
     * Enqueues one request; the future carries its result or
     * exception.
     */
    std::future<RequestResult> submit(const ServeRequest &req);

    /**
     * Runs a whole batch across the workers; results are returned in
     * request order. All-or-nothing: if any request throws, every
     * future is still drained (no abandoned work) and the first
     * failure is rethrown. Callers needing per-request error handling
     * use submit() and inspect each future.
     */
    std::vector<RequestResult> runBatch(
        const std::vector<ServeRequest> &requests);

    /**
     * Reference single-stream path: runs the batch on the calling
     * thread, one request at a time. Bit-identical to runBatch().
     */
    std::vector<RequestResult> runSequential(
        const std::vector<ServeRequest> &requests);

    /** Number of pool workers. */
    int workerCount() const { return pool_.workerCount(); }

  private:
    RequestResult runOne(const ServeRequest &req) const;

    Options opts_;
    ConMergePipeline conmergePipe_;
    std::map<Benchmark, std::unique_ptr<const DiffusionPipeline>> models_;
    ThreadPool pool_;
};

} // namespace exion

#endif // EXION_SERVE_BATCH_ENGINE_H_
