/**
 * @file
 * Multi-request batched denoising engine with asynchronous
 * submit/complete scheduling, explicit admission control and
 * per-class observability.
 *
 * Registers immutable DiffusionPipelines once (weights shared across
 * every request for that benchmark) and schedules concurrent
 * denoising requests across a priority-ordered ThreadPool. Two
 * submission surfaces: submit() keeps the throwing fast path (typed
 * exceptions at the API boundary), trySubmit() returns a
 * SubmitOutcome — a Ticket on acceptance or a RejectReason (QueueFull
 * / LoadShedLow / UnknownModel / Stopped) when the AdmissionConfig in
 * Options refuses the request. Completed results are delivered
 * through the Ticket future, an optional completion callback and the
 * engine's pollable/blocking (and optionally bounded) ResultQueue;
 * Ticket::cancel() dequeues not-yet-started work; snapshot() reports
 * per-class accepted/rejected/shed/cancelled counts, ready-queue
 * depths and queue-wait percentiles. Each request owns a
 * RequestContext bundling every piece of mutable state the run
 * produces — execution context, FFN-Reuse bundle, ConMerge accounting
 * — so results are bit-identical no matter how requests interleave
 * across workers or in which order the scheduler starts them.
 */

#ifndef EXION_SERVE_BATCH_ENGINE_H_
#define EXION_SERVE_BATCH_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exion/common/threadpool.h"
#include "exion/conmerge/pipeline.h"
#include "exion/model/pipeline.h"
#include "exion/serve/admission.h"
#include "exion/serve/metrics.h"
#include "exion/serve/request.h"
#include "exion/serve/result_queue.h"
#include "exion/sparsity/sparse_executor.h"

namespace exion
{

class BatchEngine;

/**
 * All mutable state of one in-flight request.
 *
 * This is the per-request context object: executors bind into it
 * instead of holding stream state themselves, so one request's
 * iteration counter, op accounting, inter-iteration FFN-Reuse caches
 * and ConMerge accounting can never bleed into another's.
 */
struct RequestContext
{
    ExecContext exec;       //!< iteration index + ExecStats
    FfnReuseState ffn;      //!< inter-iteration FFN-Reuse caches
    ConMergeStats conmerge; //!< per-iteration mask compaction roll-up
};

/**
 * Handle to one submitted request.
 *
 * Cheap to copy (shares one future state). get() blocks until the
 * request completes and rethrows its failure, if any; ready() polls
 * without blocking; cancel() best-effort dequeues work that no worker
 * has started yet. On a default-constructed (invalid) ticket every
 * member is a safe no-op: ready() and cancel() return false, wait()
 * returns immediately; only get() requires valid().
 *
 * A ticket must not outlive its engine — it holds a reference back
 * into it for cancel().
 */
class Ticket
{
  public:
    /** Invalid ticket; every member but get() is a safe no-op. */
    Ticket() = default;

    /** Engine-assigned submission sequence number (1-based). */
    u64 id() const { return id_; }

    /** Whether this ticket refers to a submitted request. */
    bool valid() const { return future_.valid(); }

    /** Non-blocking: whether the result is available. false when
        invalid. */
    bool ready() const;

    /** Blocks until the request completes. No-op when invalid. */
    void wait() const;

    /**
     * Blocks until completion, then returns the result (a copy; the
     * shared state stays pollable). Rethrows the request's failure.
     * A cancelled request yields a result with `cancelled` set.
     * @pre valid()
     */
    RequestResult get() const { return future_.get(); }

    /**
     * Best-effort cancellation. A request no worker has started yet
     * is dequeued and its ticket settles immediately with a result
     * marked `cancelled` (error = "cancelled"; the completion
     * callback and the result queue are not fed — the request never
     * ran). A request that already started is cancelled
     * cooperatively: the executing worker (or its cohort leader)
     * polls the flag at every iteration boundary and stops the run at
     * the next one, settling the ticket with a `cancelled` result; a
     * request past its last boundary completes normally.
     *
     * @return true when the request was dequeued or the running
     *         request was signalled; false when it already completed,
     *         was already cancelled, or the ticket is invalid
     */
    bool cancel();

  private:
    friend class BatchEngine;

    Ticket(u64 id, std::shared_future<RequestResult> future,
           BatchEngine *engine)
        : id_(id), future_(std::move(future)), engine_(engine)
    {
    }

    u64 id_ = 0;
    std::shared_future<RequestResult> future_;
    BatchEngine *engine_ = nullptr;
};

/**
 * Result of a trySubmit(): an accepted request carries a valid
 * Ticket; a refused one carries the RejectReason instead, plus a
 * retry-after hint for load-driven refusals.
 */
struct SubmitOutcome
{
    /** Valid iff accepted(). */
    Ticket ticket;
    /** Set iff the request was refused. */
    std::optional<RejectReason> reason;
    /**
     * Retry-after hint on QueueFull / LoadShedLow refusals, in
     * seconds: derived from the class's median queue wait over the
     * recent window (how long a ready slot typically takes to free),
     * clamped to a sane range, so callers back off proportionally to
     * actual congestion instead of hammering a fixed interval in a
     * thundering herd. 0 when accepted or refused for a non-load
     * reason (UnknownModel / Stopped).
     */
    double suggestedBackoffSeconds = 0.0;

    bool accepted() const { return !reason.has_value(); }
};

/**
 * The submission surface a serving front end consumes — implemented
 * by one BatchEngine and, identically, by a ShardRouter over N of
 * them, so HttpFront / the daemons / the load generators work
 * unchanged over either. The contract mirrors BatchEngine's: typed
 * trySubmit() outcomes, a throwing submit(), snapshot() +
 * Prometheus metricsText(), one completion callback, pause/resume
 * staging and a draining shutdown().
 */
class ServeBackend
{
  public:
    /** Invoked on a worker thread as each request completes. */
    using CompletionCallback = std::function<void(const RequestResult &)>;

    virtual ~ServeBackend() = default;

    /** Admission-checked submission — the non-throwing path. */
    virtual SubmitOutcome trySubmit(const ServeRequest &req) = 0;

    /** The throwing fast path (typed exceptions on refusal). */
    virtual Ticket submit(const ServeRequest &req) = 0;

    /** Point-in-time serving metrics (aggregated across shards). */
    virtual EngineMetrics snapshot() const = 0;

    /**
     * Prometheus text exposition of snapshot(); a sharded backend
     * additionally labels per-shard samples with shard="i".
     */
    virtual std::string metricsText() const = 0;

    /** Installs the completion hook; nullptr removes it. */
    virtual void setOnComplete(CompletionCallback cb) = 0;

    /** Requests admitted but not yet completed or cancelled. */
    virtual u64 inFlight() const = 0;

    /** Blocks until every admitted request has completed. */
    virtual void waitIdle() const = 0;

    /** Pauses scheduling (submissions still queue). */
    virtual void pause() = 0;

    /** Resumes scheduling after pause(). */
    virtual void resume() = 0;

    /** Graceful drain-then-stop; idempotent. */
    virtual void shutdown() = 0;

    /** Total worker threads behind this surface. */
    virtual int workerCount() const = 0;
};

/**
 * Batched multi-request serving engine.
 *
 * Usage: addModel() every benchmark the request mix needs (not
 * thread-safe; do it before submitting), then submit()/trySubmit()
 * requests as they arrive and consume completions via Ticket::get(),
 * the completion callback or results(). Overload behaviour is
 * explicit: Options::admission bounds the ready queue per priority
 * class and sheds low classes under load, trySubmit() reports the
 * decision as a value, and snapshot() exposes the counters the
 * decisions feed. runBatch() remains as a synchronous compatibility
 * wrapper (a submit-all barrier that blocks until the whole batch
 * finishes). Request execution is deterministic: a request's result
 * depends only on the request and the registered weights, never on
 * worker count, priorities, scheduling order or admission policy.
 */
class BatchEngine : public ServeBackend
{
  public:
    struct Options
    {
        /** Worker threads (0 = hardware concurrency). */
        int workers = 0;
        /**
         * ThreadPool seed. Denoising runs derive all randomness from
         * each request's noiseSeed; this only feeds submitSeeded()
         * consumers (planned: randomised schedulers, see ROADMAP).
         */
        u64 poolSeed = 0x2545f4914f6cdd1dULL;
        /** ConMerge configuration for trackConMerge requests. */
        ConMergeConfig conmerge;
        /**
         * Deliver submit() completions to results(). Disable for
         * long-lived services that consume only Tickets or the
         * completion callback.
         */
        bool queueResults = true;
        /**
         * Bound on results() (0 = unbounded). When bounded, a full
         * queue blocks the completing worker until a consumer pops —
         * unpopped results exert backpressure on execution instead of
         * accumulating. Consumers must then keep draining results()
         * until shutdown() returns.
         */
        Index resultQueueCapacity = 0;
        /**
         * Admission policy of submit()/trySubmit(). The default
         * admits everything.
         */
        AdmissionConfig admission;
        /**
         * Cohort batching: when a worker starts a request, it pulls
         * queued requests with the same (benchmark, mode, quantize)
         * out of the ready queue — at start and again at every
         * iteration boundary — and steps them together with their
         * latents stacked into one tall matrix per iteration, so the
         * MMULs traverse each weight matrix once per cohort instead
         * of once per request. Results stay bit-identical to solo
         * runs (per-request sparsity state and accounting are row-
         * partitioned); admission and priority semantics are
         * unchanged — the pool still starts the highest-priority
         * ready request, which therefore leads the cohort, later
         * joiners attach at the next iteration boundary, and a
         * cohort only ever absorbs requests the scheduler would have
         * started next anyway (a queued non-matching request that
         * ranks ahead stops the refill, so sustained same-key load
         * cannot starve it). Off by default.
         */
        bool cohortBatching = false;
        /**
         * Most requests stepping together in one cohort (>= 1).
         * Bounds how long one worker is tied up per iteration — the
         * latency cost a queued non-matching request can see.
         */
        Index cohortMaxRows = 8;
        /**
         * How long a cohort leader with spare rows lingers before its
         * first step, waiting for same-key submissions to arrive
         * (0 = start immediately). Boundary absorption usually makes
         * the window unnecessary — joiners attach while the cohort
         * runs — but a window helps when requests arrive in bursts
         * slightly slower than one iteration.
         */
        double cohortWindowSeconds = 0.0;
        /**
         * GEMM backend every executor this engine builds uses for its
         * dense MMULs. All backends produce bit-identical outputs
         * (tensor/gemm.h), so this is purely a wall-clock knob;
         * Blocked is the default because the cache-blocked packed
         * kernel is what turns cohort stacking's tall GEMMs into a
         * throughput win (see bench_batch_throughput's gated
         * Blocked-vs-Reference comparison).
         */
        GemmBackend gemmBackend = GemmBackend::Blocked;
        /**
         * SIMD tier every executor this engine builds runs its
         * kernels under. Exact (the default) uses the host's widest
         * vector table while keeping every float accumulation chain
         * in golden reference order — bit-identical to Scalar.
         * Fast additionally reassociates float reductions
         * (tolerance-level divergence; see simd_dispatch.h).
         */
        SimdTier simdTier = SimdTier::Exact;
        /**
         * Intra-request tensor parallelism: every tall projection
         * GEMM an executor of this engine issues is column-split
         * into this many slices, each slice's partial product
         * computed as its own task on the engine's own ThreadPool
         * (at maximum pool priority, so slice work never queues
         * behind whole requests) and the partials merged in
         * ascending slice order. Results are bit-identical to
         * tensorParallel = 1 — slicing partitions output columns,
         * so no accumulation chain is ever reassociated. 1 = off.
         * Composes with cohort batching (the tall stacked GEMMs are
         * exactly the shapes worth splitting) and with --shards
         * (parallelism across requests); prefer this knob when
         * single-request latency matters and spare cores exist.
         */
        int tensorParallel = 1;
        /**
         * Optional slice -> CPU-set affinity: slice s's helper tasks
         * pin to tpSliceCpus[s % size()] (each entry a CPU-id list,
         * e.g. one NUMA node's CPUs) before computing, so a slice's
         * weight-column working set stays on one node. Best-effort:
         * a failed pin warns once and computes unpinned. Empty =
         * no slice affinity.
         */
        std::vector<std::vector<int>> tpSliceCpus;
    };

    using CompletionCallback = ServeBackend::CompletionCallback;

    /** Engine with default options (hardware-concurrency workers). */
    BatchEngine();

    explicit BatchEngine(const Options &opts);

    /** Drains in-flight requests, then stops (see shutdown()). */
    ~BatchEngine() override;

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /**
     * Builds and registers the pipeline serving a benchmark at the
     * given scale (snapshotting the build into an engine-private
     * WeightStore). Re-registering a benchmark replaces its pipeline.
     *
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    void addModel(const ModelConfig &cfg);

    /**
     * Registers a pipeline over an existing (possibly mmap'd,
     * possibly shared-with-other-engines) weight store. No Rng weight
     * build runs; every layer borrows the store's tensors, so N
     * engines registering the same store share one physical copy of
     * the weights. Serves bit-identically to addModel() of the
     * store's config.
     *
     * Like addModel(), registration is not thread-safe against
     * concurrent submits — register before serving.
     *
     * @throws std::invalid_argument when the store is null or its
     *                               config's benchmark is not b
     * @throws ThreadPoolStopped     after shutdown() has begun
     */
    void registerModel(Benchmark b,
                       std::shared_ptr<const WeightStore> store);

    /**
     * Loads a serialized weight store from path (mmap'd read-only
     * where the platform allows) and registers it under its config's
     * benchmark. With pin set the mapping is mlock()'d best-effort
     * (WeightStore::load) so weight pages cannot be evicted under
     * memory pressure; a failed pin warns and serves unpinned.
     *
     * @throws WeightStoreError  on a malformed or corrupt file
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    void registerModelFromFile(const std::string &path, bool pin = false);

    /**
     * Registered pipeline for a benchmark.
     * @throws UnknownModelError when the benchmark is not registered
     */
    const DiffusionPipeline &pipeline(Benchmark b) const;

    /**
     * Enqueues one request — the throwing fast path.
     *
     * The request passes admission (see trySubmit() for the policy),
     * joins the ready queue at its priority class (with
     * earliest-deadline-first ordering within the class) and runs as
     * soon as a worker is free and nothing more urgent is waiting. On
     * completion the result is delivered, in order, to the completion
     * callback (if set), to results(), and to the Ticket future.
     *
     * @throws UnknownModelError  for an unregistered benchmark
     * @throws ThreadPoolStopped  after shutdown() has begun
     * @throws AdmissionRejected  when admission policy refuses the
     *                            request (QueueFull / LoadShedLow)
     */
    Ticket submit(const ServeRequest &req) override;

    /**
     * Admission-checked submission — the non-throwing path.
     *
     * Validates the request at the API boundary (an unregistered
     * benchmark is UnknownModel here, not a worker-thread failure
     * mid-run), then applies Options::admission: a class at its
     * ready-depth bound is QueueFull (optionally blocking up to the
     * configured timeout for a slot), low classes are LoadShedLow
     * once total depth crosses the shed watermark, and an engine
     * whose shutdown() has begun is Stopped. Every decision is
     * counted in snapshot().
     */
    SubmitOutcome trySubmit(const ServeRequest &req) override;

    /**
     * Installs the completion hook; pass nullptr to remove it. Takes
     * effect for requests completing after the call. The callback
     * runs on a worker thread and must not call back into submit
     * paths that block on its own completion. It should not throw;
     * an escaped exception is logged and swallowed (it cannot be
     * attached to the already-delivered result).
     */
    void setOnComplete(CompletionCallback cb) override;

    /**
     * Completion queue fed by every submit() (unless
     * Options::queueResults is off). runBatch() requests and
     * cancelled requests do not appear here.
     */
    ResultQueue &results() { return results_; }

    /**
     * Point-in-time serving metrics: per-class
     * accepted/rejected/shed/cancelled/completed counts and deadline
     * misses, current and peak ready-queue depth (from the pool's
     * per-level accounting), and p50/p99 queue-wait over the recent
     * window. Counters reconcile exactly with the outcomes callers
     * observed.
     */
    EngineMetrics snapshot() const override;

    /** snapshot() rendered as Prometheus text (no shard labels). */
    std::string metricsText() const override;

    /**
     * Same-cohort-key occupancy of this engine — the affinity signal
     * a router scores shards by. queued counts ready requests with
     * the request's (benchmark, mode, quantize) key; running counts
     * rows of live cohorts stepping that key; spareRows is the
     * unfilled capacity of those cohorts (rows a routed request could
     * occupy at the next iteration boundary without waiting for a
     * free worker). Only meaningful with cohortBatching on — running
     * and spareRows stay 0 otherwise.
     */
    struct CohortOccupancy
    {
        u64 queued = 0;
        u64 running = 0;
        u64 spareRows = 0;
    };
    CohortOccupancy cohortOccupancy(const ServeRequest &req) const;

    /** Ready depth of each class, from the pool's level accounting. */
    ClassDepths readyDepths() const;

    /**
     * Median queue wait of one class over the recent window, seconds
     * (0 with no samples). The congestion signal behind retry-after
     * hints and the router's deadline-aware scoring.
     */
    double classQueueWaitP50(Priority cls) const
    {
        return metrics_.classQueueWaitP50(cls);
    }

    /** Whether shutdown() has begun. */
    bool stoppedFlag() const;

    /**
     * Best-effort CPU affinity: pins worker thread i to
     * cpuSets[i % cpuSets.size()] (each entry a CPU-id list, e.g. one
     * NUMA node). Returns the number of workers pinned; failures warn
     * and leave the worker unpinned.
     */
    int pinWorkers(const std::vector<std::vector<int>> &cpuSets);

    /**
     * Pauses scheduling: workers finish their current request, then
     * idle, and running cohort leaders stop absorbing queued
     * requests; submissions still queue up. Lets a burst of
     * submissions be ordered purely by priority before any of them
     * starts. shutdown() overrides a pause and drains.
     */
    void pause() override;

    /** Resumes scheduling after pause(). */
    void resume() override;

    /** Requests admitted but not yet completed or cancelled. */
    u64 inFlight() const override;

    /** Blocks until every admitted request has completed. */
    void waitIdle() const override;

    /**
     * Graceful shutdown: refuses new submissions, runs every request
     * already accepted (pending work is drained, not abandoned),
     * delivers all their results, then closes results() so blocked
     * consumers wake with std::nullopt. If results() is bounded, keep
     * draining it until this returns — a full queue blocks the
     * draining workers. Idempotent; also called by the destructor.
     */
    void shutdown() override;

    /**
     * Compatibility wrapper around submit(): enqueues the whole batch
     * and blocks until every request finishes (a full barrier — a
     * slow request holds the return, which is exactly what submit()
     * avoids). Results are returned in request order. All-or-nothing:
     * if any request throws, every ticket is still drained (no
     * abandoned work) and the first failure is rethrown; likewise, if
     * admission refuses a request mid-batch (a bounded engine under
     * load), the already-admitted prefix is drained before the
     * refusal propagates. Callers needing per-request error handling,
     * per-request admission outcomes or streaming completion use
     * submit()/trySubmit() and the Ticket / callback / results()
     * surfaces.
     */
    std::vector<RequestResult> runBatch(
        const std::vector<ServeRequest> &requests);

    /**
     * Reference single-stream path: runs the batch on the calling
     * thread, one request at a time. Bit-identical to runBatch().
     */
    std::vector<RequestResult> runSequential(
        const std::vector<ServeRequest> &requests);

    /** Number of pool workers. */
    int workerCount() const override { return pool_.workerCount(); }

  private:
    friend class Ticket;

    /**
     * Bookkeeping of one admitted-but-unstarted request: enough for
     * Ticket::cancel() to dequeue it, and for a cohort leader to
     * absorb it out of the ready queue and run it itself.
     */
    struct Pending
    {
        std::shared_ptr<std::promise<RequestResult>> promise;
        ServeRequest req;
        Priority cls = Priority::Normal;
        u64 poolToken = 0;
        i64 poolPrio = 0;
        bool toQueue = true;
        std::chrono::steady_clock::time_point enqueued;
        /**
         * Created at submission and carried into execution, so a
         * cancel() racing the worker's dequeue (pool cancel fails,
         * worker hasn't registered in running_ yet) can still signal
         * the run cooperatively instead of being dropped.
         */
        std::shared_ptr<std::atomic<bool>> cancelFlag;
    };

    /** One request a cohort leader is stepping (or about to). */
    struct CohortMember
    {
        ServeRequest req;
        std::shared_ptr<std::promise<RequestResult>> promise;
        std::chrono::steady_clock::time_point enqueued;
        bool toQueue = true;
        u64 ticketId = 0;
        std::shared_ptr<std::atomic<bool>> cancelFlag;
        std::chrono::steady_clock::time_point startedAt;
        Index slot = 0;
        std::unique_ptr<RequestContext> ctx;
        bool delivered = false;
    };

    /**
     * Encodes (priority class, absolute deadline) into one pool
     * priority; the absolute deadline is taken against epoch_ at
     * submission, so queued work ages correctly under EDF.
     */
    i64 poolPriority(const ServeRequest &req) const;

    /** Retry-after hint for a load-driven refusal of class cls. */
    double suggestedBackoff(Priority cls) const;

    SubmitOutcome submitOutcome(const ServeRequest &req, bool to_queue);
    Ticket submitImpl(const ServeRequest &req, bool to_queue);
    bool cancelTicket(u64 ticket_id);

    /**
     * Slice context handed to every executor this engine builds:
     * inactive (solo) unless Options::tensorParallel > 1, in which
     * case slice tasks fork onto pool_ via tpRunner_.
     */
    TpContext tpContext() const;
    RequestResult runOne(const ServeRequest &req,
                         const std::atomic<bool> *cancel) const;

    /**
     * Delivers one finished request: completion callback, results()
     * (both skipped for cancelled requests, which have no valid
     * output), the ticket promise, metrics and in-flight accounting.
     */
    void deliver(const CohortMember &member, RequestResult result,
                 std::exception_ptr failure);

    /**
     * Pulls up to max_take queued requests compatible with key out of
     * the ready queue (highest pool priority first), marking them
     * started. Compatible = same benchmark, mode and quantize flag.
     */
    std::vector<CohortMember> absorbCohortPeers(const ServeRequest &key,
                                                Index max_take);

    /** Leads a cohort seeded with first; returns when all members
        it ever absorbed are delivered. */
    void runCohort(CohortMember first);

    /**
     * One live cohort, published for cohortOccupancy(): its key and
     * how many rows are stepping right now. Leaders register at
     * start, refresh activeRows at every absorb/finish boundary and
     * erase on exit.
     */
    struct ActiveCohort
    {
        Benchmark benchmark = Benchmark::MLD;
        ExecMode mode = ExecMode::Exion;
        bool quantize = false;
        u64 activeRows = 0;
    };

    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    Options opts_;
    AdmissionController admission_;
    ConMergePipeline conmergePipe_;
    std::map<Benchmark, std::unique_ptr<const DiffusionPipeline>> models_;
    ResultQueue results_;
    MetricsCollector metrics_;

    mutable std::mutex mutex_;
    mutable std::condition_variable idleCv_;
    /** Signalled when a ready-queue slot frees (a worker started a
        request, a cancellation, or shutdown) for block-mode
        admission waits. */
    std::condition_variable admissionCv_;
    /** Signalled on every accepted submission, for cohort leaders
        lingering in their formation window. */
    std::condition_variable cohortCv_;
    CompletionCallback onComplete_;
    std::map<u64, Pending> pending_;
    /** Cancel flags of started (running) requests, by ticket id. */
    std::map<u64, std::shared_ptr<std::atomic<bool>>> running_;
    /** Live cohorts by leader instance id (see ActiveCohort). */
    std::map<u64, ActiveCohort> activeCohorts_;
    u64 nextCohortInstance_ = 1;
    u64 nextTicket_ = 1;
    u64 inFlight_ = 0;
    bool stopped_ = false;
    /** Mirrors pool_.pause() so cohort leaders stop absorbing. */
    bool paused_ = false;

    /**
     * Slice fork-join runner over pool_ (tensorParallel > 1 only).
     * Declared before pool_ so it outlives the pool's drain; its
     * destructor never touches the pool, and a drained pool degrades
     * slice runs to caller-computes (PoolSliceRunner contract).
     */
    std::unique_ptr<PoolSliceRunner> tpRunner_;

    /**
     * Last member: destroyed (and therefore drained) first, while the
     * engine state its tasks reference is still alive.
     */
    ThreadPool pool_;
};

} // namespace exion

#endif // EXION_SERVE_BATCH_ENGINE_H_
