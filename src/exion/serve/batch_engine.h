/**
 * @file
 * Multi-request batched denoising engine with asynchronous
 * submit/complete scheduling, explicit admission control and
 * per-class observability.
 *
 * Registers immutable DiffusionPipelines once (weights shared across
 * every request for that benchmark) and schedules concurrent
 * denoising requests across a priority-ordered ThreadPool. Two
 * submission surfaces: submit() keeps the throwing fast path (typed
 * exceptions at the API boundary), trySubmit() returns a
 * SubmitOutcome — a Ticket on acceptance or a RejectReason (QueueFull
 * / LoadShedLow / UnknownModel / Stopped) when the AdmissionConfig in
 * Options refuses the request. Completed results are delivered
 * through the Ticket future, an optional completion callback and the
 * engine's pollable/blocking (and optionally bounded) ResultQueue;
 * Ticket::cancel() dequeues not-yet-started work; snapshot() reports
 * per-class accepted/rejected/shed/cancelled counts, ready-queue
 * depths and queue-wait percentiles. Each request owns a
 * RequestContext bundling every piece of mutable state the run
 * produces — execution context, FFN-Reuse bundle, ConMerge accounting
 * — so results are bit-identical no matter how requests interleave
 * across workers or in which order the scheduler starts them.
 */

#ifndef EXION_SERVE_BATCH_ENGINE_H_
#define EXION_SERVE_BATCH_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exion/common/threadpool.h"
#include "exion/conmerge/pipeline.h"
#include "exion/model/pipeline.h"
#include "exion/serve/admission.h"
#include "exion/serve/metrics.h"
#include "exion/serve/request.h"
#include "exion/serve/result_queue.h"
#include "exion/sparsity/sparse_executor.h"

namespace exion
{

class BatchEngine;

/**
 * All mutable state of one in-flight request.
 *
 * This is the per-request context object: executors bind into it
 * instead of holding stream state themselves, so one request's
 * iteration counter, op accounting, inter-iteration FFN-Reuse caches
 * and ConMerge accounting can never bleed into another's.
 */
struct RequestContext
{
    ExecContext exec;       //!< iteration index + ExecStats
    FfnReuseState ffn;      //!< inter-iteration FFN-Reuse caches
    ConMergeStats conmerge; //!< per-iteration mask compaction roll-up
};

/**
 * Handle to one submitted request.
 *
 * Cheap to copy (shares one future state). get() blocks until the
 * request completes and rethrows its failure, if any; ready() polls
 * without blocking; cancel() best-effort dequeues work that no worker
 * has started yet. On a default-constructed (invalid) ticket every
 * member is a safe no-op: ready() and cancel() return false, wait()
 * returns immediately; only get() requires valid().
 *
 * A ticket must not outlive its engine — it holds a reference back
 * into it for cancel().
 */
class Ticket
{
  public:
    /** Invalid ticket; every member but get() is a safe no-op. */
    Ticket() = default;

    /** Engine-assigned submission sequence number (1-based). */
    u64 id() const { return id_; }

    /** Whether this ticket refers to a submitted request. */
    bool valid() const { return future_.valid(); }

    /** Non-blocking: whether the result is available. false when
        invalid. */
    bool ready() const;

    /** Blocks until the request completes. No-op when invalid. */
    void wait() const;

    /**
     * Blocks until completion, then returns the result (a copy; the
     * shared state stays pollable). Rethrows the request's failure.
     * A cancelled request yields a result with `cancelled` set.
     * @pre valid()
     */
    RequestResult get() const { return future_.get(); }

    /**
     * Best-effort cancellation: dequeues the request if no worker has
     * started it, settling the ticket with a result marked
     * `cancelled` (error = "cancelled"; the completion callback and
     * the result queue are not fed — the request never ran).
     *
     * @return true when the request was dequeued; false when it
     *         already started, already completed, was already
     *         cancelled, or the ticket is invalid
     */
    bool cancel();

  private:
    friend class BatchEngine;

    Ticket(u64 id, std::shared_future<RequestResult> future,
           BatchEngine *engine)
        : id_(id), future_(std::move(future)), engine_(engine)
    {
    }

    u64 id_ = 0;
    std::shared_future<RequestResult> future_;
    BatchEngine *engine_ = nullptr;
};

/**
 * Result of a trySubmit(): an accepted request carries a valid
 * Ticket; a refused one carries the RejectReason instead.
 */
struct SubmitOutcome
{
    /** Valid iff accepted(). */
    Ticket ticket;
    /** Set iff the request was refused. */
    std::optional<RejectReason> reason;

    bool accepted() const { return !reason.has_value(); }
};

/**
 * Batched multi-request serving engine.
 *
 * Usage: addModel() every benchmark the request mix needs (not
 * thread-safe; do it before submitting), then submit()/trySubmit()
 * requests as they arrive and consume completions via Ticket::get(),
 * the completion callback or results(). Overload behaviour is
 * explicit: Options::admission bounds the ready queue per priority
 * class and sheds low classes under load, trySubmit() reports the
 * decision as a value, and snapshot() exposes the counters the
 * decisions feed. runBatch() remains as a synchronous compatibility
 * wrapper (a submit-all barrier that blocks until the whole batch
 * finishes). Request execution is deterministic: a request's result
 * depends only on the request and the registered weights, never on
 * worker count, priorities, scheduling order or admission policy.
 */
class BatchEngine
{
  public:
    struct Options
    {
        /** Worker threads (0 = hardware concurrency). */
        int workers = 0;
        /**
         * ThreadPool seed. Denoising runs derive all randomness from
         * each request's noiseSeed; this only feeds submitSeeded()
         * consumers (planned: randomised schedulers, see ROADMAP).
         */
        u64 poolSeed = 0x2545f4914f6cdd1dULL;
        /** ConMerge configuration for trackConMerge requests. */
        ConMergeConfig conmerge;
        /**
         * Deliver submit() completions to results(). Disable for
         * long-lived services that consume only Tickets or the
         * completion callback.
         */
        bool queueResults = true;
        /**
         * Bound on results() (0 = unbounded). When bounded, a full
         * queue blocks the completing worker until a consumer pops —
         * unpopped results exert backpressure on execution instead of
         * accumulating. Consumers must then keep draining results()
         * until shutdown() returns.
         */
        Index resultQueueCapacity = 0;
        /**
         * Admission policy of submit()/trySubmit(). The default
         * admits everything.
         */
        AdmissionConfig admission;
    };

    /** Invoked on a worker thread as each request completes. */
    using CompletionCallback = std::function<void(const RequestResult &)>;

    /** Engine with default options (hardware-concurrency workers). */
    BatchEngine();

    explicit BatchEngine(const Options &opts);

    /** Drains in-flight requests, then stops (see shutdown()). */
    ~BatchEngine();

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /**
     * Builds and registers the pipeline serving a benchmark at the
     * given scale. Re-registering a benchmark replaces its pipeline.
     */
    void addModel(const ModelConfig &cfg);

    /**
     * Registered pipeline for a benchmark.
     * @throws UnknownModelError when the benchmark is not registered
     */
    const DiffusionPipeline &pipeline(Benchmark b) const;

    /**
     * Enqueues one request — the throwing fast path.
     *
     * The request passes admission (see trySubmit() for the policy),
     * joins the ready queue at its priority class (with
     * earliest-deadline-first ordering within the class) and runs as
     * soon as a worker is free and nothing more urgent is waiting. On
     * completion the result is delivered, in order, to the completion
     * callback (if set), to results(), and to the Ticket future.
     *
     * @throws UnknownModelError  for an unregistered benchmark
     * @throws ThreadPoolStopped  after shutdown() has begun
     * @throws AdmissionRejected  when admission policy refuses the
     *                            request (QueueFull / LoadShedLow)
     */
    Ticket submit(const ServeRequest &req);

    /**
     * Admission-checked submission — the non-throwing path.
     *
     * Validates the request at the API boundary (an unregistered
     * benchmark is UnknownModel here, not a worker-thread failure
     * mid-run), then applies Options::admission: a class at its
     * ready-depth bound is QueueFull (optionally blocking up to the
     * configured timeout for a slot), low classes are LoadShedLow
     * once total depth crosses the shed watermark, and an engine
     * whose shutdown() has begun is Stopped. Every decision is
     * counted in snapshot().
     */
    SubmitOutcome trySubmit(const ServeRequest &req);

    /**
     * Installs the completion hook; pass nullptr to remove it. Takes
     * effect for requests completing after the call. The callback
     * runs on a worker thread and must not call back into submit
     * paths that block on its own completion. It should not throw;
     * an escaped exception is logged and swallowed (it cannot be
     * attached to the already-delivered result).
     */
    void setOnComplete(CompletionCallback cb);

    /**
     * Completion queue fed by every submit() (unless
     * Options::queueResults is off). runBatch() requests and
     * cancelled requests do not appear here.
     */
    ResultQueue &results() { return results_; }

    /**
     * Point-in-time serving metrics: per-class
     * accepted/rejected/shed/cancelled/completed counts and deadline
     * misses, current and peak ready-queue depth (from the pool's
     * per-level accounting), and p50/p99 queue-wait over the recent
     * window. Counters reconcile exactly with the outcomes callers
     * observed.
     */
    EngineMetrics snapshot() const;

    /**
     * Pauses scheduling: workers finish their current request, then
     * idle; submissions still queue up. Lets a burst of submissions
     * be ordered purely by priority before any of them starts.
     * shutdown() overrides a pause and drains.
     */
    void pause() { pool_.pause(); }

    /** Resumes scheduling after pause(). */
    void resume() { pool_.resume(); }

    /** Requests admitted but not yet completed or cancelled. */
    u64 inFlight() const;

    /** Blocks until every admitted request has completed. */
    void waitIdle() const;

    /**
     * Graceful shutdown: refuses new submissions, runs every request
     * already accepted (pending work is drained, not abandoned),
     * delivers all their results, then closes results() so blocked
     * consumers wake with std::nullopt. If results() is bounded, keep
     * draining it until this returns — a full queue blocks the
     * draining workers. Idempotent; also called by the destructor.
     */
    void shutdown();

    /**
     * Compatibility wrapper around submit(): enqueues the whole batch
     * and blocks until every request finishes (a full barrier — a
     * slow request holds the return, which is exactly what submit()
     * avoids). Results are returned in request order. All-or-nothing:
     * if any request throws, every ticket is still drained (no
     * abandoned work) and the first failure is rethrown; likewise, if
     * admission refuses a request mid-batch (a bounded engine under
     * load), the already-admitted prefix is drained before the
     * refusal propagates. Callers needing per-request error handling,
     * per-request admission outcomes or streaming completion use
     * submit()/trySubmit() and the Ticket / callback / results()
     * surfaces.
     */
    std::vector<RequestResult> runBatch(
        const std::vector<ServeRequest> &requests);

    /**
     * Reference single-stream path: runs the batch on the calling
     * thread, one request at a time. Bit-identical to runBatch().
     */
    std::vector<RequestResult> runSequential(
        const std::vector<ServeRequest> &requests);

    /** Number of pool workers. */
    int workerCount() const { return pool_.workerCount(); }

  private:
    friend class Ticket;

    /** Cancellation bookkeeping of one admitted-but-unstarted
        request. */
    struct Pending
    {
        std::shared_ptr<std::promise<RequestResult>> promise;
        u64 requestId = 0;
        Priority cls = Priority::Normal;
        u64 poolToken = 0;
    };

    /**
     * Encodes (priority class, absolute deadline) into one pool
     * priority; the absolute deadline is taken against epoch_ at
     * submission, so queued work ages correctly under EDF.
     */
    i64 poolPriority(const ServeRequest &req) const;

    /** Ready depth of each class, from the pool's level accounting. */
    ClassDepths readyDepths() const;

    SubmitOutcome submitOutcome(const ServeRequest &req, bool to_queue);
    Ticket submitImpl(const ServeRequest &req, bool to_queue);
    bool cancelTicket(u64 ticket_id);
    RequestResult runOne(const ServeRequest &req) const;

    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    Options opts_;
    AdmissionController admission_;
    ConMergePipeline conmergePipe_;
    std::map<Benchmark, std::unique_ptr<const DiffusionPipeline>> models_;
    ResultQueue results_;
    MetricsCollector metrics_;

    mutable std::mutex mutex_;
    mutable std::condition_variable idleCv_;
    /** Signalled when a ready-queue slot frees (a worker started a
        request, a cancellation, or shutdown) for block-mode
        admission waits. */
    std::condition_variable admissionCv_;
    CompletionCallback onComplete_;
    std::map<u64, Pending> pending_;
    u64 nextTicket_ = 1;
    u64 inFlight_ = 0;
    bool stopped_ = false;

    /**
     * Last member: destroyed (and therefore drained) first, while the
     * engine state its tasks reference is still alive.
     */
    ThreadPool pool_;
};

} // namespace exion

#endif // EXION_SERVE_BATCH_ENGINE_H_
