#include "exion/serve/batch_engine.h"

#include <chrono>
#include <utility>

#include "exion/common/logging.h"

namespace exion
{

std::string
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Dense:
        return "dense";
      case ExecMode::FfnReuseOnly:
        return "ffn-reuse";
      case ExecMode::EpOnly:
        return "ep";
      case ExecMode::Exion:
        return "exion";
    }
    return "?";
}

BatchEngine::BatchEngine() : BatchEngine(Options{})
{
}

BatchEngine::BatchEngine(const Options &opts)
    : opts_(opts), conmergePipe_(opts.conmerge),
      pool_(opts.workers, opts.poolSeed)
{
}

void
BatchEngine::addModel(const ModelConfig &cfg)
{
    models_[cfg.benchmark] =
        std::make_unique<const DiffusionPipeline>(cfg);
}

const DiffusionPipeline &
BatchEngine::pipeline(Benchmark b) const
{
    const auto it = models_.find(b);
    EXION_ASSERT(it != models_.end(), "benchmark ", benchmarkName(b),
                 " not registered with the engine");
    return *it->second;
}

std::future<RequestResult>
BatchEngine::submit(const ServeRequest &req)
{
    // Resolve the pipeline now so a missing model fails the submitter,
    // not a worker.
    pipeline(req.benchmark);
    return pool_.submit([this, req]() { return runOne(req); });
}

std::vector<RequestResult>
BatchEngine::runBatch(const std::vector<ServeRequest> &requests)
{
    std::vector<std::future<RequestResult>> futures;
    futures.reserve(requests.size());
    for (const ServeRequest &req : requests)
        futures.push_back(submit(req));
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    // Drain every future even if one throws, so no in-flight work is
    // abandoned; then report the first failure with its request id.
    std::exception_ptr first_error;
    u64 failed_id = 0;
    for (Index i = 0; i < futures.size(); ++i) {
        try {
            results.push_back(futures[i].get());
        } catch (...) {
            if (!first_error) {
                first_error = std::current_exception();
                failed_id = requests[i].id;
            }
        }
    }
    if (first_error) {
        EXION_WARN("batch request ", failed_id,
                   " failed; rethrowing its error");
        std::rethrow_exception(first_error);
    }
    return results;
}

std::vector<RequestResult>
BatchEngine::runSequential(const std::vector<ServeRequest> &requests)
{
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    for (const ServeRequest &req : requests)
        results.push_back(runOne(req));
    return results;
}

RequestResult
BatchEngine::runOne(const ServeRequest &req) const
{
    const DiffusionPipeline &pipe = pipeline(req.benchmark);
    const ModelConfig &cfg = pipe.config();

    RequestContext ctx;
    std::unique_ptr<BlockExecutor> exec;
    if (req.mode == ExecMode::Dense) {
        auto dense = std::make_unique<DenseExecutor>(req.quantize);
        dense->bindContext(ctx.exec);
        exec = std::move(dense);
    } else {
        const bool ffnr = req.mode != ExecMode::EpOnly;
        const bool ep = req.mode != ExecMode::FfnReuseOnly;
        auto sparse = std::make_unique<SparseExecutor>(
            SparseExecutor::fromConfig(cfg, ffnr, ep, req.quantize));
        sparse->bindRequestState(ctx.exec, ctx.ffn);
        if (req.trackConMerge && ffnr) {
            sparse->observers.onFfnMask =
                [this, &ctx](int, const Bitmask2D &mask, bool) {
                    conmergePipe_.processMaskInto(mask, ctx.conmerge);
                };
        }
        exec = std::move(sparse);
    }

    RunOptions opts;
    opts.noiseSeed = req.noiseSeed;

    const auto start = std::chrono::steady_clock::now();
    Matrix output = pipe.run(*exec, opts);
    const auto stop = std::chrono::steady_clock::now();

    RequestResult result;
    result.id = req.id;
    result.output = std::move(output);
    result.stats = ctx.exec.stats;
    result.conmerge = ctx.conmerge;
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    return result;
}

} // namespace exion
