#include "exion/serve/batch_engine.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "exion/common/logging.h"
#include "exion/model/weight_store.h"
#include "exion/sparsity/cohort_executor.h"

namespace exion
{

std::string
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Dense:
        return "dense";
      case ExecMode::FfnReuseOnly:
        return "ffn-reuse";
      case ExecMode::EpOnly:
        return "ep";
      case ExecMode::Exion:
        return "exion";
    }
    return "?";
}

std::string
priorityName(Priority p)
{
    switch (p) {
      case Priority::Low:
        return "low";
      case Priority::Normal:
        return "normal";
      case Priority::High:
        return "high";
      case Priority::Critical:
        return "critical";
    }
    return "?";
}

bool
Ticket::ready() const
{
    // An invalid (default-constructed) ticket has no shared state;
    // wait_for on it would be UB, so report "not ready" instead.
    if (!valid())
        return false;
    return future_.wait_for(std::chrono::seconds(0))
        == std::future_status::ready;
}

void
Ticket::wait() const
{
    if (!valid())
        return;
    future_.wait();
}

bool
Ticket::cancel()
{
    if (engine_ == nullptr || !valid())
        return false;
    return engine_->cancelTicket(id_);
}

BatchEngine::BatchEngine() : BatchEngine(Options{})
{
}

BatchEngine::BatchEngine(const Options &opts)
    : opts_(opts), admission_(opts.admission), conmergePipe_(opts.conmerge),
      results_(opts.resultQueueCapacity), pool_(opts.workers, opts.poolSeed)
{
    if (opts_.tensorParallel < 1) {
        EXION_WARN("tensorParallel ", opts_.tensorParallel,
                   " clamped to 1");
        opts_.tensorParallel = 1;
    }
    if (opts_.tensorParallel > 1) {
        tpRunner_ = std::make_unique<PoolSliceRunner>(pool_);
        if (!opts_.tpSliceCpus.empty())
            tpRunner_->setSliceCpus(opts_.tpSliceCpus);
    }
}

TpContext
BatchEngine::tpContext() const
{
    if (opts_.tensorParallel <= 1 || !tpRunner_)
        return {};
    return TpContext{opts_.tensorParallel, tpRunner_.get()};
}

BatchEngine::~BatchEngine()
{
    shutdown();
}

void
BatchEngine::addModel(const ModelConfig &cfg)
{
    registerModel(cfg.benchmark, WeightStore::build(cfg));
}

void
BatchEngine::registerModel(Benchmark b,
                           std::shared_ptr<const WeightStore> store)
{
    if (!store)
        throw std::invalid_argument("registerModel: null weight store");
    if (store->config().benchmark != b)
        throw std::invalid_argument(
            "registerModel: store holds "
            + benchmarkName(store->config().benchmark)
            + ", not " + benchmarkName(b));
    // Pipeline construction (cheap for a store: borrowed views, no
    // Rng build) happens outside the lock; the stopped check and the
    // map insert are atomic with respect to shutdown().
    auto pipe = std::make_unique<const DiffusionPipeline>(std::move(store));
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_)
        throw ThreadPoolStopped();
    models_[b] = std::move(pipe);
}

void
BatchEngine::registerModelFromFile(const std::string &path, bool pin)
{
    auto store = WeightStore::load(path, pin);
    const Benchmark b = store->config().benchmark;
    registerModel(b, std::move(store));
}

const DiffusionPipeline &
BatchEngine::pipeline(Benchmark b) const
{
    const auto it = models_.find(b);
    if (it == models_.end())
        throw UnknownModelError("benchmark " + benchmarkName(b)
                                + " not registered with the engine");
    return *it->second;
}

i64
BatchEngine::poolPriority(const ServeRequest &req) const
{
    // Class in the high bits; within a class, the earliest absolute
    // deadline (submission time + deadlineSeconds, measured against
    // the engine epoch) ranks highest — true EDF, so a long-queued
    // request is not starved by a fresh arrival with a tighter
    // relative deadline. "No deadline" ranks below every finite
    // deadline; ties fall back to the pool's FIFO order. Clamping
    // happens in the double domain: a huge/inf deadline must not
    // overflow the i64 cast (NaN fails the > 0 test and counts as
    // "no deadline").
    constexpr i64 kDeadlineRange = i64{1} << 40; // ~12.7 days at 1 µs
    i64 deadline_rank = 0;                       // no deadline: last
    if (req.deadlineSeconds > 0.0) {
        const double since_epoch_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
        const double absolute_us =
            since_epoch_us + req.deadlineSeconds * 1e6;
        const i64 us = static_cast<i64>(std::clamp(
            absolute_us, 1.0,
            static_cast<double>(kDeadlineRange - 2)));
        deadline_rank = kDeadlineRange - 1 - us;
    }
    return static_cast<i64>(req.priority) * kDeadlineRange
        + deadline_rank;
}

ClassDepths
BatchEngine::readyDepths() const
{
    ClassDepths depths{};
    pool_.queuedAtLevels(kNumPriorityClasses, depths.data());
    return depths;
}

double
BatchEngine::suggestedBackoff(Priority cls) const
{
    const double p50 = metrics_.classQueueWaitP50(cls);
    if (p50 <= 0.0)
        return 0.010; // no congestion signal yet: a small fixed nudge
    return std::clamp(p50, 0.001, 5.0);
}

Ticket
BatchEngine::submit(const ServeRequest &req)
{
    return submitImpl(req, /*to_queue=*/true);
}

SubmitOutcome
BatchEngine::trySubmit(const ServeRequest &req)
{
    return submitOutcome(req, /*to_queue=*/true);
}

Ticket
BatchEngine::submitImpl(const ServeRequest &req, bool to_queue)
{
    SubmitOutcome outcome = submitOutcome(req, to_queue);
    if (outcome.accepted())
        return std::move(outcome.ticket);
    switch (*outcome.reason) {
      case RejectReason::UnknownModel:
        throw UnknownModelError("benchmark "
                                + benchmarkName(req.benchmark)
                                + " not registered with the engine");
      case RejectReason::Stopped:
        throw ThreadPoolStopped();
      case RejectReason::QueueFull:
      case RejectReason::LoadShedLow:
        break;
    }
    throw AdmissionRejected(*outcome.reason,
                            "request " + std::to_string(req.id)
                                + " rejected: "
                                + rejectReasonName(*outcome.reason),
                            outcome.suggestedBackoffSeconds);
}

SubmitOutcome
BatchEngine::submitOutcome(const ServeRequest &req, bool to_queue)
{
    const Priority cls = req.priority;
    std::unique_lock<std::mutex> lock(mutex_);

    // Validate at the API boundary: a bad request fails the
    // submitter, never a worker thread mid-run.
    if (models_.find(req.benchmark) == models_.end()) {
        metrics_.onRejected(cls, RejectReason::UnknownModel);
        return SubmitOutcome{Ticket{}, RejectReason::UnknownModel};
    }
    if (stopped_) {
        metrics_.onRejected(cls, RejectReason::Stopped);
        return SubmitOutcome{Ticket{}, RejectReason::Stopped};
    }

    std::optional<RejectReason> verdict =
        admission_.decide(cls, readyDepths());
    if (verdict == RejectReason::QueueFull && admission_.blocking()) {
        // Block-with-timeout mode: wait for a ready-queue slot (a
        // worker starting a queued request, or a cancellation). The
        // verdict is re-evaluated on every wake — it may flip to
        // LoadShedLow if the overall queue kept growing meanwhile.
        const auto deadline =
            std::chrono::steady_clock::now() + admission_.blockTimeout();
        while (!stopped_) {
            const bool timed_out =
                admissionCv_.wait_until(lock, deadline)
                == std::cv_status::timeout;
            verdict = admission_.decide(cls, readyDepths());
            if (timed_out || verdict != RejectReason::QueueFull)
                break;
        }
        if (stopped_)
            verdict = RejectReason::Stopped;
    }
    if (verdict.has_value()) {
        metrics_.onRejected(cls, *verdict);
        // Compute the hint off the engine lock: the overload path is
        // exactly when rejections are frequent, and the class-median
        // scan must not serialize submits/deliveries behind it.
        lock.unlock();
        SubmitOutcome outcome{Ticket{}, *verdict, 0.0};
        if (*verdict == RejectReason::QueueFull
            || *verdict == RejectReason::LoadShedLow)
            outcome.suggestedBackoffSeconds = suggestedBackoff(cls);
        return outcome;
    }

    // Admitted: account, register for cancellation, post to the pool
    // at the class's level — all under one lock, so a concurrent
    // admission check can never overshoot the class bound and the
    // worker (whose first action locks this mutex) can never observe
    // a half-registered request.
    auto promise = std::make_shared<std::promise<RequestResult>>();
    const u64 ticket_id = nextTicket_++;
    ++inFlight_;
    const auto enqueued = std::chrono::steady_clock::now();
    const i64 pool_prio = poolPriority(req);
    auto flag = std::make_shared<std::atomic<bool>>(false);
    const auto pending_it =
        pending_
            .emplace(ticket_id, Pending{promise, req, cls, 0, pool_prio,
                                        to_queue, enqueued, flag})
            .first;

    u64 token = 0;
    try {
        token = pool_.postTagged(
            [this, promise, to_queue, ticket_id, enqueued]() {
                // Claim the pending entry: move the request and its
                // submission-time cancellation flag out (instead of a
                // third ServeRequest copy in this closure) and
                // register the flag as running before the entry goes,
                // so a concurrent cancel() always finds the request
                // in exactly one registry — and a cancel that lost
                // the dequeue race has already set this same flag.
                CohortMember member;
                member.promise = promise;
                member.enqueued = enqueued;
                member.toQueue = to_queue;
                member.ticketId = ticket_id;
                {
                    std::lock_guard<std::mutex> inner(mutex_);
                    const auto it = pending_.find(ticket_id);
                    EXION_ASSERT(it != pending_.end(),
                                 "started task without pending entry");
                    member.req = std::move(it->second.req);
                    member.cancelFlag =
                        std::move(it->second.cancelFlag);
                    running_.emplace(ticket_id, member.cancelFlag);
                    pending_.erase(it);
                }
                // A ready-queue slot freed: admit a block-mode waiter.
                admissionCv_.notify_all();
                const auto started_at = std::chrono::steady_clock::now();
                metrics_.onStarted(
                    member.req.priority,
                    std::chrono::duration<double>(started_at - enqueued)
                        .count());
                member.startedAt = started_at;

                if (opts_.cohortBatching) {
                    runCohort(std::move(member));
                    return;
                }

                RequestResult result;
                std::exception_ptr failure;
                try {
                    result = runOne(member.req,
                                    member.cancelFlag.get());
                } catch (const std::exception &e) {
                    failure = std::current_exception();
                    result = RequestResult{};
                    result.id = member.req.id;
                    result.error = e.what();
                } catch (...) {
                    failure = std::current_exception();
                    result = RequestResult{};
                    result.id = member.req.id;
                    result.error = "unknown error";
                }
                deliver(member, std::move(result), failure);
            },
            pool_prio, classIndex(cls));
    } catch (...) {
        // The pool refused the task. Today shutdown() always flips
        // stopped_ (checked above) before stopping the pool, so this
        // is unreachable — but undo the accounting rather than rely
        // on that.
        pending_.erase(pending_it);
        --inFlight_;
        metrics_.onRejected(cls, RejectReason::Stopped);
        lock.unlock();
        idleCv_.notify_all();
        return SubmitOutcome{Ticket{}, RejectReason::Stopped};
    }
    pending_it->second.poolToken = token;
    metrics_.onAccepted(cls);
    // A cohort leader lingering in its formation window may want this
    // request at its next boundary.
    cohortCv_.notify_all();
    Ticket ticket(ticket_id, promise->get_future().share(), this);
    return SubmitOutcome{std::move(ticket), std::nullopt, 0.0};
}

bool
BatchEngine::cancelTicket(u64 ticket_id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = pending_.find(ticket_id);
    if (it == pending_.end()) {
        // Not queued: maybe running. Cooperative cancellation —
        // signal the executing worker (or its cohort leader), which
        // polls the flag at every iteration boundary and settles the
        // ticket with a `cancelled` result when it stops. exchange()
        // makes a second cancel() report false.
        const auto rit = running_.find(ticket_id);
        if (rit == running_.end())
            return false; // already completed or cancelled
        return !rit->second->exchange(true);
    }
    if (!pool_.cancel(it->second.poolToken)) {
        // A worker is dequeuing it right now: too late to unqueue,
        // but the submission-time flag it will carry into running_
        // can still stop the run at its first iteration boundary.
        return !it->second.cancelFlag->exchange(true);
    }
    const Pending pending = std::move(it->second);
    pending_.erase(it);
    metrics_.onCancelled(pending.cls);
    RequestResult result;
    result.id = pending.req.id;
    result.cancelled = true;
    result.error = "cancelled";
    // Only the ticket sees a cancelled request: it never ran, so the
    // completion callback and results() are not fed.
    pending.promise->set_value(std::move(result));
    --inFlight_;
    lock.unlock();
    idleCv_.notify_all();
    admissionCv_.notify_all();
    return true;
}

void
BatchEngine::deliver(const CohortMember &member, RequestResult result,
                     std::exception_ptr failure)
{
    const ServeRequest &req = member.req;
    const bool cancelled = result.cancelled;
    // Deadline verdict taken as execution finishes: the delivery
    // below may block on a bounded results() (intended backpressure),
    // and consumer lag must not masquerade as the request missing its
    // deadline. A cancelled request has no completion to judge.
    const bool missed = !cancelled && req.deadlineSeconds > 0.0
        && std::chrono::duration<double>(
               std::chrono::steady_clock::now() - member.enqueued)
                .count()
            > req.deadlineSeconds;

    if (!cancelled) {
        CompletionCallback cb;
        {
            std::lock_guard<std::mutex> inner(mutex_);
            cb = onComplete_;
        }
        // A misbehaving delivery sink must not break the accounting
        // below it: an escaped exception here would leave the Ticket
        // promise unset (deadlocking get()) and inFlight_ stuck
        // nonzero.
        if (cb) {
            try {
                cb(result);
            } catch (...) {
                EXION_WARN("completion callback threw for request ",
                           result.id, "; ignoring");
            }
        }
        if (member.toQueue && opts_.queueResults) {
            try {
                // Blocks on a bounded queue until a consumer pops:
                // unpopped results throttle the workers.
                results_.push(result);
            } catch (...) {
                EXION_WARN("result queue push failed for request ",
                           result.id, "; dropping");
            }
        }
    }
    if (failure)
        member.promise->set_exception(failure);
    else
        member.promise->set_value(std::move(result));

    if (cancelled)
        metrics_.onCancelled(req.priority);
    else
        metrics_.onCompleted(req.priority, failure != nullptr, missed);
    {
        std::lock_guard<std::mutex> inner(mutex_);
        running_.erase(member.ticketId);
        --inFlight_;
    }
    idleCv_.notify_all();
}

std::vector<BatchEngine::CohortMember>
BatchEngine::absorbCohortPeers(const ServeRequest &key, Index max_take)
{
    std::vector<CohortMember> absorbed;
    if (max_take == 0)
        return absorbed;
    std::unique_lock<std::mutex> lock(mutex_);
    // A paused engine stages queued work (pause() contract): leaders
    // keep stepping their current members but must not start more.
    if (paused_)
        return absorbed;

    // Candidates in scheduling order: highest pool priority first
    // (class, then EDF), submission order within ties — the order the
    // pool itself would have started them in. Track the best queued
    // request that does NOT match the key: absorbing anything the
    // scheduler would have started after it would starve it (a
    // refilling cohort could otherwise hold its worker forever while
    // a higher-priority non-matching request waits), so absorption
    // stops at the first candidate the non-matching request beats.
    std::vector<std::pair<i64, u64>> candidates;
    bool has_other = false;
    std::pair<i64, u64> best_other{0, 0};
    for (const auto &[id, p] : pending_) {
        if (p.req.benchmark == key.benchmark && p.req.mode == key.mode
            && p.req.quantize == key.quantize) {
            candidates.emplace_back(p.poolPrio, id);
        } else if (!has_other || p.poolPrio > best_other.first
                   || (p.poolPrio == best_other.first
                       && id < best_other.second)) {
            has_other = true;
            best_other = {p.poolPrio, id};
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });

    const auto started_at = std::chrono::steady_clock::now();
    for (const auto &[prio, id] : candidates) {
        if (absorbed.size() >= max_take)
            break;
        const bool scheduled_first = !has_other
            || prio > best_other.first
            || (prio == best_other.first && id < best_other.second);
        if (!scheduled_first)
            break; // candidates are sorted: the rest lose too
        const auto it = pending_.find(id);
        if (!pool_.cancel(it->second.poolToken))
            continue; // a worker is dequeuing it right now
        Pending pending = std::move(it->second);
        pending_.erase(it);

        CohortMember member;
        member.req = std::move(pending.req);
        member.promise = std::move(pending.promise);
        member.enqueued = pending.enqueued;
        member.toQueue = pending.toQueue;
        member.ticketId = id;
        member.cancelFlag = std::move(pending.cancelFlag);
        member.startedAt = started_at;
        running_.emplace(id, member.cancelFlag);
        metrics_.onStarted(member.req.priority,
                           std::chrono::duration<double>(
                               started_at - member.enqueued)
                               .count());
        absorbed.push_back(std::move(member));
    }
    if (!absorbed.empty()) {
        // Ready-queue slots freed: admit block-mode waiters.
        lock.unlock();
        admissionCv_.notify_all();
    }
    return absorbed;
}

void
BatchEngine::runCohort(CohortMember first)
{
    const DiffusionPipeline *pipe_ptr = nullptr;
    try {
        pipe_ptr = &pipeline(first.req.benchmark);
    } catch (const std::exception &e) {
        // Unreachable today (submit validates registration and models
        // are only ever replaced), but an escaping exception would
        // take down the worker thread — fail the request instead.
        const std::exception_ptr failure = std::current_exception();
        RequestResult result;
        result.id = first.req.id;
        result.error = e.what();
        deliver(first, std::move(result), failure);
        return;
    }
    const DiffusionPipeline &pipe = *pipe_ptr;
    const ModelConfig &cfg = pipe.config();
    const ExecMode mode = first.req.mode;
    const bool ffnr =
        mode == ExecMode::FfnReuseOnly || mode == ExecMode::Exion;
    const bool ep = mode == ExecMode::EpOnly || mode == ExecMode::Exion;
    SparseExecutor::Options cohort_opts = SparseExecutor::fromConfig(
        cfg, ffnr, ep, first.req.quantize);
    cohort_opts.gemm = opts_.gemmBackend;
    cohort_opts.simd = opts_.simdTier;
    cohort_opts.tp = tpContext();
    CohortExecutor exec(cohort_opts);
    CohortRun run(pipe, exec);

    // Slot ids are join order, so members_[slot] is the member.
    std::vector<std::unique_ptr<CohortMember>> members;
    const auto admit = [&](CohortMember &&m) {
        members.push_back(
            std::make_unique<CohortMember>(std::move(m)));
        CohortMember &mem = *members.back();
        mem.ctx = std::make_unique<RequestContext>();
        mem.slot = run.join(mem.req.noiseSeed);
        EXION_ASSERT(mem.slot + 1 == members.size(),
                     "cohort slot ", mem.slot, " out of join order");
        exec.attachSlot(mem.slot, mem.ctx->exec, mem.ctx->ffn);
        if (mem.req.trackConMerge && ffnr) {
            RequestContext *ctx = mem.ctx.get();
            exec.slotObservers(mem.slot).onFfnMask =
                [this, ctx](int, const Bitmask2D &mask, bool) {
                    conmergePipe_.processMaskInto(mask, ctx->conmerge);
                };
        }
    };
    const Index max_rows = std::max<Index>(1, opts_.cohortMaxRows);
    const ServeRequest key = first.req;
    admit(std::move(first));

    // Publish this cohort's key and live row count for
    // cohortOccupancy() (the router's affinity signal); erased on
    // every exit path, including a poisoned iteration.
    u64 cohort_id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cohort_id = nextCohortInstance_++;
        activeCohorts_.emplace(
            cohort_id, ActiveCohort{key.benchmark, key.mode,
                                    key.quantize, run.activeCount()});
    }
    struct CohortRegistration
    {
        BatchEngine *engine;
        u64 id;
        ~CohortRegistration()
        {
            std::lock_guard<std::mutex> lock(engine->mutex_);
            engine->activeCohorts_.erase(id);
        }
    } registration{this, cohort_id};
    const auto publish_rows = [&]() {
        std::lock_guard<std::mutex> lock(mutex_);
        activeCohorts_[cohort_id].activeRows = run.activeCount();
    };

    const auto absorb = [&]() {
        const Index space = max_rows - std::min(max_rows,
                                                run.activeCount());
        for (CohortMember &m : absorbCohortPeers(key, space))
            admit(std::move(m));
        publish_rows();
    };
    absorb();

    // Formation window: linger for same-key submissions before the
    // first step. Boundary absorption below picks up anything later.
    if (opts_.cohortWindowSeconds > 0.0) {
        const auto window_deadline = std::chrono::steady_clock::now()
            + std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    opts_.cohortWindowSeconds));
        while (run.activeCount() < max_rows) {
            bool stop;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                if (stopped_
                    || cohortCv_.wait_until(lock, window_deadline)
                        == std::cv_status::timeout)
                    break;
                stop = stopped_;
            }
            if (stop)
                break;
            absorb();
        }
        absorb();
    }

    const auto deliver_cancelled = [&](CohortMember &m) {
        run.leave(m.slot);
        exec.releaseSlot(m.slot);
        RequestResult result;
        result.id = m.req.id;
        result.cancelled = true;
        result.error = "cancelled";
        m.delivered = true;
        deliver(m, std::move(result), nullptr);
        m.ctx.reset();
    };

    while (!run.done()) {
        // Cooperative cancellation: drop flagged members before the
        // next iteration — the cohort analogue of the solo boundary
        // poll. Removing a row never perturbs the other members.
        for (auto &mp : members) {
            if (!mp->delivered && run.isActive(mp->slot)
                && mp->cancelFlag->load(std::memory_order_relaxed))
                deliver_cancelled(*mp);
        }
        if (run.done())
            break;

        std::vector<Index> finished;
        try {
            finished = run.step();
        } catch (...) {
            // A failed forward poisons the whole stacked iteration:
            // fail every undelivered member with the original error.
            const std::exception_ptr failure = std::current_exception();
            std::string what = "unknown error";
            try {
                std::rethrow_exception(failure);
            } catch (const std::exception &e) {
                what = e.what();
            } catch (...) {
            }
            for (auto &mp : members) {
                if (mp->delivered)
                    continue;
                RequestResult result;
                result.id = mp->req.id;
                result.error = what;
                mp->delivered = true;
                deliver(*mp, std::move(result), failure);
                mp->ctx.reset();
            }
            return;
        }

        // Progress hooks fire after the iteration, like the solo
        // path's per-iteration hook.
        for (auto &mp : members) {
            if (mp->delivered || !mp->req.onProgress)
                continue;
            const int done_iter = run.iterationOf(mp->slot) - 1;
            if (done_iter >= 0
                && (run.isActive(mp->slot) || run.isFinished(mp->slot)))
                mp->req.onProgress(done_iter);
        }

        for (Index slot : finished) {
            CohortMember &m = *members[slot];
            RequestResult result;
            result.id = m.req.id;
            result.output = run.takeResult(m.slot);
            result.stats = m.ctx->exec.stats;
            result.conmerge = m.ctx->conmerge;
            result.seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now()
                                 - m.startedAt)
                                 .count();
            exec.releaseSlot(m.slot);
            m.delivered = true;
            deliver(m, std::move(result), nullptr);
            m.ctx.reset();
        }

        // Boundary absorption: late joiners attach here, starting
        // their own iteration 0 while earlier members run ahead.
        if (!run.done())
            absorb();
    }
}

void
BatchEngine::pause()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = true;
    }
    pool_.pause();
}

void
BatchEngine::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    pool_.resume();
    // Leaders lingering in a formation window may absorb again.
    cohortCv_.notify_all();
}

void
BatchEngine::setOnComplete(CompletionCallback cb)
{
    std::lock_guard<std::mutex> lock(mutex_);
    onComplete_ = std::move(cb);
}

EngineMetrics
BatchEngine::snapshot() const
{
    EngineMetrics m = metrics_.snapshot();
    for (int c = 0; c < kNumPriorityClasses; ++c) {
        m.perClass[c].queued = pool_.queuedAtLevel(c);
        m.perClass[c].peakQueued = pool_.peakQueuedAtLevel(c);
    }
    return m;
}

std::string
BatchEngine::metricsText() const
{
    return snapshot().toPrometheusText();
}

BatchEngine::CohortOccupancy
BatchEngine::cohortOccupancy(const ServeRequest &req) const
{
    CohortOccupancy occ;
    const u64 max_rows =
        static_cast<u64>(std::max<Index>(1, opts_.cohortMaxRows));
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[id, p] : pending_) {
        if (p.req.benchmark == req.benchmark && p.req.mode == req.mode
            && p.req.quantize == req.quantize)
            ++occ.queued;
    }
    for (const auto &[id, c] : activeCohorts_) {
        if (c.benchmark != req.benchmark || c.mode != req.mode
            || c.quantize != req.quantize)
            continue;
        occ.running += c.activeRows;
        occ.spareRows += max_rows - std::min(max_rows, c.activeRows);
    }
    return occ;
}

bool
BatchEngine::stoppedFlag() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stopped_;
}

int
BatchEngine::pinWorkers(const std::vector<std::vector<int>> &cpuSets)
{
    return pool_.pinWorkers(cpuSets);
}

u64
BatchEngine::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inFlight_;
}

void
BatchEngine::waitIdle() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this]() { return inFlight_ == 0; });
}

void
BatchEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
    }
    admissionCv_.notify_all(); // block-mode waiters fail with Stopped
    cohortCv_.notify_all();    // lingering cohort leaders start now
    pool_.shutdown(); // drains every accepted request, idempotent
    results_.close();
}

std::vector<RequestResult>
BatchEngine::runBatch(const std::vector<ServeRequest> &requests)
{
    std::vector<Ticket> tickets;
    tickets.reserve(requests.size());
    try {
        for (const ServeRequest &req : requests)
            tickets.push_back(submitImpl(req, /*to_queue=*/false));
    } catch (...) {
        // Admission (or shutdown) refused a request mid-batch: the
        // already-admitted prefix still runs, so drain it — no work
        // or result delivery abandoned — then surface the refusal.
        for (Ticket &t : tickets) {
            try {
                t.get();
            } catch (...) {
            }
        }
        throw;
    }
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    // Drain every ticket even if one throws, so no in-flight work is
    // abandoned; then report the first failure with its request id.
    std::exception_ptr first_error;
    u64 failed_id = 0;
    for (Index i = 0; i < tickets.size(); ++i) {
        try {
            results.push_back(tickets[i].get());
        } catch (...) {
            if (!first_error) {
                first_error = std::current_exception();
                failed_id = requests[i].id;
            }
        }
    }
    if (first_error) {
        EXION_WARN("batch request ", failed_id,
                   " failed; rethrowing its error");
        std::rethrow_exception(first_error);
    }
    return results;
}

std::vector<RequestResult>
BatchEngine::runSequential(const std::vector<ServeRequest> &requests)
{
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    for (const ServeRequest &req : requests)
        results.push_back(runOne(req, /*cancel=*/nullptr));
    return results;
}

RequestResult
BatchEngine::runOne(const ServeRequest &req,
                    const std::atomic<bool> *cancel) const
{
    const DiffusionPipeline &pipe = pipeline(req.benchmark);
    const ModelConfig &cfg = pipe.config();

    RequestContext ctx;
    std::unique_ptr<BlockExecutor> exec;
    if (req.mode == ExecMode::Dense) {
        auto dense = std::make_unique<DenseExecutor>(
            req.quantize, opts_.gemmBackend, opts_.simdTier,
            tpContext());
        dense->bindContext(ctx.exec);
        exec = std::move(dense);
    } else {
        const bool ffnr = req.mode != ExecMode::EpOnly;
        const bool ep = req.mode != ExecMode::FfnReuseOnly;
        SparseExecutor::Options sparse_opts =
            SparseExecutor::fromConfig(cfg, ffnr, ep, req.quantize);
        sparse_opts.gemm = opts_.gemmBackend;
        sparse_opts.simd = opts_.simdTier;
        sparse_opts.tp = tpContext();
        auto sparse = std::make_unique<SparseExecutor>(sparse_opts);
        sparse->bindRequestState(ctx.exec, ctx.ffn);
        if (req.trackConMerge && ffnr) {
            sparse->observers.onFfnMask =
                [this, &ctx](int, const Bitmask2D &mask, bool) {
                    conmergePipe_.processMaskInto(mask, ctx.conmerge);
                };
        }
        exec = std::move(sparse);
    }

    RunOptions opts;
    opts.noiseSeed = req.noiseSeed;
    opts.cancel = cancel;
    if (req.onProgress)
        opts.onIteration = [&req](int i, const Matrix &) {
            req.onProgress(i);
        };

    const auto start = std::chrono::steady_clock::now();
    RunOutcome outcome = pipe.runCancellable(*exec, opts);
    const auto stop = std::chrono::steady_clock::now();

    RequestResult result;
    result.id = req.id;
    if (outcome.cancelled) {
        // The partial latent is not a valid output; drop it.
        result.cancelled = true;
        result.error = "cancelled";
    } else {
        result.output = std::move(outcome.latent);
        result.stats = ctx.exec.stats;
        result.conmerge = ctx.conmerge;
    }
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    return result;
}

} // namespace exion
