#include "exion/serve/batch_engine.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "exion/common/logging.h"

namespace exion
{

std::string
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Dense:
        return "dense";
      case ExecMode::FfnReuseOnly:
        return "ffn-reuse";
      case ExecMode::EpOnly:
        return "ep";
      case ExecMode::Exion:
        return "exion";
    }
    return "?";
}

std::string
priorityName(Priority p)
{
    switch (p) {
      case Priority::Low:
        return "low";
      case Priority::Normal:
        return "normal";
      case Priority::High:
        return "high";
      case Priority::Critical:
        return "critical";
    }
    return "?";
}

bool
Ticket::ready() const
{
    return future_.wait_for(std::chrono::seconds(0))
        == std::future_status::ready;
}

BatchEngine::BatchEngine() : BatchEngine(Options{})
{
}

BatchEngine::BatchEngine(const Options &opts)
    : opts_(opts), conmergePipe_(opts.conmerge),
      pool_(opts.workers, opts.poolSeed)
{
}

BatchEngine::~BatchEngine()
{
    shutdown();
}

void
BatchEngine::addModel(const ModelConfig &cfg)
{
    models_[cfg.benchmark] =
        std::make_unique<const DiffusionPipeline>(cfg);
}

const DiffusionPipeline &
BatchEngine::pipeline(Benchmark b) const
{
    const auto it = models_.find(b);
    EXION_ASSERT(it != models_.end(), "benchmark ", benchmarkName(b),
                 " not registered with the engine");
    return *it->second;
}

i64
BatchEngine::poolPriority(const ServeRequest &req) const
{
    // Class in the high bits; within a class, the earliest absolute
    // deadline (submission time + deadlineSeconds, measured against
    // the engine epoch) ranks highest — true EDF, so a long-queued
    // request is not starved by a fresh arrival with a tighter
    // relative deadline. "No deadline" ranks below every finite
    // deadline; ties fall back to the pool's FIFO order. Clamping
    // happens in the double domain: a huge/inf deadline must not
    // overflow the i64 cast (NaN fails the > 0 test and counts as
    // "no deadline").
    constexpr i64 kDeadlineRange = i64{1} << 40; // ~12.7 days at 1 µs
    i64 deadline_rank = 0;                       // no deadline: last
    if (req.deadlineSeconds > 0.0) {
        const double since_epoch_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
        const double absolute_us =
            since_epoch_us + req.deadlineSeconds * 1e6;
        const i64 us = static_cast<i64>(std::clamp(
            absolute_us, 1.0,
            static_cast<double>(kDeadlineRange - 2)));
        deadline_rank = kDeadlineRange - 1 - us;
    }
    return static_cast<i64>(req.priority) * kDeadlineRange
        + deadline_rank;
}

Ticket
BatchEngine::submit(const ServeRequest &req)
{
    return submitImpl(req, /*to_queue=*/true);
}

void
BatchEngine::setOnComplete(CompletionCallback cb)
{
    std::lock_guard<std::mutex> lock(mutex_);
    onComplete_ = std::move(cb);
}

u64
BatchEngine::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inFlight_;
}

void
BatchEngine::waitIdle() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this]() { return inFlight_ == 0; });
}

void
BatchEngine::shutdown()
{
    pool_.shutdown(); // drains every accepted request, idempotent
    results_.close();
}

Ticket
BatchEngine::submitImpl(const ServeRequest &req, bool to_queue)
{
    // Resolve the pipeline now so a missing model fails the submitter,
    // not a worker.
    pipeline(req.benchmark);

    auto promise = std::make_shared<std::promise<RequestResult>>();
    u64 ticket_id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ticket_id = nextTicket_++;
        ++inFlight_;
    }
    Ticket ticket(ticket_id, promise->get_future().share());

    try {
        pool_.submit(
            [this, req, promise, to_queue]() {
                RequestResult result;
                std::exception_ptr failure;
                try {
                    result = runOne(req);
                } catch (const std::exception &e) {
                    failure = std::current_exception();
                    result = RequestResult{};
                    result.id = req.id;
                    result.error = e.what();
                } catch (...) {
                    failure = std::current_exception();
                    result = RequestResult{};
                    result.id = req.id;
                    result.error = "unknown error";
                }

                CompletionCallback cb;
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    cb = onComplete_;
                }
                // A misbehaving delivery sink must not break the
                // accounting below it: an escaped exception here
                // would leave the Ticket promise unset (deadlocking
                // get()) and inFlight_ stuck nonzero.
                if (cb) {
                    try {
                        cb(result);
                    } catch (...) {
                        EXION_WARN("completion callback threw for "
                                   "request ",
                                   result.id, "; ignoring");
                    }
                }
                if (to_queue && opts_.queueResults) {
                    try {
                        results_.push(result);
                    } catch (...) {
                        EXION_WARN("result queue push failed for "
                                   "request ",
                                   result.id, "; dropping");
                    }
                }
                if (failure)
                    promise->set_exception(failure);
                else
                    promise->set_value(std::move(result));

                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    --inFlight_;
                }
                idleCv_.notify_all();
            },
            poolPriority(req));
    } catch (...) {
        // The pool refused the task (shutdown raced the submit): undo
        // the in-flight accounting before failing the submitter.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
        }
        idleCv_.notify_all();
        throw;
    }
    return ticket;
}

std::vector<RequestResult>
BatchEngine::runBatch(const std::vector<ServeRequest> &requests)
{
    std::vector<Ticket> tickets;
    tickets.reserve(requests.size());
    for (const ServeRequest &req : requests)
        tickets.push_back(submitImpl(req, /*to_queue=*/false));
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    // Drain every ticket even if one throws, so no in-flight work is
    // abandoned; then report the first failure with its request id.
    std::exception_ptr first_error;
    u64 failed_id = 0;
    for (Index i = 0; i < tickets.size(); ++i) {
        try {
            results.push_back(tickets[i].get());
        } catch (...) {
            if (!first_error) {
                first_error = std::current_exception();
                failed_id = requests[i].id;
            }
        }
    }
    if (first_error) {
        EXION_WARN("batch request ", failed_id,
                   " failed; rethrowing its error");
        std::rethrow_exception(first_error);
    }
    return results;
}

std::vector<RequestResult>
BatchEngine::runSequential(const std::vector<ServeRequest> &requests)
{
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    for (const ServeRequest &req : requests)
        results.push_back(runOne(req));
    return results;
}

RequestResult
BatchEngine::runOne(const ServeRequest &req) const
{
    const DiffusionPipeline &pipe = pipeline(req.benchmark);
    const ModelConfig &cfg = pipe.config();

    RequestContext ctx;
    std::unique_ptr<BlockExecutor> exec;
    if (req.mode == ExecMode::Dense) {
        auto dense = std::make_unique<DenseExecutor>(req.quantize);
        dense->bindContext(ctx.exec);
        exec = std::move(dense);
    } else {
        const bool ffnr = req.mode != ExecMode::EpOnly;
        const bool ep = req.mode != ExecMode::FfnReuseOnly;
        auto sparse = std::make_unique<SparseExecutor>(
            SparseExecutor::fromConfig(cfg, ffnr, ep, req.quantize));
        sparse->bindRequestState(ctx.exec, ctx.ffn);
        if (req.trackConMerge && ffnr) {
            sparse->observers.onFfnMask =
                [this, &ctx](int, const Bitmask2D &mask, bool) {
                    conmergePipe_.processMaskInto(mask, ctx.conmerge);
                };
        }
        exec = std::move(sparse);
    }

    RunOptions opts;
    opts.noiseSeed = req.noiseSeed;

    const auto start = std::chrono::steady_clock::now();
    Matrix output = pipe.run(*exec, opts);
    const auto stop = std::chrono::steady_clock::now();

    RequestResult result;
    result.id = req.id;
    result.output = std::move(output);
    result.stats = ctx.exec.stats;
    result.conmerge = ctx.conmerge;
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    return result;
}

} // namespace exion
