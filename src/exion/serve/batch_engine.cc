#include "exion/serve/batch_engine.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "exion/common/logging.h"

namespace exion
{

std::string
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Dense:
        return "dense";
      case ExecMode::FfnReuseOnly:
        return "ffn-reuse";
      case ExecMode::EpOnly:
        return "ep";
      case ExecMode::Exion:
        return "exion";
    }
    return "?";
}

std::string
priorityName(Priority p)
{
    switch (p) {
      case Priority::Low:
        return "low";
      case Priority::Normal:
        return "normal";
      case Priority::High:
        return "high";
      case Priority::Critical:
        return "critical";
    }
    return "?";
}

bool
Ticket::ready() const
{
    // An invalid (default-constructed) ticket has no shared state;
    // wait_for on it would be UB, so report "not ready" instead.
    if (!valid())
        return false;
    return future_.wait_for(std::chrono::seconds(0))
        == std::future_status::ready;
}

void
Ticket::wait() const
{
    if (!valid())
        return;
    future_.wait();
}

bool
Ticket::cancel()
{
    if (engine_ == nullptr || !valid())
        return false;
    return engine_->cancelTicket(id_);
}

BatchEngine::BatchEngine() : BatchEngine(Options{})
{
}

BatchEngine::BatchEngine(const Options &opts)
    : opts_(opts), admission_(opts.admission), conmergePipe_(opts.conmerge),
      results_(opts.resultQueueCapacity), pool_(opts.workers, opts.poolSeed)
{
}

BatchEngine::~BatchEngine()
{
    shutdown();
}

void
BatchEngine::addModel(const ModelConfig &cfg)
{
    models_[cfg.benchmark] =
        std::make_unique<const DiffusionPipeline>(cfg);
}

const DiffusionPipeline &
BatchEngine::pipeline(Benchmark b) const
{
    const auto it = models_.find(b);
    if (it == models_.end())
        throw UnknownModelError("benchmark " + benchmarkName(b)
                                + " not registered with the engine");
    return *it->second;
}

i64
BatchEngine::poolPriority(const ServeRequest &req) const
{
    // Class in the high bits; within a class, the earliest absolute
    // deadline (submission time + deadlineSeconds, measured against
    // the engine epoch) ranks highest — true EDF, so a long-queued
    // request is not starved by a fresh arrival with a tighter
    // relative deadline. "No deadline" ranks below every finite
    // deadline; ties fall back to the pool's FIFO order. Clamping
    // happens in the double domain: a huge/inf deadline must not
    // overflow the i64 cast (NaN fails the > 0 test and counts as
    // "no deadline").
    constexpr i64 kDeadlineRange = i64{1} << 40; // ~12.7 days at 1 µs
    i64 deadline_rank = 0;                       // no deadline: last
    if (req.deadlineSeconds > 0.0) {
        const double since_epoch_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
        const double absolute_us =
            since_epoch_us + req.deadlineSeconds * 1e6;
        const i64 us = static_cast<i64>(std::clamp(
            absolute_us, 1.0,
            static_cast<double>(kDeadlineRange - 2)));
        deadline_rank = kDeadlineRange - 1 - us;
    }
    return static_cast<i64>(req.priority) * kDeadlineRange
        + deadline_rank;
}

ClassDepths
BatchEngine::readyDepths() const
{
    ClassDepths depths{};
    pool_.queuedAtLevels(kNumPriorityClasses, depths.data());
    return depths;
}

Ticket
BatchEngine::submit(const ServeRequest &req)
{
    return submitImpl(req, /*to_queue=*/true);
}

SubmitOutcome
BatchEngine::trySubmit(const ServeRequest &req)
{
    return submitOutcome(req, /*to_queue=*/true);
}

Ticket
BatchEngine::submitImpl(const ServeRequest &req, bool to_queue)
{
    SubmitOutcome outcome = submitOutcome(req, to_queue);
    if (outcome.accepted())
        return std::move(outcome.ticket);
    switch (*outcome.reason) {
      case RejectReason::UnknownModel:
        throw UnknownModelError("benchmark "
                                + benchmarkName(req.benchmark)
                                + " not registered with the engine");
      case RejectReason::Stopped:
        throw ThreadPoolStopped();
      case RejectReason::QueueFull:
      case RejectReason::LoadShedLow:
        break;
    }
    throw AdmissionRejected(*outcome.reason,
                            "request " + std::to_string(req.id)
                                + " rejected: "
                                + rejectReasonName(*outcome.reason));
}

SubmitOutcome
BatchEngine::submitOutcome(const ServeRequest &req, bool to_queue)
{
    const Priority cls = req.priority;
    std::unique_lock<std::mutex> lock(mutex_);

    // Validate at the API boundary: a bad request fails the
    // submitter, never a worker thread mid-run.
    if (models_.find(req.benchmark) == models_.end()) {
        metrics_.onRejected(cls, RejectReason::UnknownModel);
        return SubmitOutcome{Ticket{}, RejectReason::UnknownModel};
    }
    if (stopped_) {
        metrics_.onRejected(cls, RejectReason::Stopped);
        return SubmitOutcome{Ticket{}, RejectReason::Stopped};
    }

    std::optional<RejectReason> verdict =
        admission_.decide(cls, readyDepths());
    if (verdict == RejectReason::QueueFull && admission_.blocking()) {
        // Block-with-timeout mode: wait for a ready-queue slot (a
        // worker starting a queued request, or a cancellation). The
        // verdict is re-evaluated on every wake — it may flip to
        // LoadShedLow if the overall queue kept growing meanwhile.
        const auto deadline =
            std::chrono::steady_clock::now() + admission_.blockTimeout();
        while (!stopped_) {
            const bool timed_out =
                admissionCv_.wait_until(lock, deadline)
                == std::cv_status::timeout;
            verdict = admission_.decide(cls, readyDepths());
            if (timed_out || verdict != RejectReason::QueueFull)
                break;
        }
        if (stopped_)
            verdict = RejectReason::Stopped;
    }
    if (verdict.has_value()) {
        metrics_.onRejected(cls, *verdict);
        return SubmitOutcome{Ticket{}, *verdict};
    }

    // Admitted: account, register for cancellation, post to the pool
    // at the class's level — all under one lock, so a concurrent
    // admission check can never overshoot the class bound and the
    // worker (whose first action locks this mutex) can never observe
    // a half-registered request.
    auto promise = std::make_shared<std::promise<RequestResult>>();
    const u64 ticket_id = nextTicket_++;
    ++inFlight_;
    const auto enqueued = std::chrono::steady_clock::now();
    const auto pending_it =
        pending_.emplace(ticket_id, Pending{promise, req.id, cls, 0})
            .first;

    u64 token = 0;
    try {
        token = pool_.postTagged(
            [this, req, promise, to_queue, ticket_id, enqueued]() {
                {
                    std::lock_guard<std::mutex> inner(mutex_);
                    pending_.erase(ticket_id);
                }
                // A ready-queue slot freed: admit a block-mode waiter.
                admissionCv_.notify_all();
                const auto started_at = std::chrono::steady_clock::now();
                metrics_.onStarted(
                    req.priority,
                    std::chrono::duration<double>(started_at - enqueued)
                        .count());

                RequestResult result;
                std::exception_ptr failure;
                try {
                    result = runOne(req);
                } catch (const std::exception &e) {
                    failure = std::current_exception();
                    result = RequestResult{};
                    result.id = req.id;
                    result.error = e.what();
                } catch (...) {
                    failure = std::current_exception();
                    result = RequestResult{};
                    result.id = req.id;
                    result.error = "unknown error";
                }
                // Deadline verdict taken as execution finishes: the
                // delivery below may block on a bounded results()
                // (intended backpressure), and consumer lag must not
                // masquerade as the request missing its deadline.
                const bool missed = req.deadlineSeconds > 0.0
                    && std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - enqueued)
                            .count()
                        > req.deadlineSeconds;

                CompletionCallback cb;
                {
                    std::lock_guard<std::mutex> inner(mutex_);
                    cb = onComplete_;
                }
                // A misbehaving delivery sink must not break the
                // accounting below it: an escaped exception here
                // would leave the Ticket promise unset (deadlocking
                // get()) and inFlight_ stuck nonzero.
                if (cb) {
                    try {
                        cb(result);
                    } catch (...) {
                        EXION_WARN("completion callback threw for "
                                   "request ",
                                   result.id, "; ignoring");
                    }
                }
                if (to_queue && opts_.queueResults) {
                    try {
                        // Blocks on a bounded queue until a consumer
                        // pops: unpopped results throttle the workers.
                        results_.push(result);
                    } catch (...) {
                        EXION_WARN("result queue push failed for "
                                   "request ",
                                   result.id, "; dropping");
                    }
                }
                if (failure)
                    promise->set_exception(failure);
                else
                    promise->set_value(std::move(result));

                metrics_.onCompleted(req.priority,
                                     failure != nullptr, missed);
                {
                    std::lock_guard<std::mutex> inner(mutex_);
                    --inFlight_;
                }
                idleCv_.notify_all();
            },
            poolPriority(req), classIndex(cls));
    } catch (...) {
        // The pool refused the task. Today shutdown() always flips
        // stopped_ (checked above) before stopping the pool, so this
        // is unreachable — but undo the accounting rather than rely
        // on that.
        pending_.erase(pending_it);
        --inFlight_;
        metrics_.onRejected(cls, RejectReason::Stopped);
        lock.unlock();
        idleCv_.notify_all();
        return SubmitOutcome{Ticket{}, RejectReason::Stopped};
    }
    pending_it->second.poolToken = token;
    metrics_.onAccepted(cls);
    Ticket ticket(ticket_id, promise->get_future().share(), this);
    return SubmitOutcome{std::move(ticket), std::nullopt};
}

bool
BatchEngine::cancelTicket(u64 ticket_id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = pending_.find(ticket_id);
    if (it == pending_.end())
        return false; // already started, completed or cancelled
    if (!pool_.cancel(it->second.poolToken))
        return false; // a worker is dequeuing it right now
    const Pending pending = std::move(it->second);
    pending_.erase(it);
    metrics_.onCancelled(pending.cls);
    RequestResult result;
    result.id = pending.requestId;
    result.cancelled = true;
    result.error = "cancelled";
    // Only the ticket sees a cancelled request: it never ran, so the
    // completion callback and results() are not fed.
    pending.promise->set_value(std::move(result));
    --inFlight_;
    lock.unlock();
    idleCv_.notify_all();
    admissionCv_.notify_all();
    return true;
}

void
BatchEngine::setOnComplete(CompletionCallback cb)
{
    std::lock_guard<std::mutex> lock(mutex_);
    onComplete_ = std::move(cb);
}

EngineMetrics
BatchEngine::snapshot() const
{
    EngineMetrics m = metrics_.snapshot();
    for (int c = 0; c < kNumPriorityClasses; ++c) {
        m.perClass[c].queued = pool_.queuedAtLevel(c);
        m.perClass[c].peakQueued = pool_.peakQueuedAtLevel(c);
    }
    return m;
}

u64
BatchEngine::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inFlight_;
}

void
BatchEngine::waitIdle() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this]() { return inFlight_ == 0; });
}

void
BatchEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
    }
    admissionCv_.notify_all(); // block-mode waiters fail with Stopped
    pool_.shutdown(); // drains every accepted request, idempotent
    results_.close();
}

std::vector<RequestResult>
BatchEngine::runBatch(const std::vector<ServeRequest> &requests)
{
    std::vector<Ticket> tickets;
    tickets.reserve(requests.size());
    try {
        for (const ServeRequest &req : requests)
            tickets.push_back(submitImpl(req, /*to_queue=*/false));
    } catch (...) {
        // Admission (or shutdown) refused a request mid-batch: the
        // already-admitted prefix still runs, so drain it — no work
        // or result delivery abandoned — then surface the refusal.
        for (Ticket &t : tickets) {
            try {
                t.get();
            } catch (...) {
            }
        }
        throw;
    }
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    // Drain every ticket even if one throws, so no in-flight work is
    // abandoned; then report the first failure with its request id.
    std::exception_ptr first_error;
    u64 failed_id = 0;
    for (Index i = 0; i < tickets.size(); ++i) {
        try {
            results.push_back(tickets[i].get());
        } catch (...) {
            if (!first_error) {
                first_error = std::current_exception();
                failed_id = requests[i].id;
            }
        }
    }
    if (first_error) {
        EXION_WARN("batch request ", failed_id,
                   " failed; rethrowing its error");
        std::rethrow_exception(first_error);
    }
    return results;
}

std::vector<RequestResult>
BatchEngine::runSequential(const std::vector<ServeRequest> &requests)
{
    std::vector<RequestResult> results;
    results.reserve(requests.size());
    for (const ServeRequest &req : requests)
        results.push_back(runOne(req));
    return results;
}

RequestResult
BatchEngine::runOne(const ServeRequest &req) const
{
    const DiffusionPipeline &pipe = pipeline(req.benchmark);
    const ModelConfig &cfg = pipe.config();

    RequestContext ctx;
    std::unique_ptr<BlockExecutor> exec;
    if (req.mode == ExecMode::Dense) {
        auto dense = std::make_unique<DenseExecutor>(req.quantize);
        dense->bindContext(ctx.exec);
        exec = std::move(dense);
    } else {
        const bool ffnr = req.mode != ExecMode::EpOnly;
        const bool ep = req.mode != ExecMode::FfnReuseOnly;
        auto sparse = std::make_unique<SparseExecutor>(
            SparseExecutor::fromConfig(cfg, ffnr, ep, req.quantize));
        sparse->bindRequestState(ctx.exec, ctx.ffn);
        if (req.trackConMerge && ffnr) {
            sparse->observers.onFfnMask =
                [this, &ctx](int, const Bitmask2D &mask, bool) {
                    conmergePipe_.processMaskInto(mask, ctx.conmerge);
                };
        }
        exec = std::move(sparse);
    }

    RunOptions opts;
    opts.noiseSeed = req.noiseSeed;

    const auto start = std::chrono::steady_clock::now();
    Matrix output = pipe.run(*exec, opts);
    const auto stop = std::chrono::steady_clock::now();

    RequestResult result;
    result.id = req.id;
    result.output = std::move(output);
    result.stats = ctx.exec.stats;
    result.conmerge = ctx.conmerge;
    result.seconds =
        std::chrono::duration<double>(stop - start).count();
    return result;
}

} // namespace exion
