#include "exion/serve/shard_router.h"

#include <algorithm>
#include <array>
#include <thread>
#include <utility>

#include "exion/common/logging.h"
#include "exion/common/numa.h"
#include "exion/model/weight_store.h"

namespace exion
{

std::string
routePolicyName(RoutePolicy p)
{
    switch (p) {
      case RoutePolicy::LeastDepth:
        return "least-depth";
      case RoutePolicy::DeadlineAware:
        return "deadline-aware";
      case RoutePolicy::CohortAffinity:
        return "cohort-affinity";
    }
    return "unknown";
}

bool
parseRoutePolicy(const std::string &name, RoutePolicy &out)
{
    for (RoutePolicy p :
         {RoutePolicy::LeastDepth, RoutePolicy::DeadlineAware,
          RoutePolicy::CohortAffinity}) {
        if (name == routePolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

const char *
routePolicyValues()
{
    return "least-depth|deadline-aware|cohort-affinity";
}

KernelFlagStatus
tryConsumeRouteFlag(int argc, const char *const *argv, int &i,
                    RoutePolicy &policy, std::string &error)
{
    const std::string arg = argv[i];
    if (arg != "--route")
        return KernelFlagStatus::NotMine;
    if (i + 1 >= argc) {
        error = arg + " needs a value ("
            + std::string(routePolicyValues()) + ")";
        return KernelFlagStatus::Error;
    }
    const std::string value = argv[++i];
    if (!parseRoutePolicy(value, policy)) {
        error = "unknown --route policy '" + value + "' (expected "
            + std::string(routePolicyValues()) + ")";
        return KernelFlagStatus::Error;
    }
    return KernelFlagStatus::Consumed;
}

const char *
routeFlagUsage()
{
    return "[--route least-depth|deadline-aware|cohort-affinity]";
}

ShardRouter::ShardRouter(const Options &opts) : opts_(opts)
{
    const int n_shards = std::max(1, opts_.shards);
    opts_.shards = n_shards;
    int per_shard = opts_.shardWorkers;
    if (per_shard <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        per_shard = std::max(
            1, static_cast<int>(hw == 0 ? 1 : hw) / n_shards);
    }
    BatchEngine::Options engine_opts = opts_.engine;
    engine_opts.workers = per_shard;
    shards_.reserve(n_shards);
    for (int i = 0; i < n_shards; ++i)
        shards_.push_back(std::make_unique<BatchEngine>(engine_opts));

    missRate_.assign(n_shards, 0.0);
    lastMisses_.assign(n_shards, 0);
    lastCompleted_.assign(n_shards, 0);
    lastMissRefresh_ = std::chrono::steady_clock::now();

    if (opts_.numa) {
        const std::vector<std::vector<int>> nodes = numaNodeCpus();
        if (nodes.size() < 2) {
            EXION_WARN("shard router: --numa requested but the host "
                       "exposes ",
                       nodes.size(),
                       " NUMA node(s); workers stay floating");
        } else {
            int pinned = 0;
            for (int i = 0; i < n_shards; ++i)
                pinned += shards_[i]->pinWorkers(
                    {nodes[static_cast<size_t>(i) % nodes.size()]});
            EXION_INFORM("shard router: pinned ", pinned,
                         " workers across ", nodes.size(),
                         " NUMA nodes (", n_shards, " shards)");
        }
    }
}

ShardRouter::~ShardRouter()
{
    shutdown();
}

void
ShardRouter::addModel(const ModelConfig &cfg)
{
    // Build once, share everywhere: the shards borrow one physical
    // copy of the weights exactly as two processes mapping the same
    // EXWS file would.
    registerModel(cfg.benchmark, WeightStore::build(cfg));
}

void
ShardRouter::registerModel(Benchmark b,
                           std::shared_ptr<const WeightStore> store)
{
    for (auto &shard : shards_)
        shard->registerModel(b, store);
}

void
ShardRouter::registerModelFromFile(const std::string &path, bool pin)
{
    auto store = WeightStore::load(path, pin);
    const Benchmark b = store->config().benchmark;
    registerModel(b, std::move(store));
}

void
ShardRouter::refreshMissRates() const
{
    std::lock_guard<std::mutex> lock(missMutex_);
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - lastMissRefresh_).count()
        < opts_.missWindowSeconds)
        return;
    lastMissRefresh_ = now;
    for (size_t i = 0; i < shards_.size(); ++i) {
        const EngineMetrics m = shards_[i]->snapshot();
        const u64 misses = m.deadlineMisses();
        const u64 completed = m.completed();
        const u64 d_miss = misses - lastMisses_[i];
        const u64 d_done = completed - lastCompleted_[i];
        lastMisses_[i] = misses;
        lastCompleted_[i] = completed;
        if (d_done + d_miss > 0)
            missRate_[i] = static_cast<double>(d_miss)
                / static_cast<double>(d_done + 1);
        // No traffic in the window: keep the previous estimate.
    }
}

std::vector<int>
ShardRouter::routeOrder(const ServeRequest &req) const
{
    const int n = static_cast<int>(shards_.size());
    const int cls = classIndex(req.priority);

    // Each shard gets a lexicographic score; stable ascending sort
    // (ties fall back to shard index) makes placement deterministic
    // for a given observable state.
    std::vector<std::pair<std::array<double, 3>, int>> scored;
    scored.reserve(n);

    switch (opts_.policy) {
      case RoutePolicy::LeastDepth: {
        for (int i = 0; i < n; ++i) {
            const ClassDepths depths = shards_[i]->readyDepths();
            double total = 0;
            for (u64 d : depths)
                total += static_cast<double>(d);
            scored.push_back(
                {{static_cast<double>(depths[cls]), total, 0.0}, i});
        }
        break;
      }
      case RoutePolicy::DeadlineAware: {
        refreshMissRates();
        for (int i = 0; i < n; ++i) {
            const ClassDepths depths = shards_[i]->readyDepths();
            const double p50 = std::max(
                1e-4, shards_[i]->classQueueWaitP50(req.priority));
            double miss;
            {
                std::lock_guard<std::mutex> lock(missMutex_);
                miss = missRate_[i];
            }
            const double wait =
                p50 * (static_cast<double>(depths[cls]) + 1.0);
            scored.push_back(
                {{wait * (1.0 + miss),
                  static_cast<double>(depths[cls]), 0.0},
                 i});
        }
        break;
      }
      case RoutePolicy::CohortAffinity: {
        const u64 max_rows = static_cast<u64>(
            std::max<Index>(1, opts_.engine.cohortMaxRows));
        for (int i = 0; i < n; ++i) {
            const BatchEngine::CohortOccupancy occ =
                shards_[i]->cohortOccupancy(req);
            const ClassDepths depths = shards_[i]->readyDepths();
            double total = 0;
            for (u64 d : depths)
                total += static_cast<double>(d);
            const u64 same = occ.queued + occ.running;
            // A shard whose same-key backlog already exceeds two full
            // cohorts is saturated: sticking to it would serialize
            // behind its queue while other shards idle, so it loses
            // its affinity preference (but keeps its depth order).
            const bool affine =
                same > 0 && occ.queued < 2 * max_rows;
            scored.push_back(
                {{affine ? 0.0 : 1.0,
                  affine ? -static_cast<double>(same)
                         : static_cast<double>(depths[cls]),
                  total},
                 i});
        }
        break;
      }
    }

    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second < b.second;
              });
    std::vector<int> order;
    order.reserve(n);
    for (const auto &[score, idx] : scored)
        order.push_back(idx);
    return order;
}

SubmitOutcome
ShardRouter::trySubmit(const ServeRequest &req)
{
    // First accepting shard in preference order wins; a refusal
    // surfaces only when every shard refused. Each probed shard
    // counts its own refusal in its metrics, so aggregated reject
    // counters can exceed caller-observed refusals — accepted counts
    // still reconcile exactly.
    std::optional<SubmitOutcome> load_reject;
    bool saw_unknown = false;
    for (int i : routeOrder(req)) {
        SubmitOutcome outcome = shards_[i]->trySubmit(req);
        if (outcome.accepted())
            return outcome;
        switch (*outcome.reason) {
          case RejectReason::QueueFull:
          case RejectReason::LoadShedLow:
            if (!load_reject
                || outcome.suggestedBackoffSeconds
                    < load_reject->suggestedBackoffSeconds)
                load_reject = outcome;
            break;
          case RejectReason::UnknownModel:
            saw_unknown = true;
            break;
          case RejectReason::Stopped:
            break;
        }
    }
    if (load_reject)
        return *load_reject;
    SubmitOutcome refused;
    refused.reason = saw_unknown ? RejectReason::UnknownModel
                                 : RejectReason::Stopped;
    return refused;
}

Ticket
ShardRouter::submit(const ServeRequest &req)
{
    SubmitOutcome outcome = trySubmit(req);
    if (outcome.accepted())
        return std::move(outcome.ticket);
    switch (*outcome.reason) {
      case RejectReason::UnknownModel:
        throw UnknownModelError("benchmark "
                                + benchmarkName(req.benchmark)
                                + " not registered with any shard");
      case RejectReason::Stopped:
        throw ThreadPoolStopped();
      case RejectReason::QueueFull:
      case RejectReason::LoadShedLow:
        break;
    }
    throw AdmissionRejected(*outcome.reason,
                            "request " + std::to_string(req.id)
                                + " rejected by all "
                                + std::to_string(shards_.size())
                                + " shards: "
                                + rejectReasonName(*outcome.reason),
                            outcome.suggestedBackoffSeconds);
}

EngineMetrics
ShardRouter::snapshot() const
{
    std::vector<LabeledMetrics> labeled;
    labeled.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i)
        labeled.push_back(
            LabeledMetrics{std::to_string(i), shards_[i]->snapshot()});
    return aggregateMetrics(labeled);
}

std::string
ShardRouter::metricsText() const
{
    std::vector<LabeledMetrics> labeled;
    labeled.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i)
        labeled.push_back(
            LabeledMetrics{std::to_string(i), shards_[i]->snapshot()});
    return renderPrometheusText(aggregateMetrics(labeled), labeled);
}

void
ShardRouter::setOnComplete(CompletionCallback cb)
{
    for (auto &shard : shards_)
        shard->setOnComplete(cb);
}

u64
ShardRouter::inFlight() const
{
    u64 total = 0;
    for (const auto &shard : shards_)
        total += shard->inFlight();
    return total;
}

void
ShardRouter::waitIdle() const
{
    // A request never migrates between shards, so shard-by-shard
    // waits compose: after the last wait every request admitted
    // before the call has completed.
    for (const auto &shard : shards_)
        shard->waitIdle();
}

void
ShardRouter::pause()
{
    for (auto &shard : shards_)
        shard->pause();
}

void
ShardRouter::resume()
{
    for (auto &shard : shards_)
        shard->resume();
}

void
ShardRouter::shutdown()
{
    for (auto &shard : shards_)
        shard->shutdown();
}

int
ShardRouter::workerCount() const
{
    int total = 0;
    for (const auto &shard : shards_)
        total += shard->workerCount();
    return total;
}

} // namespace exion
