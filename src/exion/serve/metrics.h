/**
 * @file
 * Engine observability: per-priority-class serving counters and
 * queue-wait latency percentiles.
 *
 * MetricsCollector is the thread-safe sink the BatchEngine feeds at
 * every request lifecycle edge (admitted, rejected, started,
 * cancelled, completed); EngineMetrics is the plain-value snapshot it
 * produces, merged by the engine with the ThreadPool's live per-level
 * ready-depth accounting. The counters reconcile exactly: at any
 * quiescent point, accepted == completed + cancelled per class, and
 * accepted + rejected == every submit()/trySubmit() call observed by
 * the caller.
 */

#ifndef EXION_SERVE_METRICS_H_
#define EXION_SERVE_METRICS_H_

#include <array>
#include <mutex>
#include <string>
#include <vector>

#include "exion/serve/admission.h"
#include "exion/serve/request.h"

namespace exion
{

/** Lifecycle counters of one priority class. */
struct ClassMetrics
{
    u64 accepted = 0;       //!< admitted into the ready queue
    u64 rejectedQueueFull = 0;
    u64 shed = 0;           //!< refused with LoadShedLow
    u64 rejectedUnknownModel = 0;
    u64 rejectedStopped = 0;
    u64 started = 0;        //!< picked up by a worker
    u64 completed = 0;      //!< finished (success or failure)
    u64 failed = 0;         //!< completed with an error
    u64 cancelled = 0;      //!< dequeued by Ticket::cancel()
    u64 deadlineMisses = 0; //!< completed after its deadline
    u64 queued = 0;         //!< current ready depth (from the pool)
    u64 peakQueued = 0;     //!< high-water ready depth (from the pool)
    /** Median queue wait of this class over the recent window (s). */
    double queueWaitP50 = 0.0;
    /** Waits the class median was computed over (windowed). */
    u64 queueWaitSamples = 0;

    /** All refusals, shedding included. */
    u64 rejected() const
    {
        return rejectedQueueFull + shed + rejectedUnknownModel
            + rejectedStopped;
    }
};

/** Point-in-time view of the engine's serving state. */
struct EngineMetrics
{
    std::array<ClassMetrics, kNumPriorityClasses> perClass{};

    /** Queue-wait (accept -> worker start) percentiles, seconds. */
    double queueWaitP50 = 0.0;
    double queueWaitP99 = 0.0;
    /** Waits the percentiles were computed over (windowed). */
    u64 queueWaitSamples = 0;

    const ClassMetrics &at(Priority p) const
    {
        return perClass[classIndex(p)];
    }

    u64 accepted() const { return sum(&ClassMetrics::accepted); }
    u64 rejected() const
    {
        u64 total = 0;
        for (const ClassMetrics &c : perClass)
            total += c.rejected();
        return total;
    }
    u64 shed() const { return sum(&ClassMetrics::shed); }
    u64 cancelled() const { return sum(&ClassMetrics::cancelled); }
    u64 completed() const { return sum(&ClassMetrics::completed); }
    u64 deadlineMisses() const
    {
        return sum(&ClassMetrics::deadlineMisses);
    }
    u64 queueDepth() const { return sum(&ClassMetrics::queued); }
    u64 peakQueueDepth() const { return sum(&ClassMetrics::peakQueued); }

    /**
     * Renders the snapshot as a Prometheus text exposition
     * (version 0.0.4): per-class lifecycle counters
     * (`exion_serve_*_total{class="..."}`), ready-depth gauges, and
     * the queue-wait summary quantiles. Values print with up to six
     * significant digits (`%g`), matching common exporters.
     * Equivalent to renderPrometheusText() with no shard breakdown.
     */
    std::string toPrometheusText() const;

  private:
    u64 sum(u64 ClassMetrics::*field) const
    {
        u64 total = 0;
        for (const ClassMetrics &c : perClass)
            total += c.*field;
        return total;
    }
};

/** One engine's snapshot labelled for multi-shard rendering. */
struct LabeledMetrics
{
    /** Value of the `shard` label, e.g. "0". */
    std::string shard;
    EngineMetrics metrics;
};

/**
 * Merges per-shard snapshots into one fleet-wide view: counters,
 * ready depths and peaks sum across shards; the queue-wait
 * percentiles are sample-weighted averages of the shard percentiles
 * (an approximation — the true fleet percentile would need the raw
 * windows — but monotone in every shard's congestion, which is what
 * dashboards and the router's scoring consume).
 */
EngineMetrics aggregateMetrics(const std::vector<LabeledMetrics> &shards);

/**
 * Prometheus text exposition of a sharded engine: one HELP/TYPE
 * header per family, the aggregate's samples labelled only by
 * `{class="..."}`, then each shard's samples repeated with an
 * additional `shard="<label>"` dimension (so fleet totals and
 * per-shard breakdowns scrape from one endpoint, and the aggregate
 * series names stay identical to a solo engine's). With an empty
 * shard list the output is exactly a solo engine's exposition.
 */
std::string renderPrometheusText(const EngineMetrics &aggregate,
                                 const std::vector<LabeledMetrics> &shards);

/**
 * Thread-safe counter sink. All methods are cheap (a mutex and a few
 * increments); queue waits land in a fixed-size ring so a long-lived
 * engine reports percentiles over the most recent window instead of
 * growing without bound.
 */
class MetricsCollector
{
  public:
    /** Waits retained for the percentile window. */
    static constexpr Index kWaitWindow = 4096;

    /** Waits retained per class (for the class-median window). */
    static constexpr Index kClassWaitWindow = 512;

    void onAccepted(Priority p);
    void onRejected(Priority p, RejectReason r);
    void onStarted(Priority p, double waitSeconds);
    void onCancelled(Priority p);
    void onCompleted(Priority p, bool failed, bool missedDeadline);

    /**
     * Counter snapshot plus queue-wait percentiles over the retained
     * window. Ready depths (ClassMetrics::queued/peakQueued) are not
     * known here — the engine overlays them from the pool.
     */
    EngineMetrics snapshot() const;

    /**
     * Median queue wait of one class over its retained window, in
     * seconds (0 with no samples yet). Feeds the retry-after hint on
     * QueueFull rejections: the class median approximates how long a
     * ready-queue slot takes to free.
     */
    double classQueueWaitP50(Priority p) const;

  private:
    struct ClassWaits
    {
        std::array<double, kClassWaitWindow> ring{};
        u64 count = 0;
    };

    mutable std::mutex mutex_;
    std::array<ClassMetrics, kNumPriorityClasses> counters_{};
    std::array<double, kWaitWindow> waits_{};
    u64 waitCount_ = 0;
    std::array<ClassWaits, kNumPriorityClasses> classWaits_{};
};

} // namespace exion

#endif // EXION_SERVE_METRICS_H_
