#include "exion/serve/http_front.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "exion/common/logging.h"

namespace exion
{

namespace
{

// ------------------------------------------------------- JSON helpers

/** Escapes a string for embedding in a JSON document. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** One parsed scalar JSON value. */
struct JsonValue
{
    enum class Kind
    {
        Str,
        Num,
        Bool,
        Null
    };
    Kind kind = Kind::Null;
    std::string str;
    double num = 0.0;
    bool boolean = false;
};

/**
 * Parses a flat JSON object of scalar values — exactly the request
 * bodies this API accepts. Nested objects/arrays and \u escapes are
 * rejected (nothing in the API uses them; a strict refusal beats a
 * silent partial parse). Returns false with a diagnostic in err.
 */
bool
parseFlatJsonObject(const std::string &text,
                    std::vector<std::pair<std::string, JsonValue>> &out,
                    std::string &err)
{
    u64 pos = 0;
    const auto skipWs = [&] {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    };
    const auto parseString = [&](std::string &s) -> bool {
        if (pos >= text.size() || text[pos] != '"') {
            err = "expected string";
            return false;
        }
        ++pos;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c == '\\') {
                ++pos;
                if (pos >= text.size()) {
                    err = "unterminated escape";
                    return false;
                }
                switch (text[pos]) {
                  case '"':
                    c = '"';
                    break;
                  case '\\':
                    c = '\\';
                    break;
                  case '/':
                    c = '/';
                    break;
                  case 'b':
                    c = '\b';
                    break;
                  case 'f':
                    c = '\f';
                    break;
                  case 'n':
                    c = '\n';
                    break;
                  case 'r':
                    c = '\r';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  default:
                    err = "unsupported escape in string";
                    return false;
                }
            }
            s += c;
            ++pos;
        }
        if (pos >= text.size()) {
            err = "unterminated string";
            return false;
        }
        ++pos; // closing quote
        return true;
    };

    skipWs();
    if (pos >= text.size() || text[pos] != '{') {
        err = "body must be a JSON object";
        return false;
    }
    ++pos;
    skipWs();
    if (pos < text.size() && text[pos] == '}') {
        ++pos;
        skipWs();
        if (pos != text.size()) {
            err = "trailing content after object";
            return false;
        }
        return true;
    }
    while (true) {
        skipWs();
        std::string key;
        if (!parseString(key))
            return false;
        for (const auto &[existing, value] : out) {
            (void)value;
            if (existing == key) {
                err = "duplicate field \"" + key + "\"";
                return false;
            }
        }
        skipWs();
        if (pos >= text.size() || text[pos] != ':') {
            err = "expected ':' after field name";
            return false;
        }
        ++pos;
        skipWs();
        JsonValue value;
        if (pos >= text.size()) {
            err = "missing value";
            return false;
        }
        const char c = text[pos];
        if (c == '"') {
            value.kind = JsonValue::Kind::Str;
            if (!parseString(value.str))
                return false;
        } else if (c == 't' && text.compare(pos, 4, "true") == 0) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
            pos += 4;
        } else if (c == 'f' && text.compare(pos, 5, "false") == 0) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = false;
            pos += 5;
        } else if (c == 'n' && text.compare(pos, 4, "null") == 0) {
            value.kind = JsonValue::Kind::Null;
            pos += 4;
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            char *end = nullptr;
            value.kind = JsonValue::Kind::Num;
            value.num = std::strtod(text.c_str() + pos, &end);
            if (end == text.c_str() + pos) {
                err = "malformed number";
                return false;
            }
            pos = static_cast<u64>(end - text.c_str());
        } else if (c == '{' || c == '[') {
            err = "nested values are not supported";
            return false;
        } else {
            err = "malformed value";
            return false;
        }
        out.emplace_back(std::move(key), std::move(value));
        skipWs();
        if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
        }
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            skipWs();
            if (pos != text.size()) {
                err = "trailing content after object";
                return false;
            }
            return true;
        }
        err = "expected ',' or '}'";
        return false;
    }
}

// ------------------------------------------------------ name parsing

bool
iequals(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (u64 i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i]))
            != std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

bool
parseBenchmarkName(const std::string &name, Benchmark &out)
{
    for (Benchmark b : allBenchmarks()) {
        if (iequals(name, benchmarkName(b))) {
            out = b;
            return true;
        }
    }
    return false;
}

bool
parseExecModeName(const std::string &name, ExecMode &out)
{
    for (ExecMode m : {ExecMode::Dense, ExecMode::FfnReuseOnly,
                       ExecMode::EpOnly, ExecMode::Exion}) {
        if (iequals(name, execModeName(m))) {
            out = m;
            return true;
        }
    }
    return false;
}

bool
parsePriorityName(const std::string &name, Priority &out)
{
    for (Priority p : {Priority::Low, Priority::Normal, Priority::High,
                       Priority::Critical}) {
        if (iequals(name, priorityName(p))) {
            out = p;
            return true;
        }
    }
    return false;
}

// ----------------------------------------------------- response sugar

void
respondJson(ResponseWriter &writer, int status, const std::string &json,
            const ResponseWriter::Headers &extra = {})
{
    writer.respond(status, "application/json", json + "\n", extra);
}

void
respondError(ResponseWriter &writer, int status,
             const std::string &message,
             const ResponseWriter::Headers &extra = {})
{
    respondJson(writer, status,
                "{\"error\": \"" + jsonEscape(message) + "\"}", extra);
}

/** Retry-After value for a load-driven refusal: whole seconds,
    clamped to [1, 3600]. */
int
retryAfterSeconds(double suggestedBackoffSeconds)
{
    if (!(suggestedBackoffSeconds > 0.0))
        return 1;
    const double ceiled = std::ceil(suggestedBackoffSeconds);
    if (ceiled >= 3600.0)
        return 3600;
    return ceiled < 1.0 ? 1 : static_cast<int>(ceiled);
}

} // namespace

// ------------------------------------------------------------- HttpFront

HttpFront::HttpFront(ServeBackend &engine, Options opts)
    : engine_(engine), opts_(opts)
{
    // The front owns the engine's completion slot: the callback wakes
    // SSE streams waiting on the finished job. (Cancelled requests
    // never fire it; their streams notice the settled ticket at the
    // next heartbeat or progress boundary.)
    engine_.setOnComplete(
        [this](const RequestResult &r) { finishJob(r.id); });
}

HttpFront::~HttpFront()
{
    engine_.setOnComplete(nullptr);
    // A worker may already be inside the old callback; in-flight
    // requests finish before it can be destroyed safely.
    engine_.waitIdle();
}

u64
HttpFront::jobCount() const
{
    std::lock_guard<std::mutex> lock(jobsMutex_);
    return jobs_.size();
}

std::shared_ptr<HttpFront::Job>
HttpFront::findJob(u64 id) const
{
    std::lock_guard<std::mutex> lock(jobsMutex_);
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second;
}

void
HttpFront::finishJob(u64 id)
{
    const std::shared_ptr<Job> job = findJob(id);
    if (job == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(job->m);
        job->completed = true;
    }
    job->cv.notify_all();
}

void
HttpFront::evictFinishedLocked()
{
    if (jobs_.size() <= opts_.maxFinishedJobs)
        return;
    u64 excess = jobs_.size() - opts_.maxFinishedJobs;
    for (auto it = jobs_.begin(); excess > 0 && it != jobs_.end();) {
        // Finished = the ticket settled (done, failed or cancelled).
        if (it->second->ticket.valid() && it->second->ticket.ready()) {
            it = jobs_.erase(it);
            --excess;
        } else {
            ++it;
        }
    }
}

void
HttpFront::handle(const HttpRequest &req, ResponseWriter &writer)
{
    // Strip any query string; the API carries everything in the path
    // and body.
    std::string path = req.target;
    if (const u64 q = path.find('?'); q != std::string::npos)
        path.resize(q);

    if (path == "/healthz") {
        if (req.method != "GET")
            return respondError(writer, 405, "method not allowed",
                                {{"Allow", "GET"}});
        writer.respond(200, "text/plain", "ok\n");
        return;
    }
    if (path == "/metrics") {
        if (req.method != "GET")
            return respondError(writer, 405, "method not allowed",
                                {{"Allow", "GET"}});
        handleMetrics(writer);
        return;
    }
    if (path == "/v1/jobs") {
        if (req.method != "POST")
            return respondError(writer, 405, "method not allowed",
                                {{"Allow", "POST"}});
        handleSubmit(req, writer);
        return;
    }
    if (path.rfind("/v1/jobs/", 0) == 0) {
        std::string rest = path.substr(9);
        bool events = false;
        if (const u64 slash = rest.find('/');
            slash != std::string::npos) {
            if (rest.substr(slash) != "/events")
                return respondError(writer, 404, "not found");
            events = true;
            rest.resize(slash);
        }
        if (rest.empty()
            || rest.find_first_not_of("0123456789")
                != std::string::npos)
            return respondError(writer, 404, "not found");
        const u64 id = std::strtoull(rest.c_str(), nullptr, 10);
        const std::shared_ptr<Job> job = findJob(id);
        if (job == nullptr)
            return respondError(writer, 404,
                                "no such job " + rest);
        if (events) {
            if (req.method != "GET")
                return respondError(writer, 405, "method not allowed",
                                    {{"Allow", "GET"}});
            handleEvents(*job, writer);
        } else if (req.method == "GET") {
            handleStatus(*job, writer);
        } else if (req.method == "DELETE") {
            handleCancel(*job, writer);
        } else {
            respondError(writer, 405, "method not allowed",
                         {{"Allow", "GET, DELETE"}});
        }
        return;
    }
    respondError(writer, 404, "not found");
}

void
HttpFront::handleSubmit(const HttpRequest &req, ResponseWriter &writer)
{
    std::vector<std::pair<std::string, JsonValue>> fields;
    std::string err;
    if (!parseFlatJsonObject(req.body, fields, err))
        return respondError(writer, 400, "malformed body: " + err);

    ServeRequest serve;
    bool haveBenchmark = false;
    for (const auto &[key, value] : fields) {
        const bool isStr = value.kind == JsonValue::Kind::Str;
        const bool isNum = value.kind == JsonValue::Kind::Num;
        const bool isBool = value.kind == JsonValue::Kind::Bool;
        if (key == "benchmark") {
            if (!isStr)
                return respondError(writer, 400,
                                    "\"benchmark\" must be a string");
            if (!parseBenchmarkName(value.str, serve.benchmark))
                return respondError(writer, 404,
                                    "unknown model '" + value.str
                                        + "'");
            haveBenchmark = true;
        } else if (key == "mode") {
            if (!isStr || !parseExecModeName(value.str, serve.mode))
                return respondError(
                    writer, 400,
                    "\"mode\" must be one of dense, ffn-reuse, ep, "
                    "exion");
        } else if (key == "priority") {
            if (!isStr
                || !parsePriorityName(value.str, serve.priority))
                return respondError(
                    writer, 400,
                    "\"priority\" must be one of low, normal, high, "
                    "critical");
        } else if (key == "quantize") {
            if (!isBool)
                return respondError(writer, 400,
                                    "\"quantize\" must be a boolean");
            serve.quantize = value.boolean;
        } else if (key == "track_conmerge") {
            if (!isBool)
                return respondError(
                    writer, 400,
                    "\"track_conmerge\" must be a boolean");
            serve.trackConMerge = value.boolean;
        } else if (key == "seed") {
            if (!isNum || value.num < 0.0
                || value.num != std::floor(value.num))
                return respondError(
                    writer, 400,
                    "\"seed\" must be a non-negative integer");
            serve.noiseSeed = static_cast<u64>(value.num);
        } else if (key == "deadline_seconds") {
            if (!isNum || !(value.num >= 0.0))
                return respondError(
                    writer, 400,
                    "\"deadline_seconds\" must be a non-negative "
                    "number");
            serve.deadlineSeconds = value.num;
        } else {
            return respondError(writer, 400,
                                "unknown field \"" + key + "\"");
        }
    }
    if (!haveBenchmark)
        return respondError(writer, 400,
                            "missing required field \"benchmark\"");

    // Create the job before submitting: the progress hook starts
    // firing the moment a worker picks the request up.
    auto job = std::make_shared<Job>();
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        job->id = nextJobId_++;
        evictFinishedLocked();
        jobs_.emplace(job->id, job);
    }
    job->benchmark = serve.benchmark;
    job->mode = serve.mode;
    job->priority = serve.priority;
    job->quantize = serve.quantize;
    job->seed = serve.noiseSeed;
    serve.id = job->id;
    const std::weak_ptr<Job> weak = job;
    serve.onProgress = [weak](int iteration) {
        if (const std::shared_ptr<Job> j = weak.lock()) {
            {
                std::lock_guard<std::mutex> lock(j->m);
                j->iterationsDone = iteration;
            }
            j->cv.notify_all();
        }
    };

    const SubmitOutcome outcome = engine_.trySubmit(serve);
    if (!outcome.accepted()) {
        {
            std::lock_guard<std::mutex> lock(jobsMutex_);
            jobs_.erase(job->id);
        }
        const std::string reason = rejectReasonName(*outcome.reason);
        switch (*outcome.reason) {
          case RejectReason::QueueFull:
          case RejectReason::LoadShedLow: {
            const int retry =
                retryAfterSeconds(outcome.suggestedBackoffSeconds);
            respondJson(
                writer,
                *outcome.reason == RejectReason::QueueFull ? 429 : 503,
                "{\"error\": \"rejected: " + reason
                    + "\", \"reason\": \"" + reason
                    + "\", \"retry_after_seconds\": "
                    + std::to_string(retry) + "}",
                {{"Retry-After", std::to_string(retry)}});
            return;
          }
          case RejectReason::UnknownModel:
            respondJson(writer, 404,
                        "{\"error\": \"unknown model "
                            + benchmarkName(serve.benchmark)
                            + "\", \"reason\": \"" + reason + "\"}");
            return;
          case RejectReason::Stopped:
            // The engine is draining for shutdown; tell the client
            // not to reuse the connection.
            writer.setConnectionClose();
            respondJson(writer, 503,
                        "{\"error\": \"server is shutting down\", "
                        "\"reason\": \""
                            + reason + "\"}");
            return;
        }
        respondError(writer, 500, "unhandled reject reason");
        return;
    }
    job->ticket = outcome.ticket;
    respondJson(writer, 201,
                "{\"id\": " + std::to_string(job->id)
                    + ", \"state\": \"queued\"}",
                {{"Location",
                  "/v1/jobs/" + std::to_string(job->id)}});
}

std::string
HttpFront::statusJson(const Job &job) const
{
    int done = -1;
    {
        std::lock_guard<std::mutex> lock(job.m);
        done = job.iterationsDone;
    }
    std::string state;
    std::string tail;
    if (job.ticket.valid() && job.ticket.ready()) {
        try {
            const RequestResult r = job.ticket.get();
            if (r.cancelled) {
                state = "cancelled";
            } else {
                state = "done";
                char seconds[32];
                std::snprintf(seconds, sizeof seconds, "%.6f",
                              r.seconds);
                tail += ", \"seconds\": ";
                tail += seconds;
                tail += ", \"output_rows\": "
                    + std::to_string(r.output.rows())
                    + ", \"output_cols\": "
                    + std::to_string(r.output.cols())
                    + ", \"ops_executed\": "
                    + std::to_string(r.stats.totalExecuted())
                    + ", \"ops_dense\": "
                    + std::to_string(r.stats.totalDense());
            }
        } catch (const std::exception &e) {
            state = "failed";
            tail += ", \"error\": \"" + jsonEscape(e.what()) + "\"";
        }
    } else {
        state = done >= 0 ? "running" : "queued";
    }
    return "{\"id\": " + std::to_string(job.id) + ", \"state\": \""
        + state + "\", \"benchmark\": \""
        + benchmarkName(job.benchmark) + "\", \"mode\": \""
        + execModeName(job.mode) + "\", \"priority\": \""
        + priorityName(job.priority) + "\", \"quantize\": "
        + (job.quantize ? "true" : "false") + ", \"seed\": "
        + std::to_string(job.seed) + ", \"iterations_done\": "
        + std::to_string(done + 1) + tail + "}";
}

void
HttpFront::handleStatus(const Job &job, ResponseWriter &writer)
{
    respondJson(writer, 200, statusJson(job));
}

void
HttpFront::handleCancel(Job &job, ResponseWriter &writer)
{
    {
        std::lock_guard<std::mutex> lock(job.m);
        job.cancelRequested = true;
    }
    const bool signalled = job.ticket.cancel();
    // Wake SSE streams so they notice the settled (or settling)
    // ticket promptly instead of at the next heartbeat.
    job.cv.notify_all();
    respondJson(writer, 200,
                "{\"id\": " + std::to_string(job.id)
                    + ", \"cancelled\": "
                    + (signalled ? "true" : "false") + ", \"state\": "
                    + "\""
                    + (signalled ? "cancelling" : "finished")
                    + "\"}");
}

void
HttpFront::handleEvents(Job &job, ResponseWriter &writer)
{
    if (!writer.beginChunked(200, "text/event-stream",
                             {{"Cache-Control", "no-cache"}}))
        return;
    const auto heartbeat =
        std::chrono::duration<double>(opts_.sseHeartbeatSeconds);
    int sent = -1; // last iteration index already emitted
    while (true) {
        int avail = -1;
        bool completed = false;
        {
            std::unique_lock<std::mutex> lock(job.m);
            job.cv.wait_for(lock, heartbeat, [&] {
                return job.iterationsDone > sent || job.completed;
            });
            avail = job.iterationsDone;
            completed = job.completed;
        }
        bool alive = true;
        for (int i = sent + 1; i <= avail && alive; ++i) {
            alive = writer.writeChunk(
                "event: progress\ndata: {\"iteration\": "
                + std::to_string(i) + "}\n\n");
            if (alive)
                sent = i;
        }
        const bool settled =
            job.ticket.valid() && job.ticket.ready();
        if (alive && !settled && avail <= sent && !completed) {
            // Idle wakeup: heartbeat, which doubles as the probe
            // that notices a departed client.
            alive = writer.writeChunk(": heartbeat\n\n");
        }
        if (!alive || writer.peerClosed()) {
            // The client went away mid-stream: release the engine
            // capacity it was consuming.
            {
                std::lock_guard<std::mutex> lock(job.m);
                job.cancelRequested = true;
            }
            job.ticket.cancel();
            job.cv.notify_all();
            return;
        }
        if (settled || completed) {
            // The callback fires just before the ticket settles;
            // wait() closes that window (it is at most the promise
            // delivery away).
            if (job.ticket.valid())
                job.ticket.wait();
            // The job may have finished between the locked read of
            // iterationsDone and the settled probe above; flush the
            // progress events that landed in that window so the
            // stream still delivers one event per iteration.
            int finalAvail;
            {
                std::lock_guard<std::mutex> lock(job.m);
                finalAvail = job.iterationsDone;
            }
            for (int i = sent + 1; i <= finalAvail && alive; ++i) {
                alive = writer.writeChunk(
                    "event: progress\ndata: {\"iteration\": "
                    + std::to_string(i) + "}\n\n");
                if (alive)
                    sent = i;
            }
            writer.writeChunk("event: done\ndata: "
                              + statusJson(job) + "\n\n");
            writer.endChunked();
            return;
        }
    }
}

void
HttpFront::handleMetrics(ResponseWriter &writer)
{
    writer.respond(200,
                   "text/plain; version=0.0.4; charset=utf-8",
                   engine_.metricsText());
}

} // namespace exion
