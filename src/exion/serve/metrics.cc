#include "exion/serve/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace exion
{

namespace
{

/** Value at a percentile (0..100) of an ascending-sorted sample. */
double
percentileOfSorted(const std::vector<double> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const Index lo = static_cast<Index>(rank);
    const Index hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

void
MetricsCollector::onAccepted(Priority p)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_[classIndex(p)].accepted;
}

void
MetricsCollector::onRejected(Priority p, RejectReason r)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ClassMetrics &c = counters_[classIndex(p)];
    switch (r) {
      case RejectReason::QueueFull:
        ++c.rejectedQueueFull;
        break;
      case RejectReason::LoadShedLow:
        ++c.shed;
        break;
      case RejectReason::UnknownModel:
        ++c.rejectedUnknownModel;
        break;
      case RejectReason::Stopped:
        ++c.rejectedStopped;
        break;
    }
}

void
MetricsCollector::onStarted(Priority p, double waitSeconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_[classIndex(p)].started;
    waits_[waitCount_ % kWaitWindow] = waitSeconds;
    ++waitCount_;
    ClassWaits &cw = classWaits_[classIndex(p)];
    cw.ring[cw.count % kClassWaitWindow] = waitSeconds;
    ++cw.count;
}

void
MetricsCollector::onCancelled(Priority p)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_[classIndex(p)].cancelled;
}

void
MetricsCollector::onCompleted(Priority p, bool failed,
                              bool missedDeadline)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ClassMetrics &c = counters_[classIndex(p)];
    ++c.completed;
    if (failed)
        ++c.failed;
    if (missedDeadline)
        ++c.deadlineMisses;
}

EngineMetrics
MetricsCollector::snapshot() const
{
    EngineMetrics m;
    std::vector<double> waits;
    std::array<std::vector<double>, kNumPriorityClasses> class_waits;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        m.perClass = counters_;
        const Index n = static_cast<Index>(
            std::min<u64>(waitCount_, kWaitWindow));
        waits.assign(waits_.begin(), waits_.begin() + n);
        m.queueWaitSamples = n;
        for (int c = 0; c < kNumPriorityClasses; ++c) {
            const ClassWaits &cw = classWaits_[c];
            const Index cn = static_cast<Index>(
                std::min<u64>(cw.count, kClassWaitWindow));
            class_waits[c].assign(cw.ring.begin(),
                                  cw.ring.begin() + cn);
            m.perClass[c].queueWaitSamples = cn;
        }
    }
    std::sort(waits.begin(), waits.end());
    m.queueWaitP50 = percentileOfSorted(waits, 50.0);
    m.queueWaitP99 = percentileOfSorted(waits, 99.0);
    for (int c = 0; c < kNumPriorityClasses; ++c) {
        std::sort(class_waits[c].begin(), class_waits[c].end());
        m.perClass[c].queueWaitP50 =
            percentileOfSorted(class_waits[c], 50.0);
    }
    return m;
}

double
MetricsCollector::classQueueWaitP50(Priority p) const
{
    std::vector<double> waits;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const ClassWaits &cw = classWaits_[classIndex(p)];
        const Index n = static_cast<Index>(
            std::min<u64>(cw.count, kClassWaitWindow));
        waits.assign(cw.ring.begin(), cw.ring.begin() + n);
    }
    if (waits.empty())
        return 0.0;
    // This runs once per load-driven rejection — the overload hot
    // path — so select the two order statistics the interpolated
    // median needs instead of fully sorting the window.
    const double rank = 0.5 * static_cast<double>(waits.size() - 1);
    const Index lo = static_cast<Index>(rank);
    const Index hi = std::min(lo + 1, waits.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    std::nth_element(waits.begin(), waits.begin() + lo, waits.end());
    const double v_lo = waits[lo];
    const double v_hi = hi == lo
        ? v_lo
        : *std::min_element(waits.begin() + lo + 1, waits.end());
    return v_lo * (1.0 - frac) + v_hi * frac;
}

namespace
{

/** %g rendering shared with common Prometheus client libraries. */
std::string
promValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/**
 * One row of a family emission: the label suffix appended after the
 * `class` label (empty for the aggregate, `,shard="i"` per shard)
 * plus the per-class table the samples come from.
 */
struct FamilyRow
{
    std::string labelSuffix;
    const std::array<ClassMetrics, kNumPriorityClasses> *perClass;
};

/**
 * One family: HELP/TYPE header once, then a sample per class for
 * every row — the aggregate first, shards after, all under the same
 * metric name so Prometheus sees a single consistent family.
 */
void
emitClassFamily(std::ostringstream &out, const char *name,
                const char *help, const char *type,
                const std::vector<FamilyRow> &rows,
                u64 ClassMetrics::*field)
{
    out << "# HELP " << name << " " << help << "\n";
    out << "# TYPE " << name << " " << type << "\n";
    for (const FamilyRow &row : rows) {
        for (int c = 0; c < kNumPriorityClasses; ++c) {
            out << name << "{class=\""
                << priorityName(static_cast<Priority>(c)) << "\""
                << row.labelSuffix << "} "
                << (*row.perClass)[c].*field << "\n";
        }
    }
}

} // namespace

std::string
EngineMetrics::toPrometheusText() const
{
    return renderPrometheusText(*this, {});
}

EngineMetrics
aggregateMetrics(const std::vector<LabeledMetrics> &shards)
{
    EngineMetrics agg;
    double wait_p50 = 0.0, wait_p99 = 0.0;
    std::array<double, kNumPriorityClasses> class_p50{};
    for (const LabeledMetrics &s : shards) {
        const EngineMetrics &m = s.metrics;
        for (int c = 0; c < kNumPriorityClasses; ++c) {
            ClassMetrics &a = agg.perClass[c];
            const ClassMetrics &b = m.perClass[c];
            a.accepted += b.accepted;
            a.rejectedQueueFull += b.rejectedQueueFull;
            a.shed += b.shed;
            a.rejectedUnknownModel += b.rejectedUnknownModel;
            a.rejectedStopped += b.rejectedStopped;
            a.started += b.started;
            a.completed += b.completed;
            a.failed += b.failed;
            a.cancelled += b.cancelled;
            a.deadlineMisses += b.deadlineMisses;
            a.queued += b.queued;
            a.peakQueued += b.peakQueued;
            a.queueWaitSamples += b.queueWaitSamples;
            class_p50[c] += b.queueWaitP50
                * static_cast<double>(b.queueWaitSamples);
        }
        agg.queueWaitSamples += m.queueWaitSamples;
        wait_p50 +=
            m.queueWaitP50 * static_cast<double>(m.queueWaitSamples);
        wait_p99 +=
            m.queueWaitP99 * static_cast<double>(m.queueWaitSamples);
    }
    if (agg.queueWaitSamples > 0) {
        agg.queueWaitP50 =
            wait_p50 / static_cast<double>(agg.queueWaitSamples);
        agg.queueWaitP99 =
            wait_p99 / static_cast<double>(agg.queueWaitSamples);
    }
    for (int c = 0; c < kNumPriorityClasses; ++c) {
        if (agg.perClass[c].queueWaitSamples > 0)
            agg.perClass[c].queueWaitP50 = class_p50[c]
                / static_cast<double>(agg.perClass[c].queueWaitSamples);
    }
    return agg;
}

std::string
renderPrometheusText(const EngineMetrics &aggregate,
                     const std::vector<LabeledMetrics> &shards)
{
    std::vector<FamilyRow> rows;
    rows.push_back(FamilyRow{"", &aggregate.perClass});
    for (const LabeledMetrics &s : shards)
        rows.push_back(FamilyRow{",shard=\"" + s.shard + "\"",
                                 &s.metrics.perClass});

    std::ostringstream out;
    const auto family = [&](const char *name, const char *help,
                            const char *type, u64 ClassMetrics::*field) {
        emitClassFamily(out, name, help, type, rows, field);
    };
    family("exion_serve_accepted_total",
           "Requests admitted into the ready queue.", "counter",
           &ClassMetrics::accepted);
    family("exion_serve_rejected_queue_full_total",
           "Requests refused because their class was at its "
           "ready-depth bound.",
           "counter", &ClassMetrics::rejectedQueueFull);
    family("exion_serve_shed_total",
           "Requests refused by load shedding.", "counter",
           &ClassMetrics::shed);
    family("exion_serve_rejected_unknown_model_total",
           "Requests naming an unregistered model.", "counter",
           &ClassMetrics::rejectedUnknownModel);
    family("exion_serve_rejected_stopped_total",
           "Requests refused after shutdown began.", "counter",
           &ClassMetrics::rejectedStopped);
    family("exion_serve_started_total",
           "Requests picked up by a worker.", "counter",
           &ClassMetrics::started);
    family("exion_serve_completed_total",
           "Requests finished (success or failure).", "counter",
           &ClassMetrics::completed);
    family("exion_serve_failed_total",
           "Requests completed with an error.", "counter",
           &ClassMetrics::failed);
    family("exion_serve_cancelled_total",
           "Requests cancelled before or during execution.", "counter",
           &ClassMetrics::cancelled);
    family("exion_serve_deadline_misses_total",
           "Requests completed after their deadline.", "counter",
           &ClassMetrics::deadlineMisses);
    family("exion_serve_ready_queue_depth",
           "Ready (queued, not started) requests.", "gauge",
           &ClassMetrics::queued);
    family("exion_serve_ready_queue_depth_peak",
           "High-water ready-queue depth.", "gauge",
           &ClassMetrics::peakQueued);

    out << "# HELP exion_serve_queue_wait_seconds Queue wait from "
           "acceptance to worker start, over the recent window.\n";
    out << "# TYPE exion_serve_queue_wait_seconds summary\n";
    out << "exion_serve_queue_wait_seconds{quantile=\"0.5\"} "
        << promValue(aggregate.queueWaitP50) << "\n";
    out << "exion_serve_queue_wait_seconds{quantile=\"0.99\"} "
        << promValue(aggregate.queueWaitP99) << "\n";
    out << "exion_serve_queue_wait_seconds_count "
        << aggregate.queueWaitSamples << "\n";
    for (const LabeledMetrics &s : shards) {
        out << "exion_serve_queue_wait_seconds{quantile=\"0.5\",shard=\""
            << s.shard << "\"} " << promValue(s.metrics.queueWaitP50)
            << "\n";
        out << "exion_serve_queue_wait_seconds{quantile=\"0.99\",shard=\""
            << s.shard << "\"} " << promValue(s.metrics.queueWaitP99)
            << "\n";
        out << "exion_serve_queue_wait_seconds_count{shard=\""
            << s.shard << "\"} " << s.metrics.queueWaitSamples << "\n";
    }

    out << "# HELP exion_serve_class_queue_wait_p50_seconds Median "
           "queue wait per class over its recent window.\n";
    out << "# TYPE exion_serve_class_queue_wait_p50_seconds gauge\n";
    for (const FamilyRow &row : rows) {
        for (int c = 0; c < kNumPriorityClasses; ++c) {
            out << "exion_serve_class_queue_wait_p50_seconds{class=\""
                << priorityName(static_cast<Priority>(c)) << "\""
                << row.labelSuffix << "} "
                << promValue((*row.perClass)[c].queueWaitP50) << "\n";
        }
    }
    return out.str();
}

} // namespace exion
