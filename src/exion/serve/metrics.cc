#include "exion/serve/metrics.h"

#include <algorithm>

namespace exion
{

namespace
{

/** Value at a percentile (0..100) of an ascending-sorted sample. */
double
percentileOfSorted(const std::vector<double> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const Index lo = static_cast<Index>(rank);
    const Index hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

void
MetricsCollector::onAccepted(Priority p)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_[classIndex(p)].accepted;
}

void
MetricsCollector::onRejected(Priority p, RejectReason r)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ClassMetrics &c = counters_[classIndex(p)];
    switch (r) {
      case RejectReason::QueueFull:
        ++c.rejectedQueueFull;
        break;
      case RejectReason::LoadShedLow:
        ++c.shed;
        break;
      case RejectReason::UnknownModel:
        ++c.rejectedUnknownModel;
        break;
      case RejectReason::Stopped:
        ++c.rejectedStopped;
        break;
    }
}

void
MetricsCollector::onStarted(Priority p, double waitSeconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_[classIndex(p)].started;
    waits_[waitCount_ % kWaitWindow] = waitSeconds;
    ++waitCount_;
}

void
MetricsCollector::onCancelled(Priority p)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_[classIndex(p)].cancelled;
}

void
MetricsCollector::onCompleted(Priority p, bool failed,
                              bool missedDeadline)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ClassMetrics &c = counters_[classIndex(p)];
    ++c.completed;
    if (failed)
        ++c.failed;
    if (missedDeadline)
        ++c.deadlineMisses;
}

EngineMetrics
MetricsCollector::snapshot() const
{
    EngineMetrics m;
    std::vector<double> waits;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        m.perClass = counters_;
        const Index n = static_cast<Index>(
            std::min<u64>(waitCount_, kWaitWindow));
        waits.assign(waits_.begin(), waits_.begin() + n);
        m.queueWaitSamples = n;
    }
    std::sort(waits.begin(), waits.end());
    m.queueWaitP50 = percentileOfSorted(waits, 50.0);
    m.queueWaitP99 = percentileOfSorted(waits, 99.0);
    return m;
}

} // namespace exion
