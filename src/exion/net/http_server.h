/**
 * @file
 * Dependency-free HTTP/1.1 server: the engine's network front door.
 *
 * Three separable layers, so the protocol logic is testable on byte
 * buffers without ever opening a socket:
 *
 *   HttpParser      incremental request parser (request line, headers,
 *                   Content-Length body) with explicit header- and
 *                   body-size limits; malformed or oversized input
 *                   yields a typed HttpParseStatus the server maps to
 *                   400 / 413 / 431
 *   ResponseWriter  response formatting (status line, headers,
 *                   Content-Length one-shots and chunked streaming for
 *                   SSE) over an abstract byte sink; the socket-backed
 *                   writer and the test buffer-backed writer share the
 *                   exact wire format
 *   HttpServer      the socket layer: listen, thread-per-connection
 *                   accept loop, keep-alive request cycling, bounded
 *                   read timeouts, graceful stop (wakes and joins
 *                   every connection thread)
 *
 * The server is deliberately minimal — HTTP/1.1 with Content-Length
 * bodies and chunked *responses* only (chunked request bodies are
 * refused with 411/400) — because its one job is putting the
 * BatchEngine's submit/stream/cancel/metrics surface on the wire, not
 * general-purpose web serving.
 */

#ifndef EXION_NET_HTTP_SERVER_H_
#define EXION_NET_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exion/common/types.h"

namespace exion
{

/** Size bounds the parser enforces while a request arrives. */
struct HttpLimits
{
    /** Request line + header block bound; beyond it: 431. */
    u64 maxHeaderBytes = 16 * 1024;
    /** Content-Length bound; beyond it: 413. */
    u64 maxBodyBytes = 1024 * 1024;
};

/** One parsed request. Header names are stored lowercased. */
struct HttpRequest
{
    std::string method;  //!< e.g. "GET" (methods are case-sensitive)
    std::string target;  //!< request target, e.g. "/v1/jobs/7/events"
    std::string version; //!< "HTTP/1.1" or "HTTP/1.0"
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;
    /**
     * Connection persistence after this exchange: HTTP/1.1 defaults
     * to keep-alive unless "Connection: close"; HTTP/1.0 defaults to
     * close unless "Connection: keep-alive".
     */
    bool keepAlive = true;

    /** Value of a header (name lowercased), nullptr when absent. */
    const std::string *header(const std::string &lowercaseName) const;
};

/** Outcome of feeding bytes to the parser. */
enum class HttpParseStatus
{
    NeedMore,       //!< incomplete; feed more bytes
    Ok,             //!< one full request parsed (request())
    BadRequest,     //!< malformed request line / headers / length
    HeaderTooLarge, //!< header block over HttpLimits::maxHeaderBytes
    BodyTooLarge,   //!< declared body over HttpLimits::maxBodyBytes
    LengthRequired, //!< body transfer we don't support (chunked)
};

/** HTTP status code a parse failure maps to (400/413/431/411). */
int httpStatusFor(HttpParseStatus s);

/** Canonical reason phrase of the status codes this server emits. */
std::string httpStatusText(int status);

/**
 * Incremental HTTP/1.1 request parser over byte buffers.
 *
 * Feed arbitrary byte slices as they arrive; once feed() returns Ok,
 * request() holds the parsed request and resetForNext() arms the
 * parser for the next request on the same connection (keep-alive),
 * preserving any already-buffered pipelined bytes. Any error status
 * is terminal for the connection.
 *
 * Line endings: CRLF per RFC 9112, with bare LF tolerated (robustness
 * principle; every mainstream server accepts it).
 */
class HttpParser
{
  public:
    explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

    /** Consumes n bytes, returns the parse state after them. */
    HttpParseStatus feed(const char *data, u64 n);

    /** Parse state without new input (e.g. after resetForNext()). */
    HttpParseStatus status() const { return status_; }

    /** The parsed request. Valid only while status() == Ok. */
    const HttpRequest &request() const { return req_; }

    /** Consumes the parsed request; keeps buffered pipelined bytes. */
    void resetForNext();

  private:
    HttpParseStatus parse();
    HttpParseStatus parseHead(u64 headEnd);

    HttpLimits limits_;
    std::string buf_;
    HttpRequest req_;
    HttpParseStatus status_ = HttpParseStatus::NeedMore;
    /** Body bytes still expected (valid once the head is parsed). */
    u64 bodyRemaining_ = 0;
    bool headParsed_ = false;
};

/**
 * Response formatting over an abstract byte sink.
 *
 * Exactly one of the two shapes per request:
 *   - respond(): one-shot, Content-Length framed
 *   - beginChunked() + writeChunk()* + endChunked(): streaming
 *     (Transfer-Encoding: chunked) — the SSE path
 *
 * All wire formatting lives here, shared by the socket writer and
 * the test buffer writer, so golden tests pin the real bytes. Write
 * failures (client went away) are reported, not thrown: streaming
 * handlers use the false return to stop and cancel server-side work.
 */
class ResponseWriter
{
  public:
    using Headers = std::vector<std::pair<std::string, std::string>>;

    virtual ~ResponseWriter() = default;

    /** One-shot response with a Content-Length body. */
    bool respond(int status, const std::string &contentType,
                 const std::string &body, const Headers &extra = {});

    /** Starts a chunked streaming response. */
    bool beginChunked(int status, const std::string &contentType,
                      const Headers &extra = {});

    /**
     * Sends one chunk (empty data is a no-op: a zero-length chunk
     * would terminate the stream).
     * @return false when the client is gone; stop streaming
     */
    bool writeChunk(const std::string &data);

    /** Terminates the chunked stream (the zero-length chunk). */
    bool endChunked();

    /**
     * Whether the peer has closed its end (half or full). Streaming
     * handlers poll this between chunks so an idle stream notices a
     * departed client without waiting for a write to fail. The
     * buffer-backed test writer returns a settable flag.
     */
    virtual bool peerClosed() { return false; }

    /** Whether a response has been started on this writer. */
    bool responded() const { return responded_; }

    /**
     * Force "Connection: close" on the response (and report it to
     * the server's keep-alive loop). Call before respond()/
     * beginChunked().
     */
    void setConnectionClose() { forceClose_ = true; }

    /** Whether this exchange ends the connection (forced close or
        no keep-alive) — matches the Connection header on the wire. */
    bool connectionClose() const { return forceClose_ || !keepAlive_; }

    /**
     * Keep-alive advertised in the response headers; the server sets
     * it from the request before invoking the handler.
     */
    void setKeepAlive(bool keepAlive) { keepAlive_ = keepAlive; }

  protected:
    /** Raw bytes to the wire; false when the peer is gone. */
    virtual bool send(const char *data, u64 n) = 0;

  private:
    bool sendHead(int status, const std::string &contentType,
                  const Headers &extra, bool chunked, u64 contentLength);

    bool responded_ = false;
    bool chunking_ = false;
    bool forceClose_ = false;
    bool keepAlive_ = true;
};

/**
 * ResponseWriter over a growable byte buffer — the golden-test and
 * socketless-routing writer. peerClosed() reports a settable flag so
 * disconnect-handling logic is testable without a socket.
 */
class BufferResponseWriter : public ResponseWriter
{
  public:
    /** Everything "sent" so far, byte-for-byte as it would hit the
        wire. */
    const std::string &bytes() const { return out_; }

    /** Simulates the peer closing its end. */
    void setPeerClosed(bool closed) { peerClosed_ = closed; }

    bool peerClosed() override { return peerClosed_; }

  protected:
    bool send(const char *data, u64 n) override
    {
        if (peerClosed_)
            return false;
        out_.append(data, n);
        return true;
    }

  private:
    std::string out_;
    bool peerClosed_ = false;
};

/**
 * Thread-per-connection HTTP/1.1 server.
 *
 * start() binds and listens (port 0 picks an ephemeral port; port()
 * reports the actual one) and spawns the accept loop; every accepted
 * connection gets a thread running the keep-alive request cycle:
 * parse -> handler(request, writer) -> repeat until the client
 * closes, an error occurs, or stop() is called. stop() closes the
 * listener, shuts down every open connection socket (waking blocked
 * reads) and joins all threads; it is idempotent and also run by the
 * destructor.
 *
 * The handler runs on the connection's thread and may block (that is
 * the point of thread-per-connection: an SSE stream parks its
 * thread). A handler that never responds gets a 500 generated on its
 * behalf.
 */
class HttpServer
{
  public:
    using Handler = std::function<void(const HttpRequest &,
                                       ResponseWriter &)>;

    struct Options
    {
        /** Bind address. Default loopback: exposing the engine to a
            network is an explicit operator decision. */
        std::string bindAddress = "127.0.0.1";
        /** TCP port; 0 = ephemeral (see port()). */
        u16 port = 0;
        HttpLimits limits;
        /**
         * Idle-connection timeout: a keep-alive connection with no
         * request activity for this long is closed. Also bounds how
         * long stop() waits for a connection blocked in a read.
         */
        double idleTimeoutSeconds = 30.0;
    };

    HttpServer(Options opts, Handler handler);

    /** stop()s. */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Binds, listens and starts accepting.
     * @throws std::runtime_error when the socket/bind/listen fails
     */
    void start();

    /** Actual bound port (after start()). */
    u16 port() const { return port_; }

    /** Whether start() has run and stop() has not. */
    bool running() const { return running_.load(); }

    /** Connections accepted since start() (observability/tests). */
    u64 connectionsAccepted() const { return accepted_.load(); }

    /** Graceful stop: close listener + connections, join threads. */
    void stop();

  private:
    struct Connection;

    void acceptLoop();
    void serveConnection(std::shared_ptr<Connection> conn);
    /** Drops finished connection threads (called from acceptLoop). */
    void reapFinished();

    Options opts_;
    Handler handler_;
    int listenFd_ = -1;
    u16 port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<u64> accepted_{0};
    std::thread acceptThread_;
    std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> conns_;
};

} // namespace exion

#endif // EXION_NET_HTTP_SERVER_H_
