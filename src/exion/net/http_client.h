/**
 * @file
 * Minimal blocking HTTP/1.1 client.
 *
 * Exists for the pieces of this repository that must speak to the
 * serving front door over a real socket: the socket-level tests, the
 * bench_serve load generator and ad-hoc tooling. Supports exactly
 * what the HttpServer emits — Content-Length one-shot responses and
 * chunked streaming (SSE) — plus keep-alive request cycling on one
 * connection. Not a general-purpose client (no TLS, no redirects, no
 * proxies, IPv4 only).
 */

#ifndef EXION_NET_HTTP_CLIENT_H_
#define EXION_NET_HTTP_CLIENT_H_

#include <string>
#include <utility>
#include <vector>

#include "exion/common/types.h"

namespace exion
{

/** A received response. Header names are stored lowercased. */
struct HttpClientResponse
{
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Value of a header (name lowercased), nullptr when absent. */
    const std::string *header(const std::string &lowercaseName) const;

    /**
     * Parsed `Retry-After` header, whole seconds: the server's
     * back-off hint on 429/503 (HttpFront derives it from the
     * engine's suggestedBackoffSeconds). -1 when the header is
     * absent or not a non-negative integer (the HTTP-date form is
     * not supported — our server never sends it).
     */
    int retryAfterSeconds() const;

    bool ok() const { return status >= 200 && status < 300; }
};

/**
 * One client connection. connect() establishes it; request() runs a
 * full exchange (and can be called repeatedly — keep-alive); the
 * startStream()/readStreamData() pair consumes a chunked streaming
 * response incrementally (the SSE reader). All reads observe the
 * connect() timeout. Failures are reported by return value — a load
 * generator must count errors, not die on the first RST.
 */
class HttpConnection
{
  public:
    HttpConnection() = default;
    ~HttpConnection();

    HttpConnection(HttpConnection &&other) noexcept;
    HttpConnection &operator=(HttpConnection &&other) noexcept;

    HttpConnection(const HttpConnection &) = delete;
    HttpConnection &operator=(const HttpConnection &) = delete;

    /**
     * Connects to host:port (IPv4 dotted quad or "localhost").
     * timeoutSeconds bounds connect and every subsequent read.
     * Failure leaves the connection !connected().
     */
    static HttpConnection connect(const std::string &host, u16 port,
                                  double timeoutSeconds = 10.0);

    bool connected() const { return fd_ >= 0; }

    /**
     * Sends a request and reads the complete response (draining a
     * chunked body to its end). Content-Type is sent whenever a body
     * is present.
     * @return false on any socket/parse failure (connection is
     *         closed; response is partial)
     */
    bool request(const std::string &method, const std::string &target,
                 HttpClientResponse &response,
                 const std::string &body = "",
                 const std::string &contentType = "application/json");

    /**
     * Sends a GET and reads only the status line + headers of a
     * chunked streaming response, leaving the connection positioned
     * on the chunk stream for readStreamData().
     */
    bool startStream(const std::string &target,
                     HttpClientResponse &head);

    /**
     * Reads the next decoded chunk payload of the streaming response.
     * @return false on stream end (zero-length chunk), timeout, or
     *         connection loss
     */
    bool readStreamData(std::string &data);

    /** Closes the socket (also done by the destructor). */
    void close();

  private:
    bool sendAll(const std::string &bytes);
    /** Reads more bytes into buf_; false on EOF/timeout/error. */
    bool fill();
    /** Reads until buf_ contains a full header block; parses it. */
    bool readHead(HttpClientResponse &response);
    /** Reads len body bytes from buf_/socket into out. */
    bool readExact(u64 len, std::string &out);
    /** Reads one CRLF-terminated line from buf_/socket. */
    bool readLine(std::string &line);

    int fd_ = -1;
    std::string buf_;
};

/**
 * Convenience one-shot: connect, exchange, close.
 * @return response with status 0 on connection/transport failure
 */
HttpClientResponse httpRequest(
    const std::string &host, u16 port, const std::string &method,
    const std::string &target, const std::string &body = "",
    double timeoutSeconds = 10.0);

} // namespace exion

#endif // EXION_NET_HTTP_CLIENT_H_
