#include "exion/net/http_server.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exion/common/logging.h"

namespace exion
{

namespace
{

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trim(const std::string &s)
{
    u64 b = 0;
    u64 e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

} // namespace

const std::string *
HttpRequest::header(const std::string &lowercaseName) const
{
    for (const auto &[name, value] : headers)
        if (name == lowercaseName)
            return &value;
    return nullptr;
}

int
httpStatusFor(HttpParseStatus s)
{
    switch (s) {
      case HttpParseStatus::BadRequest:
        return 400;
      case HttpParseStatus::HeaderTooLarge:
        return 431;
      case HttpParseStatus::BodyTooLarge:
        return 413;
      case HttpParseStatus::LengthRequired:
        return 411;
      case HttpParseStatus::NeedMore:
      case HttpParseStatus::Ok:
        break;
    }
    return 500;
}

std::string
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 201:
        return "Created";
      case 204:
        return "No Content";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 409:
        return "Conflict";
      case 411:
        return "Length Required";
      case 413:
        return "Content Too Large";
      case 429:
        return "Too Many Requests";
      case 431:
        return "Request Header Fields Too Large";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
    }
    return "Unknown";
}

// --------------------------------------------------------------- parser

HttpParseStatus
HttpParser::feed(const char *data, u64 n)
{
    if (status_ != HttpParseStatus::NeedMore)
        return status_;
    buf_.append(data, n);
    status_ = parse();
    return status_;
}

void
HttpParser::resetForNext()
{
    req_ = HttpRequest{};
    headParsed_ = false;
    bodyRemaining_ = 0;
    status_ = HttpParseStatus::NeedMore;
    // Pipelined bytes already buffered may complete the next request
    // without another feed().
    status_ = parse();
}

HttpParseStatus
HttpParser::parse()
{
    if (!headParsed_) {
        // Find the end of the header block: CRLFCRLF, tolerating bare
        // LF line endings (earliest terminator wins).
        u64 headEnd = std::string::npos; // one past the last head byte
        u64 bodyStart = 0;
        const u64 crlf = buf_.find("\r\n\r\n");
        const u64 lflf = buf_.find("\n\n");
        if (crlf != std::string::npos
            && (lflf == std::string::npos || crlf < lflf)) {
            headEnd = crlf;
            bodyStart = crlf + 4;
        } else if (lflf != std::string::npos) {
            headEnd = lflf;
            bodyStart = lflf + 2;
        }
        if (headEnd == std::string::npos) {
            return buf_.size() > limits_.maxHeaderBytes
                ? HttpParseStatus::HeaderTooLarge
                : HttpParseStatus::NeedMore;
        }
        if (headEnd > limits_.maxHeaderBytes)
            return HttpParseStatus::HeaderTooLarge;
        const HttpParseStatus head = parseHead(headEnd);
        if (head != HttpParseStatus::NeedMore)
            return head;
        headParsed_ = true;
        buf_.erase(0, bodyStart);
    }
    // Drain the declared body from the buffer.
    if (bodyRemaining_ > 0) {
        const u64 take = std::min<u64>(bodyRemaining_, buf_.size());
        req_.body.append(buf_, 0, take);
        buf_.erase(0, take);
        bodyRemaining_ -= take;
    }
    return bodyRemaining_ == 0 ? HttpParseStatus::Ok
                               : HttpParseStatus::NeedMore;
}

/**
 * Parses the request line and headers in buf_[0, headEnd). Returns
 * NeedMore on success (the caller flips to body mode) or a terminal
 * error status.
 */
HttpParseStatus
HttpParser::parseHead(u64 headEnd)
{
    const std::string head = buf_.substr(0, headEnd);

    // Split into lines at LF, stripping a trailing CR per line.
    std::vector<std::string> lines;
    u64 pos = 0;
    while (pos <= head.size()) {
        u64 nl = head.find('\n', pos);
        if (nl == std::string::npos)
            nl = head.size();
        std::string line = head.substr(pos, nl - pos);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(std::move(line));
        if (nl == head.size())
            break;
        pos = nl + 1;
    }
    if (lines.empty() || lines[0].empty())
        return HttpParseStatus::BadRequest;

    // Request line: METHOD SP TARGET SP VERSION, single spaces.
    const std::string &rl = lines[0];
    const u64 sp1 = rl.find(' ');
    const u64 sp2 = sp1 == std::string::npos
        ? std::string::npos : rl.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos
        || rl.find(' ', sp2 + 1) != std::string::npos)
        return HttpParseStatus::BadRequest;
    req_.method = rl.substr(0, sp1);
    req_.target = rl.substr(sp1 + 1, sp2 - sp1 - 1);
    req_.version = rl.substr(sp2 + 1);
    if (req_.method.empty() || req_.target.empty()
        || req_.target[0] != '/')
        return HttpParseStatus::BadRequest;
    if (req_.version != "HTTP/1.1" && req_.version != "HTTP/1.0")
        return HttpParseStatus::BadRequest;

    // Header fields.
    bool haveLength = false;
    for (u64 i = 1; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        if (line.empty())
            continue;
        if (line[0] == ' ' || line[0] == '\t')
            return HttpParseStatus::BadRequest; // obs-fold: refused
        const u64 colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return HttpParseStatus::BadRequest;
        std::string name = toLower(line.substr(0, colon));
        if (name.find(' ') != std::string::npos
            || name.find('\t') != std::string::npos)
            return HttpParseStatus::BadRequest;
        req_.headers.emplace_back(std::move(name),
                                  trim(line.substr(colon + 1)));
    }

    // Body framing: Content-Length only. A Transfer-Encoding body
    // (chunked uploads) is out of scope for this front door.
    if (req_.header("transfer-encoding") != nullptr)
        return HttpParseStatus::LengthRequired;
    if (const std::string *cl = req_.header("content-length")) {
        if (cl->empty())
            return HttpParseStatus::BadRequest;
        u64 len = 0;
        for (char c : *cl) {
            if (c < '0' || c > '9')
                return HttpParseStatus::BadRequest;
            const u64 digit = static_cast<u64>(c - '0');
            if (len > (UINT64_MAX - digit) / 10)
                return HttpParseStatus::BadRequest;
            len = len * 10 + digit;
        }
        // Duplicate Content-Length headers must agree.
        for (const auto &[name, value] : req_.headers)
            if (name == "content-length" && value != *cl)
                return HttpParseStatus::BadRequest;
        if (len > limits_.maxBodyBytes)
            return HttpParseStatus::BodyTooLarge;
        bodyRemaining_ = len;
        haveLength = true;
    }
    (void)haveLength;

    // Connection persistence.
    const std::string *conn = req_.header("connection");
    const std::string connLower = conn ? toLower(*conn) : "";
    if (req_.version == "HTTP/1.1")
        req_.keepAlive = connLower != "close";
    else
        req_.keepAlive = connLower == "keep-alive";

    return HttpParseStatus::NeedMore;
}

// -------------------------------------------------------------- writer

bool
ResponseWriter::sendHead(int status, const std::string &contentType,
                         const Headers &extra, bool chunked,
                         u64 contentLength)
{
    std::string head;
    head.reserve(256);
    head += "HTTP/1.1 ";
    head += std::to_string(status);
    head += ' ';
    head += httpStatusText(status);
    head += "\r\n";
    if (!contentType.empty()) {
        head += "Content-Type: ";
        head += contentType;
        head += "\r\n";
    }
    for (const auto &[name, value] : extra) {
        head += name;
        head += ": ";
        head += value;
        head += "\r\n";
    }
    head += "Connection: ";
    head += (forceClose_ || !keepAlive_) ? "close" : "keep-alive";
    head += "\r\n";
    if (chunked) {
        head += "Transfer-Encoding: chunked\r\n";
    } else {
        head += "Content-Length: ";
        head += std::to_string(contentLength);
        head += "\r\n";
    }
    head += "\r\n";
    return send(head.data(), head.size());
}

bool
ResponseWriter::respond(int status, const std::string &contentType,
                        const std::string &body, const Headers &extra)
{
    EXION_ASSERT(!responded_, "response already started");
    responded_ = true;
    if (!sendHead(status, contentType, extra, /*chunked=*/false,
                  body.size()))
        return false;
    return body.empty() || send(body.data(), body.size());
}

bool
ResponseWriter::beginChunked(int status, const std::string &contentType,
                             const Headers &extra)
{
    EXION_ASSERT(!responded_, "response already started");
    responded_ = true;
    chunking_ = true;
    return sendHead(status, contentType, extra, /*chunked=*/true, 0);
}

bool
ResponseWriter::writeChunk(const std::string &data)
{
    EXION_ASSERT(chunking_, "writeChunk outside a chunked response");
    if (data.empty())
        return true;
    char size[32];
    std::snprintf(size, sizeof size, "%llx\r\n",
                  static_cast<unsigned long long>(data.size()));
    std::string frame;
    frame.reserve(data.size() + 36);
    frame += size;
    frame += data;
    frame += "\r\n";
    return send(frame.data(), frame.size());
}

bool
ResponseWriter::endChunked()
{
    EXION_ASSERT(chunking_, "endChunked outside a chunked response");
    chunking_ = false;
    static const char kEnd[] = "0\r\n\r\n";
    return send(kEnd, sizeof kEnd - 1);
}

// -------------------------------------------------------------- server

namespace
{

/** ResponseWriter over a connected socket (MSG_NOSIGNAL sends). */
class SocketResponseWriter : public ResponseWriter
{
  public:
    explicit SocketResponseWriter(int fd) : fd_(fd) {}

    bool peerClosed() override
    {
        // A closed peer makes a peek return 0 immediately; an open
        // idle peer returns EAGAIN. Pending pipelined bytes (> 0)
        // mean the peer is definitely still there.
        char b;
        const ssize_t n =
            ::recv(fd_, &b, 1, MSG_PEEK | MSG_DONTWAIT);
        return n == 0;
    }

  protected:
    bool send(const char *data, u64 n) override
    {
        u64 off = 0;
        while (off < n) {
            const ssize_t sent = ::send(fd_, data + off, n - off,
                                        MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            off += static_cast<u64>(sent);
        }
        return true;
    }

  private:
    int fd_;
};

} // namespace

struct HttpServer::Connection
{
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
};

HttpServer::HttpServer(Options opts, Handler handler)
    : opts_(std::move(opts)), handler_(std::move(handler))
{
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    EXION_ASSERT(!running_.load(), "server already started");
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("http: socket() failed: "
                                 + std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    if (::inet_pton(AF_INET, opts_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("http: bad bind address "
                                 + opts_.bindAddress);
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0
        || ::listen(listenFd_, 64) != 0) {
        const std::string err = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("http: cannot listen on "
                                 + opts_.bindAddress + ":"
                                 + std::to_string(opts_.port) + ": "
                                 + err);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);

    // Non-blocking accept polled with a short timeout keeps stop()
    // responsive without signal tricks.
    ::fcntl(listenFd_, F_SETFL, O_NONBLOCK);
    stopping_.store(false);
    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (stopping_.load())
            break;
        reapFinished();
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        // Short receive timeout: the per-connection loop wakes
        // regularly to check the stop flag and the idle deadline.
        timeval tv{0, 250 * 1000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        accepted_.fetch_add(1);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            conns_.push_back(conn);
        }
        conn->thread = std::thread(
            [this, conn] { serveConnection(conn); });
    }
}

void
HttpServer::serveConnection(std::shared_ptr<Connection> conn)
{
    HttpParser parser(opts_.limits);
    const auto idle = std::chrono::duration<double>(
        opts_.idleTimeoutSeconds);
    auto deadline = std::chrono::steady_clock::now() + idle;
    char buf[8192];
    bool open = true;
    while (open && !stopping_.load()) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
        if (n == 0)
            break; // peer closed
        if (n < 0) {
            if ((errno == EAGAIN || errno == EWOULDBLOCK
                 || errno == EINTR)
                && std::chrono::steady_clock::now() < deadline)
                continue;
            break; // timeout or hard error
        }
        deadline = std::chrono::steady_clock::now() + idle;
        HttpParseStatus status =
            parser.feed(buf, static_cast<u64>(n));
        // Handle every complete request already buffered (pipelined
        // requests included).
        while (status == HttpParseStatus::Ok) {
            SocketResponseWriter writer(conn->fd);
            writer.setKeepAlive(parser.request().keepAlive);
            try {
                handler_(parser.request(), writer);
            } catch (const std::exception &e) {
                if (!writer.responded()) {
                    writer.setConnectionClose();
                    writer.respond(500, "text/plain",
                                   std::string("error: ") + e.what()
                                       + "\n");
                } else {
                    EXION_WARN("http handler threw mid-response: ",
                               e.what());
                }
                open = false;
                break;
            }
            if (!writer.responded())
                writer.respond(500, "text/plain",
                               "handler produced no response\n");
            if (!parser.request().keepAlive
                || writer.connectionClose()) {
                open = false;
                break;
            }
            parser.resetForNext();
            status = parser.status();
        }
        if (status != HttpParseStatus::Ok
            && status != HttpParseStatus::NeedMore) {
            // Malformed or oversized input: report and close (the
            // connection's framing can no longer be trusted).
            const int code = httpStatusFor(status);
            SocketResponseWriter writer(conn->fd);
            writer.setConnectionClose();
            writer.respond(code, "text/plain",
                           httpStatusText(code) + "\n");
            break;
        }
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->done.store(true);
}

void
HttpServer::reapFinished()
{
    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            ::close((*it)->fd);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
HttpServer::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Wake every connection blocked in recv() and join its thread.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        conns.swap(conns_);
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RDWR);
    for (const auto &conn : conns) {
        if (conn->thread.joinable())
            conn->thread.join();
        ::close(conn->fd);
    }
}

} // namespace exion
