#include "exion/net/http_client.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace exion
{

namespace
{

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

const std::string *
HttpClientResponse::header(const std::string &lowercaseName) const
{
    for (const auto &[name, value] : headers)
        if (name == lowercaseName)
            return &value;
    return nullptr;
}

int
HttpClientResponse::retryAfterSeconds() const
{
    const std::string *value = header("retry-after");
    if (value == nullptr || value->empty())
        return -1;
    int seconds = 0;
    for (char c : *value) {
        if (c < '0' || c > '9')
            return -1;
        if (seconds > (INT_MAX - (c - '0')) / 10)
            return INT_MAX;
        seconds = seconds * 10 + (c - '0');
    }
    return seconds;
}

HttpConnection::~HttpConnection()
{
    close();
}

HttpConnection::HttpConnection(HttpConnection &&other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_))
{
    other.fd_ = -1;
}

HttpConnection &
HttpConnection::operator=(HttpConnection &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

void
HttpConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

HttpConnection
HttpConnection::connect(const std::string &host, u16 port,
                        double timeoutSeconds)
{
    HttpConnection conn;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return conn;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string ip = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return conn;
    }
    timeval tv{};
    tv.tv_sec = static_cast<long>(timeoutSeconds);
    tv.tv_usec = static_cast<long>(
        (timeoutSeconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return conn;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    conn.fd_ = fd;
    return conn;
}

bool
HttpConnection::sendAll(const std::string &bytes)
{
    u64 off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<u64>(n);
    }
    return true;
}

bool
HttpConnection::fill()
{
    char tmp[8192];
    while (true) {
        const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
        if (n > 0) {
            buf_.append(tmp, static_cast<u64>(n));
            return true;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EOF, timeout or error
    }
}

bool
HttpConnection::readLine(std::string &line)
{
    while (true) {
        const u64 nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line = buf_.substr(0, nl);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            buf_.erase(0, nl + 1);
            return true;
        }
        if (!fill())
            return false;
    }
}

bool
HttpConnection::readExact(u64 len, std::string &out)
{
    while (buf_.size() < len)
        if (!fill())
            return false;
    out.append(buf_, 0, len);
    buf_.erase(0, len);
    return true;
}

bool
HttpConnection::readHead(HttpClientResponse &response)
{
    response = HttpClientResponse{};
    std::string line;
    if (!readLine(line))
        return false;
    // Status line: HTTP/1.x SP code SP reason.
    if (line.size() < 12 || line.compare(0, 7, "HTTP/1.") != 0)
        return false;
    response.status = std::atoi(line.c_str() + 9);
    while (true) {
        if (!readLine(line))
            return false;
        if (line.empty())
            return true;
        const u64 colon = line.find(':');
        if (colon == std::string::npos)
            return false;
        std::string value = line.substr(colon + 1);
        u64 b = 0;
        while (b < value.size()
               && (value[b] == ' ' || value[b] == '\t'))
            ++b;
        response.headers.emplace_back(
            toLower(line.substr(0, colon)), value.substr(b));
    }
}

bool
HttpConnection::request(const std::string &method,
                        const std::string &target,
                        HttpClientResponse &response,
                        const std::string &body,
                        const std::string &contentType)
{
    if (fd_ < 0)
        return false;
    std::string req;
    req.reserve(256 + body.size());
    req += method;
    req += ' ';
    req += target;
    req += " HTTP/1.1\r\nHost: exion\r\n";
    if (!body.empty()) {
        req += "Content-Type: ";
        req += contentType;
        req += "\r\n";
    }
    req += "Content-Length: ";
    req += std::to_string(body.size());
    req += "\r\n\r\n";
    req += body;
    if (!sendAll(req) || !readHead(response)) {
        close();
        return false;
    }
    // Body: Content-Length framing or chunked (drained to the end).
    if (const std::string *te = response.header("transfer-encoding");
        te != nullptr && toLower(*te) == "chunked") {
        std::string data;
        while (readStreamData(data)) {
            response.body += data;
            data.clear();
        }
        return true;
    }
    u64 len = 0;
    if (const std::string *cl = response.header("content-length"))
        len = static_cast<u64>(std::strtoull(cl->c_str(), nullptr, 10));
    if (len > 0 && !readExact(len, response.body)) {
        close();
        return false;
    }
    return true;
}

bool
HttpConnection::startStream(const std::string &target,
                            HttpClientResponse &head)
{
    if (fd_ < 0)
        return false;
    std::string req = "GET " + target
        + " HTTP/1.1\r\nHost: exion\r\nAccept: text/event-stream"
          "\r\n\r\n";
    if (!sendAll(req) || !readHead(head)) {
        close();
        return false;
    }
    return true;
}

bool
HttpConnection::readStreamData(std::string &data)
{
    std::string line;
    if (!readLine(line))
        return false;
    const u64 len =
        static_cast<u64>(std::strtoull(line.c_str(), nullptr, 16));
    if (len == 0) {
        readLine(line); // trailing CRLF of the last-chunk
        return false;
    }
    if (!readExact(len, data))
        return false;
    return readLine(line); // CRLF after the chunk payload
}

HttpClientResponse
httpRequest(const std::string &host, u16 port,
            const std::string &method, const std::string &target,
            const std::string &body, double timeoutSeconds)
{
    HttpClientResponse response;
    HttpConnection conn =
        HttpConnection::connect(host, port, timeoutSeconds);
    if (!conn.connected())
        return response;
    if (!conn.request(method, target, response, body))
        response.status = 0;
    return response;
}

} // namespace exion
