/**
 * @file
 * Integer matrix with a symmetric per-tensor scale.
 *
 * Models the INT12 operand storage feeding the SDUE and EPRE: values
 * are stored as i32 (the hardware registers are narrower; quantize()
 * already clamped to the target width) together with the scale needed
 * to interpret accumulator outputs.
 *
 * Like Matrix, storage is either owned or borrowed: borrow() wraps a
 * caller-owned read-only integer image (e.g. a quantized-at-rest
 * tensor of an mmap'd WeightStore) without copying, and
 * borrowStrided() views a column slice of a wider image in place.
 * A sliced view keeps the whole tensor's QuantParams — slices are
 * windows onto one quantisation domain, never re-quantised.
 */

#ifndef EXION_TENSOR_QUANT_MATRIX_H_
#define EXION_TENSOR_QUANT_MATRIX_H_

#include <vector>

#include "exion/common/fixed_point.h"
#include "exion/common/logging.h"
#include "exion/common/types.h"
#include "exion/tensor/matrix.h"

namespace exion
{

/**
 * Row-major integer matrix with quantisation metadata.
 */
class QuantMatrix
{
  public:
    /** Empty matrix. */
    QuantMatrix() = default;

    /** rows x cols zero matrix with given params. */
    QuantMatrix(Index rows, Index cols, QuantParams params);

    /** Quantises a float matrix with a freshly chosen scale. */
    static QuantMatrix fromFloat(const Matrix &m, IntWidth width);

    /** Quantises a float matrix with fixed params. */
    static QuantMatrix fromFloat(const Matrix &m,
                                 const QuantParams &params);

    /**
     * Non-owning read-only view over caller-owned row-major integer
     * storage with the given params. data must stay valid (and
     * unchanged) for the view's lifetime.
     */
    static QuantMatrix borrow(const i32 *data, Index rows, Index cols,
                              QuantParams params);

    /**
     * Non-owning read-only view whose consecutive rows sit rowStride
     * elements apart (column slice of a wider row-major image). The
     * params must be the whole tensor's. @pre rowStride >= cols
     */
    static QuantMatrix borrowStrided(const i32 *data, Index rows,
                                     Index cols, Index rowStride,
                                     QuantParams params);

    /** True when this matrix is a non-owning view. */
    bool borrowed() const { return view_ != nullptr; }

    /** True when rows are adjacent in memory (stride == cols). */
    bool contiguous() const { return stride_ == cols_; }

    /** Elements between consecutive row starts. */
    Index rowStride() const { return stride_; }

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Total element count. */
    Index size() const { return rows_ * cols_; }

    /** Quantisation parameters. */
    const QuantParams &params() const { return params_; }

    /** Element access. @pre not borrowed */
    i32 &
    at(Index r, Index c)
    {
        EXION_ASSERT(r < rows_ && c < cols_, "quant index out of range");
        EXION_ASSERT(!borrowed(), "mutating a borrowed quant matrix");
        return data_[r * cols_ + c];
    }

    /** Element access (const). */
    i32
    at(Index r, Index c) const
    {
        EXION_ASSERT(r < rows_ && c < cols_, "quant index out of range");
        return cptr()[r * stride_ + c];
    }

    /** Unchecked access. */
    i32
    operator()(Index r, Index c) const
    {
        return cptr()[r * stride_ + c];
    }

    /** Unchecked access (mutable). @pre not borrowed */
    i32 &operator()(Index r, Index c) { return data_[r * cols_ + c]; }

    /** Pointer to row r's contiguous values. */
    const i32 *
    rowPtr(Index r) const
    {
        EXION_ASSERT(r < rows_, "quant row out of range");
        return cptr() + r * stride_;
    }

    /** Dequantises back to float. */
    Matrix toFloat() const;

    /** Real value represented by one integer step. */
    double scale() const { return params_.scale; }

  private:
    const i32 *cptr() const { return view_ ? view_ : data_.data(); }

    Index rows_ = 0;
    Index cols_ = 0;
    Index stride_ = 0; //!< elements between row starts (== cols_
                       //!< except for borrowStrided views)
    QuantParams params_;
    std::vector<i32> data_;
    const i32 *view_ = nullptr;
};

} // namespace exion

#endif // EXION_TENSOR_QUANT_MATRIX_H_
