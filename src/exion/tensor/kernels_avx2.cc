/**
 * @file
 * AVX2 kernel table (256-bit lanes).
 *
 * Exactness discipline: float kernels vectorize across independent
 * output elements with separate _mm256_mul_ps / _mm256_add_ps (never
 * FMA — the golden chains round twice per term), ragged tails fall
 * back to the scalar reference chains, compares are ordered-quiet
 * (_CMP_*_OQ) so NaN lanes never set mask bits, and the log-domain
 * kernels compute each lane's term through the same reconstruction
 * identity as the scalar table (integer, exact in any order).
 *
 * This TU alone is compiled with -mavx2 (plus -ffp-contract=off);
 * it must only be *called* after the runtime probe confirmed AVX2.
 */

#include "exion/tensor/simd_dispatch.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace exion
{
namespace simd
{

namespace
{

void
axpyF32Avx2(float *out, const float *x, float a, Index n)
{
    const __m256 va = _mm256_set1_ps(a);
    Index j = 0;
    for (; j + 8 <= n; j += 8) {
        __m256 o = _mm256_loadu_ps(out + j);
        o = _mm256_add_ps(
            o, _mm256_mul_ps(va, _mm256_loadu_ps(x + j)));
        _mm256_storeu_ps(out + j, o);
    }
    if (j < n)
        axpyF32Scalar(out + j, x + j, a, n - j);
}

void
axpy4F32Avx2(float *out, const float *x0, const float *x1,
             const float *x2, const float *x3, float a0, float a1,
             float a2, float a3, Index n)
{
    const __m256 va0 = _mm256_set1_ps(a0);
    const __m256 va1 = _mm256_set1_ps(a1);
    const __m256 va2 = _mm256_set1_ps(a2);
    const __m256 va3 = _mm256_set1_ps(a3);
    Index j = 0;
    for (; j + 8 <= n; j += 8) {
        __m256 o = _mm256_loadu_ps(out + j);
        o = _mm256_add_ps(
            o, _mm256_mul_ps(va0, _mm256_loadu_ps(x0 + j)));
        o = _mm256_add_ps(
            o, _mm256_mul_ps(va1, _mm256_loadu_ps(x1 + j)));
        o = _mm256_add_ps(
            o, _mm256_mul_ps(va2, _mm256_loadu_ps(x2 + j)));
        o = _mm256_add_ps(
            o, _mm256_mul_ps(va3, _mm256_loadu_ps(x3 + j)));
        _mm256_storeu_ps(out + j, o);
    }
    if (j < n)
        axpy4F32Scalar(out + j, x0 + j, x1 + j, x2 + j, x3 + j, a0,
                       a1, a2, a3, n - j);
}

float
dotF32Avx2(const float *a, const float *b, Index n)
{
    // Fast-tier kernel: two 8-lane accumulators, reassociated.
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    Index k = 0;
    for (; k + 16 <= n; k += 16) {
        acc0 = _mm256_add_ps(
            acc0, _mm256_mul_ps(_mm256_loadu_ps(a + k),
                                _mm256_loadu_ps(b + k)));
        acc1 = _mm256_add_ps(
            acc1, _mm256_mul_ps(_mm256_loadu_ps(a + k + 8),
                                _mm256_loadu_ps(b + k + 8)));
    }
    for (; k + 8 <= n; k += 8)
        acc0 = _mm256_add_ps(
            acc0, _mm256_mul_ps(_mm256_loadu_ps(a + k),
                                _mm256_loadu_ps(b + k)));
    const __m256 acc = _mm256_add_ps(acc0, acc1);
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, acc);
    float total = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for (; k < n; ++k)
        total += a[k] * b[k];
    return total;
}

/** Sum of the four i64 lanes. */
i64
hsum64(__m256i v)
{
    alignas(32) i64 lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

i64
dotI32Avx2(const i32 *a, const i32 *b, Index n)
{
    __m256i acc = _mm256_setzero_si256();
    Index k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + k));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + k));
        // Signed 32x32 -> 64 on even lanes; shift down for odd lanes.
        const __m256i even = _mm256_mul_epi32(va, vb);
        const __m256i odd = _mm256_mul_epi32(
            _mm256_srli_epi64(va, 32), _mm256_srli_epi64(vb, 32));
        acc = _mm256_add_epi64(acc, even);
        acc = _mm256_add_epi64(acc, odd);
    }
    i64 total = hsum64(acc);
    if (k < n)
        total += dotI32Scalar(a + k, b + k, n - k);
    return total;
}

/** Per lane: all bits at or below the leading one set. */
__m256i
spreadBelowLeadingOne(__m256i v)
{
    v = _mm256_or_si256(v, _mm256_srli_epi32(v, 1));
    v = _mm256_or_si256(v, _mm256_srli_epi32(v, 2));
    v = _mm256_or_si256(v, _mm256_srli_epi32(v, 4));
    v = _mm256_or_si256(v, _mm256_srli_epi32(v, 8));
    v = _mm256_or_si256(v, _mm256_srli_epi32(v, 16));
    return v;
}

/** Per lane: lodValue(v) — the isolated leading one (0 for 0). */
__m256i
lodValueLanes(__m256i v)
{
    const __m256i spread = spreadBelowLeadingOne(v);
    return _mm256_andnot_si256(_mm256_srli_epi32(spread, 1), spread);
}

/** Per lane: tsLodValue(v) — the two leading set bits. */
__m256i
tsLodValueLanes(__m256i v)
{
    const __m256i top = lodValueLanes(v);
    const __m256i rest = _mm256_andnot_si256(top, v);
    return _mm256_or_si256(top, lodValueLanes(rest));
}

/**
 * Shared LD dot body: reconstruct per-lane magnitudes with the given
 * per-lane LOD value function, multiply (products bound by the INT12
 * operand range, far inside 32 bits), apply the product sign, widen
 * to i64 and accumulate.
 */
template <__m256i (*LodLanes)(__m256i)>
i64
ldDotAvx2(const i32 *a, const i32 *b, Index n, i64 (*tail)(const i32 *,
                                                           const i32 *,
                                                           Index))
{
    __m256i acc = _mm256_setzero_si256();
    Index k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + k));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + k));
        const __m256i la = LodLanes(_mm256_abs_epi32(va));
        const __m256i lb = LodLanes(_mm256_abs_epi32(vb));
        __m256i prod = _mm256_mullo_epi32(la, lb);
        // sign(a*b): arithmetic-shift the XOR'd signs into a lane
        // mask, then two's-complement negate the flagged lanes.
        const __m256i sign =
            _mm256_srai_epi32(_mm256_xor_si256(va, vb), 31);
        prod = _mm256_sub_epi32(_mm256_xor_si256(prod, sign), sign);
        acc = _mm256_add_epi64(
            acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod)));
        acc = _mm256_add_epi64(
            acc,
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1)));
    }
    i64 total = hsum64(acc);
    if (k < n)
        total += tail(a + k, b + k, n - k);
    return total;
}

i64
ldDotSingleAvx2(const i32 *a, const i32 *b, Index n)
{
    return ldDotAvx2<lodValueLanes>(a, b, n, ldDotSingleScalar);
}

i64
ldDotTwoStepAvx2(const i32 *a, const i32 *b, Index n)
{
    return ldDotAvx2<tsLodValueLanes>(a, b, n, ldDotTwoStepScalar);
}

u64
absGreaterMask64Avx2(const float *x, float theta, Index n)
{
    const __m256 vt = _mm256_set1_ps(theta);
    const __m256 sign = _mm256_set1_ps(-0.0f);
    u64 bits = 0;
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 mag =
            _mm256_andnot_ps(sign, _mm256_loadu_ps(x + i));
        const int lane_bits = _mm256_movemask_ps(
            _mm256_cmp_ps(mag, vt, _CMP_GT_OQ));
        bits |= static_cast<u64>(static_cast<unsigned>(lane_bits))
            << i;
    }
    if (i < n)
        bits |= absGreaterMask64Scalar(x + i, theta, n - i) << i;
    return bits;
}

u64
cmpGeMask64Avx2(const float *x, float threshold, Index n)
{
    const __m256 vt = _mm256_set1_ps(threshold);
    u64 bits = 0;
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        const int lane_bits = _mm256_movemask_ps(
            _mm256_cmp_ps(_mm256_loadu_ps(x + i), vt, _CMP_GE_OQ));
        bits |= static_cast<u64>(static_cast<unsigned>(lane_bits))
            << i;
    }
    if (i < n)
        bits |= cmpGeMask64Scalar(x + i, threshold, n - i) << i;
    return bits;
}

/*
 * The word kernels reuse the scalar bodies: compiled in this TU with
 * -mavx2 (which implies POPCNT), std::popcount lowers to the
 * hardware instruction the baseline-ISA scalar TU cannot emit.
 */

u64
popcountWordsAvx2(const u64 *w, Index n)
{
    u64 total = 0;
    for (Index i = 0; i < n; ++i)
        total += static_cast<u64>(__builtin_popcountll(w[i]));
    return total;
}

u64
andPopcountWordsAvx2(const u64 *a, const u64 *b, Index n)
{
    u64 total = 0;
    for (Index i = 0; i < n; ++i)
        total += static_cast<u64>(__builtin_popcountll(a[i] & b[i]));
    return total;
}

} // namespace

const SimdKernels *
avx2Table()
{
    static const SimdKernels table = {
        "avx2",
        axpyF32Avx2,
        axpy4F32Avx2,
        dotF32Avx2,
        dotI32Avx2,
        ldDotSingleAvx2,
        ldDotTwoStepAvx2,
        absGreaterMask64Avx2,
        cmpGeMask64Avx2,
        popcountWordsAvx2,
        andPopcountWordsAvx2,
        orWordsScalar,
    };
    return &table;
}

} // namespace simd
} // namespace exion

#else // !defined(__AVX2__)

namespace exion
{
namespace simd
{

const SimdKernels *
avx2Table()
{
    return nullptr;
}

} // namespace simd
} // namespace exion

#endif
