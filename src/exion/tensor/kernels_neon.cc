/**
 * @file
 * ARM NEON kernel table (128-bit lanes).
 *
 * Exactness discipline matches the x86 tables: float kernels combine
 * separate vmulq_f32 / vaddq_f32 — never vmlaq/vfmaq, which lower to
 * fused FMLA on AArch64 and would round once where the golden chain
 * rounds twice — ragged tails fall back to the scalar reference, and
 * compares go through the scalar kernels (NEON has no move-mask; at
 * the 64-bit-word granularity the mask kernels run at, the scalar
 * chains are already cheap next to lane extraction).
 *
 * Compiled with -ffp-contract=off like every kernel TU.
 */

#include "exion/tensor/simd_dispatch.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

namespace exion
{
namespace simd
{

namespace
{

void
axpyF32Neon(float *out, const float *x, float a, Index n)
{
    const float32x4_t va = vdupq_n_f32(a);
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
        float32x4_t o = vld1q_f32(out + j);
        o = vaddq_f32(o, vmulq_f32(va, vld1q_f32(x + j)));
        vst1q_f32(out + j, o);
    }
    if (j < n)
        axpyF32Scalar(out + j, x + j, a, n - j);
}

void
axpy4F32Neon(float *out, const float *x0, const float *x1,
             const float *x2, const float *x3, float a0, float a1,
             float a2, float a3, Index n)
{
    const float32x4_t va0 = vdupq_n_f32(a0);
    const float32x4_t va1 = vdupq_n_f32(a1);
    const float32x4_t va2 = vdupq_n_f32(a2);
    const float32x4_t va3 = vdupq_n_f32(a3);
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
        float32x4_t o = vld1q_f32(out + j);
        o = vaddq_f32(o, vmulq_f32(va0, vld1q_f32(x0 + j)));
        o = vaddq_f32(o, vmulq_f32(va1, vld1q_f32(x1 + j)));
        o = vaddq_f32(o, vmulq_f32(va2, vld1q_f32(x2 + j)));
        o = vaddq_f32(o, vmulq_f32(va3, vld1q_f32(x3 + j)));
        vst1q_f32(out + j, o);
    }
    if (j < n)
        axpy4F32Scalar(out + j, x0 + j, x1 + j, x2 + j, x3 + j, a0,
                       a1, a2, a3, n - j);
}

float
dotF32Neon(const float *a, const float *b, Index n)
{
    // Fast-tier kernel: two 4-lane accumulators, reassociated.
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    Index k = 0;
    for (; k + 8 <= n; k += 8) {
        acc0 = vaddq_f32(
            acc0, vmulq_f32(vld1q_f32(a + k), vld1q_f32(b + k)));
        acc1 = vaddq_f32(
            acc1,
            vmulq_f32(vld1q_f32(a + k + 4), vld1q_f32(b + k + 4)));
    }
    for (; k + 4 <= n; k += 4)
        acc0 = vaddq_f32(
            acc0, vmulq_f32(vld1q_f32(a + k), vld1q_f32(b + k)));
    const float32x4_t acc = vaddq_f32(acc0, acc1);
    float total = (vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 2))
        + (vgetq_lane_f32(acc, 1) + vgetq_lane_f32(acc, 3));
    for (; k < n; ++k)
        total += a[k] * b[k];
    return total;
}

i64
dotI32Neon(const i32 *a, const i32 *b, Index n)
{
    int64x2_t acc = vdupq_n_s64(0);
    Index k = 0;
    for (; k + 4 <= n; k += 4) {
        const int32x4_t va = vld1q_s32(a + k);
        const int32x4_t vb = vld1q_s32(b + k);
        acc = vaddq_s64(
            acc, vmull_s32(vget_low_s32(va), vget_low_s32(vb)));
        acc = vaddq_s64(
            acc, vmull_s32(vget_high_s32(va), vget_high_s32(vb)));
    }
    i64 total = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
    if (k < n)
        total += dotI32Scalar(a + k, b + k, n - k);
    return total;
}

/** Per lane: all bits at or below the leading one set. */
int32x4_t
spreadBelowLeadingOne(int32x4_t v)
{
    uint32x4_t u = vreinterpretq_u32_s32(v);
    u = vorrq_u32(u, vshrq_n_u32(u, 1));
    u = vorrq_u32(u, vshrq_n_u32(u, 2));
    u = vorrq_u32(u, vshrq_n_u32(u, 4));
    u = vorrq_u32(u, vshrq_n_u32(u, 8));
    u = vorrq_u32(u, vshrq_n_u32(u, 16));
    return vreinterpretq_s32_u32(u);
}

/** Per lane: lodValue(v) — the isolated leading one (0 for 0). */
int32x4_t
lodValueLanes(int32x4_t v)
{
    const uint32x4_t spread =
        vreinterpretq_u32_s32(spreadBelowLeadingOne(v));
    return vreinterpretq_s32_u32(
        vbicq_u32(spread, vshrq_n_u32(spread, 1)));
}

/** Per lane: tsLodValue(v) — the two leading set bits. */
int32x4_t
tsLodValueLanes(int32x4_t v)
{
    const int32x4_t top = lodValueLanes(v);
    const int32x4_t rest = vbicq_s32(v, top);
    return vorrq_s32(top, lodValueLanes(rest));
}

template <int32x4_t (*LodLanes)(int32x4_t)>
i64
ldDotNeon(const i32 *a, const i32 *b, Index n,
          i64 (*tail)(const i32 *, const i32 *, Index))
{
    int64x2_t acc = vdupq_n_s64(0);
    Index k = 0;
    for (; k + 4 <= n; k += 4) {
        const int32x4_t va = vld1q_s32(a + k);
        const int32x4_t vb = vld1q_s32(b + k);
        const int32x4_t la = LodLanes(vabsq_s32(va));
        const int32x4_t lb = LodLanes(vabsq_s32(vb));
        int32x4_t prod = vmulq_s32(la, lb);
        const int32x4_t sign = vshrq_n_s32(veorq_s32(va, vb), 31);
        prod = vsubq_s32(veorq_s32(prod, sign), sign);
        acc = vaddq_s64(acc, vmovl_s32(vget_low_s32(prod)));
        acc = vaddq_s64(acc, vmovl_s32(vget_high_s32(prod)));
    }
    i64 total = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
    if (k < n)
        total += tail(a + k, b + k, n - k);
    return total;
}

i64
ldDotSingleNeon(const i32 *a, const i32 *b, Index n)
{
    return ldDotNeon<lodValueLanes>(a, b, n, ldDotSingleScalar);
}

i64
ldDotTwoStepNeon(const i32 *a, const i32 *b, Index n)
{
    return ldDotNeon<tsLodValueLanes>(a, b, n, ldDotTwoStepScalar);
}

} // namespace

const SimdKernels *
neonTable()
{
    static const SimdKernels table = {
        "neon",
        axpyF32Neon,
        axpy4F32Neon,
        dotF32Neon,
        dotI32Neon,
        ldDotSingleNeon,
        ldDotTwoStepNeon,
        absGreaterMask64Scalar,
        cmpGeMask64Scalar,
        popcountWordsScalar,
        andPopcountWordsScalar,
        orWordsScalar,
    };
    return &table;
}

} // namespace simd
} // namespace exion

#else // !__ARM_NEON

namespace exion
{
namespace simd
{

const SimdKernels *
neonTable()
{
    return nullptr;
}

} // namespace simd
} // namespace exion

#endif
