#include "exion/tensor/gemm.h"

#include <atomic>
#include <vector>

namespace exion
{

namespace
{

std::atomic<GemmBackend> g_default{GemmBackend::Reference};

/**
 * Blocking parameters, sized for the paper-scale workloads: a cohort
 * stack of N members x 8 tokens against 256x256 .. 1024x256 weight
 * panels. A packed j-panel of a K x N weight matrix occupies
 * K * kPanelCols floats (128 KiB at K = 256), which stays resident in
 * L2 while every stacked activation row sweeps it; the reference loop
 * instead drags the whole K x N matrix through the cache once per
 * activation row. The i-blocking bounds how much of C is live between
 * panel switches.
 */
constexpr Index kPanelCols = 128;
constexpr Index kBlockRows = 64;

/*
 * Both kernels of each pair below spell the per-element accumulation
 * with the same expression shape in the same translation unit
 * (c += a * b with k ascending from a +0.0f start), so whatever the
 * compiler does to one — vectorise across independent output elements,
 * contract multiply-add into FMA — it does to both and the per-element
 * rounding sequence stays identical. Reassociating or splitting the
 * k reduction itself is not legal without -ffast-math, which this
 * project never enables.
 */

Matrix
referenceMatmul(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    const Index k_dim = a.cols();
    for (Index i = 0; i < a.rows(); ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = c.rowPtr(i);
        for (Index k = 0; k < k_dim; ++k) {
            const float av = arow[k];
            const float *brow = b.rowPtr(k);
            for (Index j = 0; j < b.cols(); ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Matrix
blockedMatmul(const Matrix &a, const Matrix &b, SimdTier simd)
{
    const SimdKernels &kr = simdKernels(simd);
    Matrix c(a.rows(), b.cols());
    const Index m = a.rows();
    const Index k_dim = a.cols();
    const Index n = b.cols();
    // One reusable panel buffer: B[:, j0:j0+nb] packed row-major as
    // packed[k * nb + jj], so the inner j-sweep reads contiguously.
    std::vector<float> packed(k_dim * std::min(kPanelCols, n));
    for (Index j0 = 0; j0 < n; j0 += kPanelCols) {
        const Index nb = std::min(kPanelCols, n - j0);
        for (Index k = 0; k < k_dim; ++k) {
            const float *brow = b.rowPtr(k) + j0;
            float *dst = packed.data() + k * nb;
            for (Index jj = 0; jj < nb; ++jj)
                dst[jj] = brow[jj];
        }
        for (Index i0 = 0; i0 < m; i0 += kBlockRows) {
            const Index i_end = std::min(i0 + kBlockRows, m);
            for (Index i = i0; i < i_end; ++i) {
                const float *arow = a.rowPtr(i);
                float *crow = c.rowPtr(i) + j0;
                // Jam four k steps per C sweep: each element's
                // accumulator still adds its k terms one at a time in
                // ascending order (four separate rounded additions,
                // exactly the reference chain — the axpy4F32 kernel
                // contract), but C is loaded and stored once per four
                // FMAs instead of every FMA.
                Index k = 0;
                for (; k + 4 <= k_dim; k += 4) {
                    const float *bp0 = packed.data() + k * nb;
                    kr.axpy4F32(crow, bp0, bp0 + nb, bp0 + 2 * nb,
                                bp0 + 3 * nb, arow[k], arow[k + 1],
                                arow[k + 2], arow[k + 3], nb);
                }
                for (; k < k_dim; ++k)
                    kr.axpyF32(crow, packed.data() + k * nb, arow[k],
                               nb);
            }
        }
    }
    return c;
}

Matrix
referenceMatmulTransposed(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.rows());
    const Index k_dim = a.cols();
    for (Index i = 0; i < a.rows(); ++i) {
        const float *arow = a.rowPtr(i);
        for (Index j = 0; j < b.rows(); ++j) {
            const float *brow = b.rowPtr(j);
            float acc = 0.0f;
            for (Index k = 0; k < k_dim; ++k)
                acc += arow[k] * brow[k];
            c(i, j) = acc;
        }
    }
    return c;
}

Matrix
blockedMatmulTransposed(const Matrix &a, const Matrix &b, SimdTier simd)
{
    Matrix c(a.rows(), b.rows());
    const Index m = a.rows();
    const Index n = b.rows();
    const Index k_dim = a.cols();
    // Fast tier: each output is a pure k reduction over two
    // contiguous rows — the reassociated dotF32 kernel's exact shape.
    // Exact cannot vectorise this form (the k chain is the output),
    // so it keeps the jammed scalar tiling below.
    if (simd == SimdTier::Fast) {
        const SimdKernels &kr = simdKernels(simd);
        for (Index i = 0; i < m; ++i) {
            const float *arow = a.rowPtr(i);
            float *crow = c.rowPtr(i);
            for (Index j = 0; j < n; ++j)
                crow[j] = kr.dotF32(arow, b.rowPtr(j), k_dim);
        }
        return c;
    }
    // B's rows are already contiguous; tiling i x j keeps a block of
    // kBlockRows B rows hot while kBlockRows A rows sweep it, instead
    // of streaming all of B once per A row. Inside a tile, four B
    // rows share one pass over the A row: four independent
    // accumulators, each still summing its own k terms in ascending
    // order — the reference chain per element, a quarter of the A
    // loads.
    for (Index i0 = 0; i0 < m; i0 += kBlockRows) {
        const Index i_end = std::min(i0 + kBlockRows, m);
        for (Index j0 = 0; j0 < n; j0 += kBlockRows) {
            const Index j_end = std::min(j0 + kBlockRows, n);
            for (Index i = i0; i < i_end; ++i) {
                const float *arow = a.rowPtr(i);
                float *crow = c.rowPtr(i);
                Index j = j0;
                for (; j + 4 <= j_end; j += 4) {
                    const float *br0 = b.rowPtr(j);
                    const float *br1 = b.rowPtr(j + 1);
                    const float *br2 = b.rowPtr(j + 2);
                    const float *br3 = b.rowPtr(j + 3);
                    float acc0 = 0.0f;
                    float acc1 = 0.0f;
                    float acc2 = 0.0f;
                    float acc3 = 0.0f;
                    for (Index k = 0; k < k_dim; ++k) {
                        const float av = arow[k];
                        acc0 += av * br0[k];
                        acc1 += av * br1[k];
                        acc2 += av * br2[k];
                        acc3 += av * br3[k];
                    }
                    crow[j] = acc0;
                    crow[j + 1] = acc1;
                    crow[j + 2] = acc2;
                    crow[j + 3] = acc3;
                }
                for (; j < j_end; ++j) {
                    const float *brow = b.rowPtr(j);
                    float acc = 0.0f;
                    for (Index k = 0; k < k_dim; ++k)
                        acc += arow[k] * brow[k];
                    crow[j] = acc;
                }
            }
        }
    }
    return c;
}

Matrix
referenceMatmulQuant(const QuantMatrix &a, const QuantMatrix &b)
{
    Matrix c(a.rows(), b.cols());
    const double out_scale = a.scale() * b.scale();
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index j = 0; j < b.cols(); ++j) {
            i64 acc = 0;
            for (Index k = 0; k < a.cols(); ++k)
                acc += static_cast<i64>(a(i, k)) * b(k, j);
            c(i, j) = static_cast<float>(acc * out_scale);
        }
    }
    return c;
}

Matrix
blockedMatmulQuant(const QuantMatrix &a, const QuantMatrix &b,
                   SimdTier simd)
{
    const SimdKernels &kr = simdKernels(simd);
    Matrix c(a.rows(), b.cols());
    const double out_scale = a.scale() * b.scale();
    const Index m = a.rows();
    const Index k_dim = a.cols();
    const Index n = b.cols();
    // The reference walks B column-wise (stride n) in its inner loop.
    // Pack each j-panel of B transposed — packed[jj * k_dim + k] —
    // so both operands stream contiguously. Integer accumulation is
    // exact in any order; we keep k ascending anyway to match the
    // reference operation-for-operation.
    std::vector<i32> packed(std::min(kPanelCols, n) * k_dim);
    for (Index j0 = 0; j0 < n; j0 += kPanelCols) {
        const Index nb = std::min(kPanelCols, n - j0);
        for (Index k = 0; k < k_dim; ++k)
            for (Index jj = 0; jj < nb; ++jj)
                packed[jj * k_dim + k] = b(k, j0 + jj);
        for (Index i0 = 0; i0 < m; i0 += kBlockRows) {
            const Index i_end = std::min(i0 + kBlockRows, m);
            for (Index i = i0; i < i_end; ++i) {
                const i32 *arow = a.rowPtr(i);
                float *crow = c.rowPtr(i) + j0;
                // One widening dot kernel per packed column (integer
                // sums are exact in any grouping, so this is legal in
                // every tier).
                for (Index jj = 0; jj < nb; ++jj)
                    crow[jj] = static_cast<float>(
                        kr.dotI32(arow, packed.data() + jj * k_dim,
                                  k_dim)
                        * out_scale);
            }
        }
    }
    return c;
}

} // namespace

GemmBackend
defaultGemmBackend()
{
    return g_default.load(std::memory_order_relaxed);
}

void
setDefaultGemmBackend(GemmBackend backend)
{
    g_default.store(backend, std::memory_order_relaxed);
}

const char *
gemmBackendName(GemmBackend backend)
{
    switch (backend) {
    case GemmBackend::Reference:
        return "reference";
    case GemmBackend::Blocked:
        return "blocked";
    }
    return "unknown";
}

std::optional<GemmBackend>
parseGemmBackend(const std::string &name)
{
    if (name == "reference")
        return GemmBackend::Reference;
    if (name == "blocked")
        return GemmBackend::Blocked;
    return std::nullopt;
}

Matrix
matmulWith(const Matrix &a, const Matrix &b, GemmBackend backend,
           SimdTier simd)
{
    EXION_ASSERT(a.cols() == b.rows(), "matmul shape (", a.rows(), "x",
                 a.cols(), ") * (", b.rows(), "x", b.cols(), ")");
    return backend == GemmBackend::Blocked ? blockedMatmul(a, b, simd)
                                           : referenceMatmul(a, b);
}

Matrix
matmulTransposedWith(const Matrix &a, const Matrix &b,
                     GemmBackend backend, SimdTier simd)
{
    EXION_ASSERT(a.cols() == b.cols(), "matmulT shape (", a.rows(), "x",
                 a.cols(), ") * (", b.rows(), "x", b.cols(), ")^T");
    return backend == GemmBackend::Blocked
        ? blockedMatmulTransposed(a, b, simd)
        : referenceMatmulTransposed(a, b);
}

Matrix
matmulQuantWith(const QuantMatrix &a, const QuantMatrix &b,
                GemmBackend backend, SimdTier simd)
{
    EXION_ASSERT(a.cols() == b.rows(), "quant matmul shape mismatch");
    return backend == GemmBackend::Blocked
        ? blockedMatmulQuant(a, b, simd)
        : referenceMatmulQuant(a, b);
}

} // namespace exion
