/**
 * @file
 * Shared command-line parsing for the kernel-selection flags.
 *
 * Every binary that exposes --gemm / --simd used to hand-roll the
 * same parse-validate-report sequence; this helper owns it once.
 * Callers keep their own argv loop and offer each position to
 * tryConsumeKernelFlag(), which consumes the flag (and its value)
 * when it is one of ours and reports malformed values with the full
 * list of accepted spellings.
 */

#ifndef EXION_TENSOR_KERNEL_FLAGS_H_
#define EXION_TENSOR_KERNEL_FLAGS_H_

#include <string>

#include "exion/tensor/gemm.h"
#include "exion/tensor/simd_dispatch.h"

namespace exion
{

/** Kernel selection shared by every CLI: GEMM backend + SIMD tier +
    tensor-parallel slice count. */
struct KernelFlags
{
    /** --gemm value (backends are bit-identical). */
    GemmBackend gemm = GemmBackend::Blocked;
    /** --simd value (Scalar/Exact bit-identical; Fast reassociates). */
    SimdTier simd = SimdTier::Exact;
    /** --tp value: column slices per tall projection GEMM (>= 1;
        1 = off). Bit-identical at every setting. */
    int tp = 1;
};

/** Outcome of offering one argv position to the kernel-flag parser. */
enum class KernelFlagStatus
{
    NotMine,  //!< argv[i] is not a kernel flag; caller handles it
    Consumed, //!< flag and value consumed; i advanced past the value
    Error     //!< kernel flag with a missing/unknown value; see error
};

/**
 * Attempts to consume the kernel flag at argv[i].
 *
 * On Consumed, i is advanced to the flag's value (so the caller's
 * ++i moves past the pair) and the parsed value is stored in flags.
 * On Error, error holds a complete message listing the accepted
 * values. On NotMine, nothing changes.
 */
KernelFlagStatus tryConsumeKernelFlag(int argc, const char *const *argv,
                                      int &i, KernelFlags &flags,
                                      std::string &error);

/** Usage fragment advertising the kernel flags. */
const char *kernelFlagsUsage();

} // namespace exion

#endif // EXION_TENSOR_KERNEL_FLAGS_H_
