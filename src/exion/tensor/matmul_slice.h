/**
 * @file
 * Column-sliced tensor-parallel GEMMs with a deterministic merge.
 *
 * Splits the *output* (column) dimension of a projection across a
 * SlicePlan and runs each slice's partial GEMM independently — on the
 * caller's thread, or fork-joined across a ThreadPool via a
 * SliceRunner. Because every output element's k-accumulation chain
 * lives entirely inside one slice (slicing B's columns never touches
 * the reduction), each partial equals the corresponding columns of
 * the solo result bit-for-bit under every GemmBackend x SimdTier, and
 * the merge is a disjoint column paste performed in ascending
 * slice-index order — ordered partial buffers, never reassociated
 * accumulation. TP-vs-solo bit identity therefore holds by
 * construction, exactly like Blocked-vs-Reference.
 *
 * Slice boundaries align to the 64-byte EXWS section granularity
 * (16 float/i32 elements), so a slice view of an mmap'd at-rest
 * weight starts on the same cache-line boundaries the store laid
 * down. Slices are zero-copy strided views (Matrix::borrowStrided /
 * QuantMatrix::borrowStrided) into the parent tensor; a quantized
 * slice keeps the whole tensor's QuantParams — slices are windows
 * onto one quantisation domain, never re-quantised.
 */

#ifndef EXION_TENSOR_MATMUL_SLICE_H_
#define EXION_TENSOR_MATMUL_SLICE_H_

#include <atomic>
#include <functional>
#include <vector>

#include "exion/tensor/gemm.h"
#include "exion/tensor/matrix.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{

class ThreadPool;

/** One slice's half-open column range [c0, c0 + n). */
struct SliceRange
{
    Index c0 = 0;
    Index n = 0;

    bool empty() const { return n == 0; }
};

/**
 * Partition of a column dimension into at most nSlices contiguous,
 * ascending, disjoint ranges that exactly cover [0, cols).
 */
class SlicePlan
{
  public:
    /** 64-byte EXWS section alignment in 4-byte elements. */
    static constexpr Index kAlignElems = 16;

    /**
     * Builds a balanced plan: cols is carved into alignElems-sized
     * chunks (the last chunk ragged) distributed as evenly as
     * possible. Slices may be empty when nSlices exceeds the chunk
     * count (e.g. nSlices > cols); a 0-column plan has only empty
     * slices. @pre nSlices >= 1
     */
    static SlicePlan make(Index cols, int nSlices,
                          Index alignElems = kAlignElems);

    /** Number of slices (== the nSlices the plan was built for). */
    int slices() const { return static_cast<int>(ranges_.size()); }

    /** Column range of slice s. */
    const SliceRange &range(int s) const { return ranges_[s]; }

    /** Total columns covered. */
    Index cols() const { return cols_; }

    /** True when more than one slice has columns to compute. */
    bool parallel() const { return nonEmpty_ > 1; }

  private:
    std::vector<SliceRange> ranges_;
    Index cols_ = 0;
    int nonEmpty_ = 0;
};

/**
 * Executes the nTasks slice bodies of one fork-join region. run()
 * returns only after every body has completed; bodies may execute on
 * any thread in any order (results are written to disjoint partial
 * buffers and merged by the caller afterwards, so execution order
 * never reaches the numerics).
 */
class SliceRunner
{
  public:
    virtual ~SliceRunner() = default;

    /** Runs fn(0) .. fn(nTasks-1) to completion. */
    virtual void run(int nTasks, const std::function<void(int)> &fn) = 0;
};

/** Runs every slice on the calling thread, in index order. */
class SerialSliceRunner : public SliceRunner
{
  public:
    void run(int nTasks, const std::function<void(int)> &fn) override;
};

/**
 * Fork-join over a ThreadPool, deadlock-free by caller participation:
 * run() posts up to nTasks-1 helper tasks at the highest priority and
 * then claims slices itself from a shared atomic counter, so a
 * saturated (or already stopping) pool degrades to the caller
 * computing every slice instead of blocking on helpers that can never
 * be scheduled. Helpers that lose every claim exit without work. The
 * first slice exception is rethrown on the caller after the join.
 *
 * Optional slice->CPU affinity (setSliceCpus): a helper pins itself
 * best-effort to slice s's CPU set before computing it, so --numa
 * deployments keep a slice's memory traffic on one node. Caller-run
 * slices keep the caller's affinity (the engine worker is typically
 * already pinned). Degrades with a single warning when the platform
 * refuses.
 */
class PoolSliceRunner : public SliceRunner
{
  public:
    /** The pool must outlive the runner. */
    explicit PoolSliceRunner(ThreadPool &pool);

    /**
     * Installs the slice->CPU map: slice s pins to
     * cpuSets[s % cpuSets.size()]. Empty disables pinning. Not
     * thread-safe against concurrent run() — install at setup time.
     */
    void setSliceCpus(std::vector<std::vector<int>> cpuSets);

    void run(int nTasks, const std::function<void(int)> &fn) override;

  private:
    ThreadPool *pool_;
    std::vector<std::vector<int>> sliceCpus_;
    std::atomic<bool> warnedAffinity_{false};
};

/**
 * How a call site runs its tensor-parallel GEMMs. Copyable value:
 * nSlices == 1 (or a null runner is fine — slices then run serially
 * on the caller) disables slicing and every sliced entry point
 * degenerates to its solo equivalent.
 */
struct TpContext
{
    int nSlices = 1;
    SliceRunner *runner = nullptr; //!< null: slices run on the caller

    bool active() const { return nSlices > 1; }
};

/** Zero-copy view of b's columns [r.c0, r.c0 + r.n). */
Matrix sliceCols(const Matrix &b, const SliceRange &r);

/** Zero-copy view of q's columns, keeping the whole-tensor params. */
QuantMatrix sliceCols(const QuantMatrix &q, const SliceRange &r);

/**
 * Dispatches the n slice bodies through tp.runner (serially on the
 * caller when the runner is null). The building block the sliced
 * entry points below — and the sparsity layer's sliced masked
 * products — share.
 */
void runSliced(const TpContext &tp, int n,
               const std::function<void(int)> &fn);

/*
 * Sliced GEMM entry points. Each is bit-identical to its solo
 * matmul*With counterpart for every backend/tier; with an inactive
 * TpContext they *are* the solo call.
 */

/** C = A * B, B's columns sliced across tp. */
Matrix matmulSliced(const Matrix &a, const Matrix &b, const TpContext &tp,
                    GemmBackend backend,
                    SimdTier simd = defaultSimdTier());

/**
 * C = A * B^T, B's *rows* (the output columns) sliced across tp —
 * a slice of a pre-transposed at-rest weight is a contiguous row
 * range, no stride needed.
 */
Matrix matmulTransposedSliced(const Matrix &a, const Matrix &b,
                              const TpContext &tp, GemmBackend backend,
                              SimdTier simd = defaultSimdTier());

/** Integer matmul, B's columns sliced across tp. */
Matrix matmulQuantSliced(const QuantMatrix &a, const QuantMatrix &b,
                         const TpContext &tp, GemmBackend backend,
                         SimdTier simd = defaultSimdTier());

} // namespace exion

#endif // EXION_TENSOR_MATMUL_SLICE_H_
