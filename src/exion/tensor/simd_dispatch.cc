#include "exion/tensor/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

namespace exion
{

namespace
{

std::atomic<SimdTier> g_default_tier{SimdTier::Exact};

/** Probe order is widest-first within the build's architecture. */
SimdLevel
probeCpuLevel()
{
#if defined(__x86_64__) || defined(__i386__)
    if (simd::avx512Table() != nullptr
        && __builtin_cpu_supports("avx512f"))
        return SimdLevel::Avx512;
    if (simd::avx2Table() != nullptr && __builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
#else
    if (simd::neonTable() != nullptr)
        return SimdLevel::Neon;
#endif
    return SimdLevel::Scalar;
}

/** Widths order the EXION_SIMD cap clamps against. */
int
levelRank(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return 0;
    case SimdLevel::Neon:
        return 1;
    case SimdLevel::Avx2:
        return 2;
    case SimdLevel::Avx512:
        return 3;
    }
    return 0;
}

SimdLevel
computeActiveLevel()
{
    SimdLevel level = probeCpuLevel();
    if (const char *env = std::getenv("EXION_SIMD")) {
        const std::optional<SimdLevel> cap = parseSimdLevel(env);
        if (cap && levelRank(*cap) < levelRank(level))
            level = *cap;
    }
    return level;
}

const SimdKernels &
tableForLevel(SimdLevel level)
{
    const SimdKernels *table = nullptr;
    switch (level) {
    case SimdLevel::Scalar:
        return simd::scalarTable();
    case SimdLevel::Neon:
        table = simd::neonTable();
        break;
    case SimdLevel::Avx2:
        table = simd::avx2Table();
        break;
    case SimdLevel::Avx512:
        table = simd::avx512Table();
        break;
    }
    return table != nullptr ? *table : simd::scalarTable();
}

} // namespace

SimdLevel
activeSimdLevel()
{
    static const SimdLevel level = computeActiveLevel();
    return level;
}

const SimdKernels &
activeKernels()
{
    static const SimdKernels &table = tableForLevel(activeSimdLevel());
    return table;
}

const SimdKernels &
simdKernels(SimdTier tier)
{
    return tier == SimdTier::Scalar ? simd::scalarTable()
                                    : activeKernels();
}

SimdTier
defaultSimdTier()
{
    return g_default_tier.load(std::memory_order_relaxed);
}

void
setDefaultSimdTier(SimdTier tier)
{
    g_default_tier.store(tier, std::memory_order_relaxed);
}

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return "scalar";
    case SimdTier::Exact:
        return "exact";
    case SimdTier::Fast:
        return "fast";
    }
    return "unknown";
}

std::optional<SimdTier>
parseSimdTier(const std::string &name)
{
    if (name == "scalar")
        return SimdTier::Scalar;
    if (name == "exact")
        return SimdTier::Exact;
    if (name == "fast")
        return SimdTier::Fast;
    return std::nullopt;
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Neon:
        return "neon";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::optional<SimdLevel>
parseSimdLevel(const std::string &name)
{
    if (name == "scalar")
        return SimdLevel::Scalar;
    if (name == "neon")
        return SimdLevel::Neon;
    if (name == "avx2")
        return SimdLevel::Avx2;
    if (name == "avx512")
        return SimdLevel::Avx512;
    return std::nullopt;
}

} // namespace exion
