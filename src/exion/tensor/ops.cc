#include "exion/tensor/ops.h"

#include <cmath>

#include "exion/tensor/gemm.h"

namespace exion
{

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    return matmulWith(a, b, defaultGemmBackend());
}

Matrix
matmulTransposed(const Matrix &a, const Matrix &b)
{
    return matmulTransposedWith(a, b, defaultGemmBackend());
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "add shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] + b.data()[i];
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "sub shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] - b.data()[i];
    return c;
}

Matrix
scale(const Matrix &a, float s)
{
    Matrix c(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * s;
    return c;
}

void
addRowVector(Matrix &a, const Matrix &row)
{
    EXION_ASSERT(row.rows() == 1 && row.cols() == a.cols(),
                 "row vector shape mismatch");
    for (Index i = 0; i < a.rows(); ++i) {
        float *arow = a.rowPtr(i);
        const float *r = row.rowPtr(0);
        for (Index j = 0; j < a.cols(); ++j)
            arow[j] += r[j];
    }
}

void
addRowVectorToRows(Matrix &a, const Matrix &row, Index r0, Index n)
{
    EXION_ASSERT(row.rows() == 1 && row.cols() == a.cols(),
                 "row vector shape mismatch");
    EXION_ASSERT(r0 <= a.rows() && n <= a.rows() - r0, "row range [",
                 r0, ", +", n, ") out of ", a.rows(), " rows");
    for (Index i = r0; i < r0 + n; ++i) {
        float *arow = a.rowPtr(i);
        const float *r = row.rowPtr(0);
        for (Index j = 0; j < a.cols(); ++j)
            arow[j] += r[j];
    }
}

Matrix
matmulQuant(const QuantMatrix &a, const QuantMatrix &b)
{
    return matmulQuantWith(a, b, defaultGemmBackend());
}

double
frobeniusNorm(const Matrix &a)
{
    double sum = 0.0;
    for (float v : a.data())
        sum += static_cast<double>(v) * v;
    return std::sqrt(sum);
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "maxAbsDiff shape mismatch");
    double out = 0.0;
    for (Index i = 0; i < a.size(); ++i) {
        const double d = std::abs(
            static_cast<double>(a.data()[i]) - b.data()[i]);
        out = std::max(out, d);
    }
    return out;
}

Matrix
sliceRows(const Matrix &a, Index r0, Index n)
{
    EXION_ASSERT(r0 <= a.rows() && n <= a.rows() - r0,
                 "sliceRows out of range");
    Matrix out(n, a.cols());
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < a.cols(); ++j)
            out(i, j) = a(r0 + i, j);
    return out;
}

Matrix
sliceCols(const Matrix &a, Index c0, Index n)
{
    EXION_ASSERT(c0 <= a.cols() && n <= a.cols() - c0,
                 "sliceCols out of range");
    Matrix out(a.rows(), n);
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < n; ++j)
            out(i, j) = a(i, c0 + j);
    return out;
}

Matrix
sliceBlock(const Matrix &a, Index r0, Index nr, Index c0, Index nc)
{
    EXION_ASSERT(r0 <= a.rows() && nr <= a.rows() - r0
                     && c0 <= a.cols() && nc <= a.cols() - c0,
                 "sliceBlock out of range");
    Matrix out(nr, nc);
    for (Index i = 0; i < nr; ++i)
        for (Index j = 0; j < nc; ++j)
            out(i, j) = a(r0 + i, c0 + j);
    return out;
}

void
pasteRows(Matrix &a, const Matrix &src, Index r0)
{
    EXION_ASSERT(r0 <= a.rows() && src.rows() <= a.rows() - r0
                     && src.cols() == a.cols(),
                 "pasteRows out of range");
    for (Index i = 0; i < src.rows(); ++i)
        for (Index j = 0; j < src.cols(); ++j)
            a(r0 + i, j) = src(i, j);
}

} // namespace exion
