#include "exion/tensor/ops.h"

#include <cmath>

namespace exion
{

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.cols() == b.rows(), "matmul shape (", a.rows(), "x",
                 a.cols(), ") * (", b.rows(), "x", b.cols(), ")");
    Matrix c(a.rows(), b.cols());
    const Index k_dim = a.cols();
    for (Index i = 0; i < a.rows(); ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = c.rowPtr(i);
        for (Index k = 0; k < k_dim; ++k) {
            const float av = arow[k];
            if (av == 0.0f)
                continue;
            const float *brow = b.rowPtr(k);
            for (Index j = 0; j < b.cols(); ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Matrix
matmulTransposed(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.cols() == b.cols(), "matmulT shape (", a.rows(), "x",
                 a.cols(), ") * (", b.rows(), "x", b.cols(), ")^T");
    Matrix c(a.rows(), b.rows());
    const Index k_dim = a.cols();
    for (Index i = 0; i < a.rows(); ++i) {
        const float *arow = a.rowPtr(i);
        for (Index j = 0; j < b.rows(); ++j) {
            const float *brow = b.rowPtr(j);
            float acc = 0.0f;
            for (Index k = 0; k < k_dim; ++k)
                acc += arow[k] * brow[k];
            c(i, j) = acc;
        }
    }
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

Matrix
add(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "add shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] + b.data()[i];
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "sub shape mismatch");
    Matrix c(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] - b.data()[i];
    return c;
}

Matrix
scale(const Matrix &a, float s)
{
    Matrix c(a.rows(), a.cols());
    for (Index i = 0; i < a.size(); ++i)
        c.data()[i] = a.data()[i] * s;
    return c;
}

void
addRowVector(Matrix &a, const Matrix &row)
{
    EXION_ASSERT(row.rows() == 1 && row.cols() == a.cols(),
                 "row vector shape mismatch");
    for (Index i = 0; i < a.rows(); ++i) {
        float *arow = a.rowPtr(i);
        const float *r = row.rowPtr(0);
        for (Index j = 0; j < a.cols(); ++j)
            arow[j] += r[j];
    }
}

void
addRowVectorToRows(Matrix &a, const Matrix &row, Index r0, Index n)
{
    EXION_ASSERT(row.rows() == 1 && row.cols() == a.cols(),
                 "row vector shape mismatch");
    EXION_ASSERT(r0 + n <= a.rows(), "row range [", r0, ",", r0 + n,
                 ") out of ", a.rows(), " rows");
    for (Index i = r0; i < r0 + n; ++i) {
        float *arow = a.rowPtr(i);
        const float *r = row.rowPtr(0);
        for (Index j = 0; j < a.cols(); ++j)
            arow[j] += r[j];
    }
}

Matrix
matmulQuant(const QuantMatrix &a, const QuantMatrix &b)
{
    EXION_ASSERT(a.cols() == b.rows(), "quant matmul shape mismatch");
    Matrix c(a.rows(), b.cols());
    const double out_scale = a.scale() * b.scale();
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index j = 0; j < b.cols(); ++j) {
            i64 acc = 0;
            for (Index k = 0; k < a.cols(); ++k)
                acc += static_cast<i64>(a(i, k)) * b(k, j);
            c(i, j) = static_cast<float>(acc * out_scale);
        }
    }
    return c;
}

double
frobeniusNorm(const Matrix &a)
{
    double sum = 0.0;
    for (float v : a.data())
        sum += static_cast<double>(v) * v;
    return std::sqrt(sum);
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    EXION_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "maxAbsDiff shape mismatch");
    double out = 0.0;
    for (Index i = 0; i < a.size(); ++i) {
        const double d = std::abs(
            static_cast<double>(a.data()[i]) - b.data()[i]);
        out = std::max(out, d);
    }
    return out;
}

Matrix
sliceRows(const Matrix &a, Index r0, Index n)
{
    EXION_ASSERT(r0 + n <= a.rows(), "sliceRows out of range");
    Matrix out(n, a.cols());
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < a.cols(); ++j)
            out(i, j) = a(r0 + i, j);
    return out;
}

Matrix
sliceCols(const Matrix &a, Index c0, Index n)
{
    EXION_ASSERT(c0 + n <= a.cols(), "sliceCols out of range");
    Matrix out(a.rows(), n);
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < n; ++j)
            out(i, j) = a(i, c0 + j);
    return out;
}

Matrix
sliceBlock(const Matrix &a, Index r0, Index nr, Index c0, Index nc)
{
    EXION_ASSERT(r0 + nr <= a.rows() && c0 + nc <= a.cols(),
                 "sliceBlock out of range");
    Matrix out(nr, nc);
    for (Index i = 0; i < nr; ++i)
        for (Index j = 0; j < nc; ++j)
            out(i, j) = a(r0 + i, c0 + j);
    return out;
}

void
pasteRows(Matrix &a, const Matrix &src, Index r0)
{
    EXION_ASSERT(r0 + src.rows() <= a.rows() && src.cols() == a.cols(),
                 "pasteRows out of range");
    for (Index i = 0; i < src.rows(); ++i)
        for (Index j = 0; j < src.cols(); ++j)
            a(r0 + i, j) = src(i, j);
}

} // namespace exion
