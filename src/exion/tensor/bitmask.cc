#include "exion/tensor/bitmask.h"

#include <bit>

namespace exion
{

Bitmask2D::Bitmask2D(Index rows, Index cols)
    : rows_(rows), cols_(cols), words_((rows * cols + 63) / 64, 0)
{
}

u64
Bitmask2D::countOnes() const
{
    u64 total = 0;
    for (u64 w : words_)
        total += std::popcount(w);
    return total;
}

double
Bitmask2D::sparsity() const
{
    const u64 total = static_cast<u64>(rows_) * cols_;
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(countOnes())
        / static_cast<double>(total);
}

u64
Bitmask2D::columnOnes(Index c) const
{
    u64 total = 0;
    for (Index r = 0; r < rows_; ++r)
        total += get(r, c) ? 1 : 0;
    return total;
}

u64
Bitmask2D::rowOnes(Index r) const
{
    u64 total = 0;
    for (Index c = 0; c < cols_; ++c)
        total += get(r, c) ? 1 : 0;
    return total;
}

u16
Bitmask2D::columnSlice16(Index c, Index row0) const
{
    u16 out = 0;
    for (Index i = 0; i < 16; ++i) {
        const Index r = row0 + i;
        if (r >= rows_)
            break;
        if (get(r, c))
            out |= static_cast<u16>(1u << i);
    }
    return out;
}

void
Bitmask2D::orWith(const Bitmask2D &other)
{
    EXION_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "bitmask shape mismatch in orWith");
    for (Index i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
}

} // namespace exion
