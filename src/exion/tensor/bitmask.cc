#include "exion/tensor/bitmask.h"

#include "exion/tensor/simd_dispatch.h"

namespace exion
{

namespace
{

/** Low-n-bits mask; n <= 64. */
u64
lowBits(Index n)
{
    return n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
}

} // namespace

Bitmask2D::Bitmask2D(Index rows, Index cols)
    : rows_(rows), cols_(cols), words_((rows * cols + 63) / 64, 0)
{
}

u64
Bitmask2D::countOnes() const
{
    return activeKernels().popcountWords(words_.data(),
                                         words_.size());
}

u64
Bitmask2D::andPopcount(const Bitmask2D &other) const
{
    EXION_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "bitmask shape mismatch in andPopcount");
    return activeKernels().andPopcountWords(
        words_.data(), other.words_.data(), words_.size());
}

double
Bitmask2D::sparsity() const
{
    const u64 total = static_cast<u64>(rows_) * cols_;
    if (total == 0)
        return 0.0;
    return 1.0 - static_cast<double>(countOnes())
        / static_cast<double>(total);
}

Index
Bitmask2D::nonEmptyColumnCount() const
{
    std::vector<u8> seen(cols_, 0);
    forEachSetBit([&](Index, Index c) { seen[c] = 1; });
    Index n = 0;
    for (u8 v : seen)
        n += v;
    return n;
}

u64
Bitmask2D::columnOnes(Index c) const
{
    u64 total = 0;
    for (Index r = 0; r < rows_; ++r)
        total += get(r, c) ? 1 : 0;
    return total;
}

u64
Bitmask2D::rowOnes(Index r) const
{
    EXION_ASSERT(r < rows_, "bitmask row out of range");
    // A row is a contiguous bit range: popcount whole words with the
    // first and last masked to the row's span.
    const Index b0 = r * cols_;
    const Index b1 = b0 + cols_;
    u64 total = 0;
    for (Index wi = b0 >> 6; wi < (b1 + 63) >> 6; ++wi) {
        u64 w = words_[wi];
        if (wi == b0 >> 6)
            w &= ~u64{0} << (b0 & 63);
        if (wi == b1 >> 6 && (b1 & 63) != 0)
            w &= lowBits(b1 & 63);
        total += static_cast<u64>(std::popcount(w));
    }
    return total;
}

u16
Bitmask2D::columnSlice16(Index c, Index row0) const
{
    u16 out = 0;
    for (Index i = 0; i < 16; ++i) {
        const Index r = row0 + i;
        if (r >= rows_)
            break;
        if (get(r, c))
            out |= static_cast<u16>(1u << i);
    }
    return out;
}

void
Bitmask2D::writeRowBits(Index r, Index c0, u64 bits, Index nbits)
{
    EXION_ASSERT(r < rows_ && nbits <= 64 && c0 + nbits <= cols_,
                 "writeRowBits range out of row");
    if (nbits == 0)
        return;
    const Index start = r * cols_ + c0;
    const Index wi = start >> 6;
    const Index off = start & 63;
    const Index lo_n = nbits < 64 - off ? nbits : 64 - off;
    const u64 lo_mask = lowBits(lo_n);
    words_[wi] = (words_[wi] & ~(lo_mask << off))
        | ((bits & lo_mask) << off);
    if (nbits > lo_n) {
        const u64 hi_mask = lowBits(nbits - lo_n);
        words_[wi + 1] = (words_[wi + 1] & ~hi_mask)
            | ((bits >> lo_n) & hi_mask);
    }
}

void
Bitmask2D::orWith(const Bitmask2D &other)
{
    EXION_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "bitmask shape mismatch in orWith");
    activeKernels().orWords(words_.data(), other.words_.data(),
                            words_.size());
}

} // namespace exion
