/**
 * @file
 * Dense row-major float matrix.
 *
 * The model substrate runs in float32; the accelerator path quantises
 * through QuantMatrix. Kept deliberately simple: contiguous storage,
 * bounds-checked access in debug, explicit ops in ops.h.
 *
 * Storage comes in two modes. The default owns its elements in a
 * vector and is fully mutable. borrow() instead wraps caller-owned
 * read-only memory (e.g. a tensor section of an mmap'd WeightStore)
 * without copying: reads are identical, mutation is a contract
 * violation (asserted), and copies of a borrowed matrix are shallow —
 * whoever owns the underlying bytes must outlive every view.
 */

#ifndef EXION_TENSOR_MATRIX_H_
#define EXION_TENSOR_MATRIX_H_

#include <span>
#include <vector>

#include "exion/common/logging.h"
#include "exion/common/types.h"

namespace exion
{

class Rng;

/**
 * Row-major float32 matrix.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialised to fill. */
    Matrix(Index rows, Index cols, float fill = 0.0f);

    /**
     * Non-owning read-only view over caller-owned row-major storage.
     * data must stay valid (and unchanged) for the view's lifetime;
     * copies of the view alias the same memory.
     */
    static Matrix borrow(const float *data, Index rows, Index cols);

    /** True when this matrix is a non-owning view. */
    bool borrowed() const { return view_ != nullptr; }

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Total element count. */
    Index size() const { return rows_ * cols_; }

    /** Element access. @pre not borrowed */
    float &
    at(Index r, Index c)
    {
        EXION_ASSERT(r < rows_ && c < cols_,
                     "index (", r, ",", c, ") out of (", rows_, ",",
                     cols_, ")");
        EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
        return data_[r * cols_ + c];
    }

    /** Element access (const). */
    float
    at(Index r, Index c) const
    {
        EXION_ASSERT(r < rows_ && c < cols_,
                     "index (", r, ",", c, ") out of (", rows_, ",",
                     cols_, ")");
        return cptr()[r * cols_ + c];
    }

    /** Unchecked element access for hot loops. @pre not borrowed */
    float &operator()(Index r, Index c) { return data_[r * cols_ + c]; }

    /** Unchecked element access for hot loops (const). */
    float
    operator()(Index r, Index c) const
    {
        return cptr()[r * cols_ + c];
    }

    /** Raw pointer to row r. @pre not borrowed */
    float *
    rowPtr(Index r)
    {
        EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
        return data_.data() + r * cols_;
    }

    /** Raw pointer to row r (const). */
    const float *rowPtr(Index r) const { return cptr() + r * cols_; }

    /** Underlying storage. @pre not borrowed */
    std::vector<float> &
    data()
    {
        EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
        return data_;
    }

    /** Elements in row-major order (works for views too). */
    std::span<const float> data() const { return {cptr(), size()}; }

    /** Sets all elements to v. @pre not borrowed */
    void fill(float v);

    /** Fills with N(mean, stddev) draws from rng. @pre not borrowed */
    void fillNormal(Rng &rng, float mean, float stddev);

    /** Fills with U[lo, hi) draws from rng. @pre not borrowed */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Largest |element| (0 for empty). */
    float maxAbs() const;

    /**
     * True when shapes match and all elements compare equal (float
     * semantics: NaN != NaN, -0.0 == +0.0 — same as the historical
     * defaulted comparison over the storage vector).
     */
    bool operator==(const Matrix &other) const;

  private:
    const float *cptr() const { return view_ ? view_ : data_.data(); }

    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<float> data_;
    const float *view_ = nullptr;
};

} // namespace exion

#endif // EXION_TENSOR_MATRIX_H_
