/**
 * @file
 * Dense row-major float matrix.
 *
 * The model substrate runs in float32; the accelerator path quantises
 * through QuantMatrix. Kept deliberately simple: contiguous storage,
 * bounds-checked access in debug, explicit ops in ops.h.
 */

#ifndef EXION_TENSOR_MATRIX_H_
#define EXION_TENSOR_MATRIX_H_

#include <vector>

#include "exion/common/logging.h"
#include "exion/common/types.h"

namespace exion
{

class Rng;

/**
 * Row-major float32 matrix.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialised to fill. */
    Matrix(Index rows, Index cols, float fill = 0.0f);

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Total element count. */
    Index size() const { return data_.size(); }

    /** Element access. */
    float &
    at(Index r, Index c)
    {
        EXION_ASSERT(r < rows_ && c < cols_,
                     "index (", r, ",", c, ") out of (", rows_, ",",
                     cols_, ")");
        return data_[r * cols_ + c];
    }

    /** Element access (const). */
    float
    at(Index r, Index c) const
    {
        EXION_ASSERT(r < rows_ && c < cols_,
                     "index (", r, ",", c, ") out of (", rows_, ",",
                     cols_, ")");
        return data_[r * cols_ + c];
    }

    /** Unchecked element access for hot loops. */
    float &operator()(Index r, Index c) { return data_[r * cols_ + c]; }

    /** Unchecked element access for hot loops (const). */
    float
    operator()(Index r, Index c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw pointer to row r. */
    float *rowPtr(Index r) { return data_.data() + r * cols_; }

    /** Raw pointer to row r (const). */
    const float *rowPtr(Index r) const { return data_.data() + r * cols_; }

    /** Underlying storage. */
    std::vector<float> &data() { return data_; }

    /** Underlying storage (const). */
    const std::vector<float> &data() const { return data_; }

    /** Sets all elements to v. */
    void fill(float v);

    /** Fills with N(mean, stddev) draws from rng. */
    void fillNormal(Rng &rng, float mean, float stddev);

    /** Fills with U[lo, hi) draws from rng. */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Largest |element| (0 for empty). */
    float maxAbs() const;

    /** True when shapes match and all elements are bitwise equal. */
    bool operator==(const Matrix &other) const = default;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<float> data_;
};

} // namespace exion

#endif // EXION_TENSOR_MATRIX_H_
