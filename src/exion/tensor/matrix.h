/**
 * @file
 * Dense row-major float matrix.
 *
 * The model substrate runs in float32; the accelerator path quantises
 * through QuantMatrix. Kept deliberately simple: contiguous storage,
 * bounds-checked access in debug, explicit ops in ops.h.
 *
 * Storage comes in two modes. The default owns its elements in a
 * vector and is fully mutable. borrow() instead wraps caller-owned
 * read-only memory (e.g. a tensor section of an mmap'd WeightStore)
 * without copying: reads are identical, mutation is a contract
 * violation (asserted), and copies of a borrowed matrix are shallow —
 * whoever owns the underlying bytes must outlive every view.
 *
 * borrowStrided() generalises borrow() to views whose rows are not
 * adjacent in memory — the zero-copy column slice of a wider tensor
 * (row r of the view starts rowStride elements after row r-1). Every
 * per-element and per-row accessor honours the stride; only the flat
 * data() span requires contiguity (asserted), because a strided
 * view has no single contiguous element range to hand out.
 */

#ifndef EXION_TENSOR_MATRIX_H_
#define EXION_TENSOR_MATRIX_H_

#include <span>
#include <vector>

#include "exion/common/logging.h"
#include "exion/common/types.h"

namespace exion
{

class Rng;

/**
 * Row-major float32 matrix.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** rows x cols matrix initialised to fill. */
    Matrix(Index rows, Index cols, float fill = 0.0f);

    /**
     * Non-owning read-only view over caller-owned row-major storage.
     * data must stay valid (and unchanged) for the view's lifetime;
     * copies of the view alias the same memory.
     */
    static Matrix borrow(const float *data, Index rows, Index cols);

    /**
     * Non-owning read-only view whose consecutive rows sit rowStride
     * elements apart — e.g. the columns [c0, c0+cols) of a wider
     * row-major tensor, viewed via borrowStrided(base + c0, rows,
     * cols, fullCols). @pre rowStride >= cols
     */
    static Matrix borrowStrided(const float *data, Index rows,
                                Index cols, Index rowStride);

    /** True when this matrix is a non-owning view. */
    bool borrowed() const { return view_ != nullptr; }

    /** True when rows are adjacent in memory (stride == cols). */
    bool contiguous() const { return stride_ == cols_; }

    /** Elements between consecutive row starts. */
    Index rowStride() const { return stride_; }

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Total element count. */
    Index size() const { return rows_ * cols_; }

    /** Element access. @pre not borrowed */
    float &
    at(Index r, Index c)
    {
        EXION_ASSERT(r < rows_ && c < cols_,
                     "index (", r, ",", c, ") out of (", rows_, ",",
                     cols_, ")");
        EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
        return data_[r * cols_ + c];
    }

    /** Element access (const). */
    float
    at(Index r, Index c) const
    {
        EXION_ASSERT(r < rows_ && c < cols_,
                     "index (", r, ",", c, ") out of (", rows_, ",",
                     cols_, ")");
        return cptr()[r * stride_ + c];
    }

    /** Unchecked element access for hot loops. @pre not borrowed */
    float &operator()(Index r, Index c) { return data_[r * cols_ + c]; }

    /** Unchecked element access for hot loops (const). */
    float
    operator()(Index r, Index c) const
    {
        return cptr()[r * stride_ + c];
    }

    /** Raw pointer to row r. @pre not borrowed */
    float *
    rowPtr(Index r)
    {
        EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
        return data_.data() + r * cols_;
    }

    /** Raw pointer to row r (const). */
    const float *rowPtr(Index r) const { return cptr() + r * stride_; }

    /** Underlying storage. @pre not borrowed */
    std::vector<float> &
    data()
    {
        EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
        return data_;
    }

    /** Elements in row-major order (views too). @pre contiguous */
    std::span<const float>
    data() const
    {
        EXION_ASSERT(contiguous(),
                     "flat span over a strided view (stride ", stride_,
                     ", cols ", cols_, ")");
        return {cptr(), size()};
    }

    /** Sets all elements to v. @pre not borrowed */
    void fill(float v);

    /** Fills with N(mean, stddev) draws from rng. @pre not borrowed */
    void fillNormal(Rng &rng, float mean, float stddev);

    /** Fills with U[lo, hi) draws from rng. @pre not borrowed */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Largest |element| (0 for empty). */
    float maxAbs() const;

    /**
     * True when shapes match and all elements compare equal (float
     * semantics: NaN != NaN, -0.0 == +0.0 — same as the historical
     * defaulted comparison over the storage vector).
     */
    bool operator==(const Matrix &other) const;

  private:
    const float *cptr() const { return view_ ? view_ : data_.data(); }

    Index rows_ = 0;
    Index cols_ = 0;
    Index stride_ = 0; //!< elements between row starts (== cols_
                       //!< except for borrowStrided views)
    std::vector<float> data_;
    const float *view_ = nullptr;
};

} // namespace exion

#endif // EXION_TENSOR_MATRIX_H_
