/**
 * @file
 * Scalar reference kernels — the golden chains every vector table is
 * measured against.
 *
 * These loops are the ops.h accumulation contract spelled out once:
 * separate rounded multiply and add per term, ascending index order,
 * +0.0f accumulator starts, ordered compares (NaN never sets a bit).
 * Compiled with -ffp-contract=off so no toolchain fuses a chain here
 * that a vector kernel keeps unfused (or vice versa).
 */

#include "exion/tensor/simd_dispatch.h"

#include <bit>
#include <cmath>
#include <cstdlib>

#include "exion/common/bitops.h"

namespace exion
{
namespace simd
{

namespace
{

/*
 * Log-domain product terms via the reconstruction identity:
 * sign * 2^(pa+pb) == sign * lodValue(|a|) * lodValue(|b|), and the
 * TwoStep sum of cross terms (2^a1+2^a2)(2^b1+2^b2) is exactly
 * tsLodValue(|a|) * tsLodValue(|b|). Zero operands fall out naturally
 * (lodValue(0) == 0). Integer arithmetic — equal to ldProduct() on
 * every input, enforced exhaustively over the INT12 operand range in
 * test_simd.cc.
 */

i64
ldTermSingle(i32 a, i32 b)
{
    const bool negative = (a < 0) != (b < 0);
    const u32 ua = static_cast<u32>(std::abs(static_cast<i64>(a)));
    const u32 ub = static_cast<u32>(std::abs(static_cast<i64>(b)));
    const i64 mag = static_cast<i64>(lodValue(ua)) * lodValue(ub);
    return negative ? -mag : mag;
}

i64
ldTermTwoStep(i32 a, i32 b)
{
    const bool negative = (a < 0) != (b < 0);
    const u32 ua = static_cast<u32>(std::abs(static_cast<i64>(a)));
    const u32 ub = static_cast<u32>(std::abs(static_cast<i64>(b)));
    const i64 mag = static_cast<i64>(tsLodValue(ua)) * tsLodValue(ub);
    return negative ? -mag : mag;
}

} // namespace

void
axpyF32Scalar(float *out, const float *x, float a, Index n)
{
    for (Index j = 0; j < n; ++j)
        out[j] += a * x[j];
}

void
axpy4F32Scalar(float *out, const float *x0, const float *x1,
               const float *x2, const float *x3, float a0, float a1,
               float a2, float a3, Index n)
{
    for (Index j = 0; j < n; ++j) {
        float acc = out[j];
        acc += a0 * x0[j];
        acc += a1 * x1[j];
        acc += a2 * x2[j];
        acc += a3 * x3[j];
        out[j] = acc;
    }
}

float
dotF32Scalar(const float *a, const float *b, Index n)
{
    float acc = 0.0f;
    for (Index k = 0; k < n; ++k)
        acc += a[k] * b[k];
    return acc;
}

i64
dotI32Scalar(const i32 *a, const i32 *b, Index n)
{
    i64 acc = 0;
    for (Index k = 0; k < n; ++k)
        acc += static_cast<i64>(a[k]) * b[k];
    return acc;
}

i64
ldDotSingleScalar(const i32 *a, const i32 *b, Index n)
{
    i64 acc = 0;
    for (Index k = 0; k < n; ++k)
        acc += ldTermSingle(a[k], b[k]);
    return acc;
}

i64
ldDotTwoStepScalar(const i32 *a, const i32 *b, Index n)
{
    i64 acc = 0;
    for (Index k = 0; k < n; ++k)
        acc += ldTermTwoStep(a[k], b[k]);
    return acc;
}

u64
absGreaterMask64Scalar(const float *x, float theta, Index n)
{
    u64 bits = 0;
    for (Index i = 0; i < n; ++i)
        if (std::abs(x[i]) > theta)
            bits |= u64{1} << i;
    return bits;
}

u64
cmpGeMask64Scalar(const float *x, float threshold, Index n)
{
    u64 bits = 0;
    for (Index i = 0; i < n; ++i)
        if (x[i] >= threshold)
            bits |= u64{1} << i;
    return bits;
}

u64
popcountWordsScalar(const u64 *w, Index n)
{
    u64 total = 0;
    for (Index i = 0; i < n; ++i)
        total += static_cast<u64>(std::popcount(w[i]));
    return total;
}

u64
andPopcountWordsScalar(const u64 *a, const u64 *b, Index n)
{
    u64 total = 0;
    for (Index i = 0; i < n; ++i)
        total += static_cast<u64>(std::popcount(a[i] & b[i]));
    return total;
}

void
orWordsScalar(u64 *dst, const u64 *src, Index n)
{
    for (Index i = 0; i < n; ++i)
        dst[i] |= src[i];
}

const SimdKernels &
scalarTable()
{
    static const SimdKernels table = {
        "scalar",
        axpyF32Scalar,
        axpy4F32Scalar,
        dotF32Scalar,
        dotI32Scalar,
        ldDotSingleScalar,
        ldDotTwoStepScalar,
        absGreaterMask64Scalar,
        cmpGeMask64Scalar,
        popcountWordsScalar,
        andPopcountWordsScalar,
        orWordsScalar,
    };
    return table;
}

} // namespace simd
} // namespace exion
