/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the sparse hot paths.
 *
 * Every open-coded inner loop the profiles flagged — bitmask
 * popcount/compare words, FFN-Reuse threshold scans and masked
 * products, eager prediction's compare loops and log-domain MACs, the
 * Blocked GEMM micro-kernel — now calls a *named kernel* out of a
 * function table. One table per instruction set
 * (kernels_{scalar,avx2,avx512,neon}.cc), probed once at runtime
 * (CPUID / compile-time ISA) and selected behind the scalar
 * reference, so the same binary runs the widest vectors the host
 * offers and plain scalar everywhere else.
 *
 * Two-tier numerics contract, threaded through executors and engine
 * options as SimdTier:
 *
 *  - Exact (default): kernels vectorize only across *independent
 *    output elements* (axpy j-sweeps, per-lane compares, integer
 *    reductions — integer sums are exact in any order). Each float
 *    output element's accumulation chain stays in the golden
 *    reference order from ops.h (one accumulator, +0.0f start,
 *    ascending k, separate mul then add, no FMA), so the vector path
 *    is bit-identical to scalar *by construction* and the existing
 *    maxAbsDiff == 0 differential tests run with vector dispatch
 *    active.
 *  - Fast (opt-in): additionally reassociates float reductions
 *    (multi-accumulator dot products). Results differ from the golden
 *    chain by rounding only; gated by tolerance-based differential
 *    tests, never enabled by default.
 *
 * Forcing scalar: SimdTier::Scalar pins an engine to the scalar
 * table; the EXION_SIMD environment variable
 * (scalar|neon|avx2|avx512|auto) caps the *process-wide* detected
 * level before any table is handed out — the CI sanitizer matrix runs
 * a forced-scalar leg this way.
 */

#ifndef EXION_TENSOR_SIMD_DISPATCH_H_
#define EXION_TENSOR_SIMD_DISPATCH_H_

#include <optional>
#include <string>

#include "exion/common/types.h"

namespace exion
{

/** Instruction-set level of a kernel table. */
enum class SimdLevel
{
    Scalar, //!< portable reference kernels
    Neon,   //!< 128-bit ARM NEON
    Avx2,   //!< 256-bit x86 AVX2
    Avx512, //!< 512-bit x86 AVX-512F
};

/** Numerics tier an engine runs its kernels under (see file docs). */
enum class SimdTier
{
    Scalar, //!< force the scalar reference table (debugging)
    Exact,  //!< vector kernels, reference-order reductions (default)
    Fast,   //!< + reassociated float reductions (tolerance-gated)
};

/**
 * The kernel function table. One instance per instruction set; all
 * entries are always populated (a level that has no specialised
 * implementation of an entry points it at the scalar reference).
 *
 * Exactness notes per entry are the contract vector implementations
 * must satisfy; test_simd.cc enforces them against the scalar table
 * on adversarial inputs (NaN/Inf payloads, ragged tails).
 */
struct SimdKernels
{
    /** Level name for logs/bench output. */
    const char *name;

    /**
     * out[j] += a * x[j] for j in [0, n). Exact: per element one
     * rounded multiply then one rounded add, independent across j.
     * Caveat shared by every float kernel: when an addition's two
     * operands are BOTH NaN, the propagated payload is unspecified
     * (IEEE 754 leaves the choice to the implementation and
     * hardware takes the first operand's payload, whose position
     * the compiler picks) — NaN-ness itself is always identical.
     */
    void (*axpyF32)(float *out, const float *x, float a, Index n);

    /**
     * Four jammed axpy steps: per element
     * out[j] = (((out[j] + a0*x0[j]) + a1*x1[j]) + a2*x2[j]) + a3*x3[j]
     * with every multiply and add rounded separately, in that order.
     * Exact: the Blocked GEMM micro-kernel's k-jam chain.
     */
    void (*axpy4F32)(float *out, const float *x0, const float *x1,
                     const float *x2, const float *x3, float a0,
                     float a1, float a2, float a3, Index n);

    /**
     * sum_k a[k] * b[k] with reassociated accumulation. Fast tier
     * only — lane partial sums round differently from the golden
     * serial chain.
     */
    float (*dotF32)(const float *a, const float *b, Index n);

    /**
     * sum_k (i64)a[k] * b[k]. Integer: exact in any order, legal in
     * the Exact tier.
     */
    i64 (*dotI32)(const i32 *a, const i32 *b, Index n);

    /**
     * sum_k ldProduct(a[k], b[k], LodMode::Single). Integer-exact.
     * Vector form uses sign(a*b) * lodValue(|a|) * lodValue(|b|) —
     * identically the scalar 2^(pa+pb) with the zero cases folded in.
     */
    i64 (*ldDotSingle)(const i32 *a, const i32 *b, Index n);

    /**
     * sum_k ldProduct(a[k], b[k], LodMode::TwoStep). Integer-exact:
     * the four cross terms of (2^a1+2^a2)(2^b1+2^b2) are exactly
     * tsLodValue(|a|) * tsLodValue(|b|).
     */
    i64 (*ldDotTwoStep)(const i32 *a, const i32 *b, Index n);

    /**
     * Bit i of the result is set iff |x[i]| > theta, for i in
     * [0, n), n <= 64. Matches std::abs(x[i]) > theta exactly:
     * ordered compare, so NaN payloads yield 0 bits; -Inf compares
     * as +Inf.
     */
    u64 (*absGreaterMask64)(const float *x, float theta, Index n);

    /**
     * Bit i set iff x[i] >= threshold, i in [0, n), n <= 64.
     * Ordered compare (NaN anywhere yields 0 for that lane).
     */
    u64 (*cmpGeMask64)(const float *x, float threshold, Index n);

    /** Total set bits across n words. */
    u64 (*popcountWords)(const u64 *w, Index n);

    /** Total set bits of a[i] & b[i] across n words. */
    u64 (*andPopcountWords)(const u64 *a, const u64 *b, Index n);

    /** dst[i] |= src[i] for n words. */
    void (*orWords)(u64 *dst, const u64 *src, Index n);
};

/**
 * The process-wide active level: the highest level this build carries
 * kernels for that the CPU supports, capped by EXION_SIMD. Probed
 * once on first use, constant afterwards.
 */
SimdLevel activeSimdLevel();

/** Kernel table of the active level. */
const SimdKernels &activeKernels();

/**
 * Table for a tier: the scalar reference table under
 * SimdTier::Scalar, the active level's table otherwise. (Exact vs
 * Fast select the same table — the tier difference is which entries
 * a call site is allowed to use.)
 */
const SimdKernels &simdKernels(SimdTier tier);

/**
 * Process-wide default tier consulted by defaulted parameters across
 * the tensor/model/sparsity layers, mirroring defaultGemmBackend().
 * Starts as Exact. Thread-safe (atomic).
 */
SimdTier defaultSimdTier();

/** Sets the process-wide default tier. Thread-safe (atomic). */
void setDefaultSimdTier(SimdTier tier);

/** Lower-case tier name ("scalar" / "exact" / "fast"). */
const char *simdTierName(SimdTier tier);

/** Parses a tier name; nullopt for anything unrecognised. */
std::optional<SimdTier> parseSimdTier(const std::string &name);

/** Lower-case level name ("scalar" / "neon" / "avx2" / "avx512"). */
const char *simdLevelName(SimdLevel level);

/**
 * Parses an EXION_SIMD cap value. "scalar"/"neon"/"avx2"/"avx512"
 * yield that level; "auto", empty or unrecognised values yield
 * nullopt (no cap). Pure — exposed for tests; activeSimdLevel()
 * applies it to the probed level once.
 */
std::optional<SimdLevel> parseSimdLevel(const std::string &name);

namespace simd
{

/*
 * Per-ISA tables. Levels this build has no kernels for (wrong
 * architecture) return nullptr and are skipped by the probe. The
 * scalar reference kernels are also exported individually so wider
 * tables can point unspecialised entries — and their own ragged
 * tails — at the golden chains.
 */

const SimdKernels &scalarTable();
const SimdKernels *avx2Table();
const SimdKernels *avx512Table();
const SimdKernels *neonTable();

void axpyF32Scalar(float *out, const float *x, float a, Index n);
void axpy4F32Scalar(float *out, const float *x0, const float *x1,
                    const float *x2, const float *x3, float a0,
                    float a1, float a2, float a3, Index n);
float dotF32Scalar(const float *a, const float *b, Index n);
i64 dotI32Scalar(const i32 *a, const i32 *b, Index n);
i64 ldDotSingleScalar(const i32 *a, const i32 *b, Index n);
i64 ldDotTwoStepScalar(const i32 *a, const i32 *b, Index n);
u64 absGreaterMask64Scalar(const float *x, float theta, Index n);
u64 cmpGeMask64Scalar(const float *x, float threshold, Index n);
u64 popcountWordsScalar(const u64 *w, Index n);
u64 andPopcountWordsScalar(const u64 *a, const u64 *b, Index n);
void orWordsScalar(u64 *dst, const u64 *src, Index n);

} // namespace simd

} // namespace exion

#endif // EXION_TENSOR_SIMD_DISPATCH_H_
