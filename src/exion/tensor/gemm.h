/**
 * @file
 * Pluggable dense GEMM backends.
 *
 * Every dense MMUL in the repository bottoms out here. Two backends
 * compute the same golden arithmetic:
 *
 *  - Reference: the naive triple loops the golden model has always
 *    used (full IEEE accumulation, no skips).
 *  - Blocked:   cache-blocked over the i/j output dimensions with the
 *    traversed B panel packed contiguous, built for the tall stacked
 *    activations the cohort path produces (many rows against one
 *    shared weight matrix).
 *
 * Bit-identity contract: for every output element both backends
 * perform the identical sequence of floating-point operations — the
 * accumulator starts at +0.0f and adds a(i,k)*b(k,j) for k ascending,
 * with no partial-sum splitting, reassociation or skipping — so
 * Blocked is bit-identical to Reference by construction, not by
 * tolerance. Blocking only reorders *which element* is worked on
 * next (and copies B values, which is exact); it never reorders the
 * reduction inside an element. The property tests in tests/test_gemm.cc
 * enforce this over adversarial shapes including NaN/Inf payloads.
 *
 * Backend selection: callers either pass a backend explicitly
 * (matmulWith and friends) or go through the process-wide default
 * (matmul/matmulTransposed/matmulQuant in ops.h dispatch on
 * defaultGemmBackend()). Layered code — executors, the serving engine
 * — threads an explicit backend instead of mutating the process
 * default, so engines with different options can coexist in one
 * process.
 */

#ifndef EXION_TENSOR_GEMM_H_
#define EXION_TENSOR_GEMM_H_

#include <optional>
#include <string>

#include "exion/tensor/matrix.h"
#include "exion/tensor/quant_matrix.h"
#include "exion/tensor/simd_dispatch.h"

namespace exion
{

/** Dense GEMM kernel implementations. */
enum class GemmBackend
{
    Reference, //!< naive triple loop (golden model)
    Blocked,   //!< i/j-blocked, B-panel-packed (bit-identical)
};

/**
 * Process-wide default backend consulted by the ops.h entry points
 * and by defaulted constructor/option parameters across the model
 * and sparsity layers. Starts as Reference. Thread-safe (atomic).
 */
GemmBackend defaultGemmBackend();

/** Sets the process-wide default backend. Thread-safe (atomic). */
void setDefaultGemmBackend(GemmBackend backend);

/** Lower-case backend name ("reference" / "blocked"). */
const char *gemmBackendName(GemmBackend backend);

/** Parses a backend name; nullopt for anything unrecognised. */
std::optional<GemmBackend> parseGemmBackend(const std::string &name);

/*
 * The explicit-backend entry points additionally take the SIMD tier
 * the Blocked backend's inner loops run under (see simd_dispatch.h).
 * The Reference backend ignores it — the golden triple loops stay
 * exactly as written. Exact-tier kernels are bit-identical to the
 * scalar chains, so the Blocked-vs-Reference identity contract above
 * holds for Scalar and Exact alike; Fast reassociates the transposed
 * form's k reductions and is tolerance-gated.
 */

/** C = A * B with an explicit backend. @pre A.cols() == B.rows(). */
Matrix matmulWith(const Matrix &a, const Matrix &b, GemmBackend backend,
                  SimdTier simd = defaultSimdTier());

/** C = A * B^T with an explicit backend. @pre A.cols() == B.cols(). */
Matrix matmulTransposedWith(const Matrix &a, const Matrix &b,
                            GemmBackend backend,
                            SimdTier simd = defaultSimdTier());

/** Integer matmul with an explicit backend. @pre A.cols() == B.rows(). */
Matrix matmulQuantWith(const QuantMatrix &a, const QuantMatrix &b,
                       GemmBackend backend,
                       SimdTier simd = defaultSimdTier());

} // namespace exion

#endif // EXION_TENSOR_GEMM_H_
