#include "exion/tensor/kernel_flags.h"

namespace exion
{

namespace
{

constexpr const char *kGemmValues = "reference|blocked";
constexpr const char *kSimdValues = "scalar|exact|fast";

} // namespace

KernelFlagStatus
tryConsumeKernelFlag(int argc, const char *const *argv, int &i,
                     KernelFlags &flags, std::string &error)
{
    const std::string arg = argv[i];
    const bool is_gemm = arg == "--gemm";
    const bool is_simd = arg == "--simd";
    if (!is_gemm && !is_simd)
        return KernelFlagStatus::NotMine;

    const char *values = is_gemm ? kGemmValues : kSimdValues;
    if (i + 1 >= argc) {
        error = arg + " needs a value (" + values + ")";
        return KernelFlagStatus::Error;
    }
    const std::string value = argv[++i];

    if (is_gemm) {
        const auto parsed = parseGemmBackend(value);
        if (!parsed) {
            error = "unknown --gemm backend '" + value
                + "' (expected " + std::string(kGemmValues) + ")";
            return KernelFlagStatus::Error;
        }
        flags.gemm = *parsed;
        return KernelFlagStatus::Consumed;
    }

    const auto parsed = parseSimdTier(value);
    if (!parsed) {
        error = "unknown --simd tier '" + value + "' (expected "
            + std::string(kSimdValues) + ")";
        return KernelFlagStatus::Error;
    }
    flags.simd = *parsed;
    return KernelFlagStatus::Consumed;
}

const char *
kernelFlagsUsage()
{
    return "[--gemm reference|blocked] [--simd scalar|exact|fast]";
}

} // namespace exion
