#include "exion/tensor/kernel_flags.h"

#include <exception>

namespace exion
{

namespace
{

constexpr const char *kGemmValues = "reference|blocked";
constexpr const char *kSimdValues = "scalar|exact|fast";
constexpr const char *kTpValues = "a positive integer";

} // namespace

KernelFlagStatus
tryConsumeKernelFlag(int argc, const char *const *argv, int &i,
                     KernelFlags &flags, std::string &error)
{
    const std::string arg = argv[i];
    const bool is_gemm = arg == "--gemm";
    const bool is_simd = arg == "--simd";
    const bool is_tp = arg == "--tp";
    if (!is_gemm && !is_simd && !is_tp)
        return KernelFlagStatus::NotMine;

    const char *values =
        is_gemm ? kGemmValues : is_simd ? kSimdValues : kTpValues;
    if (i + 1 >= argc) {
        error = arg + " needs a value (" + values + ")";
        return KernelFlagStatus::Error;
    }
    const std::string value = argv[++i];

    if (is_tp) {
        int parsed = 0;
        try {
            size_t pos = 0;
            parsed = std::stoi(value, &pos);
            if (pos != value.size())
                parsed = 0;
        } catch (const std::exception &) {
            parsed = 0;
        }
        if (parsed < 1) {
            error = "bad --tp value '" + value + "' (expected "
                + std::string(kTpValues) + ")";
            return KernelFlagStatus::Error;
        }
        flags.tp = parsed;
        return KernelFlagStatus::Consumed;
    }

    if (is_gemm) {
        const auto parsed = parseGemmBackend(value);
        if (!parsed) {
            error = "unknown --gemm backend '" + value
                + "' (expected " + std::string(kGemmValues) + ")";
            return KernelFlagStatus::Error;
        }
        flags.gemm = *parsed;
        return KernelFlagStatus::Consumed;
    }

    const auto parsed = parseSimdTier(value);
    if (!parsed) {
        error = "unknown --simd tier '" + value + "' (expected "
            + std::string(kSimdValues) + ")";
        return KernelFlagStatus::Error;
    }
    flags.simd = *parsed;
    return KernelFlagStatus::Consumed;
}

const char *
kernelFlagsUsage()
{
    return "[--gemm reference|blocked] [--simd scalar|exact|fast]"
           " [--tp N]";
}

} // namespace exion
