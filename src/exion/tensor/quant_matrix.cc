#include "exion/tensor/quant_matrix.h"

namespace exion
{

QuantMatrix::QuantMatrix(Index rows, Index cols, QuantParams params)
    : rows_(rows), cols_(cols), params_(params), data_(rows * cols, 0)
{
}

QuantMatrix
QuantMatrix::fromFloat(const Matrix &m, IntWidth width)
{
    QuantParams params = chooseQuantParams(m.data(), width);
    return fromFloat(m, params);
}

QuantMatrix
QuantMatrix::fromFloat(const Matrix &m, const QuantParams &params)
{
    QuantMatrix out(m.rows(), m.cols(), params);
    for (Index i = 0; i < m.rows() * m.cols(); ++i)
        out.data_[i] = quantize(m.data()[i], params);
    return out;
}

Matrix
QuantMatrix::toFloat() const
{
    Matrix out(rows_, cols_);
    for (Index i = 0; i < rows_ * cols_; ++i)
        out.data()[i] = dequantize(data_[i], params_);
    return out;
}

} // namespace exion
