#include "exion/tensor/quant_matrix.h"

namespace exion
{

QuantMatrix::QuantMatrix(Index rows, Index cols, QuantParams params)
    : rows_(rows), cols_(cols), params_(params), data_(rows * cols, 0)
{
}

QuantMatrix
QuantMatrix::fromFloat(const Matrix &m, IntWidth width)
{
    QuantParams params = chooseQuantParams(m.data(), width);
    return fromFloat(m, params);
}

QuantMatrix
QuantMatrix::fromFloat(const Matrix &m, const QuantParams &params)
{
    QuantMatrix out(m.rows(), m.cols(), params);
    const std::span<const float> src = m.data();
    for (Index i = 0; i < out.size(); ++i)
        out.data_[i] = quantize(src[i], params);
    return out;
}

QuantMatrix
QuantMatrix::borrow(const i32 *data, Index rows, Index cols,
                    QuantParams params)
{
    EXION_ASSERT(data != nullptr || rows * cols == 0,
                 "borrowing null quant storage for ", rows, "x", cols);
    QuantMatrix q;
    q.rows_ = rows;
    q.cols_ = cols;
    q.params_ = params;
    q.view_ = data;
    return q;
}

Matrix
QuantMatrix::toFloat() const
{
    Matrix out(rows_, cols_);
    const i32 *src = cptr();
    for (Index i = 0; i < size(); ++i)
        out.data()[i] = dequantize(src[i], params_);
    return out;
}

} // namespace exion
