#include "exion/tensor/quant_matrix.h"

namespace exion
{

QuantMatrix::QuantMatrix(Index rows, Index cols, QuantParams params)
    : rows_(rows), cols_(cols), stride_(cols), params_(params),
      data_(rows * cols, 0)
{
}

QuantMatrix
QuantMatrix::fromFloat(const Matrix &m, IntWidth width)
{
    QuantParams params = chooseQuantParams(m.data(), width);
    return fromFloat(m, params);
}

QuantMatrix
QuantMatrix::fromFloat(const Matrix &m, const QuantParams &params)
{
    QuantMatrix out(m.rows(), m.cols(), params);
    const std::span<const float> src = m.data();
    for (Index i = 0; i < out.size(); ++i)
        out.data_[i] = quantize(src[i], params);
    return out;
}

QuantMatrix
QuantMatrix::borrow(const i32 *data, Index rows, Index cols,
                    QuantParams params)
{
    return borrowStrided(data, rows, cols, cols, params);
}

QuantMatrix
QuantMatrix::borrowStrided(const i32 *data, Index rows, Index cols,
                           Index rowStride, QuantParams params)
{
    EXION_ASSERT(data != nullptr || rows * cols == 0,
                 "borrowing null quant storage for ", rows, "x", cols);
    EXION_ASSERT(rowStride >= cols, "quant row stride ", rowStride,
                 " narrower than ", cols, " columns");
    QuantMatrix q;
    q.rows_ = rows;
    q.cols_ = cols;
    q.stride_ = rowStride;
    q.params_ = params;
    q.view_ = data;
    return q;
}

Matrix
QuantMatrix::toFloat() const
{
    Matrix out(rows_, cols_);
    for (Index r = 0; r < rows_; ++r) {
        const i32 *src = rowPtr(r);
        float *dst = out.rowPtr(r);
        for (Index c = 0; c < cols_; ++c)
            dst[c] = dequantize(src[c], params_);
    }
    return out;
}

} // namespace exion
