/**
 * @file
 * Packed two-dimensional bitmask.
 *
 * The currency of EXION's sparsity machinery: FFN-Reuse emits a
 * recompute mask over the first FFN layer's output; eager prediction
 * emits a keep mask over the attention score. ConMerge consumes these
 * column-by-column (Fig. 13's 16-bit lane bitmasks are column slices of
 * this structure).
 */

#ifndef EXION_TENSOR_BITMASK_H_
#define EXION_TENSOR_BITMASK_H_

#include <vector>

#include "exion/common/logging.h"
#include "exion/common/types.h"

namespace exion
{

/**
 * rows x cols bitmask packed 64 bits per word, row-major.
 *
 * Bit semantics follow the paper: 1 = non-sparse (compute / keep),
 * 0 = sparse (skip / reuse).
 */
class Bitmask2D
{
  public:
    /** Empty mask. */
    Bitmask2D() = default;

    /** rows x cols mask of all zeros. */
    Bitmask2D(Index rows, Index cols);

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Reads bit (r, c). */
    bool
    get(Index r, Index c) const
    {
        EXION_ASSERT(r < rows_ && c < cols_, "bitmask index out of range");
        const Index bit = r * cols_ + c;
        return (words_[bit >> 6] >> (bit & 63)) & 1u;
    }

    /** Writes bit (r, c). */
    void
    set(Index r, Index c, bool v)
    {
        EXION_ASSERT(r < rows_ && c < cols_, "bitmask index out of range");
        const Index bit = r * cols_ + c;
        const u64 mask = u64{1} << (bit & 63);
        if (v)
            words_[bit >> 6] |= mask;
        else
            words_[bit >> 6] &= ~mask;
    }

    /** Number of set bits. */
    u64 countOnes() const;

    /** Fraction of zero bits (the paper's "output sparsity"). */
    double sparsity() const;

    /** Number of set bits in column c. */
    u64 columnOnes(Index c) const;

    /** True when every bit in column c is zero. */
    bool columnEmpty(Index c) const { return columnOnes(c) == 0; }

    /** Number of set bits in row r. */
    u64 rowOnes(Index r) const;

    /**
     * 16-bit lane slice of column c covering rows [row0, row0+16).
     *
     * Rows past the matrix edge read as zero. Bit i corresponds to row
     * row0 + i — exactly the per-DPU-lane bitmask the CAU receives.
     */
    u16 columnSlice16(Index c, Index row0) const;

    /** Element-wise OR with another mask of identical shape. */
    void orWith(const Bitmask2D &other);

    /** True when shapes and bits match. */
    bool operator==(const Bitmask2D &other) const = default;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<u64> words_;
};

} // namespace exion

#endif // EXION_TENSOR_BITMASK_H_
