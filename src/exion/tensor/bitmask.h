/**
 * @file
 * Packed two-dimensional bitmask.
 *
 * The currency of EXION's sparsity machinery: FFN-Reuse emits a
 * recompute mask over the first FFN layer's output; eager prediction
 * emits a keep mask over the attention score. ConMerge consumes these
 * column-by-column (Fig. 13's 16-bit lane bitmasks are column slices of
 * this structure).
 */

#ifndef EXION_TENSOR_BITMASK_H_
#define EXION_TENSOR_BITMASK_H_

#include <bit>
#include <span>
#include <vector>

#include "exion/common/logging.h"
#include "exion/common/types.h"

namespace exion
{

/**
 * rows x cols bitmask packed 64 bits per word, row-major.
 *
 * Bit semantics follow the paper: 1 = non-sparse (compute / keep),
 * 0 = sparse (skip / reuse).
 */
class Bitmask2D
{
  public:
    /** Empty mask. */
    Bitmask2D() = default;

    /** rows x cols mask of all zeros. */
    Bitmask2D(Index rows, Index cols);

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Reads bit (r, c). */
    bool
    get(Index r, Index c) const
    {
        EXION_ASSERT(r < rows_ && c < cols_, "bitmask index out of range");
        const Index bit = r * cols_ + c;
        return (words_[bit >> 6] >> (bit & 63)) & 1u;
    }

    /** Writes bit (r, c). */
    void
    set(Index r, Index c, bool v)
    {
        EXION_ASSERT(r < rows_ && c < cols_, "bitmask index out of range");
        const Index bit = r * cols_ + c;
        const u64 mask = u64{1} << (bit & 63);
        if (v)
            words_[bit >> 6] |= mask;
        else
            words_[bit >> 6] &= ~mask;
    }

    /**
     * The packed words, row-major, 64 bits per word. Bits past
     * rows() * cols() in the final word are always zero — word-level
     * consumers (popcounts, masked loads) may read the full span
     * without per-bit edge checks.
     */
    std::span<const u64> words() const { return words_; }

    /** Number of packed words. */
    Index wordCount() const { return words_.size(); }

    /** Number of set bits. */
    u64 countOnes() const;

    /**
     * Set bits of the element-wise AND with another mask of identical
     * shape, without materialising the intersection.
     */
    u64 andPopcount(const Bitmask2D &other) const;

    /**
     * Overwrites bits (r, c0) .. (r, c0 + nbits - 1) with the low
     * nbits of `bits` (bit i -> column c0 + i). nbits <= 64 and the
     * range must stay inside the row — the word-granular sink for the
     * cmpGeMask64 / absGreaterMask64 kernels.
     */
    void writeRowBits(Index r, Index c0, u64 bits, Index nbits);

    /**
     * Calls f(r, c) for every set bit in row-major order. Word-at-a-
     * time: whole zero words cost one test, set bits are located with
     * countr_zero instead of a per-column get() sweep.
     */
    template <typename F>
    void
    forEachSetBit(F &&f) const
    {
        for (Index wi = 0; wi < words_.size(); ++wi) {
            u64 w = words_[wi];
            while (w != 0) {
                const Index bit =
                    wi * 64 + static_cast<Index>(std::countr_zero(w));
                f(bit / cols_, bit % cols_);
                w &= w - 1;
            }
        }
    }

    /** Calls f(c) for every set bit of row r, ascending c. */
    template <typename F>
    void
    forEachSetBitInRow(Index r, F &&f) const
    {
        EXION_ASSERT(r < rows_, "bitmask row out of range");
        if (cols_ == 0)
            return;
        const Index b0 = r * cols_;
        const Index b1 = b0 + cols_;
        for (Index wi = b0 >> 6; wi < (b1 + 63) >> 6; ++wi) {
            u64 w = words_[wi];
            if (wi == b0 >> 6)
                w &= ~u64{0} << (b0 & 63);
            if (wi == b1 >> 6 && (b1 & 63) != 0)
                w &= (u64{1} << (b1 & 63)) - 1;
            while (w != 0) {
                const Index bit =
                    wi * 64 + static_cast<Index>(std::countr_zero(w));
                f(bit - b0);
                w &= w - 1;
            }
        }
    }

    /** Fraction of zero bits (the paper's "output sparsity"). */
    double sparsity() const;

    /** Number of set bits in column c. */
    u64 columnOnes(Index c) const;

    /** True when every bit in column c is zero. */
    bool columnEmpty(Index c) const { return columnOnes(c) == 0; }

    /**
     * Number of columns with at least one set bit. Word-at-a-time
     * (one forEachSetBit sweep) instead of a strided per-bit scan
     * per column.
     */
    Index nonEmptyColumnCount() const;

    /** Number of set bits in row r. */
    u64 rowOnes(Index r) const;

    /**
     * 16-bit lane slice of column c covering rows [row0, row0+16).
     *
     * Rows past the matrix edge read as zero. Bit i corresponds to row
     * row0 + i — exactly the per-DPU-lane bitmask the CAU receives.
     */
    u16 columnSlice16(Index c, Index row0) const;

    /** Element-wise OR with another mask of identical shape. */
    void orWith(const Bitmask2D &other);

    /** True when shapes and bits match. */
    bool operator==(const Bitmask2D &other) const = default;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<u64> words_;
};

} // namespace exion

#endif // EXION_TENSOR_BITMASK_H_
