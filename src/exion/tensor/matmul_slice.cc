#include "exion/tensor/matmul_slice.h"

#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>

#include "exion/common/logging.h"
#include "exion/common/numa.h"
#include "exion/common/threadpool.h"

namespace exion
{

namespace
{

/**
 * Slice helpers pre-empt queued requests: a request mid-GEMM holds a
 * worker hostage until its slices finish, so the pool should clear
 * slice work before starting anything new.
 */
constexpr i64 kSlicePriority = std::numeric_limits<i64>::max();

/**
 * Pastes the partial buffers into one m x cols result, in ascending
 * slice-index order. The ranges are disjoint, so this is a plain
 * column copy — no arithmetic, nothing to reassociate.
 */
Matrix
mergeParts(Index m, Index cols, const SlicePlan &plan,
           const std::vector<Matrix> &parts)
{
    Matrix out(m, cols);
    for (int s = 0; s < plan.slices(); ++s) {
        const SliceRange &r = plan.range(s);
        if (r.empty())
            continue;
        const Matrix &part = parts[s];
        EXION_ASSERT(part.rows() == m && part.cols() == r.n,
                     "slice ", s, " partial is ", part.rows(), "x",
                     part.cols(), ", want ", m, "x", r.n);
        for (Index i = 0; i < m; ++i)
            std::memcpy(out.rowPtr(i) + r.c0, part.rowPtr(i),
                        static_cast<size_t>(r.n) * sizeof(float));
    }
    return out;
}

} // namespace

SlicePlan
SlicePlan::make(Index cols, int nSlices, Index alignElems)
{
    EXION_ASSERT(nSlices >= 1, "slice plan needs >= 1 slices, got ",
                 nSlices);
    EXION_ASSERT(alignElems >= 1, "slice alignment must be >= 1");
    SlicePlan plan;
    plan.cols_ = cols;
    plan.ranges_.resize(static_cast<size_t>(nSlices));
    const Index chunks = (cols + alignElems - 1) / alignElems;
    const Index base = nSlices > 0 ? chunks / nSlices : 0;
    const Index extra = nSlices > 0 ? chunks % nSlices : 0;
    Index c0 = 0;
    for (int s = 0; s < nSlices; ++s) {
        const Index nChunks =
            base + (static_cast<Index>(s) < extra ? 1 : 0);
        Index c1 = c0 + nChunks * alignElems;
        if (c1 > cols)
            c1 = cols;
        plan.ranges_[static_cast<size_t>(s)] = {c0, c1 - c0};
        if (c1 > c0)
            ++plan.nonEmpty_;
        c0 = c1;
    }
    EXION_ASSERT(c0 == cols, "slice plan covers ", c0, " of ", cols,
                 " columns");
    return plan;
}

void
SerialSliceRunner::run(int nTasks, const std::function<void(int)> &fn)
{
    for (int s = 0; s < nTasks; ++s)
        fn(s);
}

PoolSliceRunner::PoolSliceRunner(ThreadPool &pool) : pool_(&pool) {}

void
PoolSliceRunner::setSliceCpus(std::vector<std::vector<int>> cpuSets)
{
    sliceCpus_ = std::move(cpuSets);
}

void
PoolSliceRunner::run(int nTasks, const std::function<void(int)> &fn)
{
    if (nTasks <= 0)
        return;
    if (nTasks == 1) {
        fn(0);
        return;
    }

    /** Shared fork-join state; helpers hold it past run()'s return. */
    struct Join
    {
        std::atomic<int> next{0}; //!< next unclaimed slice
        std::atomic<int> done{0}; //!< slices fully computed
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto join = std::make_shared<Join>();
    const int n = nTasks;

    // Claim-loop shared by helpers and the caller. Work distribution
    // is an atomic counter, so a helper that never gets scheduled
    // simply loses every claim to the caller — the join can always
    // complete on the caller's thread alone (deadlock-free even when
    // the caller *is* a pool worker and the pool is saturated).
    auto claim = [this, join, n](const std::function<void(int)> &body,
                                 bool isHelper) {
        for (;;) {
            const int s = join->next.fetch_add(1);
            if (s >= n)
                break;
            if (isHelper && !sliceCpus_.empty()) {
                const std::vector<int> &cpus =
                    sliceCpus_[static_cast<size_t>(s)
                               % sliceCpus_.size()];
                if (!pinCurrentThread(cpus)
                    && !warnedAffinity_.exchange(true))
                    EXION_WARN("tensor-parallel slice affinity "
                               "unavailable; helpers stay floating");
            }
            try {
                body(s);
            } catch (...) {
                std::lock_guard<std::mutex> lock(join->mutex);
                if (!join->error)
                    join->error = std::current_exception();
            }
            if (join->done.fetch_add(1) + 1 == n) {
                std::lock_guard<std::mutex> lock(join->mutex);
                join->cv.notify_all();
            }
        }
    };

    // Helpers copy fn: one may wake after run() returned (all slices
    // claimed elsewhere), find no work and exit — but it still
    // evaluates its captures.
    try {
        for (int i = 0; i < n - 1; ++i)
            pool_->postTagged(
                [claim, fn]() { claim(fn, /*isHelper=*/true); },
                kSlicePriority);
    } catch (const ThreadPoolStopped &) {
        // Draining pool: the caller computes everything below.
    }

    claim(fn, /*isHelper=*/false);

    std::unique_lock<std::mutex> lock(join->mutex);
    join->cv.wait(lock, [&]() { return join->done.load() >= n; });
    if (join->error)
        std::rethrow_exception(join->error);
}

Matrix
sliceCols(const Matrix &b, const SliceRange &r)
{
    EXION_ASSERT(r.c0 + r.n <= b.cols(), "column slice [", r.c0, ", ",
                 r.c0 + r.n, ") out of ", b.cols(), " columns");
    if (b.rows() == 0 || r.n == 0)
        return Matrix::borrowStrided(nullptr, b.rows(), r.n,
                                     r.n > 0 ? r.n : b.rowStride());
    return Matrix::borrowStrided(b.rowPtr(0) + r.c0, b.rows(), r.n,
                                 b.rowStride());
}

QuantMatrix
sliceCols(const QuantMatrix &q, const SliceRange &r)
{
    EXION_ASSERT(r.c0 + r.n <= q.cols(), "column slice [", r.c0, ", ",
                 r.c0 + r.n, ") out of ", q.cols(), " columns");
    if (q.rows() == 0 || r.n == 0)
        return QuantMatrix::borrowStrided(nullptr, q.rows(), r.n,
                                          r.n > 0 ? r.n : q.rowStride(),
                                          q.params());
    return QuantMatrix::borrowStrided(q.rowPtr(0) + r.c0, q.rows(), r.n,
                                      q.rowStride(), q.params());
}

void
runSliced(const TpContext &tp, int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (tp.runner != nullptr && n > 1) {
        tp.runner->run(n, fn);
        return;
    }
    for (int s = 0; s < n; ++s)
        fn(s);
}

Matrix
matmulSliced(const Matrix &a, const Matrix &b, const TpContext &tp,
             GemmBackend backend, SimdTier simd)
{
    const SlicePlan plan =
        SlicePlan::make(b.cols(), tp.active() ? tp.nSlices : 1);
    if (!plan.parallel())
        return matmulWith(a, b, backend, simd);
    std::vector<Matrix> parts(static_cast<size_t>(plan.slices()));
    runSliced(tp, plan.slices(), [&](int s) {
        const SliceRange &r = plan.range(s);
        if (!r.empty())
            parts[static_cast<size_t>(s)] =
                matmulWith(a, sliceCols(b, r), backend, simd);
    });
    return mergeParts(a.rows(), b.cols(), plan, parts);
}

Matrix
matmulTransposedSliced(const Matrix &a, const Matrix &b,
                       const TpContext &tp, GemmBackend backend,
                       SimdTier simd)
{
    // Output columns are b's *rows*: a slice of a pre-transposed
    // at-rest weight is a contiguous row range.
    const SlicePlan plan =
        SlicePlan::make(b.rows(), tp.active() ? tp.nSlices : 1);
    if (!plan.parallel())
        return matmulTransposedWith(a, b, backend, simd);
    std::vector<Matrix> parts(static_cast<size_t>(plan.slices()));
    runSliced(tp, plan.slices(), [&](int s) {
        const SliceRange &r = plan.range(s);
        if (r.empty())
            return;
        const Matrix rows = Matrix::borrowStrided(
            b.rowPtr(r.c0), r.n, b.cols(), b.rowStride());
        parts[static_cast<size_t>(s)] =
            matmulTransposedWith(a, rows, backend, simd);
    });
    return mergeParts(a.rows(), b.rows(), plan, parts);
}

Matrix
matmulQuantSliced(const QuantMatrix &a, const QuantMatrix &b,
                  const TpContext &tp, GemmBackend backend,
                  SimdTier simd)
{
    const SlicePlan plan =
        SlicePlan::make(b.cols(), tp.active() ? tp.nSlices : 1);
    if (!plan.parallel())
        return matmulQuantWith(a, b, backend, simd);
    std::vector<Matrix> parts(static_cast<size_t>(plan.slices()));
    runSliced(tp, plan.slices(), [&](int s) {
        const SliceRange &r = plan.range(s);
        if (!r.empty())
            parts[static_cast<size_t>(s)] =
                matmulQuantWith(a, sliceCols(b, r), backend, simd);
    });
    return mergeParts(a.rows(), b.cols(), plan, parts);
}

} // namespace exion
