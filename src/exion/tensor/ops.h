/**
 * @file
 * Dense linear-algebra reference kernels.
 *
 * These are the golden-model implementations every accelerated or
 * sparsity-skipping path in the repository is validated against.
 *
 * Accumulation contract of the matmul family: every output element is
 * a single accumulator starting at +0.0f that adds a(i,k)*b(k,j) for
 * k ascending, with plain IEEE-754 semantics and **no zero-operand
 * skipping** — a zero activation against a NaN/Inf weight produces
 * NaN, exactly as written. (An earlier matmul() skipped a == 0.0f
 * contributions while matmulTransposed() did not, so the two golden
 * kernels could disagree under NaN/Inf or signed-zero payloads;
 * sparsity shortcuts belong in the sparsity layer, not the golden
 * model.) Consequently matmul(a, b) and
 * matmulTransposed(a, transpose(b)) agree bit for bit on every input.
 *
 * The matmul family dispatches on the process-default GemmBackend
 * (see tensor/gemm.h); all backends honour the contract above
 * bit-identically.
 */

#ifndef EXION_TENSOR_OPS_H_
#define EXION_TENSOR_OPS_H_

#include "exion/tensor/matrix.h"
#include "exion/tensor/quant_matrix.h"

namespace exion
{

/** C = A * B. @pre A.cols() == B.rows(). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A * B^T. @pre A.cols() == B.cols(). */
Matrix matmulTransposed(const Matrix &a, const Matrix &b);

/** Returns A^T. */
Matrix transpose(const Matrix &a);

/** C = A + B elementwise. @pre identical shapes. */
Matrix add(const Matrix &a, const Matrix &b);

/** C = A - B elementwise. @pre identical shapes. */
Matrix sub(const Matrix &a, const Matrix &b);

/** C = A * s elementwise. */
Matrix scale(const Matrix &a, float s);

/** Adds a row vector (1 x cols) to every row of A in place. */
void addRowVector(Matrix &a, const Matrix &row);

/**
 * Adds a row vector (1 x cols) to rows [r0, r0+n) of A in place.
 *
 * The per-row arithmetic is identical to addRowVector(), so applying
 * it segment-by-segment over a stacked matrix is bit-identical to
 * applying addRowVector() to each segment separately.
 */
void addRowVectorToRows(Matrix &a, const Matrix &row, Index r0, Index n);

/** Integer matmul on quantised operands, float accumulator output. */
Matrix matmulQuant(const QuantMatrix &a, const QuantMatrix &b);

/** Frobenius norm of A. */
double frobeniusNorm(const Matrix &a);

/** Largest |a - b| over all elements. @pre identical shapes. */
double maxAbsDiff(const Matrix &a, const Matrix &b);

/**
 * Returns rows [r0, r0+n) of A as an n x cols matrix.
 *
 * The range check (here and in sliceCols/sliceBlock/pasteRows/
 * addRowVectorToRows) is wraparound-safe: Index is unsigned, so a
 * negative r0 or n computed in caller arithmetic arrives as a huge
 * value, and a naive `r0 + n <= rows` guard would wrap right past
 * the bound it is meant to enforce.
 */
Matrix sliceRows(const Matrix &a, Index r0, Index n);

/** Returns columns [c0, c0+n) of A as a rows x n matrix. */
Matrix sliceCols(const Matrix &a, Index c0, Index n);

/**
 * Returns the nr x nc block of A at (r0, c0). Equals
 * sliceCols(sliceRows(a, r0, nr), c0, nc) without the intermediate
 * copy.
 */
Matrix sliceBlock(const Matrix &a, Index r0, Index nr, Index c0,
                  Index nc);

/** Writes the rows of src into A starting at row r0. */
void pasteRows(Matrix &a, const Matrix &src, Index r0);

} // namespace exion

#endif // EXION_TENSOR_OPS_H_
