#include "exion/tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "exion/common/rng.h"

namespace exion
{

Matrix::Matrix(Index rows, Index cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::borrow(const float *data, Index rows, Index cols)
{
    EXION_ASSERT(data != nullptr || rows * cols == 0,
                 "borrowing null storage for ", rows, "x", cols);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.view_ = data;
    return m;
}

void
Matrix::fill(float v)
{
    EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
    std::fill(data_.begin(), data_.end(), v);
}

void
Matrix::fillNormal(Rng &rng, float mean, float stddev)
{
    EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
    for (auto &v : data_)
        v = static_cast<float>(rng.normal(mean, stddev));
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

float
Matrix::maxAbs() const
{
    float out = 0.0f;
    for (float v : data())
        out = std::max(out, std::abs(v));
    return out;
}

bool
Matrix::operator==(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    const float *a = cptr();
    const float *b = other.cptr();
    for (Index i = 0; i < size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

} // namespace exion
