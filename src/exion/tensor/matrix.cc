#include "exion/tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "exion/common/rng.h"

namespace exion
{

Matrix::Matrix(Index rows, Index cols, float fill)
    : rows_(rows), cols_(cols), stride_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::borrow(const float *data, Index rows, Index cols)
{
    return borrowStrided(data, rows, cols, cols);
}

Matrix
Matrix::borrowStrided(const float *data, Index rows, Index cols,
                      Index rowStride)
{
    EXION_ASSERT(data != nullptr || rows * cols == 0,
                 "borrowing null storage for ", rows, "x", cols);
    EXION_ASSERT(rowStride >= cols, "row stride ", rowStride,
                 " narrower than ", cols, " columns");
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.stride_ = rowStride;
    m.view_ = data;
    return m;
}

void
Matrix::fill(float v)
{
    EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
    std::fill(data_.begin(), data_.end(), v);
}

void
Matrix::fillNormal(Rng &rng, float mean, float stddev)
{
    EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
    for (auto &v : data_)
        v = static_cast<float>(rng.normal(mean, stddev));
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    EXION_ASSERT(!borrowed(), "mutating a borrowed matrix");
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

float
Matrix::maxAbs() const
{
    float out = 0.0f;
    for (Index r = 0; r < rows_; ++r) {
        const float *row = rowPtr(r);
        for (Index c = 0; c < cols_; ++c)
            out = std::max(out, std::abs(row[c]));
    }
    return out;
}

bool
Matrix::operator==(const Matrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        return false;
    for (Index r = 0; r < rows_; ++r) {
        const float *a = rowPtr(r);
        const float *b = other.rowPtr(r);
        for (Index c = 0; c < cols_; ++c)
            if (a[c] != b[c])
                return false;
    }
    return true;
}

} // namespace exion
