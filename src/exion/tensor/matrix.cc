#include "exion/tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "exion/common/rng.h"

namespace exion
{

Matrix::Matrix(Index rows, Index cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Matrix::fillNormal(Rng &rng, float mean, float stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.normal(mean, stddev));
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

float
Matrix::maxAbs() const
{
    float out = 0.0f;
    for (float v : data_)
        out = std::max(out, std::abs(v));
    return out;
}

} // namespace exion
