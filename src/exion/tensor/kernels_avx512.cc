/**
 * @file
 * AVX-512F kernel table (512-bit lanes).
 *
 * Same exactness discipline as the AVX2 table: independent-element
 * float kernels with separate mul/add (no FMA), ordered-quiet
 * compares, integer reductions. The mask kernels are where AVX-512
 * shines — _mm512_cmp_ps_mask yields the 16 compare bits directly,
 * and masked loads make the ragged tail branch-free (masked-off
 * lanes load +0.0f and are excluded from the result mask, so NaN/Inf
 * beyond the tail cannot leak in).
 *
 * This TU alone is compiled with -mavx512f (plus -ffp-contract=off);
 * only called after the runtime probe confirmed AVX-512F.
 */

#include "exion/tensor/simd_dispatch.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace exion
{
namespace simd
{

namespace
{

void
axpyF32Avx512(float *out, const float *x, float a, Index n)
{
    const __m512 va = _mm512_set1_ps(a);
    Index j = 0;
    for (; j + 16 <= n; j += 16) {
        __m512 o = _mm512_loadu_ps(out + j);
        o = _mm512_add_ps(
            o, _mm512_mul_ps(va, _mm512_loadu_ps(x + j)));
        _mm512_storeu_ps(out + j, o);
    }
    if (j < n)
        axpyF32Scalar(out + j, x + j, a, n - j);
}

void
axpy4F32Avx512(float *out, const float *x0, const float *x1,
               const float *x2, const float *x3, float a0, float a1,
               float a2, float a3, Index n)
{
    const __m512 va0 = _mm512_set1_ps(a0);
    const __m512 va1 = _mm512_set1_ps(a1);
    const __m512 va2 = _mm512_set1_ps(a2);
    const __m512 va3 = _mm512_set1_ps(a3);
    Index j = 0;
    for (; j + 16 <= n; j += 16) {
        __m512 o = _mm512_loadu_ps(out + j);
        o = _mm512_add_ps(
            o, _mm512_mul_ps(va0, _mm512_loadu_ps(x0 + j)));
        o = _mm512_add_ps(
            o, _mm512_mul_ps(va1, _mm512_loadu_ps(x1 + j)));
        o = _mm512_add_ps(
            o, _mm512_mul_ps(va2, _mm512_loadu_ps(x2 + j)));
        o = _mm512_add_ps(
            o, _mm512_mul_ps(va3, _mm512_loadu_ps(x3 + j)));
        _mm512_storeu_ps(out + j, o);
    }
    if (j < n)
        axpy4F32Scalar(out + j, x0 + j, x1 + j, x2 + j, x3 + j, a0,
                       a1, a2, a3, n - j);
}

float
dotF32Avx512(const float *a, const float *b, Index n)
{
    // Fast-tier kernel: two 16-lane accumulators, reassociated.
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    Index k = 0;
    for (; k + 32 <= n; k += 32) {
        acc0 = _mm512_add_ps(
            acc0, _mm512_mul_ps(_mm512_loadu_ps(a + k),
                                _mm512_loadu_ps(b + k)));
        acc1 = _mm512_add_ps(
            acc1, _mm512_mul_ps(_mm512_loadu_ps(a + k + 16),
                                _mm512_loadu_ps(b + k + 16)));
    }
    for (; k + 16 <= n; k += 16)
        acc0 = _mm512_add_ps(
            acc0, _mm512_mul_ps(_mm512_loadu_ps(a + k),
                                _mm512_loadu_ps(b + k)));
    float total =
        _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
    for (; k < n; ++k)
        total += a[k] * b[k];
    return total;
}

i64
dotI32Avx512(const i32 *a, const i32 *b, Index n)
{
    __m512i acc = _mm512_setzero_si512();
    Index k = 0;
    for (; k + 16 <= n; k += 16) {
        const __m512i va = _mm512_loadu_si512(a + k);
        const __m512i vb = _mm512_loadu_si512(b + k);
        const __m512i even = _mm512_mul_epi32(va, vb);
        const __m512i odd = _mm512_mul_epi32(
            _mm512_srli_epi64(va, 32), _mm512_srli_epi64(vb, 32));
        acc = _mm512_add_epi64(acc, even);
        acc = _mm512_add_epi64(acc, odd);
    }
    i64 total = _mm512_reduce_add_epi64(acc);
    if (k < n)
        total += dotI32Scalar(a + k, b + k, n - k);
    return total;
}

/** Per lane: all bits at or below the leading one set. */
__m512i
spreadBelowLeadingOne(__m512i v)
{
    v = _mm512_or_si512(v, _mm512_srli_epi32(v, 1));
    v = _mm512_or_si512(v, _mm512_srli_epi32(v, 2));
    v = _mm512_or_si512(v, _mm512_srli_epi32(v, 4));
    v = _mm512_or_si512(v, _mm512_srli_epi32(v, 8));
    v = _mm512_or_si512(v, _mm512_srli_epi32(v, 16));
    return v;
}

/** Per lane: lodValue(v) — the isolated leading one (0 for 0). */
__m512i
lodValueLanes(__m512i v)
{
    const __m512i spread = spreadBelowLeadingOne(v);
    return _mm512_andnot_si512(_mm512_srli_epi32(spread, 1), spread);
}

/** Per lane: tsLodValue(v) — the two leading set bits. */
__m512i
tsLodValueLanes(__m512i v)
{
    const __m512i top = lodValueLanes(v);
    const __m512i rest = _mm512_andnot_si512(top, v);
    return _mm512_or_si512(top, lodValueLanes(rest));
}

template <__m512i (*LodLanes)(__m512i)>
i64
ldDotAvx512(const i32 *a, const i32 *b, Index n,
            i64 (*tail)(const i32 *, const i32 *, Index))
{
    __m512i acc = _mm512_setzero_si512();
    Index k = 0;
    for (; k + 16 <= n; k += 16) {
        const __m512i va = _mm512_loadu_si512(a + k);
        const __m512i vb = _mm512_loadu_si512(b + k);
        const __m512i la = LodLanes(_mm512_abs_epi32(va));
        const __m512i lb = LodLanes(_mm512_abs_epi32(vb));
        __m512i prod = _mm512_mullo_epi32(la, lb);
        const __m512i sign =
            _mm512_srai_epi32(_mm512_xor_si512(va, vb), 31);
        prod = _mm512_sub_epi32(_mm512_xor_si512(prod, sign), sign);
        acc = _mm512_add_epi64(
            acc, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(prod)));
        acc = _mm512_add_epi64(
            acc,
            _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(prod, 1)));
    }
    i64 total = _mm512_reduce_add_epi64(acc);
    if (k < n)
        total += tail(a + k, b + k, n - k);
    return total;
}

i64
ldDotSingleAvx512(const i32 *a, const i32 *b, Index n)
{
    return ldDotAvx512<lodValueLanes>(a, b, n, ldDotSingleScalar);
}

i64
ldDotTwoStepAvx512(const i32 *a, const i32 *b, Index n)
{
    return ldDotAvx512<tsLodValueLanes>(a, b, n, ldDotTwoStepScalar);
}

u64
absGreaterMask64Avx512(const float *x, float theta, Index n)
{
    const __m512 vt = _mm512_set1_ps(theta);
    const __m512i sign = _mm512_set1_epi32(0x7fffffff);
    u64 bits = 0;
    for (Index i = 0; i < n; i += 16) {
        const __mmask16 live = n - i >= 16
            ? static_cast<__mmask16>(0xffff)
            : static_cast<__mmask16>((1u << (n - i)) - 1);
        const __m512 v = _mm512_maskz_loadu_ps(live, x + i);
        const __m512 mag = _mm512_castsi512_ps(
            _mm512_and_si512(_mm512_castps_si512(v), sign));
        const __mmask16 hit =
            _mm512_mask_cmp_ps_mask(live, mag, vt, _CMP_GT_OQ);
        bits |= static_cast<u64>(hit) << i;
    }
    return bits;
}

u64
cmpGeMask64Avx512(const float *x, float threshold, Index n)
{
    const __m512 vt = _mm512_set1_ps(threshold);
    u64 bits = 0;
    for (Index i = 0; i < n; i += 16) {
        const __mmask16 live = n - i >= 16
            ? static_cast<__mmask16>(0xffff)
            : static_cast<__mmask16>((1u << (n - i)) - 1);
        const __m512 v = _mm512_maskz_loadu_ps(live, x + i);
        const __mmask16 hit =
            _mm512_mask_cmp_ps_mask(live, v, vt, _CMP_GE_OQ);
        bits |= static_cast<u64>(hit) << i;
    }
    return bits;
}

u64
popcountWordsAvx512(const u64 *w, Index n)
{
    u64 total = 0;
    for (Index i = 0; i < n; ++i)
        total += static_cast<u64>(__builtin_popcountll(w[i]));
    return total;
}

u64
andPopcountWordsAvx512(const u64 *a, const u64 *b, Index n)
{
    u64 total = 0;
    for (Index i = 0; i < n; ++i)
        total += static_cast<u64>(__builtin_popcountll(a[i] & b[i]));
    return total;
}

} // namespace

const SimdKernels *
avx512Table()
{
    static const SimdKernels table = {
        "avx512",
        axpyF32Avx512,
        axpy4F32Avx512,
        dotF32Avx512,
        dotI32Avx512,
        ldDotSingleAvx512,
        ldDotTwoStepAvx512,
        absGreaterMask64Avx512,
        cmpGeMask64Avx512,
        popcountWordsAvx512,
        andPopcountWordsAvx512,
        orWordsScalar,
    };
    return &table;
}

} // namespace simd
} // namespace exion

#else // !defined(__AVX512F__)

namespace exion
{
namespace simd
{

const SimdKernels *
avx512Table()
{
    return nullptr;
}

} // namespace simd
} // namespace exion

#endif
