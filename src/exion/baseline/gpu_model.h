/**
 * @file
 * GPU baseline performance model (Section V-B).
 *
 * Stands in for the paper's measured Jetson Orin Nano / RTX 6000 Ada /
 * A100 numbers. Per-GEMM time is the roofline maximum of compute time
 * (with a dimension-dependent efficiency; small matrices under-utilise
 * the SM array) and memory time, plus a per-kernel launch overhead.
 * Each denoising iteration additionally pays a framework overhead —
 * the dominant term for small models like MLD, which is what produces
 * the paper's three-orders-of-magnitude gaps. Average power blends
 * idle and load power by compute utilisation. All constants are
 * documented in EXPERIMENTS.md.
 */

#ifndef EXION_BASELINE_GPU_MODEL_H_
#define EXION_BASELINE_GPU_MODEL_H_

#include <string>

#include "exion/model/config.h"

namespace exion
{

/** GPU device description. */
struct GpuSpec
{
    std::string name;
    double peakTops = 0.0;       //!< dense peak (FP16/FP32 per paper)
    double bandwidthGbs = 0.0;
    double boardPowerW = 0.0;    //!< full-load board power
    double idlePowerW = 0.0;     //!< active-idle power
    double launchOverheadUs = 0.0;  //!< per-kernel launch cost
    double iterOverheadUs = 0.0; //!< per-iteration framework cost
    double m0 = 128.0;           //!< GEMM efficiency knee (rows)
    double n0 = 128.0;           //!< GEMM efficiency knee (cols)
    double k0 = 512.0;           //!< GEMM efficiency knee (depth)
    int bytesPerElement = 2;     //!< FP16 operands
};

/** NVIDIA Jetson Orin Nano (edge, Table II). */
GpuSpec edgeGpu();

/** NVIDIA RTX 6000 Ada (server, Table II). */
GpuSpec serverGpu();

/** NVIDIA A100 (Fig. 19b comparison). */
GpuSpec a100Gpu();

/** GPU run outcome. */
struct GpuRunResult
{
    double latencySeconds = 0.0;
    double energyJ = 0.0;
    OpCount denseOps = 0;

    /** Dense throughput in TOPS. */
    double effectiveTops() const;

    /** Energy efficiency in TOPS/W. */
    double topsPerWatt() const;
};

/**
 * GPU execution model.
 */
class GpuModel
{
  public:
    explicit GpuModel(const GpuSpec &spec);

    /** Time for one (m x k) * (k x n) GEMM, seconds (no launch). */
    double gemmSeconds(Index m, Index k, Index n) const;

    /** Dimension-utilisation efficiency of a GEMM. */
    double gemmEfficiency(Index m, Index k, Index n) const;

    /** Models a full diffusion run of the benchmark. */
    GpuRunResult run(const ModelConfig &model, int batch = 1) const;

    /** Device description. */
    const GpuSpec &spec() const { return spec_; }

  private:
    GpuSpec spec_;
};

} // namespace exion

#endif // EXION_BASELINE_GPU_MODEL_H_
