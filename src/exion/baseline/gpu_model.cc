#include "exion/baseline/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "exion/common/logging.h"

namespace exion
{

GpuSpec
edgeGpu()
{
    GpuSpec spec;
    spec.name = "Jetson Orin Nano";
    spec.peakTops = 40.0;
    spec.bandwidthGbs = 68.0;
    spec.boardPowerW = 15.0;
    spec.idlePowerW = 5.0;
    spec.launchOverheadUs = 30.0;
    spec.iterOverheadUs = 60000.0;
    spec.m0 = 96.0;
    spec.n0 = 96.0;
    spec.k0 = 384.0;
    return spec;
}

GpuSpec
serverGpu()
{
    GpuSpec spec;
    spec.name = "RTX 6000 Ada";
    spec.peakTops = 91.1;
    spec.bandwidthGbs = 960.0;
    spec.boardPowerW = 300.0;
    spec.idlePowerW = 65.0;
    spec.launchOverheadUs = 6.0;
    spec.iterOverheadUs = 2500.0;
    spec.m0 = 128.0;
    spec.n0 = 128.0;
    spec.k0 = 512.0;
    return spec;
}

GpuSpec
a100Gpu()
{
    GpuSpec spec;
    spec.name = "A100";
    spec.peakTops = 312.0;
    spec.bandwidthGbs = 1935.0;
    spec.boardPowerW = 400.0;
    spec.idlePowerW = 80.0;
    spec.launchOverheadUs = 5.0;
    spec.iterOverheadUs = 300.0;
    spec.m0 = 128.0;
    spec.n0 = 128.0;
    spec.k0 = 512.0;
    return spec;
}

double
GpuRunResult::effectiveTops() const
{
    if (latencySeconds <= 0.0)
        return 0.0;
    return static_cast<double>(denseOps) / latencySeconds / 1e12;
}

double
GpuRunResult::topsPerWatt() const
{
    if (energyJ <= 0.0)
        return 0.0;
    return static_cast<double>(denseOps) / 1e12 / energyJ;
}

GpuModel::GpuModel(const GpuSpec &spec) : spec_(spec)
{
}

double
GpuModel::gemmEfficiency(Index m, Index k, Index n) const
{
    auto sat = [](double x, double knee) {
        return x / (x + knee);
    };
    const double eff = sat(static_cast<double>(m), spec_.m0)
        * sat(static_cast<double>(n), spec_.n0)
        * sat(static_cast<double>(k), spec_.k0);
    // Well-tuned libraries reach ~75% of peak on large GEMMs; the
    // saturating product approaches 1, so scale by that ceiling.
    return 0.75 * eff / (sat(8192.0, spec_.m0) * sat(8192.0, spec_.n0)
                         * sat(8192.0, spec_.k0));
}

double
GpuModel::gemmSeconds(Index m, Index k, Index n) const
{
    const double flops = 2.0 * static_cast<double>(m) * k * n;
    const double eff = gemmEfficiency(m, k, n);
    const double compute = flops / (spec_.peakTops * 1e12 * eff);
    const double bytes = static_cast<double>(spec_.bytesPerElement)
        * (static_cast<double>(m) * k + static_cast<double>(k) * n
           + static_cast<double>(m) * n);
    const double memory = bytes / (spec_.bandwidthGbs * 1e9);
    return std::max(compute, memory);
}

GpuRunResult
GpuModel::run(const ModelConfig &model, int batch) const
{
    EXION_ASSERT(batch >= 1, "batch ", batch);
    GpuRunResult result;

    double iter_seconds = 0.0;
    u64 iter_kernels = 0;
    OpCount iter_ops = 0;

    for (const auto &stage : model.stages) {
        const Index rows = stage.tokens * batch;
        const Index d = stage.dModel;
        const Index dh = d / stage.nHeads;
        const Index hid = stage.ffnMult * d;

        // Transformer blocks.
        for (Index b = 0; b < stage.nBlocks; ++b) {
            // QKV projections (one fused kernel each).
            iter_seconds += 3.0 * gemmSeconds(rows, d, d);
            iter_kernels += 3;
            iter_ops += 3ull * 2 * rows * d * d;
            // Attention scores + AV, batched over heads.
            iter_seconds += static_cast<double>(batch) * stage.nHeads
                * (gemmSeconds(stage.tokens, dh, stage.tokens)
                   + gemmSeconds(stage.tokens, stage.tokens, dh));
            iter_kernels += 2;
            iter_ops += static_cast<OpCount>(batch) * stage.nHeads * 2
                * (2ull * stage.tokens * dh * stage.tokens);
            // Softmax + output projection.
            iter_kernels += 2;
            iter_seconds += gemmSeconds(rows, d, d);
            iter_ops += 2ull * rows * d * d;
            // FFN (two or three linears) + GELU + 2x LN + residuals.
            const int ffn1_paths = model.geglu ? 2 : 1;
            iter_seconds += ffn1_paths * gemmSeconds(rows, d, hid)
                + gemmSeconds(rows, hid, d);
            iter_kernels += ffn1_paths + 1 + 5;
            iter_ops += (ffn1_paths + 1) * 2ull * rows * d * hid;
        }

        // ResBlocks: two conv kernels plus norm/activation kernels.
        for (Index r = 0; r < stage.nResBlocks; ++r) {
            iter_seconds += 2.0 * gemmSeconds(rows, 9 * d, d);
            iter_kernels += 2 + 3;
            iter_ops += 2ull * 2 * rows * 9 * d * d;
        }
    }

    // In/out projections and scheduler update.
    iter_seconds += gemmSeconds(model.latentTokens * batch,
                                model.latentDim,
                                model.stages.front().dModel)
        + gemmSeconds(model.latentTokens * batch,
                      model.stages.back().dModel, model.latentDim);
    iter_kernels += 4;
    iter_ops += 2ull * model.latentTokens * batch
        * (model.latentDim * model.stages.front().dModel
           + model.stages.back().dModel * model.latentDim);

    const double launch = static_cast<double>(iter_kernels)
        * spec_.launchOverheadUs * 1e-6;
    const double overhead = spec_.iterOverheadUs * 1e-6;
    const double per_iter = iter_seconds + launch + overhead;

    result.latencySeconds = per_iter * model.iterations;
    result.denseOps = iter_ops * static_cast<OpCount>(model.iterations);

    // Average power: idle floor plus load share by compute occupancy.
    const double busy_fraction =
        per_iter > 0.0 ? iter_seconds / per_iter : 0.0;
    // Any kernel activity keeps clocks/fabric up: a 25% load floor
    // applies whenever the device is executing at all.
    const double avg_power = spec_.idlePowerW
        + (spec_.boardPowerW - spec_.idlePowerW)
              * std::min(1.0, 0.25 + busy_fraction);
    result.energyJ = result.latencySeconds * avg_power;
    return result;
}

} // namespace exion
