#include "exion/baseline/cambricon_d.h"

#include "exion/common/logging.h"

namespace exion
{

CambriconDModel::CambriconDModel()
{
    // DiT has no conv work, pinning the transformer rate at the
    // published 3.3x. The conv rate is then set so a conv-dominated
    // UNet lands at the published 7.9x on Stable Diffusion.
    transformerRate_ = 3.3;
    convRate_ = 14.0;
}

double
CambriconDModel::speedupOverA100(const ModelConfig &model) const
{
    const OpBreakdown ops = countOpsPerIteration(model);
    const double total = static_cast<double>(ops.total());
    EXION_ASSERT(total > 0.0, "empty model");
    const double conv_frac = static_cast<double>(ops.etc) / total;
    const double transformer_frac = 1.0 - conv_frac;
    // Amdahl composition of the two acceleration rates.
    return 1.0
        / (conv_frac / convRate_ + transformer_frac / transformerRate_);
}

} // namespace exion
