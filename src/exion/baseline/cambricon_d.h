/**
 * @file
 * Cambricon-D analytic comparator (Fig. 19b).
 *
 * Cambricon-D (ISCA'24) applies differential acceleration to
 * convolutional layers of diffusion models. We model its speedup over
 * the A100 with a two-rate Amdahl split: convolution/ResBlock work
 * accelerates strongly, transformer work only modestly. The rates are
 * fit to the published comparison points (7.9x on Stable Diffusion,
 * 3.3x on DiT) and then applied to our models' measured op fractions —
 * reproducing the crossover the paper highlights: Cambricon-D wins on
 * conv-heavy SD, EXION wins on transformer-only DiT.
 */

#ifndef EXION_BASELINE_CAMBRICON_D_H_
#define EXION_BASELINE_CAMBRICON_D_H_

#include "exion/model/config.h"
#include "exion/model/op_counter.h"

namespace exion
{

/**
 * Cambricon-D speedup model.
 */
class CambriconDModel
{
  public:
    CambriconDModel();

    /** Speedup over the A100 for a model's op mix. */
    double speedupOverA100(const ModelConfig &model) const;

    /** Acceleration rate on conv/ResBlock work. */
    double convRate() const { return convRate_; }

    /** Acceleration rate on transformer work. */
    double transformerRate() const { return transformerRate_; }

  private:
    double convRate_;
    double transformerRate_;
};

} // namespace exion

#endif // EXION_BASELINE_CAMBRICON_D_H_
