/**
 * @file
 * A merged output tile and its control state (Fig. 9 / 11).
 *
 * One tile covers 16 lanes x 16 physical columns of the SDUE. Each
 * physical column serves up to three origin weight columns (the
 * triple-buffered WMEMs selected by w_sw). An element whose source row
 * conflicts with an already-occupied cell is displaced to another lane
 * of the same physical column; the lane's conflict vector (CV) then
 * routes that source row's input over the conflict line. A lane has a
 * single CV slot, shared by all 16 positions — the central constraint
 * the CVG resolves around.
 */

#ifndef EXION_CONMERGE_MERGED_TILE_H_
#define EXION_CONMERGE_MERGED_TILE_H_

#include <array>
#include <optional>
#include <vector>

#include "exion/conmerge/column_entry.h"

namespace exion
{

/** CV value meaning "no conflict source assigned". */
inline constexpr int kCvUnset = -1;

/**
 * Per-DPU control-map cell: where this DPU's operands come from.
 */
struct TileCell
{
    bool occupied = false;
    u8 wSlot = 0;       //!< w_sw selection: origin slot 0..2
    u8 srcLane = 0;     //!< source input row within the lane group
    Index originCol = 0; //!< original weight-matrix column

    /** i_sw selection: true = conflict line (srcLane != own lane). */
    bool
    usesConflictLine(Index lane) const
    {
        return occupied && srcLane != lane;
    }
};

/**
 * Mutable merged-tile state operated on by the CVG.
 */
class MergedTile
{
  public:
    MergedTile();

    /**
     * Installs base entries at consecutive positions, origin slot 0.
     * Elements occupy their own lanes; no conflicts can arise.
     *
     * @pre entries.size() <= kTileCols
     */
    void initBase(const std::vector<ColumnEntry> &entries);

    /** Number of positions holding at least one origin. */
    Index positionsUsed() const { return positionsUsed_; }

    /** Cell state at (lane, position). */
    const TileCell &
    cell(Index lane, Index pos) const
    {
        return cells_[lane][pos];
    }

    /** Conflict vector of a lane (kCvUnset or a source lane index). */
    int cv(Index lane) const { return cv_[lane]; }

    /** Origin entry in (position, slot), when present. */
    const std::optional<ColumnEntry> &
    origin(Index pos, Index slot) const
    {
        return origins_[pos][slot];
    }

    /** Number of origins merged into a position. */
    Index originCount(Index pos) const;

    /** True when the cell is free. */
    bool
    isFree(Index lane, Index pos) const
    {
        return !cells_[lane][pos].occupied;
    }

    /**
     * True when lane's CV can route source row src_lane:
     * the slot is unset or already equals src_lane.
     */
    bool
    cvCompatible(Index lane, Index src_lane) const
    {
        return cv_[lane] == kCvUnset
            || cv_[lane] == static_cast<int>(src_lane);
    }

    /** Occupies a cell; updates the CV when displaced. */
    void place(Index lane, Index pos, Index src_lane, Index origin_col,
               Index slot);

    /** Registers a merged origin entry at (position, slot). */
    void setOrigin(Index pos, Index slot, const ColumnEntry &entry);

    /**
     * Validates all hardware constraints; panics on violation.
     * Used by tests and debug builds after CVG commits.
     */
    void checkInvariants() const;

  private:
    std::array<std::array<TileCell, kTileCols>, kLanes> cells_;
    std::array<int, kLanes> cv_;
    std::array<std::array<std::optional<ColumnEntry>, kMaxOrigins>,
               kTileCols>
        origins_;
    Index positionsUsed_ = 0;
};

} // namespace exion

#endif // EXION_CONMERGE_MERGED_TILE_H_
