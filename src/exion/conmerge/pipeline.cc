#include "exion/conmerge/pipeline.h"

#include <deque>

#include "exion/common/bitops.h"
#include "exion/common/logging.h"

namespace exion
{

double
ConMergeStats::condenseRemainingFraction() const
{
    if (matrixColumns == 0)
        return 0.0;
    return static_cast<double>(matrixNonEmptyColumns)
        / static_cast<double>(matrixColumns);
}

double
ConMergeStats::mergedRemainingFraction() const
{
    if (totalColumnSlices == 0)
        return 0.0;
    return static_cast<double>(positionsUsed)
        / static_cast<double>(totalColumnSlices);
}

void
ConMergeStats::add(const GroupResult &group)
{
    ++groups;
    totalColumnSlices += group.totalColumns;
    entriesAfterCondense += group.entries;
    positionsUsed += group.positionsUsed;
    tiles += group.tiles.size();
    mergeCycles += group.mergeCycles;
    mergeAccepted += group.mergeAccepted;
    mergeRejected += group.mergeRejected;
}

namespace
{

/**
 * Ordered entry source: sparsity classes (sorted mode) or arrival
 * order (random mode).
 */
class EntryPool
{
  public:
    EntryPool(bool sorted, Index capacity) : sorted_(sorted),
        buffer_(capacity)
    {}

    void
    pushAll(const std::vector<ColumnEntry> &entries)
    {
        for (const auto &e : entries)
            push(e);
    }

    void
    push(const ColumnEntry &entry)
    {
        if (sorted_)
            buffer_.push(entry);
        else
            fifo_.push_back(entry);
    }

    bool isEmpty() const
    {
        return sorted_ ? buffer_.isEmpty() : fifo_.empty();
    }

    Index size() const { return sorted_ ? buffer_.size() : fifo_.size(); }

    ColumnEntry
    popBase()
    {
        if (sorted_)
            return buffer_.popDensest();
        ColumnEntry e = fifo_.front();
        fifo_.pop_front();
        return e;
    }

    ColumnEntry
    popCandidate()
    {
        if (sorted_)
            return buffer_.popSparsest();
        ColumnEntry e = fifo_.front();
        fifo_.pop_front();
        return e;
    }

  private:
    bool sorted_;
    SortBuffer buffer_;
    std::deque<ColumnEntry> fifo_;
};

} // namespace

ConMergePipeline::ConMergePipeline(const ConMergeConfig &cfg) : cfg_(cfg)
{
    EXION_ASSERT(cfg_.maxMergeRounds + 1 <= kMaxOrigins,
                 "merge rounds ", cfg_.maxMergeRounds,
                 " exceed origin slots");
}

GroupResult
ConMergePipeline::processGroup(const Bitmask2D &mask, Index row0) const
{
    GroupResult result;
    std::vector<ColumnEntry> entries = extractEntries(
        mask, row0, &result.totalColumns);
    result.condensedSlices = result.totalColumns - entries.size();
    result.entries = entries.size();

    EntryPool pool(cfg_.sortBySparsity, cfg_.sortBufferCapacity);
    pool.pushAll(entries);

    while (!pool.isEmpty()) {
        std::vector<ColumnEntry> base;
        base.reserve(kTileCols);
        while (base.size() < kTileCols && !pool.isEmpty())
            base.push_back(pool.popBase());

        MergedTile tile;
        tile.initBase(base);

        for (Index slot = 1; slot <= cfg_.maxMergeRounds; ++slot) {
            // Positions still open for a merge in this round. With
            // sorting the classifier identifies near-full base
            // columns (HighDense) and skips them; without sorting
            // every position is attempted blindly — the wasted
            // attempts are exactly what Fig. 12 measures.
            std::vector<u8> open(base.size(), 1);
            if (cfg_.sortBySparsity) {
                for (Index pos = 0; pos < base.size(); ++pos) {
                    if (classifySparsity(base[pos])
                        == SparsityClass::HighDense)
                        open[pos] = 0;
                }
            }

            for (Index attempt = 0;
                 attempt < cfg_.maxAttemptsPerRound; ++attempt) {
                if (pool.isEmpty())
                    break;
                std::vector<std::optional<ColumnEntry>> candidates(
                    base.size());
                bool any = false;
                for (Index pos = 0; pos < base.size(); ++pos) {
                    if (!open[pos] || pool.isEmpty())
                        continue;
                    candidates[pos] = pool.popCandidate();
                    any = true;
                }
                if (!any)
                    break;
                MergePassResult pass = cvg_.mergeBlock(tile,
                                                       candidates,
                                                       slot);
                result.mergeCycles += pass.cycles;
                result.mergeAccepted += pass.accepted;
                result.mergeRejected += pass.rejected.size();
                for (const auto &entry : pass.rejected)
                    pool.push(entry);

                // A position is closed once its slot is filled.
                bool still_open = false;
                for (Index pos = 0; pos < base.size(); ++pos) {
                    if (open[pos] && tile.origin(pos, slot))
                        open[pos] = 0;
                    still_open |= open[pos] != 0;
                }
                if (!still_open || pass.rejected.empty())
                    break;
            }
        }

        result.positionsUsed += tile.positionsUsed();
        result.tiles.push_back(std::move(tile));
    }
    return result;
}

ConMergeStats
ConMergePipeline::processMask(const Bitmask2D &mask) const
{
    ConMergeStats stats;
    processMaskInto(mask, stats);
    return stats;
}

void
ConMergePipeline::processMaskInto(const Bitmask2D &mask,
                                  ConMergeStats &into) const
{
    into.matrixColumns += mask.cols();
    into.matrixNonEmptyColumns += mask.nonEmptyColumnCount();
    const Index groups = ceilDiv(mask.rows(), kLanes);
    for (Index g = 0; g < groups; ++g)
        into.add(processGroup(mask, g * kLanes));
}

} // namespace exion
