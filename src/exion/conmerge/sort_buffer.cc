#include "exion/conmerge/sort_buffer.h"

#include "exion/common/logging.h"

namespace exion
{

SparsityClass
classifySparsity(const ColumnEntry &entry)
{
    const int ones = entry.popcount();
    if (ones >= 13)
        return SparsityClass::HighDense;
    if (ones >= 8)
        return SparsityClass::Dense;
    if (ones >= 3)
        return SparsityClass::Sparse;
    return SparsityClass::HighSparse;
}

SortBuffer::SortBuffer(Index class_capacity) : capacity_(class_capacity)
{
    EXION_ASSERT(capacity_ > 0, "sort buffer capacity");
}

bool
SortBuffer::push(const ColumnEntry &entry)
{
    if (entry.empty()) {
        ++condensed_;
        return false;
    }
    // Walk from the entry's class towards sparser classes, then the
    // extra class, until a slot is free (Fig. 13 overflow behaviour).
    int cls = static_cast<int>(classifySparsity(entry));
    while (cls < kNumClasses
           && classes_[cls].size() >= capacity_)
        ++cls;
    EXION_ASSERT(cls < kNumClasses,
                 "sort buffer exhausted (capacity ", capacity_, ")");
    classes_[cls].push_back(entry);
    return true;
}

Index
SortBuffer::pushAll(const std::vector<ColumnEntry> &entries)
{
    Index stored = 0;
    for (const auto &e : entries)
        stored += push(e) ? 1 : 0;
    return stored;
}

Index
SortBuffer::size() const
{
    Index total = 0;
    for (const auto &cls : classes_)
        total += cls.size();
    return total;
}

Index
SortBuffer::classSize(SparsityClass cls) const
{
    return classes_[static_cast<int>(cls)].size();
}

ColumnEntry
SortBuffer::popDensest()
{
    EXION_ASSERT(!isEmpty(), "popDensest on empty sort buffer");
    for (auto &cls : classes_) {
        if (!cls.empty()) {
            ColumnEntry entry = cls.front();
            cls.pop_front();
            return entry;
        }
    }
    EXION_PANIC("unreachable");
}

ColumnEntry
SortBuffer::popSparsest()
{
    EXION_ASSERT(!isEmpty(), "popSparsest on empty sort buffer");
    // Extra class holds overflow of mixed density; prefer the real
    // sparse classes first, from sparsest to densest, then extra.
    static constexpr int order[kNumClasses] = {3, 2, 1, 0, 4};
    for (int idx : order) {
        auto &cls = classes_[idx];
        if (!cls.empty()) {
            ColumnEntry entry = cls.front();
            cls.pop_front();
            return entry;
        }
    }
    EXION_PANIC("unreachable");
}

} // namespace exion
