/**
 * @file
 * End-to-end ConMerge: condensing + sorting + merging (Section III-B).
 *
 * Consumes an output-sparsity bitmask, processes each 16-row lane
 * group independently, and produces the merged tiles the SDUE executes
 * together with compaction statistics and CAU cycle counts.
 */

#ifndef EXION_CONMERGE_PIPELINE_H_
#define EXION_CONMERGE_PIPELINE_H_

#include <vector>

#include "exion/conmerge/cvg.h"
#include "exion/conmerge/sort_buffer.h"

namespace exion
{

/** Pipeline configuration. */
struct ConMergeConfig
{
    /** Sparsity-sorted pairing (Fig. 12); false = arrival order. */
    bool sortBySparsity = true;
    /** Per-class SortBuffer capacity. */
    Index sortBufferCapacity = 65536;
    /** Extra origins merged per position (<= kMaxOrigins - 1). */
    Index maxMergeRounds = 2;
    /**
     * Candidate blocks tried per merge round before giving up
     * ("merging with Block0 continues with the subsequent blocks").
     * Failed attempts cost CVG cycles — the cost sorting avoids.
     */
    Index maxAttemptsPerRound = 3;
};

/** Result of processing one 16-row lane group. */
struct GroupResult
{
    std::vector<MergedTile> tiles;
    Index totalColumns = 0;    //!< columns examined
    Index condensedSlices = 0; //!< all-zero slices dropped
    Index entries = 0;         //!< entries fed to merging
    Index positionsUsed = 0;   //!< physical columns after merging
    Cycle mergeCycles = 0;     //!< CVG cycles in this group
    Index mergeAccepted = 0;
    Index mergeRejected = 0;
};

/** Aggregated statistics over a full mask. */
struct ConMergeStats
{
    Index groups = 0;
    Index totalColumnSlices = 0; //!< columns x groups
    Index matrixColumns = 0;
    Index matrixNonEmptyColumns = 0; //!< matrix-level condensing
    Index entriesAfterCondense = 0;
    Index positionsUsed = 0;
    Index tiles = 0;
    Cycle mergeCycles = 0;
    Index mergeAccepted = 0;
    Index mergeRejected = 0;

    /** Matrix-level remaining columns after condensing (Fig. 8). */
    double condenseRemainingFraction() const;

    /** Physical columns remaining after merging (Fig. 9 / 17). */
    double mergedRemainingFraction() const;

    /** Accumulates one group's result. */
    void add(const GroupResult &group);
};

/**
 * The ConMerge data-compaction pipeline.
 */
class ConMergePipeline
{
  public:
    explicit ConMergePipeline(const ConMergeConfig &cfg = {});

    /** Processes rows [row0, row0+16) of the mask. */
    GroupResult processGroup(const Bitmask2D &mask, Index row0) const;

    /** Processes every 16-row group of the mask. */
    ConMergeStats processMask(const Bitmask2D &mask) const;

    /**
     * Processes every 16-row group of the mask, accumulating into a
     * caller-owned stats object.
     *
     * A serving layer keeps one ConMergeStats per request and feeds it
     * every per-iteration mask, so compaction accounting is explicit
     * request state rather than anything held by this (stateless,
     * thread-safe) pipeline.
     */
    void processMaskInto(const Bitmask2D &mask, ConMergeStats &into) const;

    /** Active configuration. */
    const ConMergeConfig &config() const { return cfg_; }

  private:
    ConMergeConfig cfg_;
    Cvg cvg_;
};

} // namespace exion

#endif // EXION_CONMERGE_PIPELINE_H_
