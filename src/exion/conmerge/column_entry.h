/**
 * @file
 * The 26-bit SortBuffer entry of the CAU (Fig. 13).
 *
 * While the SDUE computes a dense iteration, the CAU receives — per
 * 16-row DPU-lane group — each output column's original index (10 bits
 * in hardware) plus a 16-bit bitmask of which lanes are non-sparse.
 * All of ConMerge operates on these entries.
 */

#ifndef EXION_CONMERGE_COLUMN_ENTRY_H_
#define EXION_CONMERGE_COLUMN_ENTRY_H_

#include <vector>

#include "exion/common/types.h"
#include "exion/tensor/bitmask.h"

namespace exion
{

/** Lanes per DPU-lane group (the SDUE row dimension). */
inline constexpr Index kLanes = 16;

/** Physical columns per tile (the SDUE column dimension). */
inline constexpr Index kTileCols = 16;

/** Maximum origins per physical column (triple-buffered WMEM). */
inline constexpr Index kMaxOrigins = 3;

/**
 * One output column's occupancy within a 16-lane row group.
 */
struct ColumnEntry
{
    Index originCol = 0; //!< column index in the original weight matrix
    u16 bits = 0;        //!< lane bitmask, bit i = lane i non-sparse

    /** Number of non-sparse lanes. */
    int popcount() const;

    /** True when the whole slice is sparse (condensed away). */
    bool empty() const { return bits == 0; }

    bool operator==(const ColumnEntry &) const = default;
};

/**
 * Extracts the non-empty column entries of one 16-row group of a mask.
 *
 * Dropping the all-zero slices here is the per-tile condensing the
 * SortBuffer performs ("when data in bitmasks are all zero, those
 * inputs are not stored").
 *
 * @param mask  output-sparsity mask (1 = non-sparse)
 * @param row0  first row of the group
 * @param[out] total_columns number of columns examined
 */
std::vector<ColumnEntry> extractEntries(const Bitmask2D &mask,
                                        Index row0,
                                        Index *total_columns = nullptr);

} // namespace exion

#endif // EXION_CONMERGE_COLUMN_ENTRY_H_
