#include "exion/conmerge/cvg.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>

#include "exion/common/logging.h"

namespace exion
{

namespace
{

/** Working state of one candidate position during a merge pass. */
struct PosWork
{
    Index pos = 0;
    ColumnEntry entry;
    u16 directLanes = 0;   //!< bits placed straight at their own lane
    u16 conflictLanes = 0; //!< bits colliding with occupied cells
    bool resolved = false;
    bool rejected = false;
    /** Planned displaced placements: (source lane, dest lane). */
    std::vector<std::pair<Index, Index>> moves;
};

} // namespace

MergePassResult
Cvg::mergeBlock(MergedTile &tile,
                const std::vector<std::optional<ColumnEntry>> &candidates,
                Index slot) const
{
    EXION_ASSERT(slot >= 1 && slot < kMaxOrigins, "merge slot ", slot);
    EXION_ASSERT(candidates.size() <= kTileCols,
                 "candidate block too wide");

    MergePassResult result;
    result.cycles = 2; // SortBuffer read + bitmask map / DOF formation

    // Shared CV working copy; cells never interact across positions.
    std::array<int, kLanes> cv_state;
    for (Index lane = 0; lane < kLanes; ++lane)
        cv_state[lane] = tile.cv(lane);

    // Classify each candidate's lanes into direct and conflicting.
    std::vector<PosWork> work;
    for (Index pos = 0; pos < candidates.size(); ++pos) {
        if (!candidates[pos].has_value())
            continue;
        EXION_ASSERT(tile.originCount(pos) > 0,
                     "merging into an unused position ", pos);
        PosWork w;
        w.pos = pos;
        w.entry = *candidates[pos];
        EXION_ASSERT(!w.entry.empty(), "empty candidate entry");
        for (Index lane = 0; lane < kLanes; ++lane) {
            if (!(w.entry.bits & (1u << lane)))
                continue;
            if (tile.isFree(lane, pos))
                w.directLanes |= static_cast<u16>(1u << lane);
            else
                w.conflictLanes |= static_cast<u16>(1u << lane);
        }
        work.push_back(std::move(w));
    }

    // Resolve conflicted positions, most constrained (smallest DOF)
    // first; each position's conflicts resolve in parallel (one cycle).
    auto dof_of = [&](const PosWork &w) {
        int empties = 0;
        for (Index lane = 0; lane < kLanes; ++lane) {
            const bool cell_free = tile.isFree(lane, w.pos)
                && !(w.directLanes & (1u << lane));
            if (cell_free && cv_state[lane] == kCvUnset)
                ++empties;
        }
        int conflicts = std::popcount(
            static_cast<unsigned>(w.conflictLanes));
        return empties - conflicts;
    };

    bool pending = true;
    while (pending) {
        pending = false;
        int best_dof = std::numeric_limits<int>::max();
        PosWork *best = nullptr;
        for (auto &w : work) {
            if (w.resolved || w.rejected || w.conflictLanes == 0)
                continue;
            const int dof = dof_of(w);
            if (dof < best_dof) {
                best_dof = dof;
                best = &w;
            }
        }
        if (!best)
            break;
        pending = true;
        ++result.resolutionSteps;
        ++result.cycles;

        // Tentative parallel resolution; atomic per position.
        std::array<int, kLanes> cv_tentative = cv_state;
        u16 used_dests = best->directLanes;
        bool feasible = true;
        std::vector<std::pair<Index, Index>> moves;
        for (Index src = 0; src < kLanes && feasible; ++src) {
            if (!(best->conflictLanes & (1u << src)))
                continue;
            // Prefer a lane whose CV already routes this source row.
            Index dest = kLanes;
            for (Index lane = 0; lane < kLanes; ++lane) {
                const bool cell_free = tile.isFree(lane, best->pos)
                    && !(used_dests & (1u << lane));
                if (cell_free
                    && cv_tentative[lane] == static_cast<int>(src)) {
                    dest = lane;
                    break;
                }
            }
            if (dest == kLanes) {
                for (Index lane = 0; lane < kLanes; ++lane) {
                    const bool cell_free = tile.isFree(lane, best->pos)
                        && !(used_dests & (1u << lane));
                    if (cell_free && cv_tentative[lane] == kCvUnset) {
                        dest = lane;
                        break;
                    }
                }
            }
            if (dest == kLanes) {
                feasible = false;
                break;
            }
            cv_tentative[dest] = static_cast<int>(src);
            used_dests |= static_cast<u16>(1u << dest);
            moves.emplace_back(src, dest);
        }

        if (feasible) {
            cv_state = cv_tentative;
            best->moves = std::move(moves);
            best->resolved = true;
        } else {
            best->rejected = true;
        }
    }

    // Commit accepted candidates to the tile.
    ++result.cycles; // CVMEM writeback
    for (auto &w : work) {
        if (w.rejected) {
            result.rejected.push_back(w.entry);
            continue;
        }
        tile.setOrigin(w.pos, slot, w.entry);
        for (Index lane = 0; lane < kLanes; ++lane)
            if (w.directLanes & (1u << lane))
                tile.place(lane, w.pos, lane, w.entry.originCol, slot);
        for (const auto &[src, dest] : w.moves)
            tile.place(dest, w.pos, src, w.entry.originCol, slot);
        ++result.accepted;
    }
    return result;
}

} // namespace exion
