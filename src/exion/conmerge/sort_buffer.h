/**
 * @file
 * Sparsity-level classifier and SortBuffer of the CAU (Fig. 13).
 *
 * Entries are coarsely sorted into five classes by the number of
 * non-zero lane bits. A full class overflows to the next sparser
 * class, and ultimately to the extra class — matching the hardware's
 * bounded per-class banks. Reading alternates dense-most and
 * sparse-most entries so the CVG merges a dense row with a sparse row.
 */

#ifndef EXION_CONMERGE_SORT_BUFFER_H_
#define EXION_CONMERGE_SORT_BUFFER_H_

#include <array>
#include <deque>
#include <vector>

#include "exion/conmerge/column_entry.h"

namespace exion
{

/** Sparsity classes ordered dense-most first. */
enum class SparsityClass
{
    HighDense = 0,
    Dense = 1,
    Sparse = 2,
    HighSparse = 3,
    Extra = 4,
};

/** Number of ordinary classes plus the extra class. */
inline constexpr int kNumClasses = 5;

/** Classifies an entry by its non-zero lane count. */
SparsityClass classifySparsity(const ColumnEntry &entry);

/**
 * Bounded multi-class buffer with overflow-to-sparser semantics.
 */
class SortBuffer
{
  public:
    /** @param class_capacity per-class entry bound (hardware banks) */
    explicit SortBuffer(Index class_capacity = 1024);

    /**
     * Inserts an entry; empty (all-zero) entries are condensed away.
     *
     * @return false when the entry was condensed (not stored)
     */
    bool push(const ColumnEntry &entry);

    /** Bulk insert. @return number of entries stored. */
    Index pushAll(const std::vector<ColumnEntry> &entries);

    /** Total stored entries. */
    Index size() const;

    /** True when no entries remain. */
    bool isEmpty() const { return size() == 0; }

    /** Entries condensed (dropped as all-zero) so far. */
    Index condensedCount() const { return condensed_; }

    /**
     * Pops the densest stored entry.
     * @pre !isEmpty()
     */
    ColumnEntry popDensest();

    /**
     * Pops the sparsest stored entry.
     * @pre !isEmpty()
     */
    ColumnEntry popSparsest();

    /** Entries currently in a class (diagnostics / tests). */
    Index classSize(SparsityClass cls) const;

  private:
    Index capacity_;
    Index condensed_ = 0;
    std::array<std::deque<ColumnEntry>, kNumClasses> classes_;
};

} // namespace exion

#endif // EXION_CONMERGE_SORT_BUFFER_H_
