/**
 * @file
 * ConMerge Vector Generator (Fig. 14).
 *
 * Merges candidate column entries into an existing tile. Per merge
 * pass, the CVG builds the 2-bit bitmask map (00 empty / 10 occupied /
 * 01 incoming / 11 conflict), computes each position's degree of
 * freedom (usable empty cells minus conflicts), and repeatedly resolves
 * the most constrained position by moving its conflicting elements to
 * CV-compatible empty lanes in parallel. Positions whose conflicts
 * cannot be resolved reject their candidate; everything else commits.
 *
 * Cycle accounting mirrors the hardware flow: reading the SortBuffer,
 * map/DOF formation, one cycle per parallel resolution step, and a
 * writeback cycle, so the Fig. 12 sorted-vs-random comparison falls
 * out of the same code path.
 */

#ifndef EXION_CONMERGE_CVG_H_
#define EXION_CONMERGE_CVG_H_

#include <optional>
#include <vector>

#include "exion/conmerge/merged_tile.h"

namespace exion
{

/** Outcome of one block-merge pass. */
struct MergePassResult
{
    /** Candidates accepted per position (empty optional = none). */
    Index accepted = 0;
    /** Candidates rejected (returned to the SortBuffer). */
    std::vector<ColumnEntry> rejected;
    /** Cycles consumed by the pass. */
    Cycle cycles = 0;
    /** Parallel conflict-resolution steps taken. */
    Index resolutionSteps = 0;
};

/**
 * ConMerge vector generator.
 */
class Cvg
{
  public:
    /**
     * Attempts to merge one candidate per position into the tile.
     *
     * @param tile       target tile (mutated on success)
     * @param candidates one entry per position, index-aligned to tile
     *                   positions; use std::nullopt for no candidate
     * @param slot       origin slot the candidates occupy (1 or 2)
     */
    MergePassResult mergeBlock(
        MergedTile &tile,
        const std::vector<std::optional<ColumnEntry>> &candidates,
        Index slot) const;

  private:
    struct PositionState;
};

} // namespace exion

#endif // EXION_CONMERGE_CVG_H_
