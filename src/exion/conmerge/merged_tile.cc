#include "exion/conmerge/merged_tile.h"

#include "exion/common/logging.h"

namespace exion
{

MergedTile::MergedTile()
{
    cv_.fill(kCvUnset);
}

void
MergedTile::initBase(const std::vector<ColumnEntry> &entries)
{
    EXION_ASSERT(entries.size() <= kTileCols, "base block too wide: ",
                 entries.size());
    EXION_ASSERT(positionsUsed_ == 0, "initBase on a used tile");
    for (Index pos = 0; pos < entries.size(); ++pos) {
        const ColumnEntry &entry = entries[pos];
        setOrigin(pos, 0, entry);
        for (Index lane = 0; lane < kLanes; ++lane) {
            if (entry.bits & (1u << lane))
                place(lane, pos, lane, entry.originCol, 0);
        }
    }
    positionsUsed_ = entries.size();
}

Index
MergedTile::originCount(Index pos) const
{
    Index count = 0;
    for (const auto &origin : origins_[pos])
        count += origin.has_value() ? 1 : 0;
    return count;
}

void
MergedTile::place(Index lane, Index pos, Index src_lane,
                  Index origin_col, Index slot)
{
    EXION_ASSERT(lane < kLanes && pos < kTileCols && slot < kMaxOrigins,
                 "place out of range");
    TileCell &c = cells_[lane][pos];
    EXION_ASSERT(!c.occupied, "cell (", lane, ",", pos, ") occupied");
    if (src_lane != lane) {
        EXION_ASSERT(cvCompatible(lane, src_lane),
                     "CV slot of lane ", lane, " holds ", cv_[lane],
                     ", cannot route ", src_lane);
        cv_[lane] = static_cast<int>(src_lane);
    }
    c.occupied = true;
    c.wSlot = static_cast<u8>(slot);
    c.srcLane = static_cast<u8>(src_lane);
    c.originCol = origin_col;
}

void
MergedTile::setOrigin(Index pos, Index slot, const ColumnEntry &entry)
{
    EXION_ASSERT(pos < kTileCols && slot < kMaxOrigins,
                 "setOrigin out of range");
    EXION_ASSERT(!origins_[pos][slot].has_value(),
                 "origin slot (", pos, ",", slot, ") already used");
    origins_[pos][slot] = entry;
}

void
MergedTile::checkInvariants() const
{
    for (Index lane = 0; lane < kLanes; ++lane) {
        for (Index pos = 0; pos < kTileCols; ++pos) {
            const TileCell &c = cells_[lane][pos];
            if (!c.occupied)
                continue;
            // The origin this cell claims must be registered.
            const auto &origin = origins_[pos][c.wSlot];
            EXION_ASSERT(origin.has_value(),
                         "cell references unregistered origin");
            EXION_ASSERT(origin->originCol == c.originCol,
                         "cell/origin column mismatch");
            // The source row must carry this origin's bit.
            EXION_ASSERT(origin->bits & (1u << c.srcLane),
                         "cell sources a sparse element");
            // Displaced cells must be routable through the lane CV.
            if (c.srcLane != lane) {
                EXION_ASSERT(cv_[lane]
                                 == static_cast<int>(c.srcLane),
                             "conflict line without CV entry");
            }
        }
    }
    // Each origin element must appear exactly once in its position.
    for (Index pos = 0; pos < kTileCols; ++pos) {
        for (Index slot = 0; slot < kMaxOrigins; ++slot) {
            const auto &origin = origins_[pos][slot];
            if (!origin.has_value())
                continue;
            for (Index src = 0; src < kLanes; ++src) {
                if (!(origin->bits & (1u << src)))
                    continue;
                Index found = 0;
                for (Index lane = 0; lane < kLanes; ++lane) {
                    const TileCell &c = cells_[lane][pos];
                    if (c.occupied && c.wSlot == slot
                        && c.srcLane == src)
                        ++found;
                }
                EXION_ASSERT(found == 1, "origin element at pos ", pos,
                             " src ", src, " appears ", found,
                             " times");
            }
        }
    }
}

} // namespace exion
