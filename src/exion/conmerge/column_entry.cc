#include "exion/conmerge/column_entry.h"

#include <bit>

namespace exion
{

int
ColumnEntry::popcount() const
{
    return std::popcount(static_cast<unsigned>(bits));
}

std::vector<ColumnEntry>
extractEntries(const Bitmask2D &mask, Index row0, Index *total_columns)
{
    std::vector<ColumnEntry> entries;
    entries.reserve(mask.cols());
    for (Index c = 0; c < mask.cols(); ++c) {
        const u16 bits = mask.columnSlice16(c, row0);
        if (bits != 0)
            entries.push_back(ColumnEntry{c, bits});
    }
    if (total_columns)
        *total_columns = mask.cols();
    return entries;
}

} // namespace exion
