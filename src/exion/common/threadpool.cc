#include "exion/common/threadpool.h"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "exion/common/logging.h"

namespace exion
{

namespace
{

/** Mixes (pool seed, task index) into an independent task seed. */
u64
mixSeed(u64 seed, u64 index)
{
    // Jump the SplitMix64 stream by the task index, then take one
    // mixing step (which adds the golden-ratio increment itself).
    u64 x = seed + index * 0x9e3779b97f4a7c15ULL;
    return splitMix64(x);
}

} // namespace

ThreadPool::ThreadPool(int workers, u64 seed) : seed_(seed)
{
    if (workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = hw == 0 ? 1 : static_cast<int>(hw);
    }
    workers_.reserve(workers);
    try {
        for (int i = 0; i < workers; ++i)
            workers_.emplace_back([this]() { workerLoop(); });
    } catch (...) {
        // Thread start failed (e.g. task limit): stop and join the
        // workers that did start, then let the caller see the error —
        // unwinding joinable std::threads would std::terminate.
        shutdown();
        throw;
    }
}

int
ThreadPool::pinWorkers(const std::vector<std::vector<int>> &cpuSets)
{
    if (cpuSets.empty())
        return 0;
#if defined(__linux__)
    int pinned = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < workers_.size(); ++i) {
        const std::vector<int> &cpus = cpuSets[i % cpuSets.size()];
        if (cpus.empty())
            continue;
        cpu_set_t set;
        CPU_ZERO(&set);
        for (int cpu : cpus)
            if (cpu >= 0 && cpu < CPU_SETSIZE)
                CPU_SET(cpu, &set);
        const int rc = ::pthread_setaffinity_np(
            workers_[i].native_handle(), sizeof(set), &set);
        if (rc != 0) {
            EXION_WARN("pinWorkers: pthread_setaffinity_np failed for "
                       "worker ",
                       i, " (errno ", rc, "); leaving it floating");
            continue;
        }
        ++pinned;
    }
    return pinned;
#else
    EXION_WARN("pinWorkers: thread affinity unsupported on this "
               "platform; workers stay floating");
    return 0;
#endif
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void
ThreadPool::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
    // Everything accepted before shutdown began has now run: workers
    // drain the queue before exiting, and post() refuses new work once
    // stopping_ is set, so nothing can be abandoned in the queue.
    EXION_ASSERT(queue_.empty(),
                 "ThreadPool shutdown abandoned queued tasks");
}

u64
ThreadPool::submittedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

u64
ThreadPool::queuedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<u64>(queue_.size());
}

void
ThreadPool::post(std::function<void()> fn, i64 priority)
{
    postTagged(std::move(fn), priority, /*level=*/0);
}

u64
ThreadPool::postTagged(std::function<void()> fn, i64 priority, int level)
{
    u64 token;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        token = postLocked(std::move(fn), priority, level, lock);
    }
    cv_.notify_one();
    return token;
}

u64
ThreadPool::postLocked(std::function<void()> fn, i64 priority, int level,
                       std::unique_lock<std::mutex> &)
{
    // Fail loudly: a task accepted here would never run (workers
    // are exiting or gone) and its future would deadlock on get().
    if (stopping_)
        throw ThreadPoolStopped();
    const u64 token = submitted_++;
    queue_.emplace(TaskKey{priority, token},
                   QueuedTask{std::move(fn), level});
    tokenPriority_.emplace(token, priority);
    LevelDepth &depth = levels_[level];
    ++depth.current;
    depth.peak = std::max(depth.peak, depth.current);
    return token;
}

bool
ThreadPool::cancel(u64 token)
{
    // Holding the pool mutex makes the dequeue atomic against the
    // workers: either we extract the task here and it never runs, or
    // a worker already popped it and we report failure.
    std::function<void()> victim; // destroyed outside the lock
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = tokenPriority_.find(token);
        if (it == tokenPriority_.end())
            return false;
        auto node = queue_.extract(TaskKey{it->second, token});
        EXION_ASSERT(!node.empty(), "ThreadPool: token ", token,
                     " indexed but not queued");
        --levels_[node.mapped().level].current;
        tokenPriority_.erase(it);
        victim = std::move(node.mapped().fn);
    }
    return true;
}

u64
ThreadPool::queuedAtLevel(int level) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = levels_.find(level);
    return it == levels_.end() ? 0 : it->second.current;
}

void
ThreadPool::queuedAtLevels(int count, u64 *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (int level = 0; level < count; ++level) {
        const auto it = levels_.find(level);
        out[level] = it == levels_.end() ? 0 : it->second.current;
    }
}

u64
ThreadPool::peakQueuedAtLevel(int level) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = levels_.find(level);
    return it == levels_.end() ? 0 : it->second.peak;
}

u64
ThreadPool::nextTaskSeed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mixSeed(seed_, seededSubmitted_++);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            // A pause idles the workers without losing work; shutdown
            // overrides it so draining always completes.
            cv_.wait(lock, [this]() {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (queue_.empty())
                return; // stopping_ and drained
            auto node = queue_.extract(queue_.begin());
            --levels_[node.mapped().level].current;
            tokenPriority_.erase(node.key().seq);
            task = std::move(node.mapped().fn);
        }
        // packaged_task routes exceptions into the future; a raw
        // submit()-wrapped callable does the same, so task() never
        // throws here.
        task();
    }
}

} // namespace exion
