#include "exion/common/threadpool.h"

#include <utility>

#include "exion/common/logging.h"

namespace exion
{

namespace
{

/** Mixes (pool seed, task index) into an independent task seed. */
u64
mixSeed(u64 seed, u64 index)
{
    // Jump the SplitMix64 stream by the task index, then take one
    // mixing step (which adds the golden-ratio increment itself).
    u64 x = seed + index * 0x9e3779b97f4a7c15ULL;
    return splitMix64(x);
}

} // namespace

ThreadPool::ThreadPool(int workers, u64 seed) : seed_(seed)
{
    if (workers <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        workers = hw == 0 ? 1 : static_cast<int>(hw);
    }
    workers_.reserve(workers);
    try {
        for (int i = 0; i < workers; ++i)
            workers_.emplace_back([this]() { workerLoop(); });
    } catch (...) {
        // Thread start failed (e.g. task limit): stop and join the
        // workers that did start, then let the caller see the error —
        // unwinding joinable std::threads would std::terminate.
        shutdown();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void
ThreadPool::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
    // Everything accepted before shutdown began has now run: workers
    // drain the queue before exiting, and post() refuses new work once
    // stopping_ is set, so nothing can be abandoned in the queue.
    EXION_ASSERT(queue_.empty(),
                 "ThreadPool shutdown abandoned queued tasks");
}

u64
ThreadPool::submittedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

u64
ThreadPool::queuedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<u64>(queue_.size());
}

void
ThreadPool::post(std::function<void()> fn, i64 priority)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Fail loudly: a task accepted here would never run (workers
        // are exiting or gone) and its future would deadlock on get().
        if (stopping_)
            throw ThreadPoolStopped();
        queue_.emplace(TaskKey{priority, submitted_}, std::move(fn));
        ++submitted_;
    }
    cv_.notify_one();
}

u64
ThreadPool::nextTaskSeed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mixSeed(seed_, seededSubmitted_++);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            // A pause idles the workers without losing work; shutdown
            // overrides it so draining always completes.
            cv_.wait(lock, [this]() {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (queue_.empty())
                return; // stopping_ and drained
            auto node = queue_.extract(queue_.begin());
            task = std::move(node.mapped());
        }
        // packaged_task routes exceptions into the future; a raw
        // submit()-wrapped callable does the same, so task() never
        // throws here.
        task();
    }
}

} // namespace exion
