/**
 * @file
 * Read-only memory-mapped file with a heap-read fallback.
 *
 * The WeightStore maps serialized models through this layer so every
 * engine — and every process — serving the same file shares one
 * physical copy of the weight pages (the mapping is MAP_SHARED and
 * PROT_READ; the kernel's page cache is the single backing store).
 * On platforms without mmap, or when mapping fails, the file is read
 * into heap memory instead: same bytes, same API, no sharing.
 */

#ifndef EXION_COMMON_MMAP_FILE_H_
#define EXION_COMMON_MMAP_FILE_H_

#include <string>
#include <vector>

#include "exion/common/types.h"

namespace exion
{

/**
 * An open read-only file image: either an mmap'd region or a heap
 * buffer holding the file's bytes. Movable, not copyable; unmaps on
 * destruction.
 */
class MmapFile
{
  public:
    /** Empty (no file). */
    MmapFile() = default;

    ~MmapFile();

    MmapFile(MmapFile &&other) noexcept;
    MmapFile &operator=(MmapFile &&other) noexcept;

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /**
     * Opens path read-only, preferring mmap.
     *
     * With pin set, the mapped pages are additionally mlock()'d so a
     * latency-critical store can never be evicted and re-faulted
     * mid-request. Pinning is best-effort: an mlock failure (usually
     * RLIMIT_MEMLOCK) or the heap-read fallback degrades to an
     * unpinned image with a warning — never an error. pinned()
     * reports the outcome.
     *
     * @throws std::runtime_error when the file cannot be opened/read
     */
    static MmapFile open(const std::string &path, bool pin = false);

    /** First byte of the image (nullptr when empty). */
    const u8 *data() const { return data_; }

    /** Image length in bytes. */
    u64 size() const { return size_; }

    /** True when the image is an actual memory mapping (shared
        physical pages); false for the heap-read fallback. */
    bool mapped() const { return map_ != nullptr; }

    /** True when the mapping is mlock()'d in RAM (pin succeeded). */
    bool pinned() const { return pinned_; }

  private:
    void reset() noexcept;

    const u8 *data_ = nullptr;
    u64 size_ = 0;
    void *map_ = nullptr; //!< mmap base (null in heap mode)
    bool pinned_ = false; //!< pages mlock()'d (unlocked by munmap)
    std::vector<u8> heap_;
};

} // namespace exion

#endif // EXION_COMMON_MMAP_FILE_H_
