/**
 * @file
 * Bit-level primitives used by the eager-prediction log-domain path.
 *
 * The leading-one detector (LOD) approximates |x| by its most
 * significant set bit; the two-step LOD (TS-LOD, Section IV-D of the
 * paper) additionally captures the next set bit, halving the worst-case
 * approximation error at the cost of quadrupling addition operands.
 */

#ifndef EXION_COMMON_BITOPS_H_
#define EXION_COMMON_BITOPS_H_

#include <bit>
#include <cstdint>

#include "exion/common/logging.h"
#include "exion/common/types.h"

namespace exion
{

/** Sentinel for "no set bit" (value was zero). */
inline constexpr int kNoLeadingOne = -1;

/**
 * Position of the leading one of v (0 = LSB), or kNoLeadingOne.
 *
 * This is the single-step LOD of the original eager-prediction
 * hardware (FACT): v is approximated as 2^lod(v). Zero input is
 * well-defined and returns kNoLeadingOne — callers must check the
 * sentinel before using the position as a shift amount.
 */
constexpr int
leadingOne(u32 v)
{
    if (v == 0)
        return kNoLeadingOne;
    return 31 - std::countl_zero(v);
}

/** Result of a two-step leading-one detection. */
struct TsLod
{
    /** Position of the most significant set bit, or kNoLeadingOne. */
    int first = kNoLeadingOne;
    /** Position of the next set bit after clearing first, or -1. */
    int second = kNoLeadingOne;

    constexpr bool operator==(const TsLod &) const = default;
};

/**
 * Two-step leading-one detection: v ~= 2^first + 2^second.
 *
 * Used by the EPRE (Fig. 15): first conduct LOD, convert the leading
 * one to zero, then detect one more bit. Zero input yields both
 * fields at kNoLeadingOne; a power of two yields second ==
 * kNoLeadingOne.
 */
constexpr TsLod
twoStepLeadingOne(u32 v)
{
    TsLod out;
    out.first = leadingOne(v);
    if (out.first == kNoLeadingOne)
        return out;
    const u32 cleared = v & ~(u32{1} << out.first);
    out.second = leadingOne(cleared);
    return out;
}

/** Value reconstructed from a single-step LOD approximation (0 -> 0). */
constexpr u32
lodValue(u32 v)
{
    const int p = leadingOne(v);
    return p == kNoLeadingOne ? 0 : (u32{1} << p);
}

/** Value reconstructed from a TS-LOD approximation (0 -> 0). */
constexpr u32
tsLodValue(u32 v)
{
    const TsLod t = twoStepLeadingOne(v);
    u32 out = 0;
    if (t.first != kNoLeadingOne)
        out |= u32{1} << t.first;
    if (t.second != kNoLeadingOne)
        out |= u32{1} << t.second;
    return out;
}

/** Number of set bits in a 64-bit word. */
constexpr int
popcount64(u64 v)
{
    return std::popcount(v);
}

/**
 * Ceiling division. @pre den > 0; num + den - 1 must not overflow.
 *
 * den == 0 would be undefined behaviour in the division; it is
 * asserted here (and rejected at compile time in constant evaluation).
 */
constexpr u64
ceilDiv(u64 num, u64 den)
{
    EXION_ASSERT(den > 0, "ceilDiv by zero (num ", num, ")");
    return (num + den - 1) / den;
}

} // namespace exion

#endif // EXION_COMMON_BITOPS_H_
