#include "exion/common/numa.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <dirent.h>
#include <pthread.h>
#include <sched.h>
#endif

namespace exion
{

std::vector<int>
parseCpuList(const std::string &text)
{
    std::vector<int> cpus;
    size_t at = 0;
    while (at < text.size()) {
        size_t comma = text.find(',', at);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string field = text.substr(at, comma - at);
        at = comma + 1;
        if (field.empty() || field == "\n")
            continue;
        char *end = nullptr;
        const long lo = std::strtol(field.c_str(), &end, 10);
        if (end == field.c_str() || lo < 0)
            continue;
        long hi = lo;
        if (*end == '-') {
            const char *hi_begin = end + 1;
            hi = std::strtol(hi_begin, &end, 10);
            if (end == hi_begin || hi < lo)
                continue;
        }
        for (long cpu = lo; cpu <= hi; ++cpu)
            cpus.push_back(static_cast<int>(cpu));
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

std::vector<std::vector<int>>
numaNodeCpus()
{
#if defined(__linux__)
    const char *base = "/sys/devices/system/node";
    DIR *d = ::opendir(base);
    if (d == nullptr)
        return {};
    std::vector<int> node_ids;
    while (const dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() <= 4 || name.compare(0, 4, "node") != 0)
            continue;
        char *end = nullptr;
        const long id = std::strtol(name.c_str() + 4, &end, 10);
        if (*end != '\0' || id < 0)
            continue;
        node_ids.push_back(static_cast<int>(id));
    }
    ::closedir(d);
    std::sort(node_ids.begin(), node_ids.end());

    std::vector<std::vector<int>> nodes;
    for (int id : node_ids) {
        const std::string path =
            std::string(base) + "/node" + std::to_string(id)
            + "/cpulist";
        std::FILE *f = std::fopen(path.c_str(), "r");
        if (f == nullptr)
            continue;
        char buf[4096];
        std::string text;
        const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
        std::fclose(f);
        buf[n] = '\0';
        text = buf;
        std::vector<int> cpus = parseCpuList(text);
        if (!cpus.empty())
            nodes.push_back(std::move(cpus));
    }
    return nodes;
#else
    return {};
#endif
}

bool
pinCurrentThread(const std::vector<int> &cpus)
{
    if (cpus.empty())
        return false;
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    bool any = false;
    for (int cpu : cpus)
        if (cpu >= 0 && cpu < CPU_SETSIZE) {
            CPU_SET(cpu, &set);
            any = true;
        }
    if (!any)
        return false;
    return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set)
           == 0;
#else
    return false;
#endif
}

} // namespace exion
