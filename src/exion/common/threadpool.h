/**
 * @file
 * Fixed-size worker thread pool with priority scheduling and
 * deterministic task seeding.
 *
 * Tasks carry an i64 priority; workers always pull the
 * highest-priority ready task, and tasks of equal priority run in
 * submission (FIFO) order. Every submission returns a std::future that
 * carries the task's result or exception. Seeded tasks additionally
 * receive an exion::Rng whose seed depends only on the pool seed and
 * the task's submission index — never on which worker picks the task
 * up or in what order priorities drain — so randomised work is
 * bit-identical across worker counts, priorities and scheduling
 * orders.
 */

#ifndef EXION_COMMON_THREADPOOL_H_
#define EXION_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "exion/common/rng.h"
#include "exion/common/types.h"

namespace exion
{

/**
 * Thrown by submit()/submitSeeded() after shutdown() has begun.
 *
 * Submitting into a stopped pool can never complete the returned
 * future (no worker will run the task), so it fails loudly at the
 * submission site instead of deadlocking the first .get().
 */
class ThreadPoolStopped : public std::runtime_error
{
  public:
    ThreadPoolStopped()
        : std::runtime_error("ThreadPool: submit after shutdown")
    {
    }
};

/**
 * Fixed worker pool executing queued tasks, highest priority first.
 */
class ThreadPool
{
  public:
    /** Default task priority. Larger values run earlier. */
    static constexpr i64 kDefaultPriority = 0;

    /**
     * Starts the workers.
     *
     * @param workers worker threads (>= 1; 0 picks the hardware
     *                concurrency)
     * @param seed    base seed for deterministic per-task Rng streams
     */
    explicit ThreadPool(int workers = 0,
                        u64 seed = 0x2545f4914f6cdd1dULL);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueues a task; the future carries its result or exception.
     *
     * @param priority scheduling priority: larger runs earlier; equal
     *                 priorities run FIFO
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    template <typename F>
    auto submit(F &&fn, i64 priority = kDefaultPriority)
        -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); }, priority);
        return future;
    }

    /**
     * Enqueues a task that receives a deterministically seeded Rng.
     *
     * The Rng seed is derived from (pool seed, index of this seeded
     * submission), so a given submission sequence produces identical
     * draws regardless of worker count or priority-driven execution
     * order.
     *
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    template <typename F>
    auto submitSeeded(F &&fn, i64 priority = kDefaultPriority)
        -> std::future<std::invoke_result_t<F, Rng &>>
    {
        using R = std::invoke_result_t<F, Rng &>;
        const u64 task_seed = nextTaskSeed();
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(fn), task_seed]() mutable {
                Rng rng(task_seed);
                return fn(rng);
            });
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); }, priority);
        return future;
    }

    /**
     * Stops dispatching queued tasks: workers finish what they are
     * running, then idle. Submissions are still accepted. Used to
     * stage a burst of work so the priority order, not arrival order,
     * decides execution; shutdown() overrides a pause and drains.
     */
    void pause();

    /** Resumes dispatching after pause(). */
    void resume();

    /**
     * Finishes all queued tasks and stops the workers. Tasks already
     * in the queue when shutdown begins are run, never abandoned;
     * subsequent submissions throw ThreadPoolStopped. Idempotent; also
     * called by the destructor.
     */
    void shutdown();

    /** Number of worker threads. */
    int workerCount() const { return static_cast<int>(workers_.size()); }

    /** Tasks submitted so far (plain and seeded). */
    u64 submittedCount() const;

    /** Tasks accepted but not yet started. */
    u64 queuedCount() const;

  private:
    /**
     * Ready-queue key: highest priority first, FIFO (by submission
     * sequence) within a priority level.
     */
    struct TaskKey
    {
        i64 priority;
        u64 seq;

        bool operator<(const TaskKey &other) const
        {
            if (priority != other.priority)
                return priority > other.priority;
            return seq < other.seq;
        }
    };

    void post(std::function<void()> fn, i64 priority);
    u64 nextTaskSeed();
    void workerLoop();

    u64 seed_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<TaskKey, std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    u64 submitted_ = 0;
    u64 seededSubmitted_ = 0;
    bool stopping_ = false;
    bool paused_ = false;
};

} // namespace exion

#endif // EXION_COMMON_THREADPOOL_H_
