/**
 * @file
 * Fixed-size worker thread pool with deterministic task seeding.
 *
 * Tasks are queued FIFO and executed by a fixed set of workers; every
 * submission returns a std::future that carries the task's result or
 * exception. Seeded tasks additionally receive an exion::Rng whose
 * seed depends only on the pool seed and the task's submission index —
 * never on which worker picks the task up — so randomised work is
 * bit-identical across worker counts and scheduling orders.
 */

#ifndef EXION_COMMON_THREADPOOL_H_
#define EXION_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "exion/common/rng.h"
#include "exion/common/types.h"

namespace exion
{

/**
 * Fixed worker pool executing queued tasks.
 */
class ThreadPool
{
  public:
    /**
     * Starts the workers.
     *
     * @param workers worker threads (>= 1; 0 picks the hardware
     *                concurrency)
     * @param seed    base seed for deterministic per-task Rng streams
     */
    explicit ThreadPool(int workers = 0,
                        u64 seed = 0x2545f4914f6cdd1dULL);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueues a task; the future carries its result or exception.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); });
        return future;
    }

    /**
     * Enqueues a task that receives a deterministically seeded Rng.
     *
     * The Rng seed is derived from (pool seed, index of this seeded
     * submission), so a given submission sequence produces identical
     * draws regardless of worker count.
     */
    template <typename F>
    auto submitSeeded(F &&fn) -> std::future<std::invoke_result_t<F, Rng &>>
    {
        using R = std::invoke_result_t<F, Rng &>;
        const u64 task_seed = nextTaskSeed();
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(fn), task_seed]() mutable {
                Rng rng(task_seed);
                return fn(rng);
            });
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); });
        return future;
    }

    /**
     * Finishes all queued tasks and stops the workers. Subsequent
     * submissions panic. Idempotent; also called by the destructor.
     */
    void shutdown();

    /** Number of worker threads. */
    int workerCount() const { return static_cast<int>(workers_.size()); }

    /** Tasks submitted so far (plain and seeded). */
    u64 submittedCount() const;

  private:
    void post(std::function<void()> fn);
    u64 nextTaskSeed();
    void workerLoop();

    u64 seed_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    u64 submitted_ = 0;
    u64 seededSubmitted_ = 0;
    bool stopping_ = false;
};

} // namespace exion

#endif // EXION_COMMON_THREADPOOL_H_
