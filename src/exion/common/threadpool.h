/**
 * @file
 * Fixed-size worker thread pool with priority scheduling and
 * deterministic task seeding.
 *
 * Tasks carry an i64 priority; workers always pull the
 * highest-priority ready task, and tasks of equal priority run in
 * submission (FIFO) order. Every submission returns a std::future that
 * carries the task's result or exception. Seeded tasks additionally
 * receive an exion::Rng whose seed depends only on the pool seed and
 * the task's submission index — never on which worker picks the task
 * up or in what order priorities drain — so randomised work is
 * bit-identical across worker counts, priorities and scheduling
 * orders.
 *
 * For serving layers that need admission control on top of the pool,
 * postTagged() additionally tags a task with a small integer level and
 * returns a token: the pool keeps exact per-level ready-depth
 * accounting (current and peak, queryable while submitting), and
 * cancel(token) removes a not-yet-started task from the ready queue.
 */

#ifndef EXION_COMMON_THREADPOOL_H_
#define EXION_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "exion/common/rng.h"
#include "exion/common/types.h"

namespace exion
{

/**
 * Thrown by submit()/submitSeeded() after shutdown() has begun.
 *
 * Submitting into a stopped pool can never complete the returned
 * future (no worker will run the task), so it fails loudly at the
 * submission site instead of deadlocking the first .get().
 */
class ThreadPoolStopped : public std::runtime_error
{
  public:
    ThreadPoolStopped()
        : std::runtime_error("ThreadPool: submit after shutdown")
    {
    }
};

/**
 * Fixed worker pool executing queued tasks, highest priority first.
 */
class ThreadPool
{
  public:
    /** Default task priority. Larger values run earlier. */
    static constexpr i64 kDefaultPriority = 0;

    /**
     * Starts the workers.
     *
     * @param workers worker threads (>= 1; 0 picks the hardware
     *                concurrency)
     * @param seed    base seed for deterministic per-task Rng streams
     */
    explicit ThreadPool(int workers = 0,
                        u64 seed = 0x2545f4914f6cdd1dULL);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueues a task; the future carries its result or exception.
     *
     * @param priority scheduling priority: larger runs earlier; equal
     *                 priorities run FIFO
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    template <typename F>
    auto submit(F &&fn, i64 priority = kDefaultPriority)
        -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); }, priority);
        return future;
    }

    /**
     * Enqueues a task that receives a deterministically seeded Rng.
     *
     * The Rng seed is derived from (pool seed, index of this seeded
     * submission), so a given submission sequence produces identical
     * draws regardless of worker count or priority-driven execution
     * order.
     *
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    template <typename F>
    auto submitSeeded(F &&fn, i64 priority = kDefaultPriority)
        -> std::future<std::invoke_result_t<F, Rng &>>
    {
        using R = std::invoke_result_t<F, Rng &>;
        const u64 task_seed = nextTaskSeed();
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(fn), task_seed]() mutable {
                Rng rng(task_seed);
                return fn(rng);
            });
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); }, priority);
        return future;
    }

    /**
     * Enqueues a raw task tagged with an accounting level and returns
     * a token for cancel().
     *
     * The level is an arbitrary caller-chosen small integer (a
     * serving engine maps its priority classes onto levels); the pool
     * tracks how many ready tasks sit at each level so admission
     * decisions can bound per-level queue depth exactly. Plain
     * submit()/submitSeeded() tasks land on level 0.
     *
     * @return token identifying the queued task (unique for the
     *         pool's lifetime)
     * @throws ThreadPoolStopped after shutdown() has begun
     */
    u64 postTagged(std::function<void()> fn,
                   i64 priority = kDefaultPriority, int level = 0);

    /**
     * Best-effort dequeue of a not-yet-started task.
     *
     * Atomic against the workers: when this returns true the task was
     * removed from the ready queue and will never run (its level depth
     * is released); when it returns false the task already started,
     * already finished, or the token is unknown. The caller owns any
     * completion promise the task would have settled.
     */
    bool cancel(u64 token);

    /** Ready (queued, not started) tasks currently at a level. */
    u64 queuedAtLevel(int level) const;

    /**
     * Ready depths of levels [0, count) in one lock acquisition —
     * the admission-decision fast path, which needs every class's
     * depth coherently and is re-evaluated on each block-mode wake.
     *
     * @param out receives count entries
     */
    void queuedAtLevels(int count, u64 *out) const;

    /** High-water mark of queuedAtLevel() over the pool's lifetime. */
    u64 peakQueuedAtLevel(int level) const;

    /**
     * Stops dispatching queued tasks: workers finish what they are
     * running, then idle. Submissions are still accepted. Used to
     * stage a burst of work so the priority order, not arrival order,
     * decides execution; shutdown() overrides a pause and drains.
     */
    void pause();

    /** Resumes dispatching after pause(). */
    void resume();

    /**
     * Finishes all queued tasks and stops the workers. Tasks already
     * in the queue when shutdown begins are run, never abandoned;
     * subsequent submissions throw ThreadPoolStopped. Idempotent; also
     * called by the destructor.
     */
    void shutdown();

    /** Number of worker threads. */
    int workerCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Best-effort CPU affinity: pins worker thread i to the CPUs in
     * cpuSets[i % cpuSets.size()] (each entry typically one NUMA
     * node's CPU list). Platform-gated: on systems without
     * pthread_setaffinity_np this warns and pins nothing. A failed
     * pin warns and leaves that worker floating.
     *
     * @return number of workers successfully pinned
     */
    int pinWorkers(const std::vector<std::vector<int>> &cpuSets);

    /** Tasks submitted so far (plain and seeded). */
    u64 submittedCount() const;

    /** Tasks accepted but not yet started. */
    u64 queuedCount() const;

  private:
    /**
     * Ready-queue key: highest priority first, FIFO (by submission
     * sequence) within a priority level.
     */
    struct TaskKey
    {
        i64 priority;
        u64 seq;

        bool operator<(const TaskKey &other) const
        {
            if (priority != other.priority)
                return priority > other.priority;
            return seq < other.seq;
        }
    };

    /** A queued task plus the accounting level it was tagged with. */
    struct QueuedTask
    {
        std::function<void()> fn;
        int level = 0;
    };

    /** Per-level ready-depth accounting. */
    struct LevelDepth
    {
        u64 current = 0;
        u64 peak = 0;
    };

    void post(std::function<void()> fn, i64 priority);
    u64 postLocked(std::function<void()> fn, i64 priority, int level,
                   std::unique_lock<std::mutex> &lock);
    u64 nextTaskSeed();
    void workerLoop();

    u64 seed_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<TaskKey, QueuedTask> queue_;
    /** Queued (cancellable) tokens -> their priority, to rebuild the
        TaskKey for an O(log n) extraction in cancel(). */
    std::map<u64, i64> tokenPriority_;
    std::map<int, LevelDepth> levels_;
    std::vector<std::thread> workers_;
    u64 submitted_ = 0;
    u64 seededSubmitted_ = 0;
    bool stopping_ = false;
    bool paused_ = false;
};

} // namespace exion

#endif // EXION_COMMON_THREADPOOL_H_
