#include "exion/common/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "exion/common/logging.h"

namespace exion
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    EXION_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    EXION_ASSERT(cells.size() == headers_.size(),
                 "row width ", cells.size(), " vs headers ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    if (!title_.empty())
        oss << "== " << title_ << " ==\n";

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            oss << cells[c];
            if (c + 1 < cells.size()) {
                oss << std::string(widths[c] - cells[c].size() + 2, ' ');
            }
        }
        oss << '\n';
    };

    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(rule, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    for (const auto &note : notes_)
        oss << "  * " << note << '\n';
    return oss.str();
}

void
TextTable::print() const
{
    std::cout << render() << std::flush;
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatSci(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
    return buf;
}

std::string
formatRatio(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, v);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

} // namespace exion
