/**
 * @file
 * Lightweight summary statistics used across experiments.
 */

#ifndef EXION_COMMON_STATS_H_
#define EXION_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace exion
{

/**
 * Streaming accumulator (Welford) for mean/variance/min/max.
 */
class RunningStats
{
  public:
    /** Adds one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 when < 2 samples). */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** p-th percentile (p in [0,100]) via linear interpolation. */
double percentile(std::vector<double> xs, double p);

} // namespace exion

#endif // EXION_COMMON_STATS_H_
