#include "exion/common/mmap_file.h"

#include "exion/common/logging.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define EXION_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace exion
{

MmapFile::~MmapFile()
{
    reset();
}

MmapFile::MmapFile(MmapFile &&other) noexcept
    : data_(other.data_), size_(other.size_), map_(other.map_),
      pinned_(other.pinned_), heap_(std::move(other.heap_))
{
    other.data_ = nullptr;
    other.size_ = 0;
    other.map_ = nullptr;
    other.pinned_ = false;
}

MmapFile &
MmapFile::operator=(MmapFile &&other) noexcept
{
    if (this != &other) {
        reset();
        data_ = other.data_;
        size_ = other.size_;
        map_ = other.map_;
        pinned_ = other.pinned_;
        heap_ = std::move(other.heap_);
        other.data_ = nullptr;
        other.size_ = 0;
        other.map_ = nullptr;
        other.pinned_ = false;
    }
    return *this;
}

void
MmapFile::reset() noexcept
{
#ifdef EXION_HAVE_MMAP
    // munmap implicitly unlocks any mlock()'d pages of the range.
    if (map_ != nullptr)
        ::munmap(map_, size_);
#endif
    map_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    pinned_ = false;
    heap_.clear();
}

namespace
{

/** Whole-file read into a heap buffer (the no-mmap path). */
std::vector<u8>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw std::runtime_error("cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    if (len < 0) {
        std::fclose(f);
        throw std::runtime_error("cannot stat " + path);
    }
    std::fseek(f, 0, SEEK_SET);
    std::vector<u8> buf(static_cast<size_t>(len));
    const size_t got = buf.empty()
        ? 0 : std::fread(buf.data(), 1, buf.size(), f);
    std::fclose(f);
    if (got != buf.size())
        throw std::runtime_error("short read of " + path);
    return buf;
}

} // namespace

MmapFile
MmapFile::open(const std::string &path, bool pin)
{
    MmapFile out;
#ifdef EXION_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw std::runtime_error("cannot open " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw std::runtime_error("cannot stat " + path);
    }
    out.size_ = static_cast<u64>(st.st_size);
    if (out.size_ == 0) {
        // Zero-length mappings are invalid; an empty image needs no
        // storage at all.
        ::close(fd);
        return out;
    }
    void *map = ::mmap(nullptr, out.size_, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (map != MAP_FAILED) {
        out.map_ = map;
        out.data_ = static_cast<const u8 *>(map);
        if (pin) {
            // Best-effort: RLIMIT_MEMLOCK commonly forbids large
            // pins for unprivileged processes, and an unpinned
            // mapping still serves correctly — just with page-cache
            // eviction possible.
            if (::mlock(map, out.size_) == 0)
                out.pinned_ = true;
            else
                EXION_WARN("cannot mlock ", out.size_,
                           " bytes of ", path,
                           " (continuing unpinned)");
        }
        return out;
    }
    out.size_ = 0;
    // Fall through to the heap read below.
#endif
    if (pin)
        EXION_WARN("no memory mapping for ", path,
                   "; pin request ignored (heap image)");
    out.heap_ = readAll(path);
    out.data_ = out.heap_.empty() ? nullptr : out.heap_.data();
    out.size_ = out.heap_.size();
    return out;
}

} // namespace exion
