/**
 * @file
 * Deterministic random number generation.
 *
 * Xoshiro256++ keeps every experiment reproducible across platforms
 * (std::mt19937 distributions are implementation-defined). All draws in
 * the repository go through this class so a single seed pins a run.
 */

#ifndef EXION_COMMON_RNG_H_
#define EXION_COMMON_RNG_H_

#include <array>
#include <cstdint>

#include "exion/common/types.h"

namespace exion
{

/**
 * One SplitMix64 step: advances x and returns the mixed word.
 *
 * The seeding primitive behind Rng; exposed so other deterministic
 * seed derivations (e.g. per-task streams) share one implementation.
 */
u64 splitMix64(u64 &x);

/**
 * Xoshiro256++ generator with convenience draws.
 *
 * Gaussian draws use Box-Muller on the uniform stream, so sequences
 * are bit-identical across standard libraries.
 */
class Rng
{
  public:
    /** Seeds the four-word state with SplitMix64 expansion of seed. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit word. */
    u64 next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    u64 uniformInt(u64 n);

    /** Standard normal draw (Box-Muller, cached pair). */
    double normal();

    /** Normal draw with explicit mean/stddev. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

  private:
    static u64 rotl(u64 x, int k);

    std::array<u64, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace exion

#endif // EXION_COMMON_RNG_H_
