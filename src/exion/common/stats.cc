#include "exion/common/stats.h"

#include <algorithm>
#include <cmath>

#include "exion/common/logging.h"

namespace exion
{

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
percentile(std::vector<double> xs, double p)
{
    EXION_ASSERT(!xs.empty(), "percentile of empty vector");
    EXION_ASSERT(p >= 0.0 && p <= 100.0, "percentile ", p);
    std::sort(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace exion
