/**
 * @file
 * Fundamental type aliases shared across all EXION subsystems.
 */

#ifndef EXION_COMMON_TYPES_H_
#define EXION_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace exion
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated clock cycles. 64-bit: long diffusion runs overflow 32. */
using Cycle = std::uint64_t;

/** Operation (MAC counted as 2 ops) counters. */
using OpCount = std::uint64_t;

/** Energy in picojoules. Double: we mix pJ/bit and mJ totals. */
using EnergyPj = double;

/** Row/column index inside a matrix. */
using Index = std::size_t;

} // namespace exion

#endif // EXION_COMMON_TYPES_H_
