#include "exion/common/rng.h"

#include <cmath>

#include "exion/common/logging.h"

namespace exion
{

u64
splitMix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(u64 seed)
{
    u64 s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

u64
Rng::rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

u64
Rng::next()
{
    const u64 result = rotl(state_[0] + state_[3], 23) + state_[0];
    const u64 t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

u64
Rng::uniformInt(u64 n)
{
    EXION_ASSERT(n > 0, "uniformInt needs a positive bound");
    // Rejection sampling removes modulo bias.
    const u64 threshold = (~n + 1) % n;
    u64 draw;
    do {
        draw = next();
    } while (draw < threshold);
    return draw % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace exion
