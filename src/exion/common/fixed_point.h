/**
 * @file
 * Integer quantisation helpers.
 *
 * EXION's post-training quantisation (Section V-A) reduces MMUL
 * operands to INT12 (SDUE/EPRE) and keeps special functions in INT16 or
 * INT32 on the CFSE. We model symmetric per-tensor quantisation with a
 * power-free scale: q = clamp(round(x / scale)) and x' = q * scale.
 */

#ifndef EXION_COMMON_FIXED_POINT_H_
#define EXION_COMMON_FIXED_POINT_H_

#include <span>
#include <vector>

#include "exion/common/types.h"

namespace exion
{

/** Bit widths the EXION datapath uses. */
enum class IntWidth
{
    Int12, //!< SDUE / EPRE MMUL operands
    Int16, //!< CFSE two-way mode
    Int32, //!< CFSE one-way mode
};

/** Number of magnitude+sign bits for a width. */
int intWidthBits(IntWidth width);

/** Max representable value for a signed integer of the given width. */
i32 intWidthMax(IntWidth width);

/** Symmetric per-tensor quantisation parameters. */
struct QuantParams
{
    double scale = 1.0;   //!< real value represented by integer 1
    IntWidth width = IntWidth::Int12;
};

/**
 * Picks a scale so max(|x|) maps to the top of the integer range.
 *
 * @param data   values to cover
 * @param width  target width
 * @return       parameters with scale = maxAbs / intMax (1.0 if empty)
 */
QuantParams chooseQuantParams(std::span<const float> data,
                              IntWidth width);

/** Quantises one value: clamp(round(x / scale)). */
i32 quantize(float x, const QuantParams &params);

/** Dequantises one value: q * scale. */
float dequantize(i32 q, const QuantParams &params);

/** Round-trips a value through the integer grid. */
float quantizeDequantize(float x, const QuantParams &params);

/** Saturating add for an accumulator of the given width. */
i64 saturatingAdd(i64 a, i64 b, int bits);

} // namespace exion

#endif // EXION_COMMON_FIXED_POINT_H_
