/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for internal invariant violations (simulator bugs);
 * fatal() is for user-caused conditions (bad configuration). Both
 * terminate. warn()/inform() report without terminating.
 */

#ifndef EXION_COMMON_LOGGING_H_
#define EXION_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace exion
{

namespace detail
{

/** Formats a printf-free message from stream-able parts. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort: something happened that should never happen (a bug here). */
#define EXION_PANIC(...)                                                   \
    ::exion::detail::panicImpl(                                            \
        __FILE__, __LINE__, ::exion::detail::concatMessage(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to user input/config. */
#define EXION_FATAL(...)                                                   \
    ::exion::detail::fatalImpl(                                            \
        __FILE__, __LINE__, ::exion::detail::concatMessage(__VA_ARGS__))

/** Non-fatal warning about questionable but survivable conditions. */
#define EXION_WARN(...)                                                    \
    ::exion::detail::warnImpl(::exion::detail::concatMessage(__VA_ARGS__))

/** Informational status message. */
#define EXION_INFORM(...)                                                  \
    ::exion::detail::informImpl(                                           \
        ::exion::detail::concatMessage(__VA_ARGS__))

/**
 * Assert-with-message for simulator invariants. Active by default in
 * every build type; a build configured with -DEXION_ASSERTIONS=OFF
 * (which defines EXION_NO_ASSERT — the Release CI matrix entry)
 * compiles the checks out entirely. The disabled form still
 * odr-compiles the condition and message inside an if(false) so both
 * variants accept exactly the same code and no operand is reported
 * unused, but nothing is evaluated at runtime.
 */
#ifdef EXION_NO_ASSERT
#define EXION_ASSERTS_ENABLED 0
#define EXION_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (false) {                                                       \
            (void)(cond);                                                  \
            (void)::exion::detail::concatMessage(__VA_ARGS__);             \
        }                                                                  \
    } while (false)
#else
#define EXION_ASSERTS_ENABLED 1
#define EXION_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            EXION_PANIC("assertion failed: " #cond " ", __VA_ARGS__);      \
        }                                                                  \
    } while (false)
#endif

} // namespace exion

#endif // EXION_COMMON_LOGGING_H_
