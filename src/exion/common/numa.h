/**
 * @file
 * Best-effort NUMA topology discovery.
 *
 * Reads the kernel's sysfs view (the per-node `cpulist` files under
 * `/sys/devices/system/node`) instead of linking libnuma, so the
 * serving stack can
 * round-robin shard worker threads across nodes where the information
 * exists and degrade to a warning everywhere else — the same
 * best-effort contract as `--pin-weights`. On non-Linux platforms
 * (or hosts without the sysfs tree) discovery returns empty and
 * callers skip pinning.
 */

#ifndef EXION_COMMON_NUMA_H_
#define EXION_COMMON_NUMA_H_

#include <string>
#include <vector>

namespace exion
{

/**
 * Parses a kernel cpulist string ("0-3,8,10-11") into ascending CPU
 * ids. Malformed fields are skipped; an unparseable string yields an
 * empty list.
 */
std::vector<int> parseCpuList(const std::string &text);

/**
 * CPU ids of every online NUMA node, ordered by node id. Empty when
 * the platform exposes no NUMA topology (non-Linux, or sysfs
 * missing); a single-entry result means one node — pinning across
 * nodes is then pointless and callers should say so rather than pin.
 */
std::vector<std::vector<int>> numaNodeCpus();

/**
 * Best-effort affinity for the calling thread: restricts it to the
 * given CPU ids. Returns false (without warning — callers decide how
 * loudly to degrade) when the platform has no thread affinity, the
 * list is empty, or the kernel refuses the mask. Used by the
 * tensor-parallel slice runner to land a slice's helper task on its
 * assigned NUMA node.
 */
bool pinCurrentThread(const std::vector<int> &cpus);

} // namespace exion

#endif // EXION_COMMON_NUMA_H_
