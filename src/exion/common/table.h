/**
 * @file
 * ASCII table rendering for the benchmark harnesses.
 *
 * Every bench binary regenerates one paper table or figure; this
 * printer keeps their output uniform and diffable.
 */

#ifndef EXION_COMMON_TABLE_H_
#define EXION_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace exion
{

/**
 * Column-aligned text table with a title and optional footnotes.
 */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Sets the title printed above the table. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Appends a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Appends a footnote line printed below the table. */
    void addNote(std::string note);

    /** Renders the table to a string. */
    std::string render() const;

    /** Renders and writes to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

/** Formats a double with the given number of decimals. */
std::string formatDouble(double v, int decimals = 2);

/** Formats a value in engineering notation, e.g. 9.1e+07. */
std::string formatSci(double v, int decimals = 1);

/** Formats a ratio as e.g. "379.3x". */
std::string formatRatio(double v, int decimals = 1);

/** Formats a fraction as a percentage, e.g. 0.138 -> "13.8%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace exion

#endif // EXION_COMMON_TABLE_H_
