#include "exion/common/fixed_point.h"

#include <algorithm>
#include <cmath>

#include "exion/common/logging.h"

namespace exion
{

int
intWidthBits(IntWidth width)
{
    switch (width) {
      case IntWidth::Int12:
        return 12;
      case IntWidth::Int16:
        return 16;
      case IntWidth::Int32:
        return 32;
    }
    EXION_PANIC("unhandled IntWidth");
}

i32
intWidthMax(IntWidth width)
{
    const int bits = intWidthBits(width);
    return static_cast<i32>((i64{1} << (bits - 1)) - 1);
}

QuantParams
chooseQuantParams(std::span<const float> data, IntWidth width)
{
    QuantParams params;
    params.width = width;
    float max_abs = 0.0f;
    for (float v : data)
        max_abs = std::max(max_abs, std::abs(v));
    if (max_abs == 0.0f) {
        params.scale = 1.0;
    } else {
        params.scale = static_cast<double>(max_abs) / intWidthMax(width);
    }
    return params;
}

i32
quantize(float x, const QuantParams &params)
{
    const i32 max_q = intWidthMax(params.width);
    const i32 min_q = -max_q - 1;
    const double scaled = std::nearbyint(x / params.scale);
    const double clamped = std::clamp(
        scaled, static_cast<double>(min_q), static_cast<double>(max_q));
    return static_cast<i32>(clamped);
}

float
dequantize(i32 q, const QuantParams &params)
{
    return static_cast<float>(q * params.scale);
}

float
quantizeDequantize(float x, const QuantParams &params)
{
    return dequantize(quantize(x, params), params);
}

i64
saturatingAdd(i64 a, i64 b, int bits)
{
    EXION_ASSERT(bits >= 2 && bits <= 63, "accumulator width ", bits);
    const i64 max_v = (i64{1} << (bits - 1)) - 1;
    const i64 min_v = -max_v - 1;
    const i64 sum = a + b;
    return std::clamp(sum, min_v, max_v);
}

} // namespace exion
