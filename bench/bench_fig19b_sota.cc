/**
 * @file
 * Regenerates Fig. 19(b): speedup over the A100 — EXION42 versus
 * Cambricon-D on Stable Diffusion and DiT.
 *
 * The crossover the paper highlights: Cambricon-D's differential
 * acceleration wins on the conv-heavy Stable Diffusion UNet; EXION's
 * output-sparsity exploitation wins on the transformer-only DiT.
 */

#include "exion/accel/perf_model.h"
#include "exion/baseline/cambricon_d.h"
#include "exion/baseline/gpu_model.h"
#include "exion/common/table.h"

using namespace exion;

int
main()
{
    TextTable table({"Model", "A100", "Cambricon-D", "EXION42_All",
                     "Paper (C-D / EXION42)"});
    table.setTitle("Fig. 19(b) — normalized speedup over A100, "
                   "batch 1");

    GpuModel a100(a100Gpu());
    CambriconDModel cambricon;

    const struct
    {
        Benchmark benchmark;
        const char *paper;
    } cases[] = {
        {Benchmark::StableDiffusion, "7.9x / 7.0x"},
        {Benchmark::DiT, "3.3x / 5.2x"},
    };

    for (const auto &c : cases) {
        const ModelConfig model = makeConfig(c.benchmark, Scale::Full);
        const GpuRunResult gpu_run = a100.run(model, 1);
        ExionPerfModel pm(exion42(), Ablation::All);
        const RunStats stats = pm.run(model, profileFor(c.benchmark),
                                      1);
        const double exion_speedup =
            gpu_run.latencySeconds / stats.latencySeconds;
        table.addRow({
            benchmarkName(c.benchmark),
            "1.0x",
            formatRatio(cambricon.speedupOverA100(model), 1),
            formatRatio(exion_speedup, 1),
            c.paper,
        });
    }
    table.addNote("Cambricon-D modelled as two-rate Amdahl (conv vs "
                  "transformer), fit to its published points.");
    table.addNote("Expected crossover: Cambricon-D leads on SD, "
                  "EXION42 leads on DiT.");
    table.print();
    return 0;
}
