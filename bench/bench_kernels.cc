/**
 * @file
 * Google-benchmark microbenchmarks of the hot kernels: log-domain
 * products, CVG block merging, SDUE merged-tile execution, bitmask
 * extraction and quantised matmul. Not a paper artefact; standard
 * performance tracking for the library itself.
 */

#include <benchmark/benchmark.h>

#include "exion/accel/functional_device.h"
#include "exion/common/rng.h"
#include "exion/sparsity/log_domain.h"
#include "exion/sparsity/mask_synth.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

void
BM_LdProductTwoStep(benchmark::State &state)
{
    Rng rng(1);
    std::vector<i32> a(1024), b(1024);
    for (int i = 0; i < 1024; ++i) {
        a[i] = static_cast<i32>(rng.uniformInt(4096)) - 2048;
        b[i] = static_cast<i32>(rng.uniformInt(4096)) - 2048;
    }
    for (auto _ : state) {
        i64 acc = 0;
        for (int i = 0; i < 1024; ++i)
            acc += ldProduct(a[i], b[i], LodMode::TwoStep);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LdProductTwoStep);

void
BM_LdMatmul(benchmark::State &state)
{
    const Index n = state.range(0);
    Rng rng(2);
    Matrix a(n, n), b(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    for (auto _ : state) {
        Matrix c = ldMatmul(qa, qb, LodMode::TwoStep);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_LdMatmul)->Arg(32)->Arg(64);

void
BM_QuantMatmul(benchmark::State &state)
{
    const Index n = state.range(0);
    Rng rng(3);
    Matrix a(n, n), b(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    for (auto _ : state) {
        Matrix c = matmulQuant(qa, qb);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_QuantMatmul)->Arg(64)->Arg(128);

void
BM_ConMergeGroup(benchmark::State &state)
{
    const double density = static_cast<double>(state.range(0)) / 100.0;
    Rng rng(4);
    FfnMaskParams params;
    params.density = density;
    params.deadColFraction = 0.3;
    params.hotColFraction = 0.02;
    const Bitmask2D mask = synthFfnMask(16, 1024, params, rng);
    ConMergePipeline pipeline;
    for (auto _ : state) {
        GroupResult group = pipeline.processGroup(mask, 0);
        benchmark::DoNotOptimize(group.positionsUsed);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ConMergeGroup)->Arg(3)->Arg(10)->Arg(30);

void
BM_SparseMatmulViaConMerge(benchmark::State &state)
{
    Rng rng(5);
    Matrix input(64, 64), weight(64, 256);
    input.fillNormal(rng, 0.0f, 1.0f);
    weight.fillNormal(rng, 0.0f, 1.0f);
    Bitmask2D mask(64, 256);
    for (Index r = 0; r < 64; ++r)
        for (Index c = 0; c < 256; ++c)
            if (rng.bernoulli(0.1))
                mask.set(r, c, true);
    for (auto _ : state) {
        SparseMatmulResult result =
            sparseMatmulViaConMerge(input, weight, mask);
        benchmark::DoNotOptimize(result.output.data().data());
    }
}
BENCHMARK(BM_SparseMatmulViaConMerge);

void
BM_BitmaskColumnSlice(benchmark::State &state)
{
    Rng rng(6);
    Bitmask2D mask(256, 4096);
    for (int i = 0; i < 40000; ++i)
        mask.set(rng.uniformInt(256), rng.uniformInt(4096), true);
    for (auto _ : state) {
        u64 acc = 0;
        for (Index c = 0; c < 4096; ++c)
            acc += mask.columnSlice16(c, 64);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BitmaskColumnSlice);

} // namespace
} // namespace exion

BENCHMARK_MAIN();
