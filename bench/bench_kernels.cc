/**
 * @file
 * Microbenchmarks of the hot kernels: log-domain products, CVG block
 * merging, bitmask extraction, quantised matmul and the dense GEMM
 * backends. Not a paper artefact; standard performance tracking for
 * the library itself.
 *
 * Two build modes:
 *  - With Google Benchmark (EXION_HAVE_GBENCH): the usual
 *    benchmark-registered suite.
 *  - Without it: a self-timed fallback (best-of-N wall clock per
 *    kernel) so CI environments without libbenchmark still measure
 *    kernels instead of silently skipping the target.
 *
 * Both modes run the GEMM backend comparison on the paper-scale tall
 * cohort MMULs (a stacked cohort of 8 x 8-token members against
 * full-scale MLD weight shapes) and **exit nonzero if the Blocked
 * backend does not reach Reference throughput** — the regression gate
 * for the cache-blocked kernel.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "exion/accel/functional_device.h"
#include "exion/common/rng.h"
#include "exion/sparsity/log_domain.h"
#include "exion/sparsity/mask_synth.h"
#include "exion/tensor/gemm.h"
#include "exion/tensor/ops.h"

#ifdef EXION_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace exion
{
namespace
{

/**
 * Paper-scale tall cohort shapes: 8 members x 8 tokens stacked into
 * 64 activation rows against the full-scale MLD projection (256x256)
 * and FFN (256x1024, 1024x256) weights.
 */
struct GemmShape
{
    const char *name;
    Index m, k, n;
};

constexpr GemmShape kTallShapes[] = {
    {"qkv_64x256x256", 64, 256, 256},
    {"ffn1_64x256x1024", 64, 256, 1024},
    {"ffn2_64x1024x256", 64, 1024, 256},
};

/** Keeps timed results observable without Google Benchmark's
    DoNotOptimize. */
volatile float g_sink = 0.0f;

/**
 * Best-of-N wall-clock seconds for one A*B with the given backend.
 * Best-of (not mean) because a scheduling hiccup only ever adds time.
 */
double
timeMatmul(const Matrix &a, const Matrix &b, GemmBackend backend,
           int reps)
{
    double best = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const Matrix c = matmulWith(a, b, backend);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
        g_sink = g_sink + c(0, 0);
    }
    return best;
}

/**
 * The regression gate shared by both build modes: Blocked must reach
 * Reference throughput on the tall cohort MMULs, summed over the
 * three shapes (best-of-reps each, so one noisy run cannot flip the
 * verdict).
 *
 * @return true when Blocked >= Reference throughput
 */
bool
gateBlockedGemm(int reps)
{
    Rng rng(42);
    double ref_total = 0.0;
    double blocked_total = 0.0;
    std::printf("\n== GEMM backend gate: paper-scale tall cohort "
                "MMULs (best of %d) ==\n",
                reps);
    for (const GemmShape &s : kTallShapes) {
        Matrix a(s.m, s.k), b(s.k, s.n);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        const double ref =
            timeMatmul(a, b, GemmBackend::Reference, reps);
        const double blocked =
            timeMatmul(a, b, GemmBackend::Blocked, reps);
        ref_total += ref;
        blocked_total += blocked;
        std::printf("%-20s reference %8.3f ms   blocked %8.3f ms   "
                    "speedup %.2fx\n",
                    s.name, ref * 1e3, blocked * 1e3, ref / blocked);
    }
    std::printf("%-20s reference %8.3f ms   blocked %8.3f ms   "
                "speedup %.2fx\n",
                "total", ref_total * 1e3, blocked_total * 1e3,
                ref_total / blocked_total);
    if (blocked_total > ref_total) {
        std::fprintf(stderr,
                     "error: Blocked GEMM backend is slower than "
                     "Reference on the tall cohort MMULs\n");
        return false;
    }
    return true;
}

} // namespace
} // namespace exion

#ifdef EXION_HAVE_GBENCH

namespace exion
{
namespace
{

void
BM_LdProductTwoStep(benchmark::State &state)
{
    Rng rng(1);
    std::vector<i32> a(1024), b(1024);
    for (int i = 0; i < 1024; ++i) {
        a[i] = static_cast<i32>(rng.uniformInt(4096)) - 2048;
        b[i] = static_cast<i32>(rng.uniformInt(4096)) - 2048;
    }
    for (auto _ : state) {
        i64 acc = 0;
        for (int i = 0; i < 1024; ++i)
            acc += ldProduct(a[i], b[i], LodMode::TwoStep);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LdProductTwoStep);

void
BM_LdMatmul(benchmark::State &state)
{
    const Index n = state.range(0);
    Rng rng(2);
    Matrix a(n, n), b(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    for (auto _ : state) {
        Matrix c = ldMatmul(qa, qb, LodMode::TwoStep);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_LdMatmul)->Arg(32)->Arg(64);

void
BM_QuantMatmul(benchmark::State &state)
{
    const Index n = state.range(0);
    const GemmBackend backend = state.range(1) == 0
        ? GemmBackend::Reference
        : GemmBackend::Blocked;
    Rng rng(3);
    Matrix a(n, n), b(n, n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
    const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
    for (auto _ : state) {
        Matrix c = matmulQuantWith(qa, qb, backend);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_QuantMatmul)
    ->ArgsProduct({{64, 128}, {0, 1}})
    ->ArgNames({"n", "blocked"});

/** Dense float GEMM across backends on the tall cohort shapes. */
void
BM_GemmTall(benchmark::State &state)
{
    const GemmShape &shape = kTallShapes[state.range(0)];
    const GemmBackend backend = state.range(1) == 0
        ? GemmBackend::Reference
        : GemmBackend::Blocked;
    Rng rng(7);
    Matrix a(shape.m, shape.k), b(shape.k, shape.n);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        Matrix c = matmulWith(a, b, backend);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * shape.m * shape.k
                            * shape.n);
    state.SetLabel(std::string(shape.name) + "/"
                   + gemmBackendName(backend));
}
BENCHMARK(BM_GemmTall)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->ArgNames({"shape", "blocked"});

/** A * B^T (attention scores) across backends. */
void
BM_GemmTransposed(benchmark::State &state)
{
    const Index n = state.range(0);
    const GemmBackend backend = state.range(1) == 0
        ? GemmBackend::Reference
        : GemmBackend::Blocked;
    Rng rng(8);
    Matrix a(n, 256), b(n, 256);
    a.fillNormal(rng, 0.0f, 1.0f);
    b.fillNormal(rng, 0.0f, 1.0f);
    for (auto _ : state) {
        Matrix c = matmulTransposedWith(a, b, backend);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * 256);
}
BENCHMARK(BM_GemmTransposed)
    ->ArgsProduct({{64, 128}, {0, 1}})
    ->ArgNames({"rows", "blocked"});

void
BM_ConMergeGroup(benchmark::State &state)
{
    const double density = static_cast<double>(state.range(0)) / 100.0;
    Rng rng(4);
    FfnMaskParams params;
    params.density = density;
    params.deadColFraction = 0.3;
    params.hotColFraction = 0.02;
    const Bitmask2D mask = synthFfnMask(16, 1024, params, rng);
    ConMergePipeline pipeline;
    for (auto _ : state) {
        GroupResult group = pipeline.processGroup(mask, 0);
        benchmark::DoNotOptimize(group.positionsUsed);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ConMergeGroup)->Arg(3)->Arg(10)->Arg(30);

void
BM_SparseMatmulViaConMerge(benchmark::State &state)
{
    Rng rng(5);
    Matrix input(64, 64), weight(64, 256);
    input.fillNormal(rng, 0.0f, 1.0f);
    weight.fillNormal(rng, 0.0f, 1.0f);
    Bitmask2D mask(64, 256);
    for (Index r = 0; r < 64; ++r)
        for (Index c = 0; c < 256; ++c)
            if (rng.bernoulli(0.1))
                mask.set(r, c, true);
    for (auto _ : state) {
        SparseMatmulResult result =
            sparseMatmulViaConMerge(input, weight, mask);
        benchmark::DoNotOptimize(result.output.data().data());
    }
}
BENCHMARK(BM_SparseMatmulViaConMerge);

void
BM_BitmaskColumnSlice(benchmark::State &state)
{
    Rng rng(6);
    Bitmask2D mask(256, 4096);
    for (int i = 0; i < 40000; ++i)
        mask.set(rng.uniformInt(256), rng.uniformInt(4096), true);
    for (auto _ : state) {
        u64 acc = 0;
        for (Index c = 0; c < 4096; ++c)
            acc += mask.columnSlice16(c, 64);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BitmaskColumnSlice);

} // namespace
} // namespace exion

int
main(int argc, char **argv)
{
    // Accept (and strip) the repo-wide --quick flag so CI can invoke
    // every bench target uniformly; Google Benchmark would reject it.
    bool quick = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--quick")
            quick = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return exion::gateBlockedGemm(quick ? 3 : 5) ? 0 : 1;
}

#else // !EXION_HAVE_GBENCH

namespace exion
{
namespace
{

/** Best-of-N wall-clock timing of fn, printed as one table row. */
template <typename Fn>
void
timeKernel(const char *name, u64 items, int reps, Fn &&fn)
{
    double best = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    std::printf("%-32s %10.3f ms   %8.1f Mitems/s\n", name, best * 1e3,
                static_cast<double>(items) / best / 1e6);
}

void
runFallbackSuite(int reps)
{
    std::printf("bench_kernels: self-timed fallback (Google Benchmark "
                "not available at build time), best of %d\n\n",
                reps);

    {
        Rng rng(1);
        std::vector<i32> a(1024), b(1024);
        for (int i = 0; i < 1024; ++i) {
            a[i] = static_cast<i32>(rng.uniformInt(4096)) - 2048;
            b[i] = static_cast<i32>(rng.uniformInt(4096)) - 2048;
        }
        timeKernel("ld_product_two_step/1024", 1024, reps, [&] {
            i64 acc = 0;
            for (int i = 0; i < 1024; ++i)
                acc += ldProduct(a[i], b[i], LodMode::TwoStep);
            g_sink = g_sink + static_cast<float>(acc);
        });
    }

    for (Index n : {Index{64}, Index{128}}) {
        Rng rng(3);
        Matrix a(n, n), b(n, n);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        const QuantMatrix qa = QuantMatrix::fromFloat(a, IntWidth::Int12);
        const QuantMatrix qb = QuantMatrix::fromFloat(b, IntWidth::Int12);
        for (GemmBackend backend :
             {GemmBackend::Reference, GemmBackend::Blocked}) {
            char name[64];
            std::snprintf(name, sizeof(name), "quant_matmul/%zu/%s",
                          static_cast<size_t>(n),
                          gemmBackendName(backend));
            timeKernel(name, n * n * n, reps, [&] {
                const Matrix c = matmulQuantWith(qa, qb, backend);
                g_sink = g_sink + c(0, 0);
            });
        }
    }

    for (const GemmShape &s : kTallShapes) {
        Rng rng(7);
        Matrix a(s.m, s.k), b(s.k, s.n);
        a.fillNormal(rng, 0.0f, 1.0f);
        b.fillNormal(rng, 0.0f, 1.0f);
        for (GemmBackend backend :
             {GemmBackend::Reference, GemmBackend::Blocked}) {
            char name[64];
            std::snprintf(name, sizeof(name), "gemm_%s/%s", s.name,
                          gemmBackendName(backend));
            timeKernel(name, s.m * s.k * s.n, reps, [&] {
                const Matrix c = matmulWith(a, b, backend);
                g_sink = g_sink + c(0, 0);
            });
        }
    }

    {
        Rng rng(4);
        FfnMaskParams params;
        params.density = 0.1;
        params.deadColFraction = 0.3;
        params.hotColFraction = 0.02;
        const Bitmask2D mask = synthFfnMask(16, 1024, params, rng);
        ConMergePipeline pipeline;
        timeKernel("conmerge_group/density_10", 1024, reps, [&] {
            GroupResult group = pipeline.processGroup(mask, 0);
            g_sink = g_sink + static_cast<float>(group.positionsUsed);
        });
    }
}

} // namespace
} // namespace exion

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--quick")
            quick = true;
    const int reps = quick ? 3 : 5;
    exion::runFallbackSuite(reps);
    return exion::gateBlockedGemm(reps) ? 0 : 1;
}

#endif // EXION_HAVE_GBENCH
