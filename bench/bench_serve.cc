/**
 * @file
 * Serving front-door load generator: latency under throughput for
 * the HTTP API (net/http_server + serve/http_front) over a real
 * socket, in two disciplines, plus the replica-sharding throughput
 * gates.
 *
 * Closed loop — N client connections, each submitting a job and
 * waiting for its SSE stream to finish before submitting the next.
 * Sweeping N produces the latency-under-throughput curve and the
 * saturation throughput (capacity) of the engine behind the API.
 *
 * Open loop — a pool of paced sender threads submits at a *fixed*
 * aggregate arrival rate regardless of completions (the discipline
 * that exposes overload behaviour: a closed loop self-throttles, an
 * open loop does not), at 0.5x / 1x / 2x the measured capacity. A
 * single sender saturates on its own request round-trips well below
 * high target rates and silently converts the open loop back into a
 * closed one, so the pool splits the rate across senders and the
 * achieved offered rate is reported and gated (>= 95% of target).
 * Half the arrivals ride the Low priority class, so both refusal
 * paths are exercised: QueueFull (HTTP 429) at the class bound and
 * LoadShedLow (HTTP 503) past the shed watermark. A prober thread
 * polls /healthz throughout to measure responsiveness under
 * overload.
 *
 * SSE — streaming overhead is measured as *added wall-time per
 * completed job at a fixed offered load*: the same paced submission
 * stream runs with watchers attaching an SSE stream per job and with
 * watchers polling job status at 1 ms, in interleaved repeats, and
 * the best (minimum) per-repeat *median* submit-to-terminal wall is
 * compared per discipline. The watched job is a deliberately slower
 * model (a few ms of compute) so the comparison measures watching
 * cost against a meaningful wall, not sub-ms scheduler jitter.
 * (Comparing the serial throughput of the two disciplines — what
 * this harness did before — charges every scheduler wakeup and
 * connection stall entirely to SSE and produced a nonsense 1225%
 * "overhead" on a loaded CI box.) The per-iteration event contract
 * is verified on the side: every streamed job must deliver exactly
 * config().iterations progress events.
 *
 * Retry — refused submissions honour the server's Retry-After hint
 * (parsed via HttpClientResponse::retryAfterSeconds()) and must all
 * succeed after backing off, round-tripping the hint the engine
 * derived from its own queue-wait window.
 *
 * Shards — in-process (no HTTP) replica-sharding comparison on an
 * interleaved two-model burst. A strict A/B/A/B key interleave makes
 * a solo engine form no cohorts at all (absorption is priority-
 * preserving: the next-ranked non-matching request stops the
 * refill), while routing by key reassembles full cohorts per shard —
 * the mechanism the 1.3x gate pins. A second, irregular interleave
 * compares cohort-affinity against least-depth routing at equal
 * shard counts.
 *
 * Acceptance gates (exit nonzero on failure):
 *   - every closed-loop level completes work at positive throughput
 *   - every open-loop level achieves >= 95% of its target offered
 *     rate (the generator kept up)
 *   - at 2x capacity the server *sheds* (429/503 observed) rather
 *     than queueing without bound
 *   - at 2x capacity /healthz p99 stays under 1 second and no
 *     transport errors occur (responsive, not stalled)
 *   - SSE jobs deliver exactly one progress event per iteration
 *   - SSE adds < 25% wall-time per completed job at fixed load
 *   - every 429 carries a Retry-After >= 1 s and every refused
 *     submission succeeds after honouring it
 *   - 2-shard routed throughput >= 1.3x one engine at equal total
 *     workers on the interleaved burst
 *   - cohort-affinity routing >= least-depth on the same burst
 *   - the engine drains to idle after the overload run
 *
 * Writes BENCH_serve.json. --quick shrinks durations and the sweep
 * for CI; --shards N / --route POLICY serve the HTTP scenarios
 * through a ShardRouter instead of a single engine.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exion/model/config.h"
#include "exion/net/http_client.h"
#include "exion/net/http_server.h"
#include "exion/serve/batch_engine.h"
#include "exion/serve/http_front.h"
#include "exion/serve/shard_router.h"

#include "bench_util.h"

namespace
{

using namespace exion;
using Clock = std::chrono::steady_clock;

/** --tp value applied to every engine the fixtures build. */
int g_tensorParallel = 1;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double
percentileMs(std::vector<double> seconds, double p)
{
    if (seconds.empty())
        return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const double rank = p * static_cast<double>(seconds.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, seconds.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return (seconds[lo] * (1.0 - frac) + seconds[hi] * frac) * 1e3;
}

/** First integer following "\"<key>\": " in a JSON body (-1: none). */
long long
jsonInt(const std::string &body, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const size_t at = body.find(needle);
    if (at == std::string::npos)
        return -1;
    return std::atoll(body.c_str() + at + needle.size());
}

/**
 * The in-process server under test: a single engine or a shard
 * router behind the same HTTP front, selected by --shards/--route.
 */
struct Fixture
{
    std::unique_ptr<BatchEngine> solo;
    std::unique_ptr<ShardRouter> router;
    ServeBackend &backend;
    HttpFront front;
    HttpServer server;

    static BatchEngine::Options engineOptions()
    {
        BatchEngine::Options opts;
        opts.workers = 2;
        opts.queueResults = false;
        // Admission: small per-class bound so the open-loop overload
        // hits QueueFull quickly; a shed watermark above it so Low
        // arrivals are refused with LoadShedLow first. With a
        // router these bounds apply per shard.
        opts.admission.maxQueuedPerClass = 8;
        opts.admission.shedThreshold = 10;
        opts.admission.shedBelow = Priority::Normal;
        opts.tensorParallel = g_tensorParallel;
        return opts;
    }

    static HttpFront::Options frontOptions()
    {
        HttpFront::Options opts;
        opts.sseHeartbeatSeconds = 0.1;
        return opts;
    }

    static std::unique_ptr<BatchEngine> makeSolo(int shards)
    {
        if (shards > 1)
            return nullptr;
        return std::make_unique<BatchEngine>(engineOptions());
    }

    static std::unique_ptr<ShardRouter> makeRouter(int shards,
                                                   RoutePolicy policy)
    {
        if (shards <= 1)
            return nullptr;
        ShardRouter::Options opts;
        opts.shards = shards;
        // Keep the total worker budget at the solo fixture's 2, so
        // --shards compares placement, not extra cores.
        opts.shardWorkers = std::max(1, 2 / shards);
        opts.policy = policy;
        opts.engine = engineOptions();
        return std::make_unique<ShardRouter>(opts);
    }

    /**
     * Dedicated SSE-scenario model: enough work per job (~5-10 ms)
     * that the watch discipline's per-job cost — a handful of chunk
     * round-trips for SSE, 1 ms poll granularity for status — is
     * measured against a job wall time it could plausibly distort,
     * instead of against sub-millisecond protocol round-trips where
     * every scheduler wakeup swamps the comparison. The iteration
     * count (and so the progress-event count) stays small; only the
     * per-iteration compute is scaled up, so per-event streaming
     * cost does not grow with the job.
     */
    static ModelConfig slowConfig()
    {
        ModelConfig cfg = makeTinyConfig(/*tokens=*/24,
                                         /*d_model=*/64,
                                         /*n_blocks=*/2,
                                         /*iterations=*/8);
        cfg.benchmark = Benchmark::EDGE;
        return cfg;
    }

    Fixture(int shards, RoutePolicy policy)
        : solo(makeSolo(shards)), router(makeRouter(shards, policy)),
          backend(router ? static_cast<ServeBackend &>(*router)
                         : static_cast<ServeBackend &>(*solo)),
          front(backend, frontOptions()),
          server(HttpServer::Options{},
                 [this](const HttpRequest &req, ResponseWriter &w) {
                     front.handle(req, w);
                 })
    {
        if (router != nullptr) {
            router->addModel(makeTinyConfig());
            router->addModel(slowConfig());
        } else {
            solo->addModel(makeTinyConfig());
            solo->addModel(slowConfig());
        }
        server.start();
    }
};

const char *kSubmitNormal =
    "{\"benchmark\": \"MLD\", \"mode\": \"exion\"}";
const char *kSubmitLow =
    "{\"benchmark\": \"MLD\", \"mode\": \"exion\", "
    "\"priority\": \"low\"}";
const char *kSubmitSlow =
    "{\"benchmark\": \"EDGE\", \"mode\": \"exion\"}";

/**
 * Attaches the job's SSE stream and reads it to the `done` event;
 * returns the number of progress events, or -1 on protocol failure.
 */
int
streamUntilDone(HttpConnection &conn, u16 port, long long id)
{
    if (!conn.connected())
        conn = HttpConnection::connect("127.0.0.1", port);
    HttpClientResponse head;
    if (!conn.startStream("/v1/jobs/" + std::to_string(id) + "/events",
                          head)
        || head.status != 200)
        return -1;
    int events = 0;
    bool done = false;
    std::string data;
    std::string pending;
    while (conn.readStreamData(data)) {
        pending += data;
        data.clear();
        size_t at;
        while ((at = pending.find("\n\n")) != std::string::npos) {
            const std::string event = pending.substr(0, at);
            pending.erase(0, at + 2);
            if (event.rfind("event: progress", 0) == 0)
                ++events;
            else if (event.rfind("event: done", 0) == 0)
                done = true;
        }
    }
    return done ? events : -1;
}

/**
 * Submits one job and blocks on its SSE stream until the `done`
 * event; returns the number of progress events seen, or -1 on any
 * protocol failure. Reconnects the connection if it was closed.
 */
int
submitAndStream(HttpConnection &conn, u16 port)
{
    HttpClientResponse resp;
    if (!conn.connected())
        conn = HttpConnection::connect("127.0.0.1", port);
    if (!conn.request("POST", "/v1/jobs", resp, kSubmitNormal))
        return -1;
    if (resp.status != 201)
        return -1;
    const long long id = jsonInt(resp.body, "id");
    if (id < 0)
        return -1;
    return streamUntilDone(conn, port, id);
}

/** One closed-loop sweep point. */
struct ClosedLoopRow
{
    int clients = 0;
    u64 completed = 0;
    u64 errors = 0;
    double seconds = 0.0;
    double rps = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
};

ClosedLoopRow
runClosedLoop(const Fixture &fx, int clients, double duration)
{
    ClosedLoopRow row;
    row.clients = clients;
    std::atomic<u64> completed{0};
    std::atomic<u64> errors{0};
    std::mutex latMutex;
    std::vector<double> latencies;
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
            HttpConnection conn =
                HttpConnection::connect("127.0.0.1", fx.server.port());
            std::vector<double> mine;
            while (secondsSince(t0) < duration) {
                const Clock::time_point r0 = Clock::now();
                if (submitAndStream(conn, fx.server.port()) >= 0) {
                    completed.fetch_add(1);
                    mine.push_back(secondsSince(r0));
                } else {
                    errors.fetch_add(1);
                }
            }
            std::lock_guard<std::mutex> lock(latMutex);
            latencies.insert(latencies.end(), mine.begin(),
                             mine.end());
        });
    }
    for (std::thread &t : threads)
        t.join();
    row.seconds = secondsSince(t0);
    row.completed = completed.load();
    row.errors = errors.load();
    row.rps = row.seconds > 0.0
        ? static_cast<double>(row.completed) / row.seconds
        : 0.0;
    row.p50Ms = percentileMs(latencies, 0.50);
    row.p99Ms = percentileMs(latencies, 0.99);
    return row;
}

/** One open-loop rate point. */
struct OpenLoopRow
{
    double targetRps = 0.0;
    int senders = 0;
    u64 offered = 0;
    u64 accepted = 0;
    u64 rejected429 = 0;
    u64 rejected503 = 0;
    u64 transportErrors = 0;
    double seconds = 0.0;
    double achievedRps = 0.0;
    double submitP99Ms = 0.0;
    double healthzP99Ms = 0.0;
    double drainSeconds = 0.0;
};

OpenLoopRow
runOpenLoop(Fixture &fx, double targetRps, double duration)
{
    OpenLoopRow row;
    row.targetRps = targetRps;
    // A single sender tops out near 1/round-trip submissions per
    // second; split the target across enough senders that each one
    // paces comfortably below that.
    row.senders = std::max(
        2, std::min(8, static_cast<int>(std::ceil(targetRps / 800.0))));
    std::atomic<bool> probing{true};
    std::vector<double> healthz;
    // Responsiveness prober: a server that stalls under overload
    // (instead of shedding) shows up here long before any gate on
    // the submit path.
    std::thread prober([&] {
        HttpConnection conn =
            HttpConnection::connect("127.0.0.1", fx.server.port());
        while (probing.load()) {
            const Clock::time_point p0 = Clock::now();
            HttpClientResponse resp;
            if (!conn.connected())
                conn = HttpConnection::connect("127.0.0.1",
                                               fx.server.port());
            if (conn.request("GET", "/healthz", resp)
                && resp.status == 200)
                healthz.push_back(secondsSince(p0));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    struct SenderTally
    {
        u64 offered = 0;
        u64 accepted = 0;
        u64 rejected429 = 0;
        u64 rejected503 = 0;
        u64 transportErrors = 0;
        std::vector<double> submitLat;
    };
    std::vector<SenderTally> tallies(
        static_cast<size_t>(row.senders));
    const std::chrono::duration<double> interval(
        static_cast<double>(row.senders) / targetRps);
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> senders;
    for (int s = 0; s < row.senders; ++s) {
        senders.emplace_back([&, s] {
            SenderTally &tally = tallies[static_cast<size_t>(s)];
            HttpConnection conn = HttpConnection::connect(
                "127.0.0.1", fx.server.port());
            // Stagger starts so the pool's arrivals interleave
            // instead of bunching at each shared tick.
            Clock::time_point next = t0
                + std::chrono::duration_cast<Clock::duration>(
                      interval * s / row.senders);
            while (secondsSince(t0) < duration) {
                std::this_thread::sleep_until(next);
                next += std::chrono::duration_cast<Clock::duration>(
                    interval);
                ++tally.offered;
                const bool low = (tally.offered + s) % 2 == 0;
                const Clock::time_point s0 = Clock::now();
                HttpClientResponse resp;
                if (!conn.connected())
                    conn = HttpConnection::connect(
                        "127.0.0.1", fx.server.port());
                if (!conn.request("POST", "/v1/jobs", resp,
                                  low ? kSubmitLow : kSubmitNormal)) {
                    ++tally.transportErrors;
                    continue;
                }
                tally.submitLat.push_back(secondsSince(s0));
                if (resp.status == 201)
                    ++tally.accepted;
                else if (resp.status == 429)
                    ++tally.rejected429;
                else if (resp.status == 503)
                    ++tally.rejected503;
                else
                    ++tally.transportErrors;
            }
        });
    }
    for (std::thread &t : senders)
        t.join();
    row.seconds = secondsSince(t0);
    std::vector<double> submitLat;
    for (const SenderTally &tally : tallies) {
        row.offered += tally.offered;
        row.accepted += tally.accepted;
        row.rejected429 += tally.rejected429;
        row.rejected503 += tally.rejected503;
        row.transportErrors += tally.transportErrors;
        submitLat.insert(submitLat.end(), tally.submitLat.begin(),
                         tally.submitLat.end());
    }
    // Rate the offers against the nominal window, not thread-join
    // time: a sender that falls behind catches up with back-to-back
    // ticks (sleep_until in the past returns immediately), so missed
    // arrivals show up as a shortfall in the *count*; join time adds
    // only an unrelated exit tail to the denominator.
    row.achievedRps = static_cast<double>(row.offered) / duration;
    // Overload is only survived if the backlog drains once arrivals
    // stop: time it.
    const Clock::time_point d0 = Clock::now();
    fx.backend.waitIdle();
    row.drainSeconds = secondsSince(d0);
    probing.store(false);
    prober.join();
    row.submitP99Ms = percentileMs(submitLat, 0.99);
    row.healthzP99Ms = percentileMs(healthz, 0.99);
    return row;
}

/**
 * SSE cost as added wall-time per completed job at fixed offered
 * load, plus the per-iteration event contract.
 */
struct SseReport
{
    int jobs = 0;
    int repeats = 0;
    int iterations = 0;
    double offeredRps = 0.0;
    bool eventsMatch = true;
    u64 failures = 0;
    double polledWallMs = 0.0; //!< best repeat's median
    double sseWallMs = 0.0;    //!< best repeat's median

    double addedPct() const
    {
        return polledWallMs > 0.0
            ? (sseWallMs / polledWallMs - 1.0) * 100.0
            : 0.0;
    }
};

/**
 * One fixed-load phase: a pacer submits `jobs` jobs at `rate`; a
 * watcher pool observes each to its terminal state — over its SSE
 * stream when `sse`, by 1 ms status polling otherwise — and records
 * the submit-to-terminal wall time. Returns per-job wall times;
 * event-contract violations and failures land in `report`.
 */
std::vector<double>
runWatchedPhase(const Fixture &fx, int jobs, double rate, bool sse,
                SseReport &report)
{
    struct Item
    {
        long long id = 0;
        Clock::time_point submitted;
    };
    std::mutex m;
    std::condition_variable cv;
    std::deque<Item> queue;
    bool doneSubmitting = false;
    std::vector<double> walls;
    std::atomic<u64> failures{0};
    std::atomic<bool> mismatch{false};

    const int watchers = 3;
    std::vector<std::thread> pool;
    for (int w = 0; w < watchers; ++w) {
        pool.emplace_back([&] {
            HttpConnection conn = HttpConnection::connect(
                "127.0.0.1", fx.server.port());
            std::vector<double> mine;
            while (true) {
                Item item;
                {
                    std::unique_lock<std::mutex> lock(m);
                    cv.wait(lock, [&] {
                        return !queue.empty() || doneSubmitting;
                    });
                    if (queue.empty())
                        break;
                    item = queue.front();
                    queue.pop_front();
                }
                if (sse) {
                    const int events = streamUntilDone(
                        conn, fx.server.port(), item.id);
                    if (events < 0)
                        failures.fetch_add(1);
                    else if (events != report.iterations)
                        mismatch.store(true);
                    if (events >= 0)
                        mine.push_back(secondsSince(item.submitted));
                } else {
                    const std::string target =
                        "/v1/jobs/" + std::to_string(item.id);
                    bool ok = false;
                    while (true) {
                        HttpClientResponse resp;
                        if (!conn.connected())
                            conn = HttpConnection::connect(
                                "127.0.0.1", fx.server.port());
                        if (!conn.request("GET", target, resp))
                            break;
                        if (resp.body.find("\"state\": \"queued\"")
                                == std::string::npos
                            && resp.body.find(
                                   "\"state\": \"running\"")
                                == std::string::npos) {
                            ok = true;
                            break;
                        }
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    }
                    if (ok)
                        mine.push_back(secondsSince(item.submitted));
                    else
                        failures.fetch_add(1);
                }
            }
            std::lock_guard<std::mutex> lock(m);
            walls.insert(walls.end(), mine.begin(), mine.end());
        });
    }

    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", fx.server.port());
    const std::chrono::duration<double> interval(1.0 / rate);
    Clock::time_point next = Clock::now();
    for (int j = 0; j < jobs; ++j) {
        std::this_thread::sleep_until(next);
        next +=
            std::chrono::duration_cast<Clock::duration>(interval);
        HttpClientResponse resp;
        if (!conn.connected())
            conn = HttpConnection::connect("127.0.0.1",
                                           fx.server.port());
        if (!conn.request("POST", "/v1/jobs", resp, kSubmitSlow)
            || resp.status != 201) {
            failures.fetch_add(1);
            continue;
        }
        Item item;
        item.id = jsonInt(resp.body, "id");
        item.submitted = Clock::now();
        {
            std::lock_guard<std::mutex> lock(m);
            queue.push_back(item);
        }
        cv.notify_one();
    }
    {
        std::lock_guard<std::mutex> lock(m);
        doneSubmitting = true;
    }
    cv.notify_all();
    for (std::thread &t : pool)
        t.join();
    report.failures += failures.load();
    if (mismatch.load())
        report.eventsMatch = false;
    return walls;
}

SseReport
runSseScenario(const Fixture &fx, int jobs, int repeats)
{
    SseReport report;
    report.jobs = jobs;
    report.repeats = repeats;
    report.iterations = Fixture::slowConfig().iterations;
    // A fixed offered load far inside capacity — even on a one-core
    // runner where the pacer, watchers, server threads, and engine
    // workers all share the CPU: the comparison is about the cost of
    // *watching* a deliberately slow job (the EDGE model, ~5-10 ms
    // of wall time), not about overload. The two disciplines run in
    // interleaved repeats and compare best-of per-repeat medians so
    // scheduler noise on shared CI runners cannot masquerade as
    // protocol overhead.
    report.offeredRps = 25.0;

    double bestPolled = 0.0;
    double bestSse = 0.0;
    const auto medianMs = [](std::vector<double> xs) {
        if (xs.empty())
            return 0.0;
        std::sort(xs.begin(), xs.end());
        return xs[xs.size() / 2] * 1e3;
    };
    for (int r = 0; r < repeats; ++r) {
        const double polled = medianMs(runWatchedPhase(
            fx, jobs, report.offeredRps, false, report));
        const double streamed = medianMs(runWatchedPhase(
            fx, jobs, report.offeredRps, true, report));
        if (polled > 0.0
            && (bestPolled == 0.0 || polled < bestPolled))
            bestPolled = polled;
        if (streamed > 0.0 && (bestSse == 0.0 || streamed < bestSse))
            bestSse = streamed;
    }
    report.polledWallMs = bestPolled;
    report.sseWallMs = bestSse;
    return report;
}

/** Retry-After honouring refused submissions to success. */
struct RetryReport
{
    int jobs = 0;
    int refusals = 0;
    int honored = 0; //!< refusals whose hint parsed to >= 1 s
    double minHintSeconds = 0.0;
    double maxHintSeconds = 0.0;
    bool allSucceeded = false;
};

RetryReport
runRetryScenario(Fixture &fx, int jobs)
{
    RetryReport report;
    report.jobs = jobs;
    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", fx.server.port());

    // Stage a full queue: pause the backend and submit until the
    // class bound refuses (per shard when routed, so cap generously).
    fx.backend.pause();
    int fill = 0;
    for (int i = 0; i < 200; ++i) {
        HttpClientResponse resp;
        if (!conn.connected())
            conn = HttpConnection::connect("127.0.0.1",
                                           fx.server.port());
        if (!conn.request("POST", "/v1/jobs", resp, kSubmitNormal))
            break;
        if (resp.status != 201)
            break;
        ++fill;
    }

    // Every probe job must now be refused with a usable hint.
    for (int j = 0; j < jobs; ++j) {
        HttpClientResponse resp;
        if (!conn.connected())
            conn = HttpConnection::connect("127.0.0.1",
                                           fx.server.port());
        if (!conn.request("POST", "/v1/jobs", resp, kSubmitNormal))
            continue;
        if (resp.status != 429 && resp.status != 503)
            continue;
        ++report.refusals;
        const int hint = resp.retryAfterSeconds();
        if (hint >= 1) {
            ++report.honored;
            const double h = static_cast<double>(hint);
            report.minHintSeconds = report.minHintSeconds == 0.0
                ? h
                : std::min(report.minHintSeconds, h);
            report.maxHintSeconds =
                std::max(report.maxHintSeconds, h);
        }
    }

    // Honour the hint: resume the backend, back off for the largest
    // suggested interval (bounded for bench sanity), then resubmit.
    fx.backend.resume();
    const double backoff =
        std::min(report.maxHintSeconds > 0.0 ? report.maxHintSeconds
                                             : 1.0,
                 2.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(backoff));
    int succeeded = 0;
    for (int j = 0; j < jobs; ++j) {
        HttpClientResponse resp;
        if (!conn.connected())
            conn = HttpConnection::connect("127.0.0.1",
                                           fx.server.port());
        if (conn.request("POST", "/v1/jobs", resp, kSubmitNormal)
            && resp.status == 201)
            ++succeeded;
    }
    report.allSucceeded = succeeded == jobs && report.refusals > 0;
    fx.backend.waitIdle();
    return report;
}

/** In-process replica-sharding throughput comparison. */
struct ShardReport
{
    int requests = 0;
    int repeats = 0;
    int totalWorkers = 2;
    double soloRps = 0.0;
    double shardedRps = 0.0;
    double leastDepthRps = 0.0;
    double affinityRps = 0.0;

    double speedup() const
    {
        return soloRps > 0.0 ? shardedRps / soloRps : 0.0;
    }
    double affinityGain() const
    {
        return leastDepthRps > 0.0 ? affinityRps / leastDepthRps
                                   : 0.0;
    }
};

/**
 * Paper-scale MLD (8 tokens x 256 dim, 9 blocks, ~28 MB of weights):
 * the shape cohort batching exists for. Each solo iteration drags
 * every weight matrix through the cache for just 8 activation rows,
 * so reassembling full same-key cohorts per shard amortises the
 * traversal — the mechanism the 1.3x gate pins. Tiny configs fit in
 * cache and show only ~1.2x here.
 */
ModelConfig
burstConfigA(bool quick)
{
    ModelConfig cfg = makeConfig(Benchmark::MLD, Scale::Full);
    cfg.iterations = quick ? 3 : 4;
    return cfg;
}

/** Identical cost, distinct registry key: the second cohort key. */
ModelConfig
burstConfigB(bool quick)
{
    ModelConfig cfg = burstConfigA(quick);
    cfg.benchmark = Benchmark::MDM;
    cfg.seed = 77;
    return cfg;
}

/** Strictly interleaved A/B/A/B two-key burst. */
std::vector<ServeRequest>
interleavedBurst(int n)
{
    std::vector<ServeRequest> batch;
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = i % 2 == 0 ? Benchmark::MLD : Benchmark::MDM;
        req.mode = ExecMode::Dense;
        req.noiseSeed = 1000 + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

/** Irregular key pattern: breaks per-shard cohorts under blind
    depth-balancing but not under key-affine routing. */
std::vector<ServeRequest>
irregularBurst(int n)
{
    const Benchmark pattern[] = {
        Benchmark::MLD, Benchmark::MDM, Benchmark::MDM,
        Benchmark::MLD, Benchmark::MLD, Benchmark::MDM,
        Benchmark::MLD, Benchmark::MDM};
    std::vector<ServeRequest> batch;
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = pattern[i % 8];
        req.mode = ExecMode::Dense;
        req.noiseSeed = 2000 + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

BatchEngine::Options
burstEngineOptions(int workers)
{
    BatchEngine::Options opts;
    opts.workers = workers;
    opts.queueResults = false;
    opts.cohortBatching = true;
    return opts;
}

/**
 * Best-of-`repeats` burst makespan through a backend: queue the
 * whole batch paused, release it, and time until every ticket
 * settles. Returns requests/second of the best repeat.
 */
double
timedBurst(ServeBackend &backend,
           const std::vector<ServeRequest> &batch, int repeats)
{
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        backend.pause();
        std::vector<Ticket> tickets;
        tickets.reserve(batch.size());
        for (const ServeRequest &req : batch)
            tickets.push_back(backend.submit(req));
        const Clock::time_point t0 = Clock::now();
        backend.resume();
        for (const Ticket &t : tickets)
            t.wait();
        const double dt = secondsSince(t0);
        backend.waitIdle();
        if (dt > 0.0)
            best = std::max(
                best, static_cast<double>(batch.size()) / dt);
    }
    return best;
}

ShardReport
runShardComparison(bool quick)
{
    ShardReport report;
    report.requests = quick ? 12 : 16;
    // The gate divides two noisy best-of measurements on a possibly
    // loaded runner; give the full run enough repetitions that the
    // solo baseline converges to its unloaded value.
    report.repeats = quick ? 2 : 5;

    const auto batch = interleavedBurst(report.requests);
    const auto irregular = irregularBurst(report.requests);

    // Full-scale weights are ~28 MB per key: build each store once
    // and fan the shared mmap-style handle out to every backend under
    // comparison instead of rebuilding per engine.
    const auto storeA = WeightStore::build(burstConfigA(quick));
    const auto storeB = WeightStore::build(burstConfigB(quick));

    {
        BatchEngine solo(burstEngineOptions(2));
        solo.registerModel(Benchmark::MLD, storeA);
        solo.registerModel(Benchmark::MDM, storeB);
        report.soloRps = timedBurst(solo, batch, report.repeats);
    }
    const auto makeRouter = [&](RoutePolicy policy) {
        ShardRouter::Options opts;
        opts.shards = 2;
        opts.shardWorkers = 1;
        opts.policy = policy;
        opts.engine = burstEngineOptions(1);
        auto router = std::make_unique<ShardRouter>(opts);
        router->registerModel(Benchmark::MLD, storeA);
        router->registerModel(Benchmark::MDM, storeB);
        return router;
    };
    {
        auto router = makeRouter(RoutePolicy::CohortAffinity);
        report.shardedRps =
            timedBurst(*router, batch, report.repeats);
        report.affinityRps =
            timedBurst(*router, irregular, report.repeats);
    }
    {
        auto router = makeRouter(RoutePolicy::LeastDepth);
        report.leastDepthRps =
            timedBurst(*router, irregular, report.repeats);
    }
    return report;
}

void
writeJson(const std::string &path, bool quick, int iterations,
          int shards, RoutePolicy policy,
          const std::vector<ClosedLoopRow> &closed, double capacity,
          const std::vector<OpenLoopRow> &open, const SseReport &sse,
          const RetryReport &retry, const ShardReport &shard,
          u64 connections)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"bench_serve\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"model\": \"tiny\",\n";
    out << "  \"iterations\": " << iterations << ",\n";
    out << "  \"front_shards\": " << shards << ",\n";
    out << "  \"front_route\": \"" << routePolicyName(policy)
        << "\",\n";
    out << "  \"closed_loop\": [\n";
    for (size_t i = 0; i < closed.size(); ++i) {
        const ClosedLoopRow &r = closed[i];
        out << "    {\"clients\": " << r.clients
            << ", \"completed\": " << r.completed << ", \"errors\": "
            << r.errors << ", \"rps\": " << r.rps
            << ",\n     \"latency_p50_ms\": " << r.p50Ms
            << ", \"latency_p99_ms\": " << r.p99Ms << "}"
            << (i + 1 < closed.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"capacity_rps\": " << capacity << ",\n";
    out << "  \"open_loop\": [\n";
    for (size_t i = 0; i < open.size(); ++i) {
        const OpenLoopRow &r = open[i];
        out << "    {\"target_rps\": " << r.targetRps
            << ", \"senders\": " << r.senders
            << ", \"achieved_offered_rps\": " << r.achievedRps
            << ",\n     \"offered\": " << r.offered
            << ", \"accepted\": " << r.accepted
            << ", \"rejected_429\": " << r.rejected429
            << ", \"rejected_503\": " << r.rejected503
            << ",\n     \"transport_errors\": " << r.transportErrors
            << ", \"submit_p99_ms\": " << r.submitP99Ms
            << ", \"healthz_p99_ms\": " << r.healthzP99Ms
            << ", \"drain_seconds\": " << r.drainSeconds << "}"
            << (i + 1 < open.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"sse\": {\n";
    out << "    \"jobs\": " << sse.jobs << ",\n";
    out << "    \"repeats\": " << sse.repeats << ",\n";
    out << "    \"iterations\": " << sse.iterations << ",\n";
    out << "    \"offered_rps\": " << sse.offeredRps << ",\n";
    out << "    \"events_match\": "
        << (sse.eventsMatch ? "true" : "false") << ",\n";
    out << "    \"failures\": " << sse.failures << ",\n";
    out << "    \"status_polled_wall_ms\": " << sse.polledWallMs
        << ",\n";
    out << "    \"sse_waited_wall_ms\": " << sse.sseWallMs << ",\n";
    out << "    \"added_wall_pct\": " << sse.addedPct() << "\n";
    out << "  },\n";
    out << "  \"retry\": {\n";
    out << "    \"jobs\": " << retry.jobs << ",\n";
    out << "    \"refusals\": " << retry.refusals << ",\n";
    out << "    \"honored_hints\": " << retry.honored << ",\n";
    out << "    \"hint_seconds_min\": " << retry.minHintSeconds
        << ",\n";
    out << "    \"hint_seconds_max\": " << retry.maxHintSeconds
        << ",\n";
    out << "    \"all_succeeded\": "
        << (retry.allSucceeded ? "true" : "false") << "\n";
    out << "  },\n";
    out << "  \"shards\": {\n";
    out << "    \"requests\": " << shard.requests << ",\n";
    out << "    \"repeats\": " << shard.repeats << ",\n";
    out << "    \"total_workers\": " << shard.totalWorkers << ",\n";
    out << "    \"solo_rps\": " << shard.soloRps << ",\n";
    out << "    \"sharded_rps\": " << shard.shardedRps << ",\n";
    out << "    \"speedup\": " << shard.speedup() << ",\n";
    out << "    \"least_depth_rps\": " << shard.leastDepthRps
        << ",\n";
    out << "    \"cohort_affinity_rps\": " << shard.affinityRps
        << ",\n";
    out << "    \"affinity_gain\": " << shard.affinityGain() << "\n";
    out << "  },\n";
    out << "  \"connections_accepted\": " << connections << "\n";
    out << "}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::quickMode(argc, argv);
    int shards = 1;
    RoutePolicy policy = RoutePolicy::LeastDepth;
    KernelFlags kernels;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--shards" && i + 1 < argc) {
            shards = std::atoi(argv[++i]);
            if (shards < 1) {
                std::cerr << "--shards must be >= 1\n";
                return 2;
            }
        } else {
            std::string err;
            const KernelFlagStatus rs =
                tryConsumeRouteFlag(argc, argv, i, policy, err);
            if (rs == KernelFlagStatus::Error) {
                std::cerr << err << "\n";
                return 2;
            }
            if (rs == KernelFlagStatus::Consumed)
                continue;
            if (tryConsumeKernelFlag(argc, argv, i, kernels, err)
                == KernelFlagStatus::Error) {
                std::cerr << err << "\n";
                return 2;
            }
        }
    }
    g_tensorParallel = kernels.tp;
    const double closedSeconds = quick ? 0.4 : 1.5;
    const double openSeconds = quick ? 1.0 : 2.5;
    const std::vector<int> levels =
        quick ? std::vector<int>{1, 2, 4}
              : std::vector<int>{1, 2, 4, 8};

    Fixture fx(shards, policy);
    const int iterations = makeTinyConfig().iterations;
    std::cout << "serving tiny MLD (" << iterations
              << " iterations) on 127.0.0.1:" << fx.server.port()
              << ", ";
    if (shards > 1)
        std::cout << shards << " shards ("
                  << routePolicyName(policy) << "), "
                  << fx.backend.workerCount() << " workers total\n\n";
    else
        std::cout << "2 workers\n\n";

    // Closed loop: the latency-under-throughput curve.
    std::cout << "closed loop (" << closedSeconds << "s per level):\n";
    std::vector<ClosedLoopRow> closed;
    double capacity = 0.0;
    for (int clients : levels) {
        closed.push_back(runClosedLoop(fx, clients, closedSeconds));
        const ClosedLoopRow &r = closed.back();
        capacity = std::max(capacity, r.rps);
        std::cout << "  " << r.clients << " clients: " << r.completed
                  << " done, " << r.rps << " req/s, p50 " << r.p50Ms
                  << " ms, p99 " << r.p99Ms << " ms, " << r.errors
                  << " errors\n";
    }

    // Open loop at fractions of the measured capacity.
    std::cout << "\nopen loop (" << openSeconds
              << "s per rate, capacity " << capacity << " req/s):\n";
    std::vector<OpenLoopRow> open;
    for (double factor : {0.5, 1.0, 2.0}) {
        const double rate = std::max(capacity * factor, 1.0);
        open.push_back(runOpenLoop(fx, rate, openSeconds));
        const OpenLoopRow &r = open.back();
        std::cout << "  " << factor << "x (" << r.targetRps
                  << " req/s, " << r.senders << " senders): offered "
                  << r.offered << " (" << r.achievedRps
                  << " req/s), accepted " << r.accepted << ", 429 "
                  << r.rejected429 << ", 503 " << r.rejected503
                  << ", healthz p99 " << r.healthzP99Ms
                  << " ms, drain " << r.drainSeconds << " s\n";
    }

    // SSE cost at fixed load + the per-iteration event contract.
    const SseReport sse =
        runSseScenario(fx, quick ? 32 : 48, quick ? 2 : 3);
    std::cout << "\nSSE (" << sse.jobs << " slow jobs x "
              << sse.repeats << " interleaved repeats at "
              << sse.offeredRps << " req/s): events match "
              << (sse.eventsMatch ? "yes" : "NO")
              << ", status-polled wall " << sse.polledWallMs
              << " ms vs sse-waited " << sse.sseWallMs
              << " ms (added " << sse.addedPct() << "%, "
              << sse.failures << " failures)\n";

    // Refused submissions retried per the server's own hint.
    RetryReport retry = runRetryScenario(fx, quick ? 3 : 4);
    std::cout << "\nretry: " << retry.refusals << " refusals, "
              << retry.honored << " honored hints ("
              << retry.minHintSeconds << ".." << retry.maxHintSeconds
              << " s), resubmits "
              << (retry.allSucceeded ? "all succeeded" : "FAILED")
              << "\n";

    // Replica sharding: the tentpole throughput gates (in-process).
    const ShardReport shard = runShardComparison(quick);
    std::cout << "\nshards (" << shard.requests
              << "-request interleaved burst, best of "
              << shard.repeats << "):\n  solo 1x2 workers "
              << shard.soloRps << " req/s vs 2x1 sharded "
              << shard.shardedRps << " req/s (speedup "
              << shard.speedup() << "x)\n  irregular burst: "
              << "least-depth " << shard.leastDepthRps
              << " req/s vs cohort-affinity " << shard.affinityRps
              << " req/s (gain " << shard.affinityGain() << "x)\n";

    const u64 connections = fx.server.connectionsAccepted();
    writeJson("BENCH_serve.json", quick, iterations, shards, policy,
              closed, capacity, open, sse, retry, shard, connections);

    // ------------------------------------------------------- gates
    bool ok = true;
    for (const ClosedLoopRow &r : closed) {
        if (r.completed == 0 || r.rps <= 0.0 || r.errors > 0) {
            std::cerr << "GATE: closed loop at " << r.clients
                      << " clients: " << r.completed << " done, "
                      << r.errors << " errors\n";
            ok = false;
        }
    }
    for (const OpenLoopRow &r : open) {
        if (r.achievedRps < 0.95 * r.targetRps) {
            std::cerr << "GATE: open loop offered " << r.achievedRps
                      << " req/s of " << r.targetRps
                      << " target — the generator could not keep "
                         "up\n";
            ok = false;
        }
    }
    const OpenLoopRow &overload = open.back();
    if (overload.rejected429 + overload.rejected503 == 0) {
        std::cerr << "GATE: no shedding at 2x capacity (accepted "
                  << overload.accepted << "/" << overload.offered
                  << ") — the server queued without bound\n";
        ok = false;
    }
    if (overload.transportErrors > 0
        || overload.healthzP99Ms > 1000.0) {
        std::cerr << "GATE: server stalled under 2x overload ("
                  << overload.transportErrors
                  << " transport errors, healthz p99 "
                  << overload.healthzP99Ms << " ms)\n";
        ok = false;
    }
    if (!sse.eventsMatch) {
        std::cerr << "GATE: SSE progress events != iterations\n";
        ok = false;
    }
    if (sse.failures > 0) {
        std::cerr << "GATE: " << sse.failures
                  << " SSE-scenario jobs failed\n";
        ok = false;
    }
    if (sse.addedPct() >= 25.0) {
        std::cerr << "GATE: SSE adds " << sse.addedPct()
                  << "% wall-time per job (>= 25%)\n";
        ok = false;
    }
    if (retry.refusals == 0 || retry.honored != retry.refusals
        || !retry.allSucceeded) {
        std::cerr << "GATE: retry path (" << retry.refusals
                  << " refusals, " << retry.honored
                  << " honored, succeeded="
                  << (retry.allSucceeded ? "yes" : "no") << ")\n";
        ok = false;
    }
    if (shard.speedup() < 1.3) {
        std::cerr << "GATE: 2-shard routed throughput "
                  << shard.shardedRps << " req/s is only "
                  << shard.speedup() << "x solo (" << shard.soloRps
                  << " req/s) at equal total workers (< 1.3x)\n";
        ok = false;
    }
    if (shard.affinityGain() < 1.0) {
        std::cerr << "GATE: cohort-affinity (" << shard.affinityRps
                  << " req/s) does not beat least-depth ("
                  << shard.leastDepthRps
                  << " req/s) on the same-key burst\n";
        ok = false;
    }
    const EngineMetrics m = fx.backend.snapshot();
    if (fx.backend.inFlight() != 0) {
        std::cerr << "GATE: engine did not drain (in flight: "
                  << fx.backend.inFlight() << ")\n";
        ok = false;
    }
    std::cout << "\nengine totals: accepted " << m.accepted()
              << ", completed " << m.completed() << ", shed "
              << m.shed() << ", over " << connections
              << " connections\n";
    std::cout << (ok ? "all gates passed\n" : "GATES FAILED\n");
    return ok ? 0 : 1;
}
