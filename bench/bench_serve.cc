/**
 * @file
 * Serving front-door load generator: latency under throughput for
 * the HTTP API (net/http_server + serve/http_front) over a real
 * socket, in two disciplines.
 *
 * Closed loop — N client connections, each submitting a job and
 * waiting for its SSE stream to finish before submitting the next.
 * Sweeping N produces the latency-under-throughput curve and the
 * saturation throughput (capacity) of the engine behind the API.
 *
 * Open loop — a dispatcher submits at a *fixed* arrival rate
 * regardless of completions (the discipline that exposes overload
 * behaviour: a closed loop self-throttles, an open loop does not),
 * at 0.5x / 1x / 2x the measured capacity. Half the arrivals ride
 * the Low priority class, so both refusal paths are exercised:
 * QueueFull (HTTP 429) at the class bound and LoadShedLow (HTTP
 * 503) past the shed watermark. A prober thread polls /healthz
 * throughout to measure responsiveness under overload.
 *
 * An SSE scenario measures the streaming overhead (SSE-waited vs
 * status-polled completion) and verifies the per-iteration event
 * contract: every streamed job must deliver exactly
 * config().iterations progress events.
 *
 * Acceptance gates (exit nonzero on failure):
 *   - every closed-loop level completes work at positive throughput
 *   - at 2x capacity the server *sheds* (429/503 observed) rather
 *     than queueing without bound
 *   - at 2x capacity /healthz p99 stays under 1 second and no
 *     transport errors occur (responsive, not stalled)
 *   - SSE jobs deliver exactly one progress event per iteration
 *   - the engine drains to idle after the overload run
 *
 * Writes BENCH_serve.json. --quick shrinks durations and the sweep
 * for CI.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exion/model/config.h"
#include "exion/net/http_client.h"
#include "exion/net/http_server.h"
#include "exion/serve/batch_engine.h"
#include "exion/serve/http_front.h"

#include "bench_util.h"

namespace
{

using namespace exion;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double
percentileMs(std::vector<double> seconds, double p)
{
    if (seconds.empty())
        return 0.0;
    std::sort(seconds.begin(), seconds.end());
    const double rank = p * static_cast<double>(seconds.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, seconds.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return (seconds[lo] * (1.0 - frac) + seconds[hi] * frac) * 1e3;
}

/** First integer following "\"<key>\": " in a JSON body (-1: none). */
long long
jsonInt(const std::string &body, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const size_t at = body.find(needle);
    if (at == std::string::npos)
        return -1;
    return std::atoll(body.c_str() + at + needle.size());
}

/** The in-process server under test. */
struct Fixture
{
    BatchEngine engine;
    HttpFront front;
    HttpServer server;

    static BatchEngine::Options engineOptions()
    {
        BatchEngine::Options opts;
        opts.workers = 2;
        opts.queueResults = false;
        // Admission: small per-class bound so the open-loop overload
        // hits QueueFull quickly; a shed watermark above it so Low
        // arrivals are refused with LoadShedLow first.
        opts.admission.maxQueuedPerClass = 8;
        opts.admission.shedThreshold = 10;
        opts.admission.shedBelow = Priority::Normal;
        return opts;
    }

    static HttpFront::Options frontOptions()
    {
        HttpFront::Options opts;
        opts.sseHeartbeatSeconds = 0.1;
        return opts;
    }

    Fixture()
        : engine(engineOptions()), front(engine, frontOptions()),
          server(HttpServer::Options{},
                 [this](const HttpRequest &req, ResponseWriter &w) {
                     front.handle(req, w);
                 })
    {
        engine.addModel(makeTinyConfig());
        server.start();
    }
};

const char *kSubmitNormal =
    "{\"benchmark\": \"MLD\", \"mode\": \"exion\"}";
const char *kSubmitLow =
    "{\"benchmark\": \"MLD\", \"mode\": \"exion\", "
    "\"priority\": \"low\"}";

/**
 * Submits one job and blocks on its SSE stream until the `done`
 * event; returns the number of progress events seen, or -1 on any
 * protocol failure. Reconnects the connection if it was closed.
 */
int
submitAndStream(HttpConnection &conn, u16 port)
{
    HttpClientResponse resp;
    if (!conn.connected())
        conn = HttpConnection::connect("127.0.0.1", port);
    if (!conn.request("POST", "/v1/jobs", resp, kSubmitNormal))
        return -1;
    if (resp.status != 201)
        return -1;
    const long long id = jsonInt(resp.body, "id");
    if (id < 0)
        return -1;
    HttpClientResponse head;
    if (!conn.startStream("/v1/jobs/" + std::to_string(id) + "/events",
                          head)
        || head.status != 200)
        return -1;
    int events = 0;
    bool done = false;
    std::string data;
    std::string pending;
    while (conn.readStreamData(data)) {
        pending += data;
        data.clear();
        size_t at;
        while ((at = pending.find("\n\n")) != std::string::npos) {
            const std::string event = pending.substr(0, at);
            pending.erase(0, at + 2);
            if (event.rfind("event: progress", 0) == 0)
                ++events;
            else if (event.rfind("event: done", 0) == 0)
                done = true;
        }
    }
    return done ? events : -1;
}

/** One closed-loop sweep point. */
struct ClosedLoopRow
{
    int clients = 0;
    u64 completed = 0;
    u64 errors = 0;
    double seconds = 0.0;
    double rps = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
};

ClosedLoopRow
runClosedLoop(const Fixture &fx, int clients, double duration)
{
    ClosedLoopRow row;
    row.clients = clients;
    std::atomic<u64> completed{0};
    std::atomic<u64> errors{0};
    std::mutex latMutex;
    std::vector<double> latencies;
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&] {
            HttpConnection conn =
                HttpConnection::connect("127.0.0.1", fx.server.port());
            std::vector<double> mine;
            while (secondsSince(t0) < duration) {
                const Clock::time_point r0 = Clock::now();
                if (submitAndStream(conn, fx.server.port()) >= 0) {
                    completed.fetch_add(1);
                    mine.push_back(secondsSince(r0));
                } else {
                    errors.fetch_add(1);
                }
            }
            std::lock_guard<std::mutex> lock(latMutex);
            latencies.insert(latencies.end(), mine.begin(),
                             mine.end());
        });
    }
    for (std::thread &t : threads)
        t.join();
    row.seconds = secondsSince(t0);
    row.completed = completed.load();
    row.errors = errors.load();
    row.rps = row.seconds > 0.0
        ? static_cast<double>(row.completed) / row.seconds
        : 0.0;
    row.p50Ms = percentileMs(latencies, 0.50);
    row.p99Ms = percentileMs(latencies, 0.99);
    return row;
}

/** One open-loop rate point. */
struct OpenLoopRow
{
    double targetRps = 0.0;
    u64 offered = 0;
    u64 accepted = 0;
    u64 rejected429 = 0;
    u64 rejected503 = 0;
    u64 transportErrors = 0;
    double seconds = 0.0;
    double submitP99Ms = 0.0;
    double healthzP99Ms = 0.0;
    double drainSeconds = 0.0;
};

OpenLoopRow
runOpenLoop(Fixture &fx, double targetRps, double duration)
{
    OpenLoopRow row;
    row.targetRps = targetRps;
    std::atomic<bool> probing{true};
    std::vector<double> healthz;
    // Responsiveness prober: a server that stalls under overload
    // (instead of shedding) shows up here long before any gate on
    // the submit path.
    std::thread prober([&] {
        HttpConnection conn =
            HttpConnection::connect("127.0.0.1", fx.server.port());
        while (probing.load()) {
            const Clock::time_point p0 = Clock::now();
            HttpClientResponse resp;
            if (!conn.connected())
                conn = HttpConnection::connect("127.0.0.1",
                                               fx.server.port());
            if (conn.request("GET", "/healthz", resp)
                && resp.status == 200)
                healthz.push_back(secondsSince(p0));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", fx.server.port());
    std::vector<double> submitLat;
    const std::chrono::duration<double> interval(1.0 / targetRps);
    const Clock::time_point t0 = Clock::now();
    Clock::time_point next = t0;
    while (secondsSince(t0) < duration) {
        std::this_thread::sleep_until(next);
        next += std::chrono::duration_cast<Clock::duration>(interval);
        ++row.offered;
        const bool low = row.offered % 2 == 0;
        const Clock::time_point s0 = Clock::now();
        HttpClientResponse resp;
        if (!conn.connected())
            conn = HttpConnection::connect("127.0.0.1",
                                           fx.server.port());
        if (!conn.request("POST", "/v1/jobs", resp,
                          low ? kSubmitLow : kSubmitNormal)) {
            ++row.transportErrors;
            continue;
        }
        submitLat.push_back(secondsSince(s0));
        if (resp.status == 201)
            ++row.accepted;
        else if (resp.status == 429)
            ++row.rejected429;
        else if (resp.status == 503)
            ++row.rejected503;
        else
            ++row.transportErrors;
    }
    row.seconds = secondsSince(t0);
    // Overload is only survived if the backlog drains once arrivals
    // stop: time it.
    const Clock::time_point d0 = Clock::now();
    fx.engine.waitIdle();
    row.drainSeconds = secondsSince(d0);
    probing.store(false);
    prober.join();
    row.submitP99Ms = percentileMs(submitLat, 0.99);
    row.healthzP99Ms = percentileMs(healthz, 0.99);
    return row;
}

/** SSE-vs-polling completion-wait comparison + event-count check. */
struct SseReport
{
    int jobs = 0;
    int iterations = 0;
    bool eventsMatch = true;
    double sseRps = 0.0;
    double pollRps = 0.0;

    double overheadPct() const
    {
        return pollRps > 0.0 && sseRps > 0.0
            ? (pollRps / sseRps - 1.0) * 100.0
            : 0.0;
    }
};

SseReport
runSseScenario(const Fixture &fx, int jobs, int iterations)
{
    SseReport report;
    report.jobs = jobs;
    report.iterations = iterations;
    HttpConnection conn =
        HttpConnection::connect("127.0.0.1", fx.server.port());

    const Clock::time_point s0 = Clock::now();
    for (int j = 0; j < jobs; ++j) {
        const int events = submitAndStream(conn, fx.server.port());
        if (events != iterations) {
            std::cerr << "SSE job " << j << ": " << events
                      << " progress events, expected " << iterations
                      << "\n";
            report.eventsMatch = false;
        }
    }
    const double sseSeconds = secondsSince(s0);

    const Clock::time_point p0 = Clock::now();
    for (int j = 0; j < jobs; ++j) {
        HttpClientResponse resp;
        if (!conn.connected())
            conn = HttpConnection::connect("127.0.0.1",
                                           fx.server.port());
        if (!conn.request("POST", "/v1/jobs", resp, kSubmitNormal)
            || resp.status != 201)
            continue;
        const long long id = jsonInt(resp.body, "id");
        const std::string target = "/v1/jobs/" + std::to_string(id);
        while (true) {
            if (!conn.request("GET", target, resp))
                break;
            if (resp.body.find("\"state\": \"queued\"")
                    == std::string::npos
                && resp.body.find("\"state\": \"running\"")
                    == std::string::npos)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    const double pollSeconds = secondsSince(p0);

    report.sseRps = sseSeconds > 0.0 ? jobs / sseSeconds : 0.0;
    report.pollRps = pollSeconds > 0.0 ? jobs / pollSeconds : 0.0;
    return report;
}

void
writeJson(const std::string &path, bool quick, int iterations,
          const std::vector<ClosedLoopRow> &closed, double capacity,
          const std::vector<OpenLoopRow> &open, const SseReport &sse,
          u64 connections)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"bench_serve\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"model\": \"tiny\",\n";
    out << "  \"iterations\": " << iterations << ",\n";
    out << "  \"closed_loop\": [\n";
    for (size_t i = 0; i < closed.size(); ++i) {
        const ClosedLoopRow &r = closed[i];
        out << "    {\"clients\": " << r.clients
            << ", \"completed\": " << r.completed << ", \"errors\": "
            << r.errors << ", \"rps\": " << r.rps
            << ",\n     \"latency_p50_ms\": " << r.p50Ms
            << ", \"latency_p99_ms\": " << r.p99Ms << "}"
            << (i + 1 < closed.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"capacity_rps\": " << capacity << ",\n";
    out << "  \"open_loop\": [\n";
    for (size_t i = 0; i < open.size(); ++i) {
        const OpenLoopRow &r = open[i];
        out << "    {\"target_rps\": " << r.targetRps
            << ", \"offered\": " << r.offered << ", \"accepted\": "
            << r.accepted << ",\n     \"rejected_429\": "
            << r.rejected429 << ", \"rejected_503\": "
            << r.rejected503 << ", \"transport_errors\": "
            << r.transportErrors << ",\n     \"submit_p99_ms\": "
            << r.submitP99Ms << ", \"healthz_p99_ms\": "
            << r.healthzP99Ms << ", \"drain_seconds\": "
            << r.drainSeconds << "}"
            << (i + 1 < open.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"sse\": {\n";
    out << "    \"jobs\": " << sse.jobs << ",\n";
    out << "    \"iterations\": " << sse.iterations << ",\n";
    out << "    \"events_match\": "
        << (sse.eventsMatch ? "true" : "false") << ",\n";
    out << "    \"sse_waited_rps\": " << sse.sseRps << ",\n";
    out << "    \"status_polled_rps\": " << sse.pollRps << ",\n";
    out << "    \"overhead_pct\": " << sse.overheadPct() << "\n";
    out << "  },\n";
    out << "  \"connections_accepted\": " << connections << "\n";
    out << "}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::quickMode(argc, argv);
    const double closedSeconds = quick ? 0.4 : 1.5;
    const double openSeconds = quick ? 1.0 : 2.5;
    const std::vector<int> levels =
        quick ? std::vector<int>{1, 2, 4}
              : std::vector<int>{1, 2, 4, 8};

    Fixture fx;
    const int iterations = makeTinyConfig().iterations;
    std::cout << "serving tiny MLD (" << iterations
              << " iterations) on 127.0.0.1:" << fx.server.port()
              << ", 2 workers\n\n";

    // Closed loop: the latency-under-throughput curve.
    std::cout << "closed loop (" << closedSeconds << "s per level):\n";
    std::vector<ClosedLoopRow> closed;
    double capacity = 0.0;
    for (int clients : levels) {
        closed.push_back(runClosedLoop(fx, clients, closedSeconds));
        const ClosedLoopRow &r = closed.back();
        capacity = std::max(capacity, r.rps);
        std::cout << "  " << r.clients << " clients: " << r.completed
                  << " done, " << r.rps << " req/s, p50 " << r.p50Ms
                  << " ms, p99 " << r.p99Ms << " ms, " << r.errors
                  << " errors\n";
    }

    // Open loop at fractions of the measured capacity.
    std::cout << "\nopen loop (" << openSeconds
              << "s per rate, capacity " << capacity << " req/s):\n";
    std::vector<OpenLoopRow> open;
    for (double factor : {0.5, 1.0, 2.0}) {
        const double rate = std::max(capacity * factor, 1.0);
        open.push_back(runOpenLoop(fx, rate, openSeconds));
        const OpenLoopRow &r = open.back();
        std::cout << "  " << factor << "x (" << r.targetRps
                  << " req/s): offered " << r.offered << ", accepted "
                  << r.accepted << ", 429 " << r.rejected429
                  << ", 503 " << r.rejected503 << ", healthz p99 "
                  << r.healthzP99Ms << " ms, drain "
                  << r.drainSeconds << " s\n";
    }

    // SSE overhead + the per-iteration event contract.
    const SseReport sse =
        runSseScenario(fx, quick ? 8 : 24, iterations);
    std::cout << "\nSSE: " << sse.jobs << " jobs, events match "
              << (sse.eventsMatch ? "yes" : "NO") << ", sse-waited "
              << sse.sseRps << " req/s vs status-polled "
              << sse.pollRps << " req/s (overhead "
              << sse.overheadPct() << "%)\n";

    const u64 connections = fx.server.connectionsAccepted();
    writeJson("BENCH_serve.json", quick, iterations, closed, capacity,
              open, sse, connections);

    // ------------------------------------------------------- gates
    bool ok = true;
    for (const ClosedLoopRow &r : closed) {
        if (r.completed == 0 || r.rps <= 0.0 || r.errors > 0) {
            std::cerr << "GATE: closed loop at " << r.clients
                      << " clients: " << r.completed << " done, "
                      << r.errors << " errors\n";
            ok = false;
        }
    }
    const OpenLoopRow &overload = open.back();
    if (overload.rejected429 + overload.rejected503 == 0) {
        std::cerr << "GATE: no shedding at 2x capacity (accepted "
                  << overload.accepted << "/" << overload.offered
                  << ") — the server queued without bound\n";
        ok = false;
    }
    if (overload.transportErrors > 0
        || overload.healthzP99Ms > 1000.0) {
        std::cerr << "GATE: server stalled under 2x overload ("
                  << overload.transportErrors
                  << " transport errors, healthz p99 "
                  << overload.healthzP99Ms << " ms)\n";
        ok = false;
    }
    if (!sse.eventsMatch) {
        std::cerr << "GATE: SSE progress events != iterations\n";
        ok = false;
    }
    const EngineMetrics m = fx.engine.snapshot();
    if (fx.engine.inFlight() != 0) {
        std::cerr << "GATE: engine did not drain (in flight: "
                  << fx.engine.inFlight() << ")\n";
        ok = false;
    }
    std::cout << "\nengine totals: accepted " << m.accepted()
              << ", completed " << m.completed() << ", shed "
              << m.shed() << ", over " << connections
              << " connections\n";
    std::cout << (ok ? "all gates passed\n" : "GATES FAILED\n");
    return ok ? 0 : 1;
}
