/**
 * @file
 * Regenerates Fig. 9: merging reduces the columns condensing left.
 *
 * The Stable Diffusion anchor: condensing leaves 77.4% of the 1st FFN
 * layer's columns; running the real ConMerge pipeline (per-tile
 * condensing in the SortBuffer + up to two merges with CV conflict
 * resolution) compacts the physical columns to single digits.
 */

#include "exion/accel/conmerge_estimator.h"
#include "exion/common/table.h"
#include "exion/model/config.h"

using namespace exion;

int
main()
{
    TextTable table({"Model", "After condensing", "After merging",
                     "Decrease", "Tile occupancy",
                     "Merge accepts/group"});
    table.setTitle("Fig. 9 — Merging: remaining column percentage "
                   "(1st FFN layer)");

    for (Benchmark b : {Benchmark::StableDiffusion, Benchmark::MLD,
                        Benchmark::DiT}) {
        const ModelConfig cfg = makeConfig(b, Scale::Full);
        const StageConfig &stage = cfg.stages.front();
        const Index rows = stage.tokens;
        const Index cols = stage.ffnMult * stage.dModel;
        const ConMergeSummary summary = estimateFfnConMerge(
            rows, cols, ffnMaskParams(b), 12,
            0xbeef + static_cast<u64>(b));
        table.addRow({
            benchmarkName(b),
            formatPercent(summary.condenseRemainingFraction),
            formatPercent(summary.mergedRemainingFraction),
            formatPercent(summary.condenseRemainingFraction
                          - summary.mergedRemainingFraction),
            formatPercent(summary.tileOccupancy),
            formatDouble(summary.tilesPerGroup, 1),
        });
    }
    table.addNote("Paper anchor: Stable Diffusion 77.4% -> 8.4% "
                  "(69% decrease).");
    table.addNote("Merging runs the real CVG on 12 sampled 16-row "
                  "groups per model.");
    table.print();
    return 0;
}
