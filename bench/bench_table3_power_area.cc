/**
 * @file
 * Regenerates Table III: power and area breakdown of one DSC.
 */

#include "exion/common/table.h"
#include "exion/sim/energy.h"

using namespace exion;

int
main()
{
    TextTable table({"Component", "Area [mm^2]", "Power [mW]",
                     "Energy/cycle [pJ]"});
    table.setTitle("Table III — Breakdown of power and area usage "
                   "(one DSC, 800 MHz, 0.8 V, 14 nm)");

    EnergyModel model{DscParams{}};
    const struct
    {
        DscComponent component;
        const char *name;
    } rows[] = {
        {DscComponent::Sdue, "SDUE"},
        {DscComponent::Cau, "CAU"},
        {DscComponent::Epre, "EPRE"},
        {DscComponent::Cfse, "CFSE"},
        {DscComponent::OnChipMemories, "On-Chip Memories"},
        {DscComponent::ControlDmaEtc, "Top Controller, DMA, Etc."},
    };
    for (const auto &row : rows) {
        const ComponentSpec spec = componentSpec(row.component);
        table.addRow({
            row.name,
            formatDouble(spec.areaMm2, 2),
            formatDouble(spec.powerMw, 2),
            formatDouble(model.activeEnergyPerCycle(row.component), 1),
        });
    }
    table.addRow({
        "Total",
        formatDouble(model.totalAreaMm2(), 2),
        formatDouble(model.totalActivePowerMw(), 2),
        formatDouble(model.totalActivePowerMw() / 0.8, 1),
    });
    table.addNote("Sparsity-handling units (EPRE + CAU) draw "
                  + formatPercent((265.15 + 16.03) / 1511.43)
                  + " of DSC power (paper: up to 18.6%).");
    table.addNote("EXION24 device area: "
                  + formatDouble(AreaModel::deviceAreaMm2(
                        24, 64ull * 1024 * 1024), 2)
                  + " mm^2 (paper: 152.28 mm^2; RTX 6000 Ada die: "
                    "609 mm^2).");
    table.print();
    return 0;
}
