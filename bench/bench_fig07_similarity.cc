/**
 * @file
 * Regenerates Fig. 7: (a) cosine-similarity heatmap of the second
 * block's GELU output across iterations of the DiT model, and (b) the
 * magnitude of differences between adjacent iterations.
 *
 * The paper's observation: similarity is high near the diagonal (the
 * basis of FFN-Reuse), and the positions with large adjacent-iteration
 * differences are the ones above the recompute threshold.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exion/common/stats.h"
#include "exion/common/table.h"

using namespace exion;
using namespace exion::bench;

namespace
{

char
shadeOf(double similarity)
{
    if (similarity > 0.95)
        return '#';
    if (similarity > 0.85)
        return '+';
    if (similarity > 0.7)
        return ':';
    if (similarity > 0.5)
        return '.';
    return ' ';
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    ModelConfig cfg = makeConfig(Benchmark::DiT, Scale::Reduced);
    cfg.iterations = quick ? 16 : 50;

    const DiffusionPipeline pipe = storePipeline(cfg);
    DenseExecutor exec;
    std::vector<Matrix> hidden;
    exec.observers.onFfnHidden = [&](int block, const Matrix &h) {
        if (block == 1) // second block, as in the paper
            hidden.push_back(h);
    };
    pipe.run(exec, 7);

    const Index n = hidden.size();
    std::cout << "== Fig. 7(a) — Cosine similarity of block-2 GELU "
              << "output across iterations (DiT) ==\n";
    std::cout << "rows/cols = iterations 0.." << n - 1
              << "; shades: '#'>0.95 '+'>0.85 ':'>0.7 '.'>0.5\n";
    const Index step = n > 32 ? 2 : 1;
    for (Index i = 0; i < n; i += step) {
        for (Index j = 0; j < n; j += step)
            std::cout << shadeOf(cosineSimilarity(hidden[i],
                                                  hidden[j]));
        std::cout << '\n';
    }

    RunningStats adjacent;
    for (Index i = 1; i < n; ++i)
        adjacent.add(cosineSimilarity(hidden[i - 1], hidden[i]));

    TextTable table({"Statistic", "Value"});
    table.setTitle("Fig. 7 — summary statistics");
    table.addRow({"adjacent-iteration cosine similarity (mean)",
                  formatDouble(adjacent.mean(), 4)});
    table.addRow({"adjacent-iteration cosine similarity (min)",
                  formatDouble(adjacent.min(), 4)});
    table.addRow({"iterations", std::to_string(n)});

    // Fig. 7(b): are the large adjacent differences concentrated at
    // positions above the recompute threshold?
    const Matrix &a = hidden[n / 2];
    const Matrix &b = hidden[n / 2 + 1];
    std::vector<float> magnitudes(a.data().begin(), a.data().end());
    const double theta = sparsityQuantile(
        magnitudes, cfg.ffnReuse.targetSparsity);
    double diff_above = 0.0, diff_below = 0.0;
    Index n_above = 0, n_below = 0;
    for (Index i = 0; i < a.size(); ++i) {
        const double d = std::abs(
            static_cast<double>(a.data()[i]) - b.data()[i]);
        if (std::abs(a.data()[i]) > theta) {
            diff_above += d;
            ++n_above;
        } else {
            diff_below += d;
            ++n_below;
        }
    }
    table.addRow({"mean |delta| at positions above threshold",
                  formatDouble(diff_above / std::max<Index>(1, n_above),
                               4)});
    table.addRow({"mean |delta| at positions below threshold",
                  formatDouble(diff_below / std::max<Index>(1, n_below),
                               4)});
    table.addNote("Large adjacent-iteration differences concentrate "
                  "above the recompute threshold (paper Fig. 7b).");
    table.print();
    return 0;
}
