/**
 * @file
 * Regenerates Fig. 12: cycle reduction from sparsity-sorted merging.
 *
 * The CAU sorts column bitmasks into sparsity classes so the CVG
 * pairs a dense base with sparse candidates; versus merging blocks in
 * arrival order this cuts conflict-resolution cycles 29-73% in the
 * paper. Both modes run the identical CVG; only the pairing order
 * differs.
 */

#include "exion/accel/conmerge_estimator.h"
#include "exion/common/table.h"
#include "exion/model/config.h"

using namespace exion;

int
main()
{
    TextTable table({"Model", "Cycles (random order)",
                     "Cycles (sorted)", "Decrement"});
    table.setTitle("Fig. 12 — CAU merge cycles: sorted vs arrival "
                   "order (per 16-row group)");

    ConMergeConfig sorted_cfg;
    sorted_cfg.sortBySparsity = true;
    ConMergeConfig random_cfg;
    random_cfg.sortBySparsity = false;

    for (Benchmark b : allBenchmarks()) {
        const ModelConfig cfg = makeConfig(b, Scale::Full);
        const StageConfig &stage = cfg.stages.front();
        const Index rows = stage.tokens;
        const Index cols = stage.ffnMult * stage.dModel;
        const u64 seed = 0xabcd + static_cast<u64>(b);

        const ConMergeSummary sorted = estimateFfnConMerge(
            rows, cols, ffnMaskParams(b), 12, seed, sorted_cfg);
        const ConMergeSummary random = estimateFfnConMerge(
            rows, cols, ffnMaskParams(b), 12, seed, random_cfg);

        const double decrement = random.mergeCyclesPerGroup > 0.0
            ? 1.0 - sorted.mergeCyclesPerGroup
                  / random.mergeCyclesPerGroup
            : 0.0;
        table.addRow({
            benchmarkName(b),
            formatDouble(random.mergeCyclesPerGroup, 0),
            formatDouble(sorted.mergeCyclesPerGroup, 0),
            formatPercent(decrement),
        });
    }
    table.addNote("Paper reports 29.3-72.7% cycle decrement from "
                  "sorting (Fig. 12).");
    table.print();
    return 0;
}
