/**
 * @file
 * Regenerates the Fig. 6 table: FFN-Reuse configuration and achieved
 * reduction of FFN-layer operations.
 *
 * Each benchmark runs functionally at reduced scale with its Table I
 * configuration (dense interval N, sparsity target); the harness
 * reports the measured inter-iteration sparsity, the measured FFN op
 * reduction, and the closed-form expectation
 * 1 - (dense + sparse*(1-s)) / iterations.
 */

#include "bench_util.h"
#include "exion/common/table.h"

using namespace exion;
using namespace exion::bench;

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);

    TextTable table({"Model", "N", "Iters", "Sparsity (target)",
                     "Sparsity (measured)", "FFN ops reduction",
                     "Closed-form"});
    table.setTitle("Fig. 6 — FFN-Reuse Configurations and Op Reduction");

    for (Benchmark b : allBenchmarks()) {
        const ModelConfig cfg = reducedConfig(b, quick, 12);
        const DiffusionPipeline pipe = storePipeline(cfg);
        const VariantResult run = runVariant(pipe, Variant::FfnReuse,
                                             77);
        const ExecStats &s = run.stats;
        const double measured_reduction = 1.0
            - static_cast<double>(s.ffnOpsExecuted)
                / static_cast<double>(s.ffnOpsDense);

        const int n = cfg.ffnReuse.denseInterval;
        const int dense = (cfg.iterations + n) / (n + 1);
        const int sparse = cfg.iterations - dense;
        const double sp = s.meanFfnSparsity();
        const double closed_form = 1.0
            - (dense + sparse * (1.0 - sp))
                / static_cast<double>(cfg.iterations);

        table.addRow({
            benchmarkName(b),
            std::to_string(n),
            std::to_string(cfg.iterations),
            formatPercent(cfg.ffnReuse.targetSparsity, 0),
            formatPercent(sp),
            formatPercent(measured_reduction),
            formatPercent(closed_form),
        });
    }
    table.addNote("Paper reports 52.47-85.41% FFN op reduction at "
                  "70-97% sparsity (Fig. 6).");
    table.addNote("Reduced-scale functional runs; Table I N and "
                  "sparsity targets.");
    table.print();
    return 0;
}
