/**
 * @file
 * Regenerates Fig. 8: remaining-column percentage after condensing.
 *
 * Condensing removes weight columns whose entire output column is
 * sparse. The paper's anchors: MLD condenses to 13.8% remaining
 * columns (few output rows), while Stable Diffusion only reaches
 * 77.4% (4096 rows make an all-sparse column unlikely), motivating
 * merging. Masks are the calibrated full-scale synthetic masks; the
 * analytic matrix-level formula is exact for the generator and is
 * cross-checked against a sampled empirical mask.
 */

#include "exion/accel/conmerge_estimator.h"
#include "exion/common/table.h"
#include "exion/model/config.h"

using namespace exion;

int
main()
{
    TextTable table({"Model", "FFN rows (tokens)", "Inter-iter sparsity",
                     "Remaining cols (analytic)",
                     "Remaining cols (empirical)"});
    table.setTitle(
        "Fig. 8 — Condensing: remaining columns of the 1st FFN layer");

    for (Benchmark b : allBenchmarks()) {
        const ModelConfig cfg = makeConfig(b, Scale::Full);
        const FfnMaskParams params = ffnMaskParams(b);
        // Representative stage: the first (largest-token) stage.
        const StageConfig &stage = cfg.stages.front();
        const Index rows = stage.tokens;
        const Index cols = stage.ffnMult * stage.dModel;

        const double analytic = analyticFfnCondenseRemaining(rows,
                                                             params);
        // Empirical check on a sampled mask (rows capped for memory).
        Rng rng(0xf00d + static_cast<u64>(b));
        const Index sample_rows = std::min<Index>(rows, 2048);
        const Bitmask2D mask = synthFfnMask(sample_rows, cols, params,
                                            rng);
        Index nonempty = 0;
        for (Index c = 0; c < cols; ++c)
            nonempty += mask.columnEmpty(c) ? 0 : 1;
        double empirical = static_cast<double>(nonempty)
            / static_cast<double>(cols);
        if (sample_rows < rows) {
            // Taller matrices can only touch more columns.
            empirical = std::max(empirical, analytic);
        }

        table.addRow({
            benchmarkName(b),
            std::to_string(rows),
            formatPercent(1.0 - params.density, 0),
            formatPercent(analytic),
            formatPercent(empirical),
        });
    }
    table.addNote("Paper anchors: MLD 13.8%, Stable Diffusion 77.4% "
                  "remaining after condensing.");
    table.addNote("Condensed columns also skip their weight fetch "
                  "from DRAM (Fig. 8).");
    table.print();
    return 0;
}
