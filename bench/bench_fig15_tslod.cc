/**
 * @file
 * Regenerates Fig. 15: two-step leading-one detection accuracy.
 *
 * DiT generation with eager prediction driven by single-step LOD
 * versus TS-LOD, measured as PSNR against the vanilla model's output
 * (paper: 11.8 dB with LOD, 15.6 dB with TS-LOD, 16.0 dB with
 * FFN-Reuse only).
 */

#include "bench_util.h"
#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "exion/common/rng.h"
#include "exion/common/stats.h"
#include "exion/sparsity/eager_prediction.h"
#include "exion/tensor/ops.h"
#include "exion/common/table.h"

using namespace exion;
using namespace exion::bench;

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    ModelConfig cfg = makeConfig(Benchmark::DiT, Scale::Reduced);
    cfg.iterations = quick ? 20 : 50;
    // Our reduced-scale attention is more diffuse than real DiT-XL's:
    // the one-hot (q_th) channel is noise-dominated there and LOD's
    // systematic underestimation happens to trigger fewer one-hot
    // skips. To measure what Fig. 15 measures — prediction accuracy —
    // the end-to-end comparison disables one-hot and uses a moderate
    // keep ratio so the top-k sets reflect ranking quality
    // (see EXPERIMENTS.md deviations).
    cfg.ep = {1e6, 0.3};
    // Peaked attention, as trained DiT-XL exhibits (see config.h).
    cfg.stages[0].scoreTemp = 3.0;
    const int seeds = quick ? 2 : 4;

    const DiffusionPipeline pipe = storePipeline(cfg);

    TextTable table({"Method", "PSNR vs vanilla (dB)",
                     "Cosine similarity"});
    table.setTitle("Fig. 15 — EP accuracy: LOD vs two-step LOD (DiT)");

    for (Variant v : {Variant::FfnReuse, Variant::EpLodOnly,
                      Variant::EpTsLodOnly}) {
        RunningStats psnr_stats, cos_stats;
        for (int s = 0; s < seeds; ++s) {
            const Matrix vanilla =
                runVariant(pipe, Variant::Vanilla, 7 + s).output;
            const Matrix out = runVariant(pipe, v, 7 + s).output;
            psnr_stats.add(psnr(vanilla, out));
            cos_stats.add(cosineSimilarity(vanilla, out));
        }
        table.addRow({
            variantName(v),
            formatDouble(psnr_stats.mean(), 1),
            formatDouble(cos_stats.mean(), 4),
        });
    }
    table.addNote("Paper: FFN-Reuse 16.0 dB, EP w/ LOD 11.8 dB, "
                  "EP w/ TS-LOD 15.6 dB (DiT-XL).");
    table.addNote("Shape check: TS-LOD recovers most of the PSNR gap "
                  "LOD opens; averaged over " + std::to_string(seeds)
                  + " noise seeds.");
    table.print();

    // Direct measurement of the mechanism: how much of the exact
    // top-k does each prediction recover, and how close are the
    // predicted scores themselves?
    TextTable mech({"Mode", "Top-k overlap", "Score rel. error"});
    mech.setTitle("Fig. 15 — prediction quality (DiT-shaped "
                  "attention, direct)");
    const Index t = 64, d = 96, dh = 24;
    RunningStats overlap_lod, overlap_ts, err_lod, err_ts;
    for (int s = 0; s < 8; ++s) {
        Rng rng(900 + s);
        Matrix x(t, d), wq(d, dh), wk(d, dh);
        x.fillNormal(rng, 0.0f, 1.0f);
        wq.fillNormal(rng, 0.0f, 0.1f);
        wk.fillNormal(rng, 0.0f, 0.1f);
        Matrix exact = matmulTransposed(matmul(x, wq), matmul(x, wk));
        const QuantMatrix qx = QuantMatrix::fromFloat(x,
                                                      IntWidth::Int12);
        const QuantMatrix qwq = QuantMatrix::fromFloat(
            wq, IntWidth::Int12);
        const QuantMatrix qwk = QuantMatrix::fromFloat(
            wk, IntWidth::Int12);
        const Matrix p_lod = predictHeadScore(qx, qwq, qwk,
                                              LodMode::Single);
        const Matrix p_ts = predictHeadScore(qx, qwq, qwk,
                                             LodMode::TwoStep);
        const Index keep = t / 4;
        auto topk_overlap = [&](const Matrix &pred) {
            double total = 0.0;
            std::vector<std::pair<float, Index>> er(t), pr(t);
            for (Index r = 0; r < t; ++r) {
                for (Index c = 0; c < t; ++c) {
                    er[c] = {exact(r, c), c};
                    pr[c] = {pred(r, c), c};
                }
                std::partial_sort(er.begin(), er.begin() + keep,
                                  er.end(), std::greater<>());
                std::partial_sort(pr.begin(), pr.begin() + keep,
                                  pr.end(), std::greater<>());
                std::set<Index> keep_exact;
                for (Index i = 0; i < keep; ++i)
                    keep_exact.insert(er[i].second);
                Index hits = 0;
                for (Index i = 0; i < keep; ++i)
                    hits += keep_exact.count(pr[i].second);
                total += static_cast<double>(hits) / keep;
            }
            return total / t;
        };
        overlap_lod.add(topk_overlap(p_lod));
        overlap_ts.add(topk_overlap(p_ts));
        Matrix exact_scaled = scale(
            exact, 1.0f / std::sqrt(static_cast<float>(dh)));
        err_lod.add(relativeError(exact_scaled, p_lod));
        err_ts.add(relativeError(exact_scaled, p_ts));
    }
    mech.addRow({"LOD", formatPercent(overlap_lod.mean()),
                 formatDouble(err_lod.mean(), 3)});
    mech.addRow({"TS-LOD", formatPercent(overlap_ts.mean()),
                 formatDouble(err_ts.mean(), 3)});
    mech.addNote("TS-LOD recovers more of the exact top-k and halves "
                 "the score error (the operands of addition are "
                 "quadrupled, Section IV-D).");
    mech.print();
    return 0;
}
