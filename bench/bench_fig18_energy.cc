/**
 * @file
 * Regenerates Fig. 18: energy-efficiency comparison and ablation.
 *
 * (a) EXION4 (Base/EP/FFNR/All) versus the edge GPU on the models
 *     that fit edge memory, batch 1 and 8.
 * (b) EXION24 versus the server GPU on all benchmarks, batch 1 and 8.
 *
 * Efficiency is dense-equivalent TOPS/W; the gain column is the ratio
 * over the GPU's TOPS/W (equivalently, the GPU-to-EXION energy ratio
 * for the same work).
 */

#include <vector>

#include "exion/accel/perf_model.h"
#include "exion/baseline/gpu_model.h"
#include "exion/common/table.h"

using namespace exion;

namespace
{

void
runComparison(const std::string &title, const ExionConfig &device,
              const GpuSpec &gpu_spec,
              const std::vector<Benchmark> &models, int batch)
{
    TextTable table({"Model", "GPU TOPS/W", "Base", "EP", "FFNR",
                     "All", "Gain (All)"});
    table.setTitle(title + ", batch " + std::to_string(batch));

    GpuModel gpu(gpu_spec);
    for (Benchmark b : models) {
        const ModelConfig model = makeConfig(b, Scale::Full);
        const SparsityProfile prof = profileFor(b);
        const GpuRunResult gpu_run = gpu.run(model, batch);

        std::vector<std::string> row = {
            benchmarkName(b),
            formatDouble(gpu_run.topsPerWatt(), 4),
        };
        double all_eff = 0.0;
        for (Ablation a : {Ablation::Base, Ablation::Ep,
                           Ablation::Ffnr, Ablation::All}) {
            ExionPerfModel pm(device, a);
            const RunStats stats = pm.run(model, prof, batch);
            row.push_back(formatDouble(stats.topsPerWatt(), 2));
            if (a == Ablation::All)
                all_eff = stats.topsPerWatt();
        }
        row.push_back(formatRatio(all_eff / gpu_run.topsPerWatt(), 1));
        table.addRow(std::move(row));
    }
    table.addNote("TOPS/W is dense-equivalent work per energy; "
                  "columns Base..All are " + device.name
                  + " ablations.");
    table.print();
}

} // namespace

int
main()
{
    const std::vector<Benchmark> edge_models = {
        Benchmark::MLD, Benchmark::MDM, Benchmark::EDGE,
        Benchmark::MakeAnAudio};
    const std::vector<Benchmark> server_models = allBenchmarks();

    runComparison("Fig. 18(a) — EXION4 vs edge GPU", exion4(),
                  edgeGpu(), edge_models, 1);
    runComparison("Fig. 18(a) — EXION4 vs edge GPU", exion4(),
                  edgeGpu(), edge_models, 8);
    runComparison("Fig. 18(b) — EXION24 vs server GPU", exion24(),
                  serverGpu(), server_models, 1);
    runComparison("Fig. 18(b) — EXION24 vs server GPU", exion24(),
                  serverGpu(), server_models, 8);

    TextTable anchors({"Comparison", "Paper range", "Meaning"});
    anchors.setTitle("Fig. 18 — paper anchor ranges");
    anchors.addRow({"EXION4_All vs edge GPU", "196.9-4668.2x",
                    "energy-efficiency gain"});
    anchors.addRow({"EXION24_All vs server GPU", "45.1-3067.6x",
                    "energy-efficiency gain"});
    anchors.print();
    return 0;
}
