/**
 * @file
 * Regenerates Fig. 4: number-of-operations breakdown per benchmark.
 *
 * For every model, prints per-iteration op totals and the share of
 * QKV projection, attention computation, FFN layers and everything
 * else. The paper's headline shapes: transformer blocks dominate
 * (38-100%), and within them the FFN layers are the largest component
 * for the short-token diffusion models.
 */

#include "exion/common/table.h"
#include "exion/model/op_counter.h"

using namespace exion;

int
main()
{
    TextTable table({"Model", "Ops/iter", "Transformer%", "QKV%",
                     "Attention%", "FFN%", "Etc%", "FFN% of xformer"});
    table.setTitle("Fig. 4 — Number of Operations Breakdown");

    for (Benchmark b : allBenchmarks()) {
        const ModelConfig cfg = makeConfig(b, Scale::Full);
        const OpBreakdown ops = countOpsPerIteration(cfg);
        const double total = static_cast<double>(ops.total());
        table.addRow({
            benchmarkName(b),
            formatSci(total, 1),
            formatPercent(ops.transformerShare()),
            formatPercent(ops.qkv / total),
            formatPercent(ops.attn / total),
            formatPercent(ops.ffn / total),
            formatPercent(ops.etc / total),
            formatPercent(ops.ffnShareOfTransformer()),
        });
    }
    table.addNote("MACs counted as 2 ops; per denoising iteration.");
    table.addNote("Etc covers ResBlocks (3x3 convs) and latent "
                  "projections — no sparsity optimisation applies.");
    table.print();
    return 0;
}
