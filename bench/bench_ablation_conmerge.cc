/**
 * @file
 * Design-choice ablations for ConMerge (beyond the paper's figures,
 * called out in DESIGN.md): how much does each architectural knob buy?
 *
 *  - merge depth: origins per physical column (1 = condensing only,
 *    2 = single merge, 3 = the paper's triple-buffered WMEM);
 *  - retry budget: candidate blocks tried per round;
 *  - the per-lane single-CV-slot constraint is exercised implicitly —
 *    occupancy and accept rates show how often it binds.
 */

#include "exion/accel/conmerge_estimator.h"
#include "exion/common/table.h"
#include "exion/model/config.h"

using namespace exion;

int
main()
{
    {
        TextTable table({"Model", "Depth 1 (condense)", "Depth 2",
                         "Depth 3 (paper)"});
        table.setTitle("Ablation — remaining columns vs merge depth "
                       "(1st FFN layer)");
        for (Benchmark b : {Benchmark::StableDiffusion, Benchmark::MDM,
                            Benchmark::DiT}) {
            const ModelConfig cfg = makeConfig(b, Scale::Full);
            const StageConfig &stage = cfg.stages.front();
            std::vector<std::string> row = {benchmarkName(b)};
            for (Index rounds : {0u, 1u, 2u}) {
                ConMergeConfig cm;
                cm.maxMergeRounds = rounds;
                const ConMergeSummary s = estimateFfnConMerge(
                    stage.tokens, stage.ffnMult * stage.dModel,
                    ffnMaskParams(b), 8, 0xab1 + static_cast<u64>(b),
                    cm);
                row.push_back(formatPercent(s.mergedRemainingFraction));
            }
            table.addRow(std::move(row));
        }
        table.addNote("Depth 1 executes per-tile condensing only; the "
                      "third origin (triple-buffered WMEM) is what "
                      "reaches the paper's single-digit remainders.");
        table.print();
    }

    {
        TextTable table({"Retries", "Remaining cols", "CAU cycles/group"});
        table.setTitle("Ablation — retry budget per merge round "
                       "(Stable Diffusion FFN)");
        const ModelConfig cfg = makeConfig(Benchmark::StableDiffusion,
                                           Scale::Full);
        const StageConfig &stage = cfg.stages.front();
        for (Index attempts : {1u, 2u, 3u, 6u}) {
            ConMergeConfig cm;
            cm.maxAttemptsPerRound = attempts;
            const ConMergeSummary s = estimateFfnConMerge(
                stage.tokens, stage.ffnMult * stage.dModel,
                ffnMaskParams(Benchmark::StableDiffusion), 8, 0xab2,
                cm);
            table.addRow({
                std::to_string(attempts),
                formatPercent(s.mergedRemainingFraction),
                formatDouble(s.mergeCyclesPerGroup, 0),
            });
        }
        table.addNote("More retries pack slightly tighter at linearly "
                      "growing CVG cost; the default (3) sits at the "
                      "knee.");
        table.print();
    }
    return 0;
}
