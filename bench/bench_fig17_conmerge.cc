/**
 * @file
 * Regenerates Fig. 17: ConMerge efficiency across all benchmarks.
 *
 * For every model, the remaining-column percentage of (a) the 1st FFN
 * layer's output and (b) the attention score after condensing and
 * after merging. Paper averages: FFN 60.3% -> 16.2%; attention score
 * 80.0% -> 50.0%.
 */

#include "exion/accel/conmerge_estimator.h"
#include "exion/common/stats.h"
#include "exion/common/table.h"
#include "exion/model/config.h"

using namespace exion;

int
main()
{
    TextTable table({"Model", "FFN condense", "FFN merge",
                     "Score condense", "Score merge"});
    table.setTitle("Fig. 17 — ConMerge efficiency "
                   "(remaining column percentage)");

    RunningStats ffn_c, ffn_m, score_c, score_m;
    for (Benchmark b : allBenchmarks()) {
        const ModelConfig cfg = makeConfig(b, Scale::Full);
        const StageConfig &stage = cfg.stages.front();
        const u64 seed = 0x17c + static_cast<u64>(b);

        const ConMergeSummary ffn = estimateFfnConMerge(
            stage.tokens, stage.ffnMult * stage.dModel,
            ffnMaskParams(b), 10, seed);
        const ConMergeSummary score = estimateScoreConMerge(
            stage.tokens, stage.tokens, scoreMaskParams(b), 10,
            seed ^ 0x5555);

        ffn_c.add(ffn.condenseRemainingFraction);
        ffn_m.add(ffn.mergedRemainingFraction);
        score_c.add(score.condenseRemainingFraction);
        score_m.add(score.mergedRemainingFraction);

        table.addRow({
            benchmarkName(b),
            formatPercent(ffn.condenseRemainingFraction),
            formatPercent(ffn.mergedRemainingFraction),
            formatPercent(score.condenseRemainingFraction),
            formatPercent(score.mergedRemainingFraction),
        });
    }
    table.addRow({
        "AVERAGE",
        formatPercent(ffn_c.mean()),
        formatPercent(ffn_m.mean()),
        formatPercent(score_c.mean()),
        formatPercent(score_m.mean()),
    });
    table.addNote("Paper averages: FFN 60.3% after condensing, 16.2% "
                  "after merging; attention 80.0% -> 50.0%.");
    table.addNote("Condensing is matrix-level column removal; merging "
                  "is physical columns after the real CVG on sampled "
                  "16-row groups.");
    table.print();
    return 0;
}
