/**
 * @file
 * Regenerates Table II: hardware specifications of the GPUs and the
 * comparable EXION configurations.
 */

#include "exion/accel/exion_config.h"
#include "exion/baseline/gpu_model.h"
#include "exion/common/table.h"
#include "exion/sim/energy.h"

using namespace exion;

int
main()
{
    {
        TextTable table({"Device", "Throughput", "Memory BW",
                         "Power"});
        table.setTitle("Table II — GPU specifications");
        for (const GpuSpec &spec : {edgeGpu(), serverGpu()}) {
            table.addRow({
                spec.name,
                formatDouble(spec.peakTops, 1) + " TOPS",
                formatDouble(spec.bandwidthGbs, 0) + " GB/s",
                "~" + formatDouble(spec.boardPowerW, 0) + " W",
            });
        }
        table.print();
    }

    {
        TextTable table({"Device", "DSCs", "Throughput", "Memory BW",
                         "DRAM", "GSC", "Est. power"});
        table.setTitle("Table II — Comparable EXION configurations");
        EnergyModel energy{DscParams{}};
        for (const ExionConfig &cfg : {exion4(), exion24(), exion42()}) {
            DramModel dram(cfg.dramType, cfg.dramBandwidthGbs);
            table.addRow({
                cfg.name,
                std::to_string(cfg.numDscs),
                formatDouble(cfg.peakTops(), 1) + " TOPS",
                formatDouble(cfg.dramBandwidthGbs, 0) + " GB/s",
                dram.name(),
                formatDouble(cfg.gscBytes / (1024.0 * 1024.0), 1)
                    + " MB",
                "~" + formatDouble(cfg.numDscs
                                       * energy.totalActivePowerMw()
                                       / 1000.0, 2) + " W (cores)",
            });
        }
        table.addNote("One DSC peaks at "
                      + formatDouble(DscParams{}.peakTops(), 1)
                      + " TOPS (Table II note: 9.8).");
        table.addNote("Paper power estimates: EXION4 ~3.18 W, "
                      "EXION24 ~20.40 W (load-dependent; core power "
                      "above is the fully-active bound).");
        table.print();
    }
    return 0;
}
