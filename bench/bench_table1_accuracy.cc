/**
 * @file
 * Regenerates Table I: model accuracy under EXION's optimisations.
 *
 * Seven benchmarks, four variants (vanilla, FFN-Reuse, +EP, +INT12
 * quantisation). Without the original datasets the task metrics
 * (FID/R-Precision/FAD/IS/...) are replaced by PSNR-vs-vanilla — the
 * cross-model metric Table I itself reports — plus cosine similarity
 * and a Fréchet-distance proxy over a batch of generations (the FID
 * stand-in; see DESIGN.md). Also prints the achieved inter-/intra-
 * iteration sparsity and the EP projection-skip rates.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "exion/common/table.h"

using namespace exion;
using namespace exion::bench;

int
main(int argc, char **argv)
{
    const bool quick = quickMode(argc, argv);
    const int fd_batch = quick ? 3 : 6;

    TextTable table({"Model", "Variant", "PSNR (dB)", "CosSim",
                     "FD-proxy", "InterSp", "IntraSp", "Q/K/V skip"});
    table.setTitle("Table I — Accuracy under EXION optimisations "
                   "(reduced-scale functional runs)");

    for (Benchmark b : allBenchmarks()) {
        const ModelConfig cfg = reducedConfig(b, quick, 16);
        const DiffusionPipeline pipe = storePipeline(cfg);

        // Batches for the Fréchet proxy (distinct noise seeds).
        std::vector<Matrix> vanilla_batch;
        for (int i = 0; i < fd_batch; ++i) {
            DenseExecutor exec;
            vanilla_batch.push_back(pipe.run(exec, 100 + i));
        }
        FrechetProxy proxy(cfg.latentTokens * cfg.latentDim, 24);

        for (Variant v : {Variant::Vanilla, Variant::FfnReuse,
                          Variant::FfnReuseEp,
                          Variant::FfnReuseEpQuant}) {
            std::vector<Matrix> batch;
            ExecStats stats;
            for (int i = 0; i < fd_batch; ++i) {
                const VariantResult run = runVariant(pipe, v, 100 + i);
                batch.push_back(run.output);
                stats.merge(run.stats);
            }
            const double fd = proxy.distance(vanilla_batch, batch);
            const double p = psnr(vanilla_batch[0], batch[0]);
            const double cs = cosineSimilarity(vanilla_batch[0],
                                               batch[0]);
            std::string skips = "-";
            if (stats.qRowsTotal > 0 && stats.scoreSparsitySamples) {
                skips = formatPercent(
                            static_cast<double>(stats.qRowsSkipped)
                                / stats.qRowsTotal, 0)
                    + "/"
                    + formatPercent(
                          static_cast<double>(stats.kColsSkipped)
                              / stats.kColsTotal, 0)
                    + "/"
                    + formatPercent(
                          static_cast<double>(stats.vColsSkipped)
                              / stats.vColsTotal, 0);
            }
            table.addRow({
                benchmarkName(b),
                variantName(v),
                std::isinf(p) ? std::string("inf") : formatDouble(p, 1),
                formatDouble(cs, 4),
                formatDouble(fd, 3),
                stats.ffnSparsitySamples
                    ? formatPercent(stats.meanFfnSparsity(), 0) : "-",
                stats.scoreSparsitySamples
                    ? formatPercent(stats.meanScoreSparsity(), 0)
                    : "-",
            skips,
            });
        }
    }
    table.addNote("Paper Table I reports PSNR-vs-vanilla of ~26-33 dB "
                  "for FFN-Reuse and ~10-27 dB with EP added.");
    table.addNote("FD-proxy substitutes FID/FAD (random-projection "
                  "Frechet distance over a batch; lower is better).");
    table.addNote("InterSp/IntraSp = achieved FFN-Reuse / EP score "
                  "sparsity; Table I targets per model.");
    table.print();
    return 0;
}
