/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 */

#ifndef EXION_BENCH_BENCH_UTIL_H_
#define EXION_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "exion/metrics/frechet.h"
#include "exion/metrics/metrics.h"
#include "exion/model/pipeline.h"
#include "exion/model/weight_store.h"
#include "exion/sparsity/sparse_executor.h"

namespace exion
{
namespace bench
{

/** Variants of Table I's accuracy evaluation. */
enum class Variant
{
    Vanilla,
    FfnReuse,
    FfnReuseEp,
    FfnReuseEpQuant,
    EpLodOnly,   //!< Fig. 15 ablation: EP with single-step LOD
    EpTsLodOnly, //!< Fig. 15 ablation: EP with two-step LOD
};

inline std::string
variantName(Variant v)
{
    switch (v) {
      case Variant::Vanilla:
        return "Vanilla";
      case Variant::FfnReuse:
        return "FFN-Reuse";
      case Variant::FfnReuseEp:
        return "FFN-Reuse+EP";
      case Variant::FfnReuseEpQuant:
        return "FFN-Reuse+EP+Quant";
      case Variant::EpLodOnly:
        return "EP w/ LOD";
      case Variant::EpTsLodOnly:
        return "EP w/ TS-LOD";
    }
    return "?";
}

/** One accuracy run's outcome. */
struct VariantResult
{
    Matrix output;
    ExecStats stats;
};

/** Runs one pipeline variant on the model. */
inline VariantResult
runVariant(const DiffusionPipeline &pipe, Variant v, u64 noise_seed)
{
    const ModelConfig &cfg = pipe.config();
    VariantResult result;
    if (v == Variant::Vanilla) {
        DenseExecutor exec;
        result.output = pipe.run(exec, noise_seed);
        result.stats = exec.stats();
        return result;
    }
    bool ffnr = true, ep = true, quant = false;
    LodMode mode = LodMode::TwoStep;
    switch (v) {
      case Variant::FfnReuse:
        ep = false;
        break;
      case Variant::FfnReuseEp:
        break;
      case Variant::FfnReuseEpQuant:
        quant = true;
        break;
      case Variant::EpLodOnly:
        ffnr = false;
        mode = LodMode::Single;
        break;
      case Variant::EpTsLodOnly:
        ffnr = false;
        break;
      default:
        break;
    }
    SparseExecutor exec(
        SparseExecutor::fromConfig(cfg, ffnr, ep, quant, mode));
    result.output = pipe.run(exec, noise_seed);
    result.stats = exec.stats();
    return result;
}

/** True when argv contains --quick (shrinks iteration counts). */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--quick")
            return true;
    return false;
}

/**
 * Reduced-scale config for a benchmark, with iterations capped in
 * quick mode — the construction prologue nearly every harness used
 * to spell out by hand.
 */
inline ModelConfig
reducedConfig(Benchmark b, bool quick, int quick_iterations = 16)
{
    ModelConfig cfg = makeConfig(b, Scale::Reduced);
    if (quick)
        cfg.iterations = std::min(cfg.iterations, quick_iterations);
    return cfg;
}

/**
 * Pipeline for cfg built through an explicit WeightStore snapshot —
 * the exact path a serving engine registering this model takes
 * (serialized image, borrowed views, quantized-at-rest weights), and
 * bit-identical to DiffusionPipeline(cfg).
 */
inline DiffusionPipeline
storePipeline(const ModelConfig &cfg)
{
    return DiffusionPipeline(WeightStore::build(cfg));
}

/** reducedConfig + storePipeline in one step. */
inline DiffusionPipeline
storePipeline(Benchmark b, bool quick, int quick_iterations = 16)
{
    return storePipeline(reducedConfig(b, quick, quick_iterations));
}

} // namespace bench
} // namespace exion

#endif // EXION_BENCH_BENCH_UTIL_H_
