/**
 * @file
 * Regenerates Fig. 19(a): end-to-end latency comparison.
 *
 * Full-run latency (all denoising iterations) of the edge GPU vs
 * EXION4_All and the server GPU vs EXION24_All, batch 1 and 8.
 */

#include <vector>

#include "exion/accel/perf_model.h"
#include "exion/baseline/gpu_model.h"
#include "exion/common/table.h"

using namespace exion;

namespace
{

void
runComparison(const std::string &title, const ExionConfig &device,
              const GpuSpec &gpu_spec,
              const std::vector<Benchmark> &models, int batch)
{
    TextTable table({"Model", "GPU (ms)", device.name + "_All (ms)",
                     "Speedup"});
    table.setTitle(title + ", batch " + std::to_string(batch));

    GpuModel gpu(gpu_spec);
    for (Benchmark b : models) {
        const ModelConfig model = makeConfig(b, Scale::Full);
        const GpuRunResult gpu_run = gpu.run(model, batch);
        ExionPerfModel pm(device, Ablation::All);
        const RunStats stats = pm.run(model, profileFor(b), batch);
        table.addRow({
            benchmarkName(b),
            formatDouble(gpu_run.latencySeconds * 1e3, 2),
            formatDouble(stats.latencySeconds * 1e3, 2),
            formatRatio(gpu_run.latencySeconds / stats.latencySeconds,
                        1),
        });
    }
    table.print();
}

} // namespace

int
main()
{
    const std::vector<Benchmark> edge_models = {
        Benchmark::MLD, Benchmark::MDM, Benchmark::EDGE,
        Benchmark::MakeAnAudio};

    runComparison("Fig. 19(a) — latency vs edge GPU", exion4(),
                  edgeGpu(), edge_models, 1);
    runComparison("Fig. 19(a) — latency vs edge GPU", exion4(),
                  edgeGpu(), edge_models, 8);
    runComparison("Fig. 19(a) — latency vs server GPU", exion24(),
                  serverGpu(), allBenchmarks(), 1);
    runComparison("Fig. 19(a) — latency vs server GPU", exion24(),
                  serverGpu(), allBenchmarks(), 8);

    TextTable anchors({"Comparison", "Paper range"});
    anchors.setTitle("Fig. 19(a) — paper anchor speedups");
    anchors.addRow({"EXION4_All vs edge GPU (batch 1)",
                    "43.7-1060.6x"});
    anchors.addRow({"EXION24_All vs server GPU (batch 1)",
                    "3.3-365.6x"});
    anchors.addRow({"batch 8", "42.6-1090.9x / 3.2-379.3x"});
    anchors.print();
    return 0;
}
