/**
 * @file
 * Serving throughput and tail latency of the batched engine:
 * requests/sec versus the single-stream path, swept over batch size
 * and worker count, with p50/p99 per-request completion latency
 * (submit -> result delivered) measured through the async path.
 *
 * The single-stream baseline is the repository's pre-engine serving
 * path: one thread, one request at a time, a fresh pipeline (weight
 * build) per request — exactly what every example binary did before
 * the BatchEngine existed. The engine amortises weight construction
 * across the batch and schedules requests over the pool, highest
 * priority first.
 *
 * Every seed is fixed (request noise seeds, pool seed), so the
 * numbers are reproducible run-to-run up to OS scheduling noise in
 * the wall-clock columns.
 *
 * A second scenario drives the engine into overload (offered load
 * beyond worker capacity) under an AdmissionConfig with class-bounded
 * queues and a Low-shedding watermark, and reports accept/shed rates
 * and per-class deadline-miss percentages straight from
 * EngineMetrics — the trajectory CI tracks for the serving layer.
 *
 * A third scenario compares the GEMM backends under cohort batching
 * on the paper-scale MLD workload, gated per mode with an explicit
 * tolerance: cohort-on dense with the Blocked (cache-blocked,
 * B-panel-packed) backend must strictly beat the Reference backend,
 * and the EXION mode — whose wall clock is dominated by sparse
 * kernels the backend never touches — must clear a 5% regression
 * allowance, with a stderr note whenever a mode lands below parity.
 * Both comparisons land in BENCH_batch.json.
 *
 * A fifth scenario measures weight-store sharing: the full-scale
 * model's store is built once and registered with two engines; the
 * JSON's weights section records per-model store sizes and the RSS
 * each registration added, gated on the second engine costing < 20%
 * of the weight RSS (borrowed views, not a copy).
 *
 * Exits nonzero if any measured throughput is not positive, a gated
 * comparison regresses, or the overload accounting does not
 * reconcile, so CI can use a quick run as a smoke check.
 *
 * A fourth scenario compares the SIMD tiers under cohort batching
 * on the same workload: the Exact tier (host vector table, golden
 * accumulation order, bit-identical to Scalar) must not lose to the
 * forced-Scalar tier whenever a vector table is active — the gate
 * that keeps the kernel layer an actual wall-clock win.
 *
 * A sixth scenario measures intra-request tensor parallelism under
 * cohort batching: the same cohort-led stacked load at
 * tensorParallel = 1 vs 4 (override the slice count with --tp N),
 * with tp=4 outputs asserted byte-identical to tp=1 on every rep.
 * On hosts with >= 4 hardware threads the dense row is gated at a
 * 1.3x floor (see bench/README.md for the rationale); on smaller
 * hosts only the bit-identity gate applies.
 *
 *   ./build/bench/bench_batch_throughput [--quick]
 *                                        [--gemm reference|blocked]
 *                                        [--simd scalar|exact|fast]
 *                                        [--tp N]
 */

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exion/serve/batch_engine.h"
#include "exion/tensor/kernel_flags.h"

using namespace exion;

namespace
{

/** Fixed seeds: identical request streams on every run. */
constexpr u64 kNoiseSeedBase = 42;
constexpr u64 kPoolSeed = 0x5eed5eed5eed5eedULL;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<ServeRequest>
makeBatch(int n)
{
    std::vector<ServeRequest> batch;
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = Benchmark::MLD;
        req.mode = i % 4 == 3 ? ExecMode::Dense : ExecMode::Exion;
        req.noiseSeed = kNoiseSeedBase + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

/** Pre-engine path: fresh pipeline + executor per request, 1 thread. */
double
runSingleStream(const ModelConfig &cfg,
                const std::vector<ServeRequest> &batch)
{
    const double start = now();
    for (const ServeRequest &req : batch) {
        DiffusionPipeline pipe(cfg);
        if (req.mode == ExecMode::Dense) {
            DenseExecutor exec;
            pipe.run(exec, req.noiseSeed);
        } else {
            SparseExecutor exec(SparseExecutor::fromConfig(
                cfg, /*use_ffn_reuse=*/true, /*use_ep=*/true,
                /*quantize=*/false));
            pipe.run(exec, req.noiseSeed);
        }
    }
    return now() - start;
}

struct EngineRun
{
    double seconds = 0.0; //!< makespan of the whole batch
    double p50 = 0.0;     //!< median completion latency (s)
    double p99 = 0.0;     //!< p99 completion latency (s)
};

/** Latency at a percentile (0..100) of an ascending-sorted sample. */
double
percentile(const std::vector<double> &samples, double pct)
{
    if (samples.empty())
        return 0.0;
    const double rank =
        pct / 100.0 * static_cast<double>(samples.size() - 1);
    const Index lo = static_cast<Index>(rank);
    const Index hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

/**
 * Engine path: shared weights, W workers, async submit/complete.
 * Completion latency is measured per request from its submit() to the
 * completion callback firing.
 */
EngineRun
runEngine(const ModelConfig &cfg,
          const std::vector<ServeRequest> &batch, int workers,
          GemmBackend gemm, SimdTier simd)
{
    BatchEngine::Options opts;
    opts.workers = workers;
    opts.poolSeed = kPoolSeed;
    opts.gemmBackend = gemm;
    opts.simdTier = simd;
    // Latency is taken from the callback; don't accumulate results.
    opts.queueResults = false;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::mutex mutex;
    std::vector<double> submit_time(batch.size(), 0.0);
    std::vector<double> latencies;
    latencies.reserve(batch.size());
    engine.setOnComplete([&](const RequestResult &r) {
        const double done = now();
        std::lock_guard<std::mutex> lock(mutex);
        latencies.push_back(done - submit_time[r.id]);
    });

    const double start = now();
    for (const ServeRequest &req : batch) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            submit_time[req.id] = now();
        }
        engine.submit(req);
    }
    engine.waitIdle();
    EngineRun run;
    run.seconds = now() - start;
    std::sort(latencies.begin(), latencies.end());
    run.p50 = percentile(latencies, 50.0);
    run.p99 = percentile(latencies, 99.0);
    return run;
}

/**
 * Overload scenario: a submission burst well beyond what the workers
 * can start, pushed through trySubmit() under a shedding admission
 * policy. Everything the policy admits runs; the report shows how the
 * boundary behaved, per class, from the engine's own snapshot().
 *
 * @return whether the snapshot reconciled with the observed outcomes
 */
bool
runOverload(const ModelConfig &cfg, bool quick)
{
    const int offered = quick ? 24 : 60;
    BatchEngine::Options opts;
    opts.workers = 2;
    opts.poolSeed = kPoolSeed;
    opts.queueResults = false;
    opts.admission.maxQueuedPerClass = 8;
    opts.admission.shedThreshold = 12;
    opts.admission.shedBelow = Priority::Normal;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    std::cout << "\n== overload: " << offered
              << " requests offered in one burst, 2 workers, "
              << "class bound 8, shed watermark 12 ==\n";

    // 2:1 Low:High mix; Low deadlines are tight enough that queueing
    // behind the burst misses them, High generous enough to hold.
    std::array<u64, kNumPriorityClasses> observed_accepted{};
    std::array<u64, kNumPriorityClasses> observed_rejected{};
    std::vector<Ticket> tickets;
    for (int i = 0; i < offered; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = cfg.benchmark;
        req.mode = ExecMode::Exion;
        req.noiseSeed = kNoiseSeedBase + static_cast<u64>(i);
        const bool low = i % 3 != 2;
        req.priority = low ? Priority::Low : Priority::High;
        req.deadlineSeconds = low ? 0.02 : 5.0;
        const SubmitOutcome outcome = engine.trySubmit(req);
        if (outcome.accepted()) {
            ++observed_accepted[classIndex(req.priority)];
            tickets.push_back(outcome.ticket);
        } else {
            ++observed_rejected[classIndex(req.priority)];
        }
    }
    engine.waitIdle();

    const EngineMetrics m = engine.snapshot();
    std::cout << std::left << std::setw(10) << "class" << std::setw(9)
              << "offered" << std::setw(10) << "accepted"
              << std::setw(7) << "shed" << std::setw(12)
              << "queue-full" << std::setw(11) << "completed"
              << "deadline-miss\n";
    bool reconciled = true;
    for (int c = 0; c < kNumPriorityClasses; ++c) {
        const ClassMetrics &cm = m.perClass[c];
        const u64 class_offered =
            observed_accepted[c] + observed_rejected[c];
        if (class_offered == 0)
            continue;
        const double miss_pct = cm.completed == 0 ? 0.0
            : 100.0 * static_cast<double>(cm.deadlineMisses)
                / static_cast<double>(cm.completed);
        std::ostringstream miss;
        miss << std::fixed << std::setprecision(1) << miss_pct << " %";
        std::cout << std::left << std::setw(10)
                  << priorityName(static_cast<Priority>(c))
                  << std::setw(9) << class_offered << std::setw(10)
                  << cm.accepted << std::setw(7) << cm.shed
                  << std::setw(12) << cm.rejectedQueueFull
                  << std::setw(11) << cm.completed << miss.str()
                  << "\n";
        reconciled &= cm.accepted == observed_accepted[c];
        reconciled &= cm.rejected() == observed_rejected[c];
        reconciled &= cm.completed == cm.accepted;
    }
    const double accept_rate = 100.0
        * static_cast<double>(m.accepted())
        / static_cast<double>(offered);
    std::cout << std::fixed << std::setprecision(1) << "accept rate "
              << accept_rate << " %, shed rate "
              << 100.0 * static_cast<double>(m.shed())
            / static_cast<double>(offered)
              << " %, queue wait p50/p99 " << std::setprecision(1)
              << m.queueWaitP50 * 1e3 << "/" << m.queueWaitP99 * 1e3
              << " ms\n";
    for (Ticket &t : tickets)
        reconciled &= t.get().ok();
    if (!reconciled)
        std::cerr << "error: snapshot does not reconcile with "
                     "observed admission outcomes\n";
    return reconciled;
}

/** One cohort-on/off comparison row of the JSON artifact. */
struct CohortComparison
{
    std::string mode;
    int requests = 0;
    int workers = 1;
    Index maxRows = 8;
    double offRps = 0.0;
    double onRps = 0.0;

    double speedup() const
    {
        return offRps > 0.0 ? onRps / offRps : 0.0;
    }
};

/** Cohort-on GEMM backend comparison row of the JSON artifact. */
struct GemmComparison
{
    std::string mode;
    int requests = 0;
    double referenceRps = 0.0;
    double blockedRps = 0.0;
    /** Per-mode acceptance bound on speedup() (the explicit gate). */
    double minSpeedup = 1.0;

    double speedup() const
    {
        return referenceRps > 0.0 ? blockedRps / referenceRps : 0.0;
    }
};

/**
 * Same-benchmark load through the engine with cohort batching off vs
 * on, single worker: every request traverses the same weights, so
 * the cohort path's stacked iterations amortise weight traversal and
 * per-iteration fixed costs across members. Wall time is the
 * submit-burst -> all-complete makespan.
 */
double
runCohortLoad(const ModelConfig &cfg, ExecMode mode, int n,
              int workers, bool cohort, Index max_rows,
              GemmBackend gemm, SimdTier simd)
{
    BatchEngine::Options opts;
    opts.workers = workers;
    opts.poolSeed = kPoolSeed;
    opts.queueResults = false;
    opts.cohortBatching = cohort;
    opts.cohortMaxRows = max_rows;
    opts.gemmBackend = gemm;
    opts.simdTier = simd;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause(); // stage the burst so both paths see a full queue
    std::vector<Ticket> tickets;
    tickets.reserve(n);
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = cfg.benchmark;
        req.mode = mode;
        req.noiseSeed = kNoiseSeedBase + static_cast<u64>(i);
        tickets.push_back(engine.submit(req));
    }
    const double start = now();
    engine.resume();
    for (Ticket &t : tickets)
        t.wait();
    const double seconds = now() - start;
    for (Ticket &t : tickets) {
        if (!t.get().ok())
            return 0.0;
    }
    return seconds;
}

CohortComparison
compareCohort(const ModelConfig &cfg, ExecMode mode, int n,
              Index max_rows, int reps, GemmBackend gemm,
              SimdTier simd)
{
    CohortComparison cmp;
    cmp.mode = execModeName(mode);
    cmp.requests = n;
    cmp.maxRows = max_rows;
    // Interleaved best-of-N: the makespans are short enough that a
    // single OS scheduling hiccup would swamp the structural gap, so
    // each path keeps its fastest run (the least-disturbed one).
    double off = 0.0;
    double on = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double off_s = runCohortLoad(cfg, mode, n, /*workers=*/1,
                                           false, max_rows, gemm,
                                           simd);
        const double on_s = runCohortLoad(cfg, mode, n, /*workers=*/1,
                                          true, max_rows, gemm, simd);
        if (off_s > 0.0)
            off = off == 0.0 ? off_s : std::min(off, off_s);
        if (on_s > 0.0)
            on = on == 0.0 ? on_s : std::min(on, on_s);
    }
    cmp.offRps = off > 0.0 ? n / off : 0.0;
    cmp.onRps = on > 0.0 ? n / on : 0.0;
    return cmp;
}

/**
 * Cohort-on, Reference vs Blocked GEMM backend (interleaved
 * best-of-N): the same stacked tall-MMUL load, with only the kernel
 * swapped — outputs are bit-identical, so any gap is pure wall clock.
 */
GemmComparison
compareGemmBackends(const ModelConfig &cfg, ExecMode mode, int n,
                    Index max_rows, int reps, SimdTier simd)
{
    GemmComparison cmp;
    cmp.mode = execModeName(mode);
    cmp.requests = n;
    double ref = 0.0;
    double blocked = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double ref_s =
            runCohortLoad(cfg, mode, n, /*workers=*/1, true, max_rows,
                          GemmBackend::Reference, simd);
        const double blocked_s =
            runCohortLoad(cfg, mode, n, /*workers=*/1, true, max_rows,
                          GemmBackend::Blocked, simd);
        if (ref_s > 0.0)
            ref = ref == 0.0 ? ref_s : std::min(ref, ref_s);
        if (blocked_s > 0.0)
            blocked = blocked == 0.0 ? blocked_s : std::min(blocked,
                                                            blocked_s);
    }
    cmp.referenceRps = ref > 0.0 ? n / ref : 0.0;
    cmp.blockedRps = blocked > 0.0 ? n / blocked : 0.0;
    return cmp;
}

/** Tensor-parallel comparison row of the JSON artifact. */
struct TpComparison
{
    std::string mode;
    int requests = 0;
    int tp = 1;           //!< slice count of the TP run
    double tp1Rps = 0.0;  //!< tensorParallel = 1
    double tpNRps = 0.0;  //!< tensorParallel = tp
    bool bitIdentical = false;
    /** Acceptance floor on speedup(); 0 when the gate is skipped. */
    double minSpeedup = 0.0;

    double speedup() const
    {
        return tp1Rps > 0.0 ? tpNRps / tp1Rps : 0.0;
    }
};

struct TpRun
{
    double seconds = 0.0;
    std::vector<Matrix> outputs; //!< in submission order
};

/**
 * Cohort-on load with the engine's tensorParallel knob: one leader
 * steps the whole cohort (the tall stacked GEMMs TP exists for) while
 * the remaining workers serve slice tasks. Returns the makespan plus
 * every output, so the caller can assert the tp=N bytes equal tp=1.
 */
TpRun
runTpLoad(const ModelConfig &cfg, ExecMode mode, int n, int workers,
          int tp, Index max_rows)
{
    BatchEngine::Options opts;
    opts.workers = workers;
    opts.poolSeed = kPoolSeed;
    opts.queueResults = false;
    opts.cohortBatching = true;
    opts.cohortMaxRows = max_rows;
    opts.tensorParallel = tp;
    BatchEngine engine(opts);
    engine.addModel(cfg);

    engine.pause();
    std::vector<Ticket> tickets;
    tickets.reserve(n);
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = cfg.benchmark;
        req.mode = mode;
        req.noiseSeed = kNoiseSeedBase + static_cast<u64>(i);
        tickets.push_back(engine.submit(req));
    }
    const double start = now();
    engine.resume();
    for (Ticket &t : tickets)
        t.wait();
    TpRun run;
    run.seconds = now() - start;
    run.outputs.reserve(n);
    for (Ticket &t : tickets) {
        RequestResult r = t.get();
        if (!r.ok())
            return TpRun{};
        run.outputs.push_back(std::move(r.output));
    }
    return run;
}

/** Byte-level equality of two output sets (same submission order). */
bool
sameOutputs(const std::vector<Matrix> &a, const std::vector<Matrix> &b)
{
    if (a.size() != b.size())
        return false;
    for (Index i = 0; i < a.size(); ++i) {
        if (a[i].rows() != b[i].rows() || a[i].cols() != b[i].cols())
            return false;
        if (std::memcmp(a[i].data().data(), b[i].data().data(),
                        static_cast<size_t>(a[i].size())
                            * sizeof(float))
            != 0)
            return false;
    }
    return true;
}

/**
 * tensorParallel = 1 vs N under cohort batching (interleaved
 * best-of-N). The slices repartition identical work, so the outputs
 * must match byte for byte on every rep — checked unconditionally,
 * even when the wall-clock gate is skipped on small hosts.
 */
TpComparison
compareTensorParallel(const ModelConfig &cfg, ExecMode mode, int n,
                      int tp, Index max_rows, int reps,
                      bool &bit_identical)
{
    TpComparison cmp;
    cmp.mode = execModeName(mode);
    cmp.requests = n;
    cmp.tp = tp;
    double solo = 0.0;
    double sliced = 0.0;
    bit_identical = true;
    for (int rep = 0; rep < reps; ++rep) {
        const TpRun solo_run =
            runTpLoad(cfg, mode, n, /*workers=*/tp, 1, max_rows);
        const TpRun tp_run =
            runTpLoad(cfg, mode, n, /*workers=*/tp, tp, max_rows);
        if (solo_run.seconds > 0.0)
            solo = solo == 0.0 ? solo_run.seconds
                               : std::min(solo, solo_run.seconds);
        if (tp_run.seconds > 0.0)
            sliced = sliced == 0.0 ? tp_run.seconds
                                   : std::min(sliced, tp_run.seconds);
        bit_identical &= sameOutputs(solo_run.outputs, tp_run.outputs);
    }
    cmp.tp1Rps = solo > 0.0 ? n / solo : 0.0;
    cmp.tpNRps = sliced > 0.0 ? n / sliced : 0.0;
    cmp.bitIdentical = bit_identical;
    return cmp;
}

/** Resident-set size from /proc/self/status, in KiB (0 if absent). */
long
rssKb()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("VmRSS:", 0) == 0)
            return std::strtol(line.c_str() + 6, nullptr, 10);
    }
    return 0;
}

/** Weight-memory accounting of the JSON artifact's weights section. */
struct WeightsReport
{
    /** (model name, serialized store bytes) for every benchmark. */
    std::vector<std::pair<std::string, u64>> storeSizes;
    /** Store the two engines below share. */
    u64 sharedStoreBytes = 0;
    long storeRssKb = 0;        //!< RSS delta of building the store
    long firstEngineRssKb = 0;  //!< delta of engine 1 registering it
    long secondEngineRssKb = 0; //!< delta of engine 2 registering it
    bool measured = false;      //!< false when /proc is unavailable
};

/**
 * Measures what weight sharing saves: builds the full-scale store
 * once, registers it with two engines in turn, and reads the RSS
 * growth each step causes. The second engine borrows views into the
 * same image, so its growth must be a small fraction of the weight
 * RSS — the gate that keeps "N engines, one weight copy" true.
 */
WeightsReport
measureWeightSharing(const ModelConfig &cfg)
{
    WeightsReport report;
    for (Benchmark b : allBenchmarks()) {
        const ModelConfig rc = makeConfig(b, Scale::Reduced);
        report.storeSizes.emplace_back(
            rc.name, WeightStore::build(rc)->sizeBytes());
    }

    BatchEngine::Options eopts;
    eopts.workers = 1;
    eopts.poolSeed = kPoolSeed;
    eopts.queueResults = false;

    const long base = rssKb();
    const auto store = WeightStore::build(cfg);
    report.sharedStoreBytes = store->sizeBytes();
    const long after_build = rssKb();
    BatchEngine first(eopts);
    first.registerModel(cfg.benchmark, store);
    const long after_first = rssKb();
    BatchEngine second(eopts);
    second.registerModel(cfg.benchmark, store);
    const long after_second = rssKb();

    report.storeRssKb = after_build - base;
    report.firstEngineRssKb = after_first - after_build;
    report.secondEngineRssKb = after_second - after_first;
    report.measured = base > 0 && report.storeRssKb > 0;
    return report;
}

/** Cohort-on SIMD tier comparison row of the JSON artifact. */
struct SimdComparison
{
    std::string mode;
    int requests = 0;
    double scalarRps = 0.0;
    double exactRps = 0.0;

    double speedup() const
    {
        return scalarRps > 0.0 ? exactRps / scalarRps : 0.0;
    }
};

/**
 * Cohort-on, Scalar vs Exact SIMD tier (interleaved best-of-N): the
 * same stacked load through the Blocked GEMM backend, with only the
 * kernel table swapped — the tiers are bit-identical by construction,
 * so any gap is pure wall clock.
 */
SimdComparison
compareSimdTiers(const ModelConfig &cfg, ExecMode mode, int n,
                 Index max_rows, int reps)
{
    SimdComparison cmp;
    cmp.mode = execModeName(mode);
    cmp.requests = n;
    double scalar = 0.0;
    double exact = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double scalar_s =
            runCohortLoad(cfg, mode, n, /*workers=*/1, true, max_rows,
                          GemmBackend::Blocked, SimdTier::Scalar);
        const double exact_s =
            runCohortLoad(cfg, mode, n, /*workers=*/1, true, max_rows,
                          GemmBackend::Blocked, SimdTier::Exact);
        if (scalar_s > 0.0)
            scalar = scalar == 0.0 ? scalar_s
                                   : std::min(scalar, scalar_s);
        if (exact_s > 0.0)
            exact = exact == 0.0 ? exact_s : std::min(exact, exact_s);
    }
    cmp.scalarRps = scalar > 0.0 ? n / scalar : 0.0;
    cmp.exactRps = exact > 0.0 ? n / exact : 0.0;
    return cmp;
}

/** Machine-readable artifact tracking the cohort perf trajectory. */
void
writeBenchJson(const std::string &path, const ModelConfig &cfg,
               bool quick, const std::vector<CohortComparison> &rows,
               const std::vector<GemmComparison> &gemm_rows,
               const std::vector<SimdComparison> &simd_rows,
               const std::vector<TpComparison> &tp_rows, bool tp_gated,
               const WeightsReport &weights)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"bench_batch_throughput\",\n";
    out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    out << "  \"model\": \"" << cfg.name << "\",\n";
    out << "  \"iterations\": " << cfg.iterations << ",\n";
    out << "  \"cohort\": [\n";
    for (Index i = 0; i < rows.size(); ++i) {
        const CohortComparison &c = rows[i];
        out << "    {\"mode\": \"" << c.mode << "\", \"requests\": "
            << c.requests << ", \"workers\": " << c.workers
            << ", \"max_rows\": " << c.maxRows << ",\n"
            << "     \"off_rps\": " << c.offRps << ", \"on_rps\": "
            << c.onRps << ", \"speedup\": " << c.speedup() << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"gemm\": [\n";
    for (Index i = 0; i < gemm_rows.size(); ++i) {
        const GemmComparison &g = gemm_rows[i];
        out << "    {\"mode\": \"" << g.mode << "\", \"requests\": "
            << g.requests << ", \"cohort\": true,\n"
            << "     \"reference_rps\": " << g.referenceRps
            << ", \"blocked_rps\": " << g.blockedRps
            << ", \"speedup\": " << g.speedup()
            << ", \"min_speedup\": " << g.minSpeedup << "}"
            << (i + 1 < gemm_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"simd\": {\n";
    out << "    \"level\": \"" << simdLevelName(activeSimdLevel())
        << "\",\n";
    out << "    \"rows\": [\n";
    for (Index i = 0; i < simd_rows.size(); ++i) {
        const SimdComparison &sc = simd_rows[i];
        out << "      {\"mode\": \"" << sc.mode
            << "\", \"requests\": " << sc.requests
            << ", \"cohort\": true,\n"
            << "       \"scalar_rps\": " << sc.scalarRps
            << ", \"exact_rps\": " << sc.exactRps
            << ", \"speedup\": " << sc.speedup() << "}"
            << (i + 1 < simd_rows.size() ? "," : "") << "\n";
    }
    out << "    ]\n";
    out << "  },\n";
    out << "  \"tp\": {\n";
    out << "    \"gated\": " << (tp_gated ? "true" : "false") << ",\n";
    out << "    \"rows\": [\n";
    for (Index i = 0; i < tp_rows.size(); ++i) {
        const TpComparison &t = tp_rows[i];
        out << "      {\"mode\": \"" << t.mode
            << "\", \"requests\": " << t.requests
            << ", \"tp\": " << t.tp << ", \"cohort\": true,\n"
            << "       \"tp1_rps\": " << t.tp1Rps
            << ", \"tp" << t.tp << "_rps\": " << t.tpNRps
            << ", \"speedup\": " << t.speedup()
            << ", \"min_speedup\": " << t.minSpeedup
            << ", \"bit_identical\": "
            << (t.bitIdentical ? "true" : "false") << "}"
            << (i + 1 < tp_rows.size() ? "," : "") << "\n";
    }
    out << "    ]\n";
    out << "  },\n";
    out << "  \"weights\": {\n";
    out << "    \"stores\": [\n";
    for (Index i = 0; i < weights.storeSizes.size(); ++i)
        out << "      {\"model\": \"" << weights.storeSizes[i].first
            << "\", \"bytes\": " << weights.storeSizes[i].second << "}"
            << (i + 1 < weights.storeSizes.size() ? "," : "") << "\n";
    out << "    ],\n";
    out << "    \"shared_store_bytes\": " << weights.sharedStoreBytes
        << ",\n";
    out << "    \"measured\": "
        << (weights.measured ? "true" : "false") << ",\n";
    out << "    \"rss_kb\": {\"store\": " << weights.storeRssKb
        << ", \"first_engine\": " << weights.firstEngineRssKb
        << ", \"second_engine\": " << weights.secondEngineRssKb
        << "}\n";
    out << "  }\n";
    out << "}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::quickMode(argc, argv);

    // --gemm / --simd: backend and kernel tier for the main
    // throughput sweep and the cohort on/off comparison (the gated
    // comparisons below always measure both of their own settings).
    KernelFlags sweep_kernels;
    for (int i = 1; i < argc; ++i) {
        std::string err;
        if (tryConsumeKernelFlag(argc, argv, i, sweep_kernels, err)
            == KernelFlagStatus::Error) {
            std::cerr << "error: " << err << "\n";
            return 1;
        }
    }
    const GemmBackend sweep_gemm = sweep_kernels.gemm;
    const SimdTier sweep_simd = sweep_kernels.simd;

    ModelConfig cfg = makeConfig(Benchmark::MLD, Scale::Reduced);
    cfg.iterations = quick ? 6 : 12;

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::cout << "model " << cfg.name << ", " << cfg.iterations
              << " iterations, " << hw << " hardware threads, seeds "
              << "fixed (noise base " << kNoiseSeedBase << "), gemm "
              << gemmBackendName(sweep_gemm) << ", simd "
              << simdTierName(sweep_simd) << " (level "
              << simdLevelName(activeSimdLevel()) << ")\n\n";

    std::vector<int> batches = {1, 4, 8};
    if (!quick)
        batches.push_back(16);
    std::vector<int> workers = {1, 2, 4};
    if (hw > 4)
        workers.push_back(static_cast<int>(hw));

    std::cout << std::left << std::setw(8) << "batch" << std::setw(16)
              << "single-stream";
    for (int w : workers)
        std::cout << std::setw(26) << ("engine w=" + std::to_string(w));
    std::cout << "best speedup\n";
    std::cout << std::setw(8) << "" << std::setw(16) << "(req/s)";
    for (size_t i = 0; i < workers.size(); ++i)
        std::cout << std::setw(26) << "(req/s, p50/p99 ms)";
    std::cout << "\n";

    bool healthy = true;
    for (int n : batches) {
        const auto batch = makeBatch(n);
        const double base_s = runSingleStream(cfg, batch);
        const double base_rps = n / base_s;
        healthy &= base_rps > 0.0;
        std::cout << std::left << std::setw(8) << n << std::fixed
                  << std::setprecision(2) << std::setw(16) << base_rps;
        double best = 0.0;
        for (int w : workers) {
            const EngineRun run =
                runEngine(cfg, batch, w, sweep_gemm, sweep_simd);
            const double rps = n / run.seconds;
            healthy &= rps > 0.0;
            best = std::max(best, rps);
            std::ostringstream cell;
            cell << std::fixed << std::setprecision(2) << rps << ", "
                 << std::setprecision(1) << run.p50 * 1e3 << "/"
                 << run.p99 * 1e3;
            std::cout << std::setw(26) << cell.str();
        }
        std::cout << std::setprecision(2) << best / base_rps << "x\n";
    }

    std::cout << "\nSpeedup sources: shared weight construction "
                 "(amortised across the batch)\nand worker "
                 "parallelism (scales with hardware threads). p50/p99 "
                 "are per-request\nsubmit->completion latencies "
                 "through the async path; the batch tail no longer\n"
                 "gates early completions, so p50 stays low even when "
                 "a slow dense request\nstretches the makespan.\n";
    if (!healthy)
        std::cerr << "error: measured non-positive throughput\n";

    // Cohort batching: same-benchmark load, one worker, off vs on.
    // Paper-scale MLD (8 tokens x 256 dim, 9 blocks, ~28 MB of
    // weights) is the shape cohort batching exists for: each solo
    // iteration drags every weight matrix through the cache for just
    // 8 activation rows, so stacking same-model latents amortises the
    // traversal across the whole cohort.
    ModelConfig cohort_cfg = makeConfig(Benchmark::MLD, Scale::Full);
    cohort_cfg.iterations = quick ? 4 : 8;
    const int cohort_n = quick ? 12 : 16;
    std::cout << "\n== cohort batching: " << cohort_n
              << " same-model " << cohort_cfg.name
              << " (full-scale) requests, " << cohort_cfg.iterations
              << " iterations, 1 worker, max rows 8 ==\n";
    std::vector<CohortComparison> cohort_rows;
    for (ExecMode mode : {ExecMode::Dense, ExecMode::Exion}) {
        // The dense row is the pass/fail gate; give it extra
        // repetitions so a noisy CI runner cannot flip the verdict.
        const int reps = mode == ExecMode::Dense ? 5 : 3;
        CohortComparison cmp =
            compareCohort(cohort_cfg, mode, cohort_n, /*max_rows=*/8,
                          reps, sweep_gemm, sweep_simd);
        std::cout << std::left << std::setw(8) << cmp.mode
                  << std::fixed << std::setprecision(2)
                  << "cohort-off " << std::setw(10) << cmp.offRps
                  << "cohort-on " << std::setw(10) << cmp.onRps
                  << "speedup " << cmp.speedup() << "x\n";
        healthy &= cmp.onRps > 0.0 && cmp.offRps > 0.0;
        cohort_rows.push_back(std::move(cmp));
    }
    // The acceptance gate: stacking same-model latents must beat the
    // request-at-a-time path on the dense GEMM-amortising load.
    if (cohort_rows[0].onRps <= cohort_rows[0].offRps) {
        std::cerr << "error: cohort batching did not improve dense "
                     "same-model throughput\n";
        healthy = false;
    }

    // GEMM backends under cohort batching: the same stacked tall
    // MMULs with only the kernel swapped. The dense row is the gate
    // that converts the cohort-stacking structural win into a
    // wall-clock win; the EXION row tracks how much of the sparse
    // mode's dense substrate the blocked kernel accelerates.
    std::cout << "\n== GEMM backends, cohort-on: " << cohort_n
              << " same-model " << cohort_cfg.name
              << " (full-scale) requests, "
              << cohort_cfg.iterations
              << " iterations, 1 worker, max rows 8 ==\n";
    std::vector<GemmComparison> gemm_rows;
    for (ExecMode mode : {ExecMode::Dense, ExecMode::Exion}) {
        const int reps = mode == ExecMode::Dense ? 5 : 3;
        GemmComparison cmp = compareGemmBackends(
            cohort_cfg, mode, cohort_n, /*max_rows=*/8, reps,
            sweep_simd);
        // Per-mode acceptance bound. Dense is the pure tall-GEMM
        // amortisation play and must strictly beat parity; the EXION
        // mode spends most of its wall clock in sparse kernels the
        // backend never touches, so its dense substrate only gates
        // against a 5% regression allowance (it typically lands just
        // under parity, ~0.99x).
        cmp.minSpeedup = mode == ExecMode::Dense ? 1.0 : 0.95;
        std::cout << std::left << std::setw(8) << cmp.mode
                  << std::fixed << std::setprecision(2)
                  << "reference " << std::setw(10) << cmp.referenceRps
                  << "blocked " << std::setw(10) << cmp.blockedRps
                  << "speedup " << cmp.speedup() << "x (gate >= "
                  << cmp.minSpeedup << ")\n";
        healthy &= cmp.referenceRps > 0.0 && cmp.blockedRps > 0.0;
        if (cmp.speedup() < cmp.minSpeedup
            || (mode == ExecMode::Dense
                && cmp.blockedRps <= cmp.referenceRps)) {
            std::cerr << "error: Blocked GEMM backend missed the "
                      << cmp.mode << " cohort-on gate ("
                      << cmp.speedup() << "x < " << cmp.minSpeedup
                      << "x)\n";
            healthy = false;
        } else if (cmp.speedup() <= 1.0) {
            std::cerr << "note: Blocked GEMM backend below parity on "
                      << cmp.mode << " cohort-on throughput ("
                      << cmp.speedup()
                      << "x, within its tolerance gate of "
                      << cmp.minSpeedup << "x)\n";
        }
        gemm_rows.push_back(std::move(cmp));
    }
    // SIMD tiers under cohort batching: the Blocked backend's
    // kernels with the scalar table forced vs the host vector table
    // under the Exact (bit-identical) contract. Gated only when a
    // vector table is actually active — on a scalar-only host (or
    // under EXION_SIMD=scalar) both rows run the same code and noise
    // would decide the verdict.
    std::cout << "\n== SIMD tiers, cohort-on, blocked GEMM: "
              << cohort_n << " same-model " << cohort_cfg.name
              << " (full-scale) requests, " << cohort_cfg.iterations
              << " iterations, 1 worker, max rows 8 (level "
              << simdLevelName(activeSimdLevel()) << ") ==\n";
    std::vector<SimdComparison> simd_rows;
    for (ExecMode mode : {ExecMode::Dense, ExecMode::Exion}) {
        const int reps = mode == ExecMode::Dense ? 5 : 3;
        SimdComparison cmp = compareSimdTiers(
            cohort_cfg, mode, cohort_n, /*max_rows=*/8, reps);
        std::cout << std::left << std::setw(8) << cmp.mode
                  << std::fixed << std::setprecision(2) << "scalar "
                  << std::setw(10) << cmp.scalarRps << "exact "
                  << std::setw(10) << cmp.exactRps << "speedup "
                  << cmp.speedup() << "x\n";
        healthy &= cmp.scalarRps > 0.0 && cmp.exactRps > 0.0;
        simd_rows.push_back(std::move(cmp));
    }
    // The acceptance gate: with a vector table active, dispatching
    // the dense cohort load onto it must not lose to forced scalar.
    if (activeSimdLevel() != SimdLevel::Scalar
        && simd_rows[0].exactRps < simd_rows[0].scalarRps) {
        std::cerr << "error: Exact-tier vector kernels lost to the "
                     "forced-scalar tier on cohort-on dense "
                     "throughput\n";
        healthy = false;
    }
    // Tensor parallelism under cohort batching: the same cohort-led
    // stacked load, tensorParallel=1 vs 4, with the spare workers
    // serving slice tasks instead of idling behind the leader. The
    // paper-scale full MLD cohort GEMMs (up to 64 stacked rows x
    // 256 -> 1024-column projections) are exactly the tall shapes
    // column slicing exists for. Wall-clock is gated only on hosts
    // with >= 4 hardware threads — on fewer cores the slices time-
    // share and the fork overhead is all that is measured — but
    // bit-identity of tp=4 against tp=1 is asserted unconditionally.
    const int tp_slices =
        sweep_kernels.tp > 1 ? sweep_kernels.tp : 4;
    const bool tp_gated =
        hw >= static_cast<unsigned>(tp_slices) && tp_slices == 4;
    const int tp_n = 8;
    std::cout << "\n== tensor parallelism, cohort-on: " << tp_n
              << " same-model " << cohort_cfg.name
              << " (full-scale) requests, " << cohort_cfg.iterations
              << " iterations, tp=1 vs tp=" << tp_slices << " over "
              << tp_slices << " workers"
              << (tp_gated ? "" : " (wall-clock gate skipped: host has "
                                  "fewer than 4 hardware threads)")
              << " ==\n";
    std::vector<TpComparison> tp_rows;
    for (ExecMode mode : {ExecMode::Dense, ExecMode::Exion}) {
        const int reps = quick ? 2 : (mode == ExecMode::Dense ? 4 : 3);
        bool bit_identical = false;
        TpComparison cmp = compareTensorParallel(
            cohort_cfg, mode, tp_n, tp_slices, /*max_rows=*/8, reps,
            bit_identical);
        // The tall dense projections are where the 1.3x floor lives;
        // the EXION row is informational (sparse kernels dominate its
        // wall clock and are forked per-slice only in the FFN).
        cmp.minSpeedup =
            tp_gated && mode == ExecMode::Dense ? 1.3 : 0.0;
        std::cout << std::left << std::setw(8) << cmp.mode
                  << std::fixed << std::setprecision(2) << "tp=1 "
                  << std::setw(10) << cmp.tp1Rps << "tp=" << tp_slices
                  << " " << std::setw(10) << cmp.tpNRps << "speedup "
                  << cmp.speedup() << "x"
                  << (cmp.minSpeedup > 0.0
                          ? " (gate >= " + std::to_string(cmp.minSpeedup)
                                .substr(0, 3) + "x)"
                          : "")
                  << (bit_identical ? "" : "  BIT-MISMATCH") << "\n";
        healthy &= cmp.tp1Rps > 0.0 && cmp.tpNRps > 0.0;
        // Correctness gate, never skipped: slices repartition
        // identical work, so any byte difference is a merge bug.
        if (!bit_identical) {
            std::cerr << "error: tensorParallel=" << tp_slices
                      << " output differs from tensorParallel=1 on "
                      << cmp.mode << " — the deterministic merge is "
                         "broken\n";
            healthy = false;
        }
        if (cmp.minSpeedup > 0.0 && cmp.speedup() < cmp.minSpeedup) {
            std::cerr << "error: tensor parallelism missed the "
                      << cmp.mode << " cohort-on gate ("
                      << cmp.speedup() << "x < " << cmp.minSpeedup
                      << "x)\n";
            healthy = false;
        }
        tp_rows.push_back(std::move(cmp));
    }

    // Weight sharing: the store built once, registered with two
    // engines; the second engine must borrow, not copy.
    const WeightsReport weights = measureWeightSharing(cohort_cfg);
    std::cout << "\n== weight store sharing: " << cohort_cfg.name
              << " (full-scale), "
              << weights.sharedStoreBytes / (1024 * 1024)
              << " MiB store, 2 engines ==\n";
    if (weights.measured) {
        const double frac = static_cast<double>(weights.secondEngineRssKb)
            / static_cast<double>(weights.storeRssKb);
        std::cout << std::fixed << std::setprecision(1)
                  << "store RSS " << weights.storeRssKb
                  << " KiB, first engine +" << weights.firstEngineRssKb
                  << " KiB, second engine +"
                  << weights.secondEngineRssKb << " KiB ("
                  << std::setprecision(1) << frac * 100.0
                  << "% of weight RSS, gate < 20%)\n";
        // The acceptance gate: a second engine over the same store
        // must cost a small fraction of the weights it would have
        // duplicated before the store existed.
        if (weights.secondEngineRssKb
            >= weights.storeRssKb / 5) {
            std::cerr << "error: second engine sharing the weight "
                         "store grew RSS by "
                      << weights.secondEngineRssKb << " KiB, >= 20% "
                         "of the " << weights.storeRssKb
                      << " KiB weight RSS — weights are being "
                         "copied, not shared\n";
            healthy = false;
        }
    } else {
        std::cout << "RSS not measurable on this platform; size-only "
                     "report\n";
    }

    writeBenchJson("BENCH_batch.json", cohort_cfg, quick, cohort_rows,
                   gemm_rows, simd_rows, tp_rows, tp_gated, weights);

    healthy &= runOverload(cfg, quick);
    return healthy ? 0 : 1;
}
