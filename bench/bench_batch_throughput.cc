/**
 * @file
 * Serving throughput of the batched engine: requests/sec versus the
 * single-stream path, swept over batch size and worker count.
 *
 * The single-stream baseline is the repository's pre-engine serving
 * path: one thread, one request at a time, a fresh pipeline (weight
 * build) per request — exactly what every example binary did before
 * the BatchEngine existed. The engine amortises weight construction
 * across the batch and schedules requests over the pool.
 *
 *   ./build/bench/bench_batch_throughput [--quick]
 */

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "exion/serve/batch_engine.h"

using namespace exion;

namespace
{

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<ServeRequest>
makeBatch(int n)
{
    std::vector<ServeRequest> batch;
    for (int i = 0; i < n; ++i) {
        ServeRequest req;
        req.id = static_cast<u64>(i);
        req.benchmark = Benchmark::MLD;
        req.mode = i % 4 == 3 ? ExecMode::Dense : ExecMode::Exion;
        req.noiseSeed = 42 + static_cast<u64>(i);
        batch.push_back(req);
    }
    return batch;
}

/** Pre-engine path: fresh pipeline + executor per request, 1 thread. */
double
runSingleStream(const ModelConfig &cfg,
                const std::vector<ServeRequest> &batch)
{
    const double start = now();
    for (const ServeRequest &req : batch) {
        DiffusionPipeline pipe(cfg);
        if (req.mode == ExecMode::Dense) {
            DenseExecutor exec;
            pipe.run(exec, req.noiseSeed);
        } else {
            SparseExecutor exec(SparseExecutor::fromConfig(
                cfg, /*use_ffn_reuse=*/true, /*use_ep=*/true,
                /*quantize=*/false));
            pipe.run(exec, req.noiseSeed);
        }
    }
    return now() - start;
}

/** Engine path: shared weights, W workers. */
double
runEngine(const ModelConfig &cfg,
          const std::vector<ServeRequest> &batch, int workers)
{
    BatchEngine::Options opts;
    opts.workers = workers;
    BatchEngine engine(opts);
    engine.addModel(cfg);
    const double start = now();
    engine.runBatch(batch);
    return now() - start;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::quickMode(argc, argv);

    ModelConfig cfg = makeConfig(Benchmark::MLD, Scale::Reduced);
    cfg.iterations = quick ? 6 : 12;

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::cout << "model " << cfg.name << ", " << cfg.iterations
              << " iterations, " << hw << " hardware threads\n\n";

    std::vector<int> batches = {1, 4, 8};
    if (!quick)
        batches.push_back(16);
    std::vector<int> workers = {1, 2, 4};
    if (hw > 4)
        workers.push_back(static_cast<int>(hw));

    std::cout << std::left << std::setw(8) << "batch" << std::setw(16)
              << "single-stream";
    for (int w : workers)
        std::cout << std::setw(16) << ("engine w=" + std::to_string(w));
    std::cout << "best speedup\n";
    std::cout << std::setw(8) << "" << std::setw(16) << "(req/s)";
    for (size_t i = 0; i < workers.size(); ++i)
        std::cout << std::setw(16) << "(req/s)";
    std::cout << "\n";

    for (int n : batches) {
        const auto batch = makeBatch(n);
        const double base_s = runSingleStream(cfg, batch);
        const double base_rps = n / base_s;
        std::cout << std::left << std::setw(8) << n << std::fixed
                  << std::setprecision(2) << std::setw(16) << base_rps;
        double best = 0.0;
        for (int w : workers) {
            const double s = runEngine(cfg, batch, w);
            const double rps = n / s;
            best = std::max(best, rps);
            std::cout << std::setw(16) << rps;
        }
        std::cout << std::setprecision(2) << best / base_rps << "x\n";
    }

    std::cout << "\nSpeedup sources: shared weight construction "
                 "(amortised across the batch)\nand worker "
                 "parallelism (scales with hardware threads).\n";
    return 0;
}
