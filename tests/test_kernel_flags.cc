/**
 * @file
 * Shared kernel-flag parsing tests: the --gemm/--simd helper every
 * CLI binary routes its argv loop through. The unknown-value cases
 * are regressions — each binary used to hand-roll this parse, and a
 * typo'd value must be rejected with a message listing the accepted
 * spellings, never silently fall back to a default.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exion/serve/shard_router.h"
#include "exion/tensor/kernel_flags.h"

namespace exion
{
namespace
{

/** Runs the caller-side argv loop over args; returns the outcome. */
struct ParseRun
{
    KernelFlags flags;
    std::vector<std::string> others; //!< positions reported NotMine
    std::string error;               //!< first error, empty if none
};

ParseRun
parseAll(const std::vector<const char *> &args)
{
    // argv[0] is the program name, as in a real main().
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    ParseRun run;
    for (int i = 1; i < static_cast<int>(argv.size()); ++i) {
        std::string err;
        const KernelFlagStatus ks = tryConsumeKernelFlag(
            static_cast<int>(argv.size()), argv.data(), i, run.flags,
            err);
        if (ks == KernelFlagStatus::Error) {
            run.error = err;
            break;
        }
        if (ks == KernelFlagStatus::NotMine)
            run.others.push_back(argv[i]);
    }
    return run;
}

TEST(KernelFlagsTest, Defaults)
{
    const ParseRun run = parseAll({});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.gemm, GemmBackend::Blocked);
    EXPECT_EQ(run.flags.simd, SimdTier::Exact);
}

TEST(KernelFlagsTest, ParsesGemmValues)
{
    ParseRun run = parseAll({"--gemm", "reference"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.gemm, GemmBackend::Reference);

    run = parseAll({"--gemm", "blocked"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.gemm, GemmBackend::Blocked);
}

TEST(KernelFlagsTest, ParsesSimdValues)
{
    ParseRun run = parseAll({"--simd", "scalar"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.simd, SimdTier::Scalar);

    run = parseAll({"--simd", "exact"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.simd, SimdTier::Exact);

    run = parseAll({"--simd", "fast"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.simd, SimdTier::Fast);
}

TEST(KernelFlagsTest, BothFlagsTogetherAndForeignArgsPassThrough)
{
    const ParseRun run = parseAll(
        {"--quick", "--gemm", "reference", "--batch", "4", "--simd",
         "fast"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.gemm, GemmBackend::Reference);
    EXPECT_EQ(run.flags.simd, SimdTier::Fast);
    // Foreign args (including consumed flags' neighbours) are left to
    // the caller in order.
    const std::vector<std::string> want = {"--quick", "--batch", "4"};
    EXPECT_EQ(run.others, want);
}

TEST(KernelFlagsTest, LastValueWins)
{
    const ParseRun run =
        parseAll({"--simd", "fast", "--simd", "scalar"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.simd, SimdTier::Scalar);
}

// Regression: a typo'd value must be an error naming the flag and
// listing every accepted value — not a silent default.
TEST(KernelFlagsTest, RejectsUnknownGemmValue)
{
    const ParseRun run = parseAll({"--gemm", "bocked"});
    ASSERT_FALSE(run.error.empty());
    EXPECT_NE(run.error.find("--gemm"), std::string::npos);
    EXPECT_NE(run.error.find("bocked"), std::string::npos);
    EXPECT_NE(run.error.find("reference|blocked"), std::string::npos);
}

TEST(KernelFlagsTest, RejectsUnknownSimdValue)
{
    const ParseRun run = parseAll({"--simd", "avx99"});
    ASSERT_FALSE(run.error.empty());
    EXPECT_NE(run.error.find("--simd"), std::string::npos);
    EXPECT_NE(run.error.find("avx99"), std::string::npos);
    EXPECT_NE(run.error.find("scalar|exact|fast"), std::string::npos);
}

TEST(KernelFlagsTest, RejectsCaseVariants)
{
    EXPECT_FALSE(parseAll({"--gemm", "Blocked"}).error.empty());
    EXPECT_FALSE(parseAll({"--simd", "EXACT"}).error.empty());
}

TEST(KernelFlagsTest, MissingValueIsError)
{
    ParseRun run = parseAll({"--gemm"});
    ASSERT_FALSE(run.error.empty());
    EXPECT_NE(run.error.find("needs a value"), std::string::npos);
    EXPECT_NE(run.error.find("reference|blocked"), std::string::npos);

    run = parseAll({"--simd"});
    ASSERT_FALSE(run.error.empty());
    EXPECT_NE(run.error.find("needs a value"), std::string::npos);
    EXPECT_NE(run.error.find("scalar|exact|fast"), std::string::npos);
}

TEST(KernelFlagsTest, ErrorDoesNotMutateFlags)
{
    KernelFlags flags;
    flags.gemm = GemmBackend::Reference;
    flags.simd = SimdTier::Fast;
    const char *argv[] = {"prog", "--gemm", "wat"};
    int i = 1;
    std::string err;
    EXPECT_EQ(tryConsumeKernelFlag(3, argv, i, flags, err),
              KernelFlagStatus::Error);
    EXPECT_EQ(flags.gemm, GemmBackend::Reference);
    EXPECT_EQ(flags.simd, SimdTier::Fast);
}

TEST(KernelFlagsTest, UsageAdvertisesBothFlags)
{
    const std::string usage = kernelFlagsUsage();
    EXPECT_NE(usage.find("--gemm"), std::string::npos);
    EXPECT_NE(usage.find("--simd"), std::string::npos);
    EXPECT_NE(usage.find("--tp"), std::string::npos);
}

TEST(KernelFlagsTest, ParsesTpValues)
{
    EXPECT_EQ(parseAll({}).flags.tp, 1);

    ParseRun run = parseAll({"--tp", "1"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.tp, 1);

    run = parseAll({"--tp", "4"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.tp, 4);

    run = parseAll({"--tp", "2", "--tp", "8"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.tp, 8);
}

TEST(KernelFlagsTest, TpComposesWithOtherFlags)
{
    const ParseRun run = parseAll(
        {"--quick", "--tp", "4", "--gemm", "reference", "--batch", "2"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.flags.tp, 4);
    EXPECT_EQ(run.flags.gemm, GemmBackend::Reference);
    const std::vector<std::string> want = {"--quick", "--batch", "2"};
    EXPECT_EQ(run.others, want);
}

// Regression: --tp must reject zero, negatives, trailing junk and
// non-numbers with a message naming what it expects — never silently
// run solo (or worse, with a garbage slice count).
TEST(KernelFlagsTest, RejectsBadTpValues)
{
    for (const char *bad : {"0", "-2", "4x", "four", ""}) {
        SCOPED_TRACE(std::string("--tp '") + bad + "'");
        const ParseRun run = parseAll({"--tp", bad});
        ASSERT_FALSE(run.error.empty());
        EXPECT_NE(run.error.find("--tp"), std::string::npos);
        EXPECT_NE(run.error.find("positive integer"),
                  std::string::npos);
        EXPECT_EQ(run.flags.tp, 1);
    }
}

TEST(KernelFlagsTest, TpMissingValueIsError)
{
    const ParseRun run = parseAll({"--tp"});
    ASSERT_FALSE(run.error.empty());
    EXPECT_NE(run.error.find("needs a value"), std::string::npos);
    EXPECT_NE(run.error.find("positive integer"), std::string::npos);
}

/** Caller-side argv loop for the route flag, mirroring ParseRun. */
struct RouteRun
{
    RoutePolicy policy = RoutePolicy::LeastDepth;
    std::vector<std::string> others;
    std::string error;
};

RouteRun
parseRoute(const std::vector<const char *> &args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    RouteRun run;
    for (int i = 1; i < static_cast<int>(argv.size()); ++i) {
        std::string err;
        const KernelFlagStatus ks = tryConsumeRouteFlag(
            static_cast<int>(argv.size()), argv.data(), i, run.policy,
            err);
        if (ks == KernelFlagStatus::Error) {
            run.error = err;
            break;
        }
        if (ks == KernelFlagStatus::NotMine)
            run.others.push_back(argv[i]);
    }
    return run;
}

TEST(RouteFlagTest, ParsesEveryPolicy)
{
    RouteRun run = parseRoute({"--route", "least-depth"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.policy, RoutePolicy::LeastDepth);

    run = parseRoute({"--route", "deadline-aware"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.policy, RoutePolicy::DeadlineAware);

    run = parseRoute({"--route", "cohort-affinity"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.policy, RoutePolicy::CohortAffinity);
}

TEST(RouteFlagTest, ForeignArgsPassThrough)
{
    const RouteRun run =
        parseRoute({"--shards", "2", "--route", "deadline-aware"});
    EXPECT_TRUE(run.error.empty());
    EXPECT_EQ(run.policy, RoutePolicy::DeadlineAware);
    const std::vector<std::string> want = {"--shards", "2"};
    EXPECT_EQ(run.others, want);
}

// Regression: the hand-rolled per-binary --route parses used to fall
// back silently; the shared helper must list the accepted policies.
TEST(RouteFlagTest, RejectsUnknownPolicyListingValues)
{
    const RouteRun run = parseRoute({"--route", "round-robin"});
    ASSERT_FALSE(run.error.empty());
    EXPECT_NE(run.error.find("--route"), std::string::npos);
    EXPECT_NE(run.error.find("round-robin"), std::string::npos);
    EXPECT_NE(run.error.find(routePolicyValues()), std::string::npos);
    EXPECT_EQ(run.policy, RoutePolicy::LeastDepth);
}

TEST(RouteFlagTest, MissingValueIsError)
{
    const RouteRun run = parseRoute({"--route"});
    ASSERT_FALSE(run.error.empty());
    EXPECT_NE(run.error.find("needs a value"), std::string::npos);
    EXPECT_NE(run.error.find(routePolicyValues()), std::string::npos);
}

TEST(RouteFlagTest, UsageAdvertisesPolicies)
{
    const std::string usage = routeFlagUsage();
    EXPECT_NE(usage.find("--route"), std::string::npos);
    EXPECT_NE(usage.find(routePolicyValues()), std::string::npos);
}

} // namespace
} // namespace exion
