/**
 * @file
 * SlicePlan / sliced-GEMM tests: a slice plan must cover its columns
 * exactly with aligned, ascending, disjoint ranges on adversarial
 * shapes (0 columns, 1 column, 63/64/65, nSlices > columns), sliced
 * views must alias the parent storage, and every sliced entry point
 * must be bit-identical to its solo counterpart for every backend and
 * tier — including NaN/Inf payloads and INT12 quantized slices
 * round-tripping against the unsliced at-rest image.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "exion/common/rng.h"
#include "exion/common/threadpool.h"
#include "exion/tensor/matmul_slice.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

/** Bitwise equality, NaN-tolerant (Matrix::operator== says NaN!=NaN). */
bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols()
        && (a.size() == 0
            || std::memcmp(a.data().data(), b.data().data(),
                           a.size() * sizeof(float)) == 0);
}

Matrix
randomMatrix(Index rows, Index cols, Rng &rng)
{
    Matrix m(rows, cols);
    m.fillUniform(rng, -2.0f, 2.0f);
    return m;
}

/** Checks the invariants every plan must satisfy. */
void
checkPlanInvariants(const SlicePlan &plan, Index cols, int nSlices,
                    Index align)
{
    ASSERT_EQ(plan.slices(), nSlices);
    EXPECT_EQ(plan.cols(), cols);
    Index at = 0;
    for (int s = 0; s < plan.slices(); ++s) {
        const SliceRange &r = plan.range(s);
        EXPECT_EQ(r.c0, at) << "slice " << s << " not adjacent";
        // Every boundary except the final ragged edge is aligned.
        if (r.c0 + r.n < cols) {
            EXPECT_EQ((r.c0 + r.n) % align, 0)
                << "slice " << s << " ends unaligned";
        }
        at += r.n;
    }
    EXPECT_EQ(at, cols) << "plan does not cover all columns";
}

TEST(SlicePlanTest, AdversarialShapesCoverExactly)
{
    const Index align = SlicePlan::kAlignElems;
    const Index colCases[] = {0, 1, 15, 16, 17, 63, 64, 65,
                              127, 128, 129, 1024};
    const int sliceCases[] = {1, 2, 3, 4, 7, 8, 64, 200};
    for (Index cols : colCases)
        for (int n : sliceCases) {
            SCOPED_TRACE(testing::Message()
                         << "cols=" << cols << " nSlices=" << n);
            checkPlanInvariants(SlicePlan::make(cols, n), cols, n,
                                align);
        }
}

TEST(SlicePlanTest, MoreSlicesThanColumnsLeavesTrailingEmpties)
{
    const SlicePlan plan = SlicePlan::make(/*cols=*/3, /*nSlices=*/8);
    EXPECT_FALSE(plan.parallel()); // one ragged chunk, 7 empties
    EXPECT_EQ(plan.range(0).n, 3);
    for (int s = 1; s < plan.slices(); ++s)
        EXPECT_TRUE(plan.range(s).empty());
}

TEST(SlicePlanTest, ZeroColumnsIsAllEmpty)
{
    const SlicePlan plan = SlicePlan::make(0, 4);
    EXPECT_FALSE(plan.parallel());
    for (int s = 0; s < plan.slices(); ++s)
        EXPECT_TRUE(plan.range(s).empty());
}

TEST(SlicePlanTest, BalancedWithinOneChunk)
{
    // 1024 columns / 16-elem chunks = 64 chunks over 4 slices: all
    // slices get exactly 16 chunks.
    const SlicePlan plan = SlicePlan::make(1024, 4);
    EXPECT_TRUE(plan.parallel());
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(plan.range(s).n, 256);
}

TEST(SliceViewTest, SlicedViewAliasesParentStorage)
{
    Rng rng(11);
    const Matrix b = randomMatrix(7, 65, rng);
    const SlicePlan plan = SlicePlan::make(b.cols(), 3);
    for (int s = 0; s < plan.slices(); ++s) {
        const SliceRange &r = plan.range(s);
        const Matrix v = sliceCols(b, r);
        EXPECT_TRUE(v.borrowed());
        EXPECT_EQ(v.rows(), b.rows());
        EXPECT_EQ(v.cols(), r.n);
        EXPECT_EQ(v.rowStride(), b.cols());
        for (Index i = 0; i < v.rows(); ++i) {
            if (r.n > 0) {
                EXPECT_EQ(v.rowPtr(i), b.rowPtr(i) + r.c0)
                    << "slice " << s << " row " << i
                    << " is not a view";
            }
            for (Index j = 0; j < v.cols(); ++j)
                EXPECT_EQ(v(i, j), b(i, r.c0 + j));
        }
    }
}

TEST(SliceViewTest, QuantSliceKeepsWholeTensorParams)
{
    Rng rng(13);
    const Matrix w = randomMatrix(9, 70, rng);
    const QuantMatrix q = QuantMatrix::fromFloat(w, IntWidth::Int12);
    const SlicePlan plan = SlicePlan::make(q.cols(), 4);
    for (int s = 0; s < plan.slices(); ++s) {
        const SliceRange &r = plan.range(s);
        const QuantMatrix v = sliceCols(q, r);
        EXPECT_EQ(v.params().scale, q.params().scale)
            << "slice " << s << " re-quantised";
        for (Index i = 0; i < v.rows(); ++i)
            for (Index j = 0; j < v.cols(); ++j)
                EXPECT_EQ(v(i, j), q(i, r.c0 + j));
    }
}

/**
 * INT12 at-rest round trip: dequantising the slices of a quantized
 * image column range by column range reproduces the unsliced
 * toFloat() image bit-for-bit (same integers, same scale, same
 * dequantise arithmetic).
 */
TEST(SliceViewTest, QuantSlicesRoundTripAgainstUnslicedImage)
{
    Rng rng(17);
    const Matrix w = randomMatrix(12, 129, rng);
    const QuantMatrix q = QuantMatrix::fromFloat(w, IntWidth::Int12);
    const Matrix whole = q.toFloat();
    const SlicePlan plan = SlicePlan::make(q.cols(), 5);
    Matrix stitched(whole.rows(), whole.cols());
    for (int s = 0; s < plan.slices(); ++s) {
        const SliceRange &r = plan.range(s);
        if (r.empty())
            continue;
        const Matrix part = sliceCols(q, r).toFloat();
        for (Index i = 0; i < part.rows(); ++i)
            std::memcpy(stitched.rowPtr(i) + r.c0, part.rowPtr(i),
                        static_cast<size_t>(r.n) * sizeof(float));
    }
    EXPECT_TRUE(bitIdentical(stitched, whole));
}

struct Shape
{
    Index m, k, n;
};

/** 0-row, 1-column, 63/64/65-column, nSlices > columns, tall. */
const Shape kShapes[] = {
    {0, 4, 3},  {1, 1, 1},   {5, 7, 1},   {3, 9, 63},
    {4, 8, 64}, {6, 16, 65}, {2, 5, 3}, // nSlices(4) > chunks(1)
    {64, 256, 1024},                    // paper-scale tall cohort
};

const GemmBackend kBackends[] = {GemmBackend::Reference,
                                 GemmBackend::Blocked};
const SimdTier kTiers[] = {SimdTier::Scalar, SimdTier::Exact};

TEST(MatmulSlicedTest, BitIdenticalToSoloEveryBackendAndTier)
{
    Rng rng(23);
    for (const Shape &sh : kShapes) {
        Matrix a = randomMatrix(sh.m, sh.k, rng);
        Matrix b = randomMatrix(sh.k, sh.n, rng);
        for (GemmBackend backend : kBackends)
            for (SimdTier simd : kTiers)
                for (int nSlices : {1, 2, 3, 4}) {
                    SCOPED_TRACE(testing::Message()
                                 << sh.m << "x" << sh.k << "x" << sh.n
                                 << " slices=" << nSlices);
                    SerialSliceRunner runner;
                    const TpContext tp{nSlices, &runner};
                    const Matrix solo = matmulWith(a, b, backend, simd);
                    const Matrix tpOut =
                        matmulSliced(a, b, tp, backend, simd);
                    EXPECT_EQ(maxAbsDiff(solo, tpOut), 0.0f);
                    EXPECT_TRUE(bitIdentical(solo, tpOut));
                }
    }
}

TEST(MatmulSlicedTest, NanInfPayloadsStayBitIdentical)
{
    Rng rng(29);
    Matrix a = randomMatrix(5, 18, rng);
    Matrix b = randomMatrix(18, 65, rng);
    a.data()[3] = kNan;
    a.data()[7] = kInf;
    a.data()[11] = -kInf;
    b.data()[16] = kNan; // first column of slice 1 territory
    b.data()[64] = kInf;
    b.data()[5] = -kInf;
    SerialSliceRunner runner;
    const TpContext tp{3, &runner};
    for (GemmBackend backend : kBackends) {
        const Matrix solo =
            matmulWith(a, b, backend, SimdTier::Exact);
        const Matrix tpOut =
            matmulSliced(a, b, tp, backend, SimdTier::Exact);
        EXPECT_TRUE(bitIdentical(solo, tpOut));
    }
}

TEST(MatmulTransposedSlicedTest, BitIdenticalToSolo)
{
    Rng rng(31);
    for (const Shape &sh : kShapes) {
        Matrix a = randomMatrix(sh.m, sh.k, rng);
        Matrix bT = randomMatrix(sh.n, sh.k, rng); // output cols = rows
        for (GemmBackend backend : kBackends)
            for (int nSlices : {2, 4}) {
                SerialSliceRunner runner;
                const TpContext tp{nSlices, &runner};
                const Matrix solo =
                    matmulTransposedWith(a, bT, backend);
                const Matrix tpOut =
                    matmulTransposedSliced(a, bT, tp, backend);
                EXPECT_TRUE(bitIdentical(solo, tpOut))
                    << sh.m << "x" << sh.k << "x" << sh.n
                    << " slices=" << nSlices;
            }
    }
}

TEST(MatmulQuantSlicedTest, BitIdenticalToSolo)
{
    Rng rng(37);
    for (const Shape &sh : kShapes) {
        const Matrix af = randomMatrix(sh.m, sh.k, rng);
        const Matrix bf = randomMatrix(sh.k, sh.n, rng);
        const QuantMatrix a =
            QuantMatrix::fromFloat(af, IntWidth::Int12);
        const QuantMatrix b =
            QuantMatrix::fromFloat(bf, IntWidth::Int12);
        for (GemmBackend backend : kBackends)
            for (int nSlices : {2, 4}) {
                SerialSliceRunner runner;
                const TpContext tp{nSlices, &runner};
                const Matrix solo = matmulQuantWith(a, b, backend);
                const Matrix tpOut =
                    matmulQuantSliced(a, b, tp, backend);
                EXPECT_TRUE(bitIdentical(solo, tpOut))
                    << sh.m << "x" << sh.k << "x" << sh.n
                    << " slices=" << nSlices;
            }
    }
}

TEST(PoolSliceRunnerTest, ComputesEverySliceAcrossWorkers)
{
    ThreadPool pool(3);
    PoolSliceRunner runner(pool);
    std::vector<std::atomic<int>> hits(16);
    runner.run(16, [&](int s) { hits[static_cast<size_t>(s)]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(PoolSliceRunnerTest, MatchesSerialBitForBit)
{
    Rng rng(41);
    const Matrix a = randomMatrix(64, 256, rng);
    const Matrix b = randomMatrix(256, 1024, rng);
    SerialSliceRunner serial;
    ThreadPool pool(4);
    PoolSliceRunner pooled(pool);
    const TpContext tpSerial{4, &serial};
    const TpContext tpPool{4, &pooled};
    const Matrix want =
        matmulSliced(a, b, tpSerial, GemmBackend::Blocked);
    const Matrix got = matmulSliced(a, b, tpPool, GemmBackend::Blocked);
    EXPECT_TRUE(bitIdentical(want, got));
}

TEST(PoolSliceRunnerTest, PropagatesFirstSliceException)
{
    ThreadPool pool(2);
    PoolSliceRunner runner(pool);
    EXPECT_THROW(runner.run(4,
                            [&](int s) {
                                if (s == 2)
                                    throw std::runtime_error("slice");
                            }),
                 std::runtime_error);
}

TEST(PoolSliceRunnerTest, DrainingPoolDegradesToCaller)
{
    auto pool = std::make_unique<ThreadPool>(2);
    PoolSliceRunner runner(*pool);
    pool->shutdown(); // postTagged now throws ThreadPoolStopped
    std::vector<int> hits(8, 0);
    runner.run(8, [&](int s) { hits[static_cast<size_t>(s)]++; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(TpContextTest, InactiveContextIsSoloPath)
{
    Rng rng(43);
    const Matrix a = randomMatrix(3, 5, rng);
    const Matrix b = randomMatrix(5, 40, rng);
    const TpContext tp; // nSlices == 1, no runner
    EXPECT_FALSE(tp.active());
    EXPECT_TRUE(bitIdentical(matmulSliced(a, b, tp, GemmBackend::Blocked),
                             matmulWith(a, b, GemmBackend::Blocked)));
}

} // namespace
} // namespace exion
