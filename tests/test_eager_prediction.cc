/**
 * @file
 * Tests for eager-prediction decisions and projection-skip derivation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "exion/common/rng.h"
#include "exion/sparsity/eager_prediction.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

Matrix
makeScores(std::initializer_list<std::initializer_list<float>> rows)
{
    const Index r = rows.size();
    const Index c = rows.begin()->size();
    Matrix m(r, c);
    Index i = 0;
    for (const auto &row : rows) {
        Index j = 0;
        for (float v : row)
            m(i, j++) = v;
        ++i;
    }
    return m;
}

TEST(Decision, TopKKeepsLargest)
{
    const Matrix pred = makeScores({{0.1f, 0.9f, 0.5f, 0.2f}});
    EpConfig ep{10.0, 0.5}; // huge q_th: no one-hot; keep 2 of 4
    const HeadDecision dec = decideFromPrediction(pred, ep);
    EXPECT_FALSE(dec.oneHot[0]);
    EXPECT_TRUE(dec.keep.get(0, 1));
    EXPECT_TRUE(dec.keep.get(0, 2));
    EXPECT_FALSE(dec.keep.get(0, 0));
    EXPECT_FALSE(dec.keep.get(0, 3));
}

TEST(Decision, OneHotWhenDominant)
{
    const Matrix pred = makeScores({{5.0f, 0.1f, 0.2f, 0.0f},
                                    {0.3f, 0.35f, 0.2f, 0.1f}});
    EpConfig ep{1.0, 0.5};
    const HeadDecision dec = decideFromPrediction(pred, ep);
    EXPECT_TRUE(dec.oneHot[0]);
    EXPECT_EQ(dec.oneHotArg[0], 0u);
    EXPECT_EQ(dec.keep.rowOnes(0), 0u); // one-hot rows have no MMUL
    EXPECT_FALSE(dec.oneHot[1]);
    EXPECT_EQ(dec.keep.rowOnes(1), 2u);
}

TEST(Decision, SparsityTracksKeepRatio)
{
    Rng rng(5);
    Matrix pred(64, 64);
    pred.fillNormal(rng, 0.0f, 1.0f);
    EpConfig ep{100.0, 0.25};
    const HeadDecision dec = decideFromPrediction(pred, ep);
    EXPECT_NEAR(dec.scoreSparsity(), 0.75, 0.02);
}

TEST(Decision, KeepRatioOneKeepsEverything)
{
    Rng rng(7);
    Matrix pred(16, 16);
    pred.fillNormal(rng, 0.0f, 1.0f);
    EpConfig ep{1e9, 1.0};
    const HeadDecision dec = decideFromPrediction(pred, ep);
    EXPECT_DOUBLE_EQ(dec.scoreSparsity(), 0.0);
    EXPECT_EQ(dec.oneHotCount(), 0u);
}

TEST(Needs, OneHotRowSkipsQButNeedsArgV)
{
    const Matrix pred = makeScores({{9.0f, 0.0f, 0.0f},
                                    {0.2f, 0.25f, 0.22f},
                                    {0.21f, 0.2f, 0.24f}});
    EpConfig ep{1.0, 0.67};
    const HeadDecision dec = decideFromPrediction(pred, ep);
    ASSERT_TRUE(dec.oneHot[0]);
    const ProjectionNeeds needs = combineNeeds({dec}, 3);
    EXPECT_FALSE(needs.qRowNeeded[0]); // one-hot: Q projection skipped
    EXPECT_TRUE(needs.qRowNeeded[1]);
    EXPECT_TRUE(needs.vRowNeeded[0]); // argmax V still required
}

TEST(Needs, UnkeptColumnsSkipKv)
{
    // All rows keep only columns 0 and 1; column 2 is never needed.
    const Matrix pred = makeScores({{0.9f, 0.8f, 0.0f},
                                    {0.8f, 0.9f, 0.0f},
                                    {0.85f, 0.9f, 0.1f}});
    EpConfig ep{10.0, 0.6}; // ceil(0.6 * 3) = 2 kept per row
    const HeadDecision dec = decideFromPrediction(pred, ep);
    const ProjectionNeeds needs = combineNeeds({dec}, 3);
    EXPECT_TRUE(needs.kRowNeeded[0]);
    EXPECT_TRUE(needs.kRowNeeded[1]);
    EXPECT_FALSE(needs.kRowNeeded[2]);
    EXPECT_FALSE(needs.vRowNeeded[2]);
}

TEST(Needs, UnionAcrossHeads)
{
    const Matrix pred_a = makeScores({{0.9f, 0.1f}, {0.8f, 0.1f}});
    const Matrix pred_b = makeScores({{0.1f, 0.9f}, {0.1f, 0.8f}});
    EpConfig ep{10.0, 0.5};
    const HeadDecision da = decideFromPrediction(pred_a, ep);
    const HeadDecision db = decideFromPrediction(pred_b, ep);
    const ProjectionNeeds needs = combineNeeds({da, db}, 2);
    // Each head keeps a different column; union needs both.
    EXPECT_TRUE(needs.kRowNeeded[0]);
    EXPECT_TRUE(needs.kRowNeeded[1]);
}

TEST(PredictHeadScore, CorrelatesWithExactScores)
{
    Rng rng(11);
    const Index t = 24, d = 32, dh = 16;
    Matrix x(t, d), wq(d, dh), wk(d, dh);
    x.fillNormal(rng, 0.0f, 1.0f);
    wq.fillNormal(rng, 0.0f, 0.18f);
    wk.fillNormal(rng, 0.0f, 0.18f);

    const Matrix q = matmul(x, wq);
    const Matrix k = matmul(x, wk);
    Matrix exact = matmulTransposed(q, k);
    const float inv = 1.0f / std::sqrt(static_cast<float>(dh));
    for (Index i = 0; i < exact.size(); ++i)
        exact.data()[i] *= inv;

    const QuantMatrix qx = QuantMatrix::fromFloat(x, IntWidth::Int12);
    const QuantMatrix qwq = QuantMatrix::fromFloat(wq, IntWidth::Int12);
    const QuantMatrix qwk = QuantMatrix::fromFloat(wk, IntWidth::Int12);
    const Matrix pred = predictHeadScore(qx, qwq, qwk,
                                         LodMode::TwoStep);

    // The prediction needs to preserve per-row rankings; check that
    // the true argmax lands in the predicted top-25% for most rows.
    Index hits = 0;
    for (Index r = 0; r < t; ++r) {
        Index true_arg = 0;
        for (Index c = 1; c < t; ++c)
            if (exact(r, c) > exact(r, true_arg))
                true_arg = c;
        Index rank = 0;
        for (Index c = 0; c < t; ++c)
            if (pred(r, c) > pred(r, true_arg))
                ++rank;
        hits += (rank < t / 4) ? 1 : 0;
    }
    EXPECT_GE(hits, t * 3 / 4);
}

/** Parameterised sweep over keep ratios: sparsity is monotone. */
class KeepRatioSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(KeepRatioSweep, SparsityApproximatesOneMinusK)
{
    const double k = GetParam();
    Rng rng(23);
    Matrix pred(48, 48);
    pred.fillNormal(rng, 0.0f, 1.0f);
    EpConfig ep{1e9, k};
    const HeadDecision dec = decideFromPrediction(pred, ep);
    EXPECT_NEAR(dec.scoreSparsity(), 1.0 - k, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Ratios, KeepRatioSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.7, 0.8));

} // namespace
} // namespace exion
