/**
 * @file
 * Tests for transformer blocks, networks, scheduler, pipeline, and the
 * analytic op counter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "exion/common/rng.h"
#include "exion/model/network.h"
#include "exion/model/op_counter.h"
#include "exion/model/pipeline.h"
#include "exion/metrics/metrics.h"
#include "exion/model/scheduler.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

TEST(TransformerBlock, ShapePreserved)
{
    Rng rng(1);
    TransformerBlock blk(0, 32, 4, 4, false, rng);
    DenseExecutor exec;
    Matrix x(6, 32);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix y = blk.forward(x, exec);
    EXPECT_EQ(y.rows(), 6u);
    EXPECT_EQ(y.cols(), 32u);
}

TEST(TransformerBlock, OpCountingMatchesAnalytic)
{
    Rng rng(2);
    const Index t = 10, d = 32;
    TransformerBlock blk(0, d, 4, 4, false, rng);
    DenseExecutor exec;
    Matrix x(t, d);
    x.fillNormal(rng, 0.0f, 1.0f);
    blk.forward(x, exec);

    StageConfig stage{t, d, 4, 4, 1, 0};
    const OpBreakdown expect = countBlockOps(stage, false);
    EXPECT_EQ(exec.stats().qkvOpsDense, expect.qkv);
    EXPECT_EQ(exec.stats().attnOpsDense, expect.attn);
    EXPECT_EQ(exec.stats().ffnOpsDense, expect.ffn);
}

TEST(TransformerBlock, GegluDoublesFirstLayer)
{
    StageConfig stage{8, 16, 2, 4, 1, 0};
    const OpBreakdown gelu_ops = countBlockOps(stage, false);
    const OpBreakdown geglu_ops = countBlockOps(stage, true);
    EXPECT_EQ(geglu_ops.ffn, gelu_ops.ffn * 3 / 2);
}

TEST(TransformerBlock, QuantizedCloseToFloat)
{
    Rng rng(3);
    TransformerBlock blk(0, 32, 4, 4, false, rng);
    DenseExecutor exact(false), quant(true);
    Matrix x(6, 32);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix y = blk.forward(x, exact);
    const Matrix yq = blk.forward(x, quant);
    EXPECT_LT(relativeError(y, yq), 0.05)
        << "INT12 block output diverged";
}

TEST(PoolUpsample, RoundTripShapes)
{
    Rng rng(4);
    Matrix x(16, 8);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix pooled = poolTokens(x, 4);
    EXPECT_EQ(pooled.rows(), 4u);
    const Matrix up = upsampleTokens(pooled, 4);
    EXPECT_EQ(up.rows(), 16u);
    // Pooling a constant matrix is exact.
    Matrix c(16, 8, 2.0f);
    EXPECT_EQ(upsampleTokens(poolTokens(c, 4), 4), c);
}

TEST(Network, ForwardShape)
{
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 4);
    DenoisingNetwork net(cfg);
    DenseExecutor exec;
    Matrix x(cfg.latentTokens, cfg.latentDim);
    Rng rng(5);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix eps = net.forward(x, 500, exec);
    EXPECT_EQ(eps.rows(), cfg.latentTokens);
    EXPECT_EQ(eps.cols(), cfg.latentDim);
}

TEST(Network, UNetWithStagesRuns)
{
    ModelConfig cfg = makeConfig(Benchmark::StableDiffusion,
                                 Scale::Reduced);
    DenoisingNetwork net(cfg);
    DenseExecutor exec;
    Matrix x(cfg.latentTokens, cfg.latentDim);
    Rng rng(6);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix eps = net.forward(x, 100, exec);
    EXPECT_EQ(eps.rows(), cfg.latentTokens);
    EXPECT_EQ(eps.cols(), cfg.latentDim);
    EXPECT_GT(frobeniusNorm(eps), 0.0);
}

TEST(Network, DeterministicAcrossInstances)
{
    const ModelConfig cfg = makeTinyConfig();
    DenoisingNetwork a(cfg), b(cfg);
    DenseExecutor ea, eb;
    Matrix x(cfg.latentTokens, cfg.latentDim);
    Rng rng(7);
    x.fillNormal(rng, 0.0f, 1.0f);
    EXPECT_EQ(a.forward(x, 10, ea), b.forward(x, 10, eb));
}

TEST(Network, TimestepChangesOutput)
{
    const ModelConfig cfg = makeTinyConfig();
    DenoisingNetwork net(cfg);
    DenseExecutor exec;
    Matrix x(cfg.latentTokens, cfg.latentDim);
    Rng rng(8);
    x.fillNormal(rng, 0.0f, 1.0f);
    const Matrix e1 = net.forward(x, 10, exec);
    const Matrix e2 = net.forward(x, 900, exec);
    EXPECT_GT(maxAbsDiff(e1, e2), 1e-4);
}

TEST(Scheduler, TimestepsDescend)
{
    DdimScheduler sched(50);
    EXPECT_EQ(sched.inferenceSteps(), 50);
    for (int i = 1; i < 50; ++i)
        EXPECT_LT(sched.timestep(i), sched.timestep(i - 1));
    EXPECT_EQ(sched.timestep(49), 0);
}

TEST(Scheduler, AlphaBarDecreases)
{
    DdimScheduler sched(10);
    double prev = 1.0;
    for (int t = 0; t < 1000; t += 100) {
        const double ab = sched.alphaBar(t);
        EXPECT_LT(ab, prev);
        EXPECT_GT(ab, 0.0);
        prev = ab;
    }
}

TEST(Scheduler, PerfectNoisePredictionDenoises)
{
    // If eps_hat equals the true noise component, stepping reduces the
    // noise contribution exactly.
    DdimScheduler sched(10);
    Rng rng(9);
    Matrix x0(4, 4), noise(4, 4);
    x0.fillNormal(rng, 0.0f, 1.0f);
    noise.fillNormal(rng, 0.0f, 1.0f);
    const int t = sched.timestep(0);
    const double ab = sched.alphaBar(t);
    const Matrix x_t = add(
        scale(x0, static_cast<float>(std::sqrt(ab))),
        scale(noise, static_cast<float>(std::sqrt(1.0 - ab))));
    const Matrix x_next = sched.step(x_t, noise, 0);
    const int t_next = sched.timestep(1);
    const double ab_next = sched.alphaBar(t_next);
    const Matrix expect = add(
        scale(x0, static_cast<float>(std::sqrt(ab_next))),
        scale(noise, static_cast<float>(std::sqrt(1.0 - ab_next))));
    EXPECT_LT(maxAbsDiff(x_next, expect), 1e-4);
}

TEST(Pipeline, RunsAndIsDeterministic)
{
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 6);
    DiffusionPipeline pipe(cfg);
    DenseExecutor e1, e2;
    const Matrix out1 = pipe.run(e1, 42);
    const Matrix out2 = pipe.run(e2, 42);
    EXPECT_EQ(out1, out2);
    EXPECT_EQ(out1.rows(), cfg.latentTokens);
}

TEST(Pipeline, IterationHookFires)
{
    const ModelConfig cfg = makeTinyConfig(8, 16, 1, 5);
    DiffusionPipeline pipe(cfg);
    int count = 0;
    pipe.onIteration = [&](int, const Matrix &) { ++count; };
    DenseExecutor exec;
    pipe.run(exec);
    EXPECT_EQ(count, 5);
}

TEST(Pipeline, LatentEvolvesSmoothly)
{
    // The property FFN-Reuse exploits: adjacent iterations are close.
    const ModelConfig cfg = makeTinyConfig(8, 16, 2, 10);
    DiffusionPipeline pipe(cfg);
    std::vector<Matrix> latents;
    pipe.onIteration = [&](int, const Matrix &x) {
        latents.push_back(x);
    };
    DenseExecutor exec;
    pipe.run(exec);
    for (std::size_t i = 2; i < latents.size(); ++i) {
        const double step_diff = frobeniusNorm(
            sub(latents[i], latents[i - 1]));
        const double norm = frobeniusNorm(latents[i]);
        EXPECT_LT(step_diff, norm) << "iteration " << i;
    }
}

TEST(OpCounter, DiTIsPureTransformer)
{
    const ModelConfig cfg = makeConfig(Benchmark::DiT, Scale::Full);
    const OpBreakdown ops = countOpsPerIteration(cfg);
    EXPECT_GT(ops.transformerShare(), 0.99);
}

TEST(OpCounter, UNetModelsHaveEtcShare)
{
    const ModelConfig cfg = makeConfig(Benchmark::StableDiffusion,
                                       Scale::Full);
    const OpBreakdown ops = countOpsPerIteration(cfg);
    EXPECT_GT(ops.etc, 0u);
    EXPECT_LT(ops.transformerShare(), 0.9);
    EXPECT_GT(ops.transformerShare(), 0.2);
}

TEST(OpCounter, FfnDominatesShortTokenModels)
{
    // Fig. 4: FFN layers are the transformer bottleneck for the
    // short-token diffusion models.
    for (Benchmark b : {Benchmark::MLD, Benchmark::DiT}) {
        const ModelConfig cfg = makeConfig(b, Scale::Full);
        const OpBreakdown ops = countOpsPerIteration(cfg);
        EXPECT_GT(ops.ffnShareOfTransformer(), 0.4)
            << benchmarkName(b);
        EXPECT_GT(ops.ffn, ops.attn) << benchmarkName(b);
    }
}

TEST(OpCounter, TotalsInPlausibleRange)
{
    // Order-of-magnitude anchors from Fig. 4.
    const OpCount mld =
        countOpsPerIteration(makeConfig(Benchmark::MLD, Scale::Full))
            .total();
    EXPECT_GT(mld, static_cast<OpCount>(5e7));
    EXPECT_LT(mld, static_cast<OpCount>(5e8));

    const OpCount dit =
        countOpsPerIteration(makeConfig(Benchmark::DiT, Scale::Full))
            .total();
    EXPECT_GT(dit, static_cast<OpCount>(1e11));
    EXPECT_LT(dit, static_cast<OpCount>(1e12));
}

} // namespace
} // namespace exion
