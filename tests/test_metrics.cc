/**
 * @file
 * Unit tests for exion/metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "exion/common/rng.h"
#include "exion/metrics/frechet.h"
#include "exion/metrics/metrics.h"
#include "exion/tensor/ops.h"

namespace exion
{
namespace
{

TEST(Psnr, IdenticalIsInfinite)
{
    Matrix a(3, 3, 1.0f);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Psnr, KnownValue)
{
    Matrix ref(1, 4, 1.0f);
    Matrix test = ref;
    test(0, 0) = 0.9f; // mse = 0.01 / 4, peak = 1
    const double expected = 10.0 * std::log10(1.0 / (0.01 / 4.0));
    EXPECT_NEAR(psnr(ref, test), expected, 1e-4);
}

TEST(Psnr, MoreNoiseLowerPsnr)
{
    Rng rng(3);
    Matrix ref(16, 16);
    ref.fillNormal(rng, 0.0f, 1.0f);
    Matrix small_noise = ref, big_noise = ref;
    for (Index i = 0; i < ref.size(); ++i) {
        const float n = static_cast<float>(rng.normal());
        small_noise.data()[i] += 0.01f * n;
        big_noise.data()[i] += 0.2f * n;
    }
    EXPECT_GT(psnr(ref, small_noise), psnr(ref, big_noise));
}

TEST(CosineSimilarity, Basics)
{
    Matrix a(1, 2), b(1, 2);
    a(0, 0) = 1;
    a(0, 1) = 0;
    b(0, 0) = 0;
    b(0, 1) = 1;
    EXPECT_NEAR(cosineSimilarity(a, b), 0.0, 1e-7);
    EXPECT_NEAR(cosineSimilarity(a, a), 1.0, 1e-7);
    const Matrix neg = scale(a, -2.0f);
    EXPECT_NEAR(cosineSimilarity(a, neg), -1.0, 1e-7);
}

TEST(RelativeError, ZeroForIdentical)
{
    Matrix a(2, 2, 3.0f);
    EXPECT_DOUBLE_EQ(relativeError(a, a), 0.0);
}

TEST(RelativeError, ScalesWithPerturbation)
{
    Matrix a(2, 2, 2.0f);
    Matrix b = scale(a, 1.1f);
    EXPECT_NEAR(relativeError(a, b), 0.1, 1e-6);
}

TEST(Frechet, ZeroForIdenticalBatches)
{
    Rng rng(5);
    std::vector<Matrix> batch;
    for (int i = 0; i < 6; ++i) {
        Matrix m(4, 4);
        m.fillNormal(rng, 0.0f, 1.0f);
        batch.push_back(m);
    }
    FrechetProxy proxy(16, 8);
    EXPECT_NEAR(proxy.distance(batch, batch), 0.0, 1e-9);
}

TEST(Frechet, GrowsWithDistributionShift)
{
    Rng rng(7);
    std::vector<Matrix> base, shifted_small, shifted_large;
    for (int i = 0; i < 16; ++i) {
        Matrix m(4, 4);
        m.fillNormal(rng, 0.0f, 1.0f);
        base.push_back(m);
        Matrix s = m;
        for (auto &v : s.data())
            v += 0.1f;
        shifted_small.push_back(s);
        Matrix l = m;
        for (auto &v : l.data())
            v += 1.0f;
        shifted_large.push_back(l);
    }
    FrechetProxy proxy(16, 8);
    const double d_small = proxy.distance(base, shifted_small);
    const double d_large = proxy.distance(base, shifted_large);
    EXPECT_GT(d_small, 0.0);
    EXPECT_GT(d_large, d_small * 2.0);
}

} // namespace
} // namespace exion
